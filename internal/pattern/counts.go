package pattern

import "repro/internal/dataset"

// Counts holds the per-region statistics of Def. 3: the region size and
// the number of positive instances.
type Counts struct {
	N   int // |r|
	Pos int // |r+|
}

// Neg returns |r-|.
func (c Counts) Neg() int { return c.N - c.Pos }

// Ratio returns the imbalance score ratio_r = |r+|/|r-| (Def. 3), with
// the paper's sentinel -1 when |r-| = 0.
func (c Counts) Ratio() float64 {
	if c.Neg() == 0 {
		return -1
	}
	return float64(c.Pos) / float64(c.Neg())
}

// Add accumulates one instance.
func (c *Counts) Add(positive bool) {
	c.N++
	if positive {
		c.Pos++
	}
}

// Table maps region keys (Space.Key) to their counts.
type Table map[uint64]Counts

// CountNode computes the counts of every non-empty region in one
// hierarchy node: the group-by of the dataset on the attributes of
// mask. This is the "compute and store the counts of regions" step of
// Algorithm 1 (lines 5-6).
func (sp *Space) CountNode(d *dataset.Dataset, mask uint32) Table {
	t := make(Table)
	slots := sp.maskSlots(mask)
	for i, row := range d.Rows {
		var k uint64
		for _, s := range slots {
			k |= uint64(row[sp.AttrIdx[s]]+1) << uint(5*s)
		}
		c := t[k]
		c.Add(d.Labels[i] == 1)
		t[k] = c
	}
	return t
}

// CountAll computes the counts of every non-empty region in the whole
// hierarchy in one pass: for each row, all 2^dim masked projections are
// incremented. Regions with zero instances are simply absent. See
// CountAllParallel for the sharded variant.
func (sp *Space) CountAll(d *dataset.Dataset) Table {
	return sp.countRange(d, 0, d.Len())
}

// Totals returns the level-0 counts (the entire dataset).
func Totals(d *dataset.Dataset) Counts {
	return Counts{N: d.Len(), Pos: d.PositiveCount()}
}

// RowsIn returns the indices of the dataset rows matched by p.
func (sp *Space) RowsIn(d *dataset.Dataset, p Pattern) []int {
	var idx []int
	for i, row := range d.Rows {
		if sp.MatchRow(p, row) {
			idx = append(idx, i)
		}
	}
	return idx
}

// CountPattern counts one region by scanning the dataset; used by tests
// as the brute-force oracle and by callers needing a single region.
func (sp *Space) CountPattern(d *dataset.Dataset, p Pattern) Counts {
	var c Counts
	for i, row := range d.Rows {
		if sp.MatchRow(p, row) {
			c.Add(d.Labels[i] == 1)
		}
	}
	return c
}

func (sp *Space) maskSlots(mask uint32) []int {
	slots := make([]int, 0, sp.Dim())
	for i := 0; i < sp.Dim(); i++ {
		if mask&(1<<uint(i)) != 0 {
			slots = append(slots, i)
		}
	}
	return slots
}
