package pattern

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{"<25", "25-45", ">45"}, Protected: true, Ordered: true},
			{Name: "priors", Values: []string{"0", "1-3", ">3"}, Protected: true, Ordered: true},
			{Name: "race", Values: []string{"Cauc", "Afr-Am", "Hisp"}, Protected: true},
			{Name: "charge", Values: []string{"M", "F"}},
		},
	}
}

func testSpace(t *testing.T) *Space {
	t.Helper()
	sp, err := NewSpace(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func testData(t *testing.T, n int, seed int64) (*Space, *dataset.Dataset) {
	t.Helper()
	s := testSchema()
	d := dataset.New(s)
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		d.Append([]int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(2))},
			int8(r.Intn(2)))
	}
	sp, err := NewSpace(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp, d
}

func TestNewSpaceErrors(t *testing.T) {
	s := testSchema()
	for i := range s.Attrs {
		s.Attrs[i].Protected = false
	}
	if _, err := NewSpace(s); err == nil {
		t.Fatal("expected error for no protected attributes")
	}
	s2 := testSchema()
	big := make([]string, 40)
	for i := range big {
		big[i] = string(rune('a' + i%26))
	}
	s2.Attrs[0].Values = big
	if _, err := NewSpace(s2); err == nil {
		t.Fatal("expected error for oversized cardinality")
	}
}

func TestSpaceBasics(t *testing.T) {
	sp := testSpace(t)
	if sp.Dim() != 3 {
		t.Fatalf("Dim = %d", sp.Dim())
	}
	// (3+1)^3 regions.
	if sp.NumRegions() != 64 {
		t.Fatalf("NumRegions = %d", sp.NumRegions())
	}
}

func TestPatternLevelMask(t *testing.T) {
	p := Pattern{1, Wildcard, 2}
	if p.Level() != 2 {
		t.Fatalf("Level = %d", p.Level())
	}
	if p.Mask() != 0b101 {
		t.Fatalf("Mask = %b", p.Mask())
	}
	if NewPattern(3).Level() != 0 {
		t.Fatal("all-wildcard pattern should be level 0")
	}
}

func TestDominates(t *testing.T) {
	full := Pattern{1, 2, 0}
	cases := []struct {
		g    Pattern
		want bool
	}{
		{Pattern{1, 2, 0}, true},
		{Pattern{1, Wildcard, 0}, true},
		{Pattern{Wildcard, Wildcard, Wildcard}, true},
		{Pattern{0, 2, 0}, false},
		{Pattern{1, 2, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.g, full); got != c.want {
			t.Fatalf("Dominates(%v, %v) = %v", c.g, full, got)
		}
	}
	if Dominates(Pattern{1}, full) {
		t.Fatal("length mismatch must not dominate")
	}
}

func TestDominatesLaws(t *testing.T) {
	sp := testSpace(t)
	// Reflexivity and transitivity on random patterns.
	gen := func(r int64) Pattern {
		rng := stats.NewRNG(r)
		p := NewPattern(sp.Dim())
		for i := range p {
			if rng.Intn(2) == 0 {
				p[i] = int16(rng.Intn(sp.Cards[i]))
			}
		}
		return p
	}
	f := func(seed int64) bool {
		p := gen(seed)
		if !Dominates(p, p) {
			return false
		}
		// Wildcard-ing any slot keeps dominance.
		for i := range p {
			q := p.Clone()
			q[i] = Wildcard
			if !Dominates(q, p) {
				return false
			}
			// And transitively the empty pattern dominates p.
			if !Dominates(NewPattern(len(p)), q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sp := testSpace(t)
	f := func(a, b, c uint8) bool {
		p := Pattern{
			int16(a%4) - 1, // -1..2
			int16(b%4) - 1,
			int16(c%4) - 1,
		}
		return sp.DecodeKey(sp.Key(p)).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyUniqueAcrossLattice(t *testing.T) {
	sp := testSpace(t)
	seen := map[uint64]bool{}
	n := 0
	for _, m := range sp.Masks() {
		sp.EnumerateNode(m, func(p Pattern) {
			k := sp.Key(p)
			if seen[k] {
				t.Fatalf("duplicate key for %v", p)
			}
			seen[k] = true
			n++
		})
	}
	if n != sp.NumRegions() {
		t.Fatalf("enumerated %d regions, want %d", n, sp.NumRegions())
	}
}

func TestStringAndParse(t *testing.T) {
	sp := testSpace(t)
	p, err := sp.Parse("age", "25-45", "priors", ">3")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.String(p); got != "(age=25-45, priors=>3)" {
		t.Fatalf("String = %q", got)
	}
	if got := sp.String(NewPattern(3)); got != "(*)" {
		t.Fatalf("String(empty) = %q", got)
	}
	if _, err := sp.Parse("charge", "M"); err == nil {
		t.Fatal("non-protected attribute must not parse")
	}
	if _, err := sp.Parse("age", "banana"); err == nil {
		t.Fatal("unknown value must not parse")
	}
	if _, err := sp.Parse("age"); err == nil {
		t.Fatal("odd pair count must not parse")
	}
}

func TestMasksLevelOrder(t *testing.T) {
	sp := testSpace(t)
	ms := sp.Masks()
	if len(ms) != 8 {
		t.Fatalf("masks = %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if bits.OnesCount32(ms[i]) < bits.OnesCount32(ms[i-1]) {
			t.Fatal("masks not in level order")
		}
	}
	if ms[0] != 0 {
		t.Fatal("first mask must be the level-0 node")
	}
}

func TestEnumerateNode(t *testing.T) {
	sp := testSpace(t)
	var got []string
	sp.EnumerateNode(0b011, func(p Pattern) { got = append(got, sp.String(p)) })
	if len(got) != 9 {
		t.Fatalf("enumerated %d patterns, want 9", len(got))
	}
	// Patterns must be fully assigned on slots 0,1 and wildcard on 2.
	sp.EnumerateNode(0b011, func(p Pattern) {
		if p[0] == Wildcard || p[1] == Wildcard || p[2] != Wildcard {
			t.Fatalf("bad pattern %v", p)
		}
	})
}

func TestParents(t *testing.T) {
	sp := testSpace(t)
	p, _ := sp.Parse("age", "25-45", "priors", ">3", "race", "Afr-Am")
	var parents []Pattern
	sp.Parents(p, func(q Pattern) { parents = append(parents, q.Clone()) })
	if len(parents) != 3 {
		t.Fatalf("parents = %d, want 3 (= d)", len(parents))
	}
	for _, q := range parents {
		if !Dominates(q, p) || q.Level() != p.Level()-1 {
			t.Fatalf("bad parent %v", q)
		}
	}
}

func TestNeighborsT1(t *testing.T) {
	sp := testSpace(t)
	p, _ := sp.Parse("age", "25-45", "priors", ">3")
	var got []Pattern
	sp.Neighbors(p, 1, func(q Pattern) { got = append(got, q.Clone()) })
	// (c-1)*d = 2*2 = 4 neighbors — Example 5's count.
	if len(got) != 4 {
		t.Fatalf("neighbors = %d, want 4", len(got))
	}
	for _, q := range got {
		if q.Mask() != p.Mask() {
			t.Fatalf("neighbor %v changed deterministic slots", q)
		}
		diff := 0
		for i := range q {
			if q[i] != p[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("neighbor %v differs in %d slots", q, diff)
		}
	}
}

func TestNeighborsCountFormula(t *testing.T) {
	sp := testSpace(t)
	// A full leaf pattern with all three slots set: (c-1)*d for T=1.
	p := Pattern{0, 1, 2}
	count := func(T int) int {
		n := 0
		sp.Neighbors(p, T, func(Pattern) { n++ })
		return n
	}
	if got := count(1); got != 6 {
		t.Fatalf("T=1 neighbors = %d, want 6", got)
	}
	// T=dim covers all sibling leaf patterns except p: 3^3 - 1 = 26.
	if got := count(3); got != 26 {
		t.Fatalf("T=3 neighbors = %d, want 26", got)
	}
	// T larger than the level is clamped.
	if got := count(99); got != 26 {
		t.Fatalf("T=99 neighbors = %d, want 26", got)
	}
	// Neighbors are unique.
	seen := map[uint64]bool{}
	sp.Neighbors(p, 3, func(q Pattern) {
		k := sp.Key(q)
		if seen[k] {
			t.Fatalf("duplicate neighbor %v", q)
		}
		seen[k] = true
	})
}

func TestNeighborsOrdered(t *testing.T) {
	sp := testSpace(t)
	// age is ordered with 3 values; value 1 has two adjacent neighbors,
	// value 0 has one. race is unordered: always c-1 = 2.
	p, _ := sp.Parse("age", "25-45", "race", "Afr-Am")
	n := 0
	sp.NeighborsOrdered(p, func(Pattern) { n++ })
	if n != 4 { // age: {<25, >45}; race: {Cauc, Hisp}
		t.Fatalf("ordered neighbors = %d, want 4", n)
	}
	p2, _ := sp.Parse("age", "<25")
	n = 0
	sp.NeighborsOrdered(p2, func(Pattern) { n++ })
	if n != 1 {
		t.Fatalf("edge bucket neighbors = %d, want 1", n)
	}
}

func TestCountsRatio(t *testing.T) {
	c := Counts{N: 1279, Pos: 882}
	// Example 4: 882/397 = 2.22.
	if got := c.Ratio(); got < 2.21 || got > 2.23 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := (Counts{N: 5, Pos: 5}).Ratio(); got != -1 {
		t.Fatalf("all-positive Ratio = %v, want -1 sentinel", got)
	}
	if got := (Counts{}).Ratio(); got != -1 {
		t.Fatalf("empty Ratio = %v, want -1", got)
	}
}

func TestCountAllMatchesBruteForce(t *testing.T) {
	sp, d := testData(t, 300, 42)
	table := sp.CountAll(d)
	for _, m := range sp.Masks() {
		sp.EnumerateNode(m, func(p Pattern) {
			want := sp.CountPattern(d, p)
			got := table[sp.Key(p)]
			if got != want {
				t.Fatalf("counts for %v: got %+v want %+v", sp.String(p), got, want)
			}
		})
	}
}

func TestCountNodeMatchesCountAll(t *testing.T) {
	sp, d := testData(t, 500, 7)
	all := sp.CountAll(d)
	for _, m := range sp.Masks() {
		node := sp.CountNode(d, m)
		sp.EnumerateNode(m, func(p Pattern) {
			k := sp.Key(p)
			if node[k] != all[k] {
				t.Fatalf("node/all mismatch at %v", sp.String(p))
			}
		})
	}
}

func TestCountAllTotals(t *testing.T) {
	sp, d := testData(t, 200, 9)
	table := sp.CountAll(d)
	root := table[sp.Key(NewPattern(sp.Dim()))]
	if root != Totals(d) {
		t.Fatalf("root counts %+v != totals %+v", root, Totals(d))
	}
	// Children of each node partition the parent's instances: summing a
	// node's leaf counts along one attribute reproduces the parent.
	p, _ := sp.Parse("age", "<25")
	var sum Counts
	for v := 0; v < sp.Cards[1]; v++ {
		q := p.Clone()
		q[1] = int16(v)
		c := table[sp.Key(q)]
		sum.N += c.N
		sum.Pos += c.Pos
	}
	if sum != table[sp.Key(p)] {
		t.Fatalf("children don't sum to parent: %+v vs %+v", sum, table[sp.Key(p)])
	}
}

func TestRowsIn(t *testing.T) {
	sp, d := testData(t, 100, 3)
	p, _ := sp.Parse("race", "Hisp")
	idx := sp.RowsIn(d, p)
	want := sp.CountPattern(d, p)
	if len(idx) != want.N {
		t.Fatalf("RowsIn = %d rows, counts say %d", len(idx), want.N)
	}
	for _, i := range idx {
		if !sp.MatchRow(p, d.Rows[i]) {
			t.Fatalf("row %d does not match", i)
		}
	}
}

// Property: for random data, the optimized neighbor-count identity holds:
// sum(parents) - d*counts(r) equals the direct sum over T=1 neighbors.
func TestParentNeighborIdentity(t *testing.T) {
	sp, d := testData(t, 400, 99)
	table := sp.CountAll(d)
	for _, m := range sp.Masks() {
		if m == 0 {
			continue
		}
		sp.EnumerateNode(m, func(p Pattern) {
			rc := table[sp.Key(p)]
			var viaParents Counts
			nd := 0
			sp.Parents(p, func(q Pattern) {
				c := table[sp.Key(q)]
				viaParents.N += c.N
				viaParents.Pos += c.Pos
				nd++
			})
			viaParents.N -= nd * rc.N
			viaParents.Pos -= nd * rc.Pos
			var direct Counts
			sp.Neighbors(p, 1, func(q Pattern) {
				c := table[sp.Key(q)]
				direct.N += c.N
				direct.Pos += c.Pos
			})
			if viaParents != direct {
				t.Fatalf("identity broken at %v: %+v vs %+v", sp.String(p), viaParents, direct)
			}
		})
	}
}
