package pattern

import (
	"testing"
)

func TestCountAllParallelMatchesSequential(t *testing.T) {
	sp, d := testData(t, 1200, 41)
	seq := sp.CountAll(d)
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		par := sp.CountAllParallel(d, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d entries vs %d", workers, len(par), len(seq))
		}
		for k, c := range seq {
			if par[k] != c {
				t.Fatalf("workers=%d key %d: %+v vs %+v", workers, k, par[k], c)
			}
		}
	}
}

func TestCountAllParallelTinyData(t *testing.T) {
	sp, d := testData(t, 3, 43)
	par := sp.CountAllParallel(d, 8) // more workers than rows
	seq := sp.CountAll(d)
	if len(par) != len(seq) {
		t.Fatalf("entries %d vs %d", len(par), len(seq))
	}
	for k, c := range seq {
		if par[k] != c {
			t.Fatal("mismatch on tiny data")
		}
	}
}

func TestSplitByMask(t *testing.T) {
	sp, d := testData(t, 500, 47)
	table := sp.CountAll(d)
	split := sp.SplitByMask(table)
	total := 0
	for mask, node := range split {
		for k, c := range node {
			p := sp.DecodeKey(k)
			if p.Mask() != mask {
				t.Fatalf("key %d filed under mask %b but has mask %b", k, mask, p.Mask())
			}
			if table[k] != c {
				t.Fatal("split changed counts")
			}
			total++
		}
	}
	if total != len(table) {
		t.Fatalf("split covers %d of %d entries", total, len(table))
	}
}

func BenchmarkCountAllParallel(b *testing.B) {
	sp, d := benchData(b, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.CountAllParallel(d, 4)
	}
}
