package pattern

import (
	"sort"

	"repro/internal/dataset"
)

// This file implements FP-growth (Han, Pei & Yin, "Mining frequent
// patterns without candidate generation", SIGMOD 2000 — the paper's
// reference [14] for frequent-pattern mining) as a second mining
// strategy next to the apriori miner: rows are compressed into a
// frequent-pattern tree and regions are mined recursively from
// conditional pattern bases, with no candidate generation. Each tree
// node carries both the instance count and the positive count so the
// miner emits full region Counts, not just support.

// fpItem encodes one (slot, value) item.
type fpItem int32

func mkItem(slot int, value int16) fpItem { return fpItem(slot)<<5 | fpItem(value) }
func (it fpItem) slot() int               { return int(it >> 5) }
func (it fpItem) value() int16            { return int16(it & 31) }

type fpNode struct {
	item     fpItem
	n, pos   int
	parent   *fpNode
	children map[fpItem]*fpNode
	next     *fpNode // header-table chain
}

type fpTree struct {
	root    *fpNode
	headers map[fpItem]*fpNode
	// order maps item -> global rank (ascending = more frequent); used
	// to sort transaction items consistently.
	order map[fpItem]int
}

func newFPTree(order map[fpItem]int) *fpTree {
	return &fpTree{
		root:    &fpNode{children: map[fpItem]*fpNode{}},
		headers: map[fpItem]*fpNode{},
		order:   order,
	}
}

// insert adds one (already ordered and filtered) transaction with the
// given weight.
func (t *fpTree) insert(items []fpItem, n, pos int) {
	cur := t.root
	for _, it := range items {
		child := cur.children[it]
		if child == nil {
			child = &fpNode{item: it, parent: cur, children: map[fpItem]*fpNode{}}
			cur.children[it] = child
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.n += n
		child.pos += pos
		cur = child
	}
}

// FrequentRegionsFP mines the same result as FrequentRegions with the
// FP-growth algorithm. Output ordering matches FrequentRegions (level,
// then key).
func (sp *Space) FrequentRegionsFP(d *dataset.Dataset, minSize int) []FrequentRegion {
	if minSize < 1 {
		minSize = 1
	}
	dim := sp.Dim()
	// Global singleton counts decide the item order and the frequent
	// singletons.
	type itemCount struct {
		n, pos int
	}
	singles := map[fpItem]*itemCount{}
	for i, row := range d.Rows {
		pos := 0
		if d.Labels[i] == 1 {
			pos = 1
		}
		for s := 0; s < dim; s++ {
			it := mkItem(s, int16(row[sp.AttrIdx[s]]))
			c := singles[it]
			if c == nil {
				c = &itemCount{}
				singles[it] = c
			}
			c.n++
			c.pos += pos
		}
	}
	var frequentItems []fpItem
	for it, c := range singles {
		if c.n >= minSize {
			frequentItems = append(frequentItems, it)
		}
	}
	// Rank by frequency descending, ties by item id for determinism.
	sort.Slice(frequentItems, func(a, b int) bool {
		ca, cb := singles[frequentItems[a]].n, singles[frequentItems[b]].n
		if ca != cb {
			return ca > cb
		}
		return frequentItems[a] < frequentItems[b]
	})
	order := make(map[fpItem]int, len(frequentItems))
	for rank, it := range frequentItems {
		order[it] = rank
	}

	tree := newFPTree(order)
	buf := make([]fpItem, 0, dim)
	for i, row := range d.Rows {
		buf = buf[:0]
		for s := 0; s < dim; s++ {
			it := mkItem(s, int16(row[sp.AttrIdx[s]]))
			if _, ok := order[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(a, b int) bool { return order[buf[a]] < order[buf[b]] })
		pos := 0
		if d.Labels[i] == 1 {
			pos = 1
		}
		tree.insert(buf, 1, pos)
	}

	var out []FrequentRegion
	suffix := make([]fpItem, 0, dim)
	sp.fpGrowth(tree, minSize, suffix, &out)

	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].Pattern.Level(), out[j].Pattern.Level()
		if li != lj {
			return li < lj
		}
		return sp.Key(out[i].Pattern) < sp.Key(out[j].Pattern)
	})
	return out
}

// fpGrowth mines one (conditional) tree: every frequent item extends
// the current suffix into a frequent region, then recurses on the
// item's conditional pattern base.
func (sp *Space) fpGrowth(t *fpTree, minSize int, suffix []fpItem, out *[]FrequentRegion) {
	// Visit header items least-frequent first (standard FP-growth
	// order; any order is correct).
	items := make([]fpItem, 0, len(t.headers))
	for it := range t.headers {
		items = append(items, it)
	}
	sort.Slice(items, func(a, b int) bool { return t.order[items[a]] > t.order[items[b]] })
	for _, it := range items {
		var total Counts
		for node := t.headers[it]; node != nil; node = node.next {
			total.N += node.n
			total.Pos += node.pos
		}
		if total.N < minSize {
			continue
		}
		// Emit suffix ∪ {item}.
		p := NewPattern(sp.Dim())
		p[it.slot()] = it.value()
		for _, s := range suffix {
			p[s.slot()] = s.value()
		}
		*out = append(*out, FrequentRegion{Pattern: p, Counts: total})

		// Conditional pattern base: prefix paths of every node in the
		// chain, weighted by the node's counts.
		condCounts := map[fpItem]*Counts{}
		type path struct {
			items  []fpItem
			n, pos int
		}
		var paths []path
		for node := t.headers[it]; node != nil; node = node.next {
			var items []fpItem
			for anc := node.parent; anc != nil && anc.parent != nil; anc = anc.parent {
				items = append(items, anc.item)
			}
			if len(items) == 0 {
				continue
			}
			paths = append(paths, path{items: items, n: node.n, pos: node.pos})
			for _, pi := range items {
				c := condCounts[pi]
				if c == nil {
					c = &Counts{}
					condCounts[pi] = c
				}
				c.N += node.n
				c.Pos += node.pos
			}
		}
		if len(paths) == 0 {
			continue
		}
		condOrder := map[fpItem]int{}
		for pi, c := range condCounts {
			if c.N >= minSize {
				condOrder[pi] = t.order[pi] // inherit the global rank
			}
		}
		if len(condOrder) == 0 {
			continue
		}
		cond := newFPTree(condOrder)
		for _, pp := range paths {
			kept := pp.items[:0:0]
			for _, pi := range pp.items {
				if _, ok := condOrder[pi]; ok {
					kept = append(kept, pi)
				}
			}
			if len(kept) == 0 {
				continue
			}
			sort.Slice(kept, func(a, b int) bool { return condOrder[kept[a]] < condOrder[kept[b]] })
			cond.insert(kept, pp.n, pp.pos)
		}
		sp.fpGrowth(cond, minSize, append(suffix, it), out)
	}
}
