package pattern

import (
	"context"
	"math/bits"
	"sort"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// This file implements level-wise (apriori-style) frequent-region
// mining: all regions with at least minSize instances, discovered
// bottom-up with the classic anti-monotonicity pruning — a region can
// only reach the support floor if every dominating region does. The
// paper frames IBS identification as "an analogous task to finding
// frequent patterns" (Theorem 1); this miner is the frequent-pattern
// half of that analogy and a sparse alternative to CountAll when the
// lattice is large but few regions are populated.

// FrequentRegion pairs a frequent pattern with its counts.
type FrequentRegion struct {
	Pattern Pattern
	Counts  Counts
}

// FrequentRegions mines every region of at least minSize instances,
// level by level. Results are ordered by level then key. The level-0
// whole-dataset region is excluded (it is trivially frequent).
func (sp *Space) FrequentRegions(d *dataset.Dataset, minSize int) []FrequentRegion {
	return sp.FrequentRegionsCtx(context.Background(), d, minSize)
}

// FrequentRegionsCtx is FrequentRegions under a context carrying
// observability state: the miner records pattern.candidates_generated
// (distinct candidate regions admitted past the anti-monotone check),
// pattern.candidates_pruned (candidates rejected by it), and
// pattern.frequent_regions into the context's metrics registry, and
// wraps the mining in a "pattern.apriori" span. The traversal itself
// is not cancellable — levels are pure in-memory passes.
func (sp *Space) FrequentRegionsCtx(ctx context.Context, d *dataset.Dataset, minSize int) []FrequentRegion {
	if minSize < 1 {
		minSize = 1
	}
	m := obs.MetricsFrom(ctx)
	_, span := obs.StartSpan(ctx, "pattern.apriori")
	span.SetInt("min_size", int64(minSize))
	defer span.End()
	generated, pruned := 0, 0
	dim := sp.Dim()
	var out []FrequentRegion
	defer func() {
		span.SetInt("candidates_generated", int64(generated))
		span.SetInt("candidates_pruned", int64(pruned))
		span.SetInt("frequent", int64(len(out)))
		if m != nil {
			m.Counter("pattern.candidates_generated").Add(int64(generated))
			m.Counter("pattern.candidates_pruned").Add(int64(pruned))
			m.Counter("pattern.frequent_regions").Add(int64(len(out)))
		}
	}()

	// Level 1: count every (slot, value) singleton in one pass.
	counts := make([][]Counts, dim)
	for s := 0; s < dim; s++ {
		counts[s] = make([]Counts, sp.Cards[s])
	}
	for i, row := range d.Rows {
		pos := d.Labels[i] == 1
		for s := 0; s < dim; s++ {
			counts[s][row[sp.AttrIdx[s]]].Add(pos)
		}
	}
	// frequent holds the keys surviving at the previous level.
	frequent := make(map[uint64]Counts)
	for s := 0; s < dim; s++ {
		for v := 0; v < sp.Cards[s]; v++ {
			if counts[s][v].N > 0 {
				generated++
			}
			if counts[s][v].N >= minSize {
				p := NewPattern(dim)
				p[s] = int16(v)
				k := sp.Key(p)
				frequent[k] = counts[s][v]
				out = append(out, FrequentRegion{Pattern: p, Counts: counts[s][v]})
			}
		}
	}

	for level := 2; level <= dim && len(frequent) > 0; level++ {
		// Candidate generation with full anti-monotone pruning: a
		// level-k candidate is kept only if all of its level-(k-1)
		// projections were frequent. Candidates are generated directly
		// from each row's projections, which both bounds the candidate
		// set to populated regions and lets counting share the pass.
		cand := make(map[uint64]Counts)
		masks := levelMasks(dim, level)
		slotsOf := make([][]int, len(masks))
		for i, m := range masks {
			slotsOf[i] = maskSlotList(m, dim)
		}
		for i, row := range d.Rows {
			pos := d.Labels[i] == 1
			for mi := range masks {
				slots := slotsOf[mi]
				var key uint64
				for _, s := range slots {
					key |= uint64(row[sp.AttrIdx[s]]+1) << uint(5*s)
				}
				c, seen := cand[key]
				if !seen {
					// First sighting: admit only if every (k-1)-subset
					// is frequent.
					ok := true
					for _, s := range slots {
						sub := key &^ (uint64(31) << uint(5*s))
						if _, f := frequent[sub]; !f {
							ok = false
							break
						}
					}
					if !ok {
						// Record a tombstone so the subset check runs
						// once per candidate, not once per row.
						cand[key] = Counts{N: -1}
						pruned++
						continue
					}
					generated++
				} else if c.N < 0 {
					continue
				}
				c.Add(pos)
				cand[key] = c
			}
		}
		frequent = make(map[uint64]Counts)
		for k, c := range cand {
			if c.N >= minSize {
				frequent[k] = c
			}
		}
		keys := make([]uint64, 0, len(frequent))
		for k := range frequent {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			out = append(out, FrequentRegion{Pattern: sp.DecodeKey(k), Counts: frequent[k]})
		}
	}
	return out
}

// levelMasks returns all dim-bit masks with exactly level bits set,
// ascending.
func levelMasks(dim, level int) []uint32 {
	var out []uint32
	for m := uint32(0); m < 1<<uint(dim); m++ {
		if bits.OnesCount32(m) == level {
			out = append(out, m)
		}
	}
	return out
}

func maskSlotList(mask uint32, dim int) []int {
	slots := make([]int, 0, dim)
	for i := 0; i < dim; i++ {
		if mask&(1<<uint(i)) != 0 {
			slots = append(slots, i)
		}
	}
	return slots
}
