package pattern

import (
	"math"
	"testing"
)

func TestDistanceBasics(t *testing.T) {
	sp := testSpace(t) // age (ordered, 3), priors (ordered, 3), race (unordered, 3)
	p, _ := sp.Parse("age", "<25", "race", "Cauc")
	q, _ := sp.Parse("age", ">45", "race", "Cauc")
	// age codes 0 and 2, ordered: distance 2.
	if got := sp.Distance(p, q); got != 2 {
		t.Fatalf("Distance = %v, want 2", got)
	}
	r, _ := sp.Parse("age", "<25", "race", "Hisp")
	// race unordered: unit distance.
	if got := sp.Distance(p, r); got != 1 {
		t.Fatalf("Distance = %v, want 1", got)
	}
	s, _ := sp.Parse("age", ">45", "race", "Hisp")
	// sqrt(2² + 1²).
	if got := sp.Distance(p, s); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("Distance = %v, want sqrt(5)", got)
	}
	if got := sp.Distance(p, p); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestDistanceIncomparableMasks(t *testing.T) {
	sp := testSpace(t)
	p, _ := sp.Parse("age", "<25")
	q, _ := sp.Parse("priors", "0")
	if got := sp.Distance(p, q); !math.IsNaN(got) {
		t.Fatalf("different-dimension regions must be incomparable, got %v", got)
	}
}

func TestDistanceMetricLaws(t *testing.T) {
	sp := testSpace(t)
	// Symmetry and triangle inequality over all sibling pairs of one
	// node.
	var ps []Pattern
	sp.EnumerateNode(0b101, func(p Pattern) { ps = append(ps, p.Clone()) })
	for _, a := range ps {
		for _, b := range ps {
			dab := sp.Distance(a, b)
			if math.Abs(dab-sp.Distance(b, a)) > 1e-12 {
				t.Fatal("distance not symmetric")
			}
			if a.Equal(b) != (dab == 0) {
				t.Fatal("identity of indiscernibles violated")
			}
			for _, c := range ps {
				if dab > sp.Distance(a, c)+sp.Distance(c, b)+1e-12 {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

func TestNeighborsEuclideanMatchesUnitNeighbors(t *testing.T) {
	// With no ordered attributes, the Euclidean radius-1 ball equals
	// Neighbors(p, 1), and radius sqrt(dim) covers every sibling.
	s := testSchema()
	for i := range s.Attrs {
		s.Attrs[i].Ordered = false
	}
	sp, err := NewSpace(s)
	if err != nil {
		t.Fatal(err)
	}
	p := Pattern{0, 1, 2}
	collect := func(f func(func(Pattern))) map[uint64]bool {
		out := map[uint64]bool{}
		f(func(q Pattern) {
			if out[sp.Key(q)] {
				t.Fatalf("duplicate neighbor %v", q)
			}
			out[sp.Key(q)] = true
		})
		return out
	}
	ball1 := collect(func(f func(Pattern)) { sp.NeighborsEuclidean(p, 1, f) })
	unit1 := collect(func(f func(Pattern)) { sp.Neighbors(p, 1, f) })
	if len(ball1) != len(unit1) {
		t.Fatalf("radius-1 ball %d != T=1 neighbors %d", len(ball1), len(unit1))
	}
	for k := range unit1 {
		if !ball1[k] {
			t.Fatal("ball misses a unit neighbor")
		}
	}
	all := collect(func(f func(Pattern)) { sp.NeighborsEuclidean(p, math.Sqrt(3), f) })
	if len(all) != 26 { // 3^3 - 1 siblings
		t.Fatalf("full-radius ball = %d, want 26", len(all))
	}
}

func TestNeighborsEuclideanOrderedRefinement(t *testing.T) {
	sp := testSpace(t)
	// (age=25-45) with radius 1: ordered age allows both adjacent
	// buckets; radius 1 on (age=<25) allows only one.
	mid, _ := sp.Parse("age", "25-45")
	n := 0
	sp.NeighborsEuclidean(mid, 1, func(Pattern) { n++ })
	if n != 2 {
		t.Fatalf("middle bucket radius-1 neighbors = %d, want 2", n)
	}
	edge, _ := sp.Parse("age", "<25")
	n = 0
	sp.NeighborsEuclidean(edge, 1, func(Pattern) { n++ })
	if n != 1 {
		t.Fatalf("edge bucket radius-1 neighbors = %d, want 1", n)
	}
	// Radius 2 from the edge reaches the far bucket too.
	n = 0
	sp.NeighborsEuclidean(edge, 2, func(Pattern) { n++ })
	if n != 2 {
		t.Fatalf("edge bucket radius-2 neighbors = %d, want 2", n)
	}
}

func TestNeighborsEuclideanEquivalentToOrderedT1(t *testing.T) {
	sp := testSpace(t)
	p, _ := sp.Parse("age", "25-45", "race", "Afr-Am")
	a := map[uint64]bool{}
	sp.NeighborsOrdered(p, func(q Pattern) { a[sp.Key(q)] = true })
	b := map[uint64]bool{}
	sp.NeighborsEuclidean(p, 1, func(q Pattern) { b[sp.Key(q)] = true })
	if len(a) != len(b) {
		t.Fatalf("ordered T=1 (%d) != Euclidean radius 1 (%d)", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatal("sets differ")
		}
	}
}

func TestNeighborsEuclideanAllWithinRadius(t *testing.T) {
	sp := testSpace(t)
	p := Pattern{1, 2, 0}
	for _, T := range []float64{0.5, 1, 1.5, 2, 3} {
		sp.NeighborsEuclidean(p, T, func(q Pattern) {
			if d := sp.Distance(p, q); d > T+1e-9 || d == 0 {
				t.Fatalf("radius %v emitted %v at distance %v", T, q, d)
			}
		})
		// Completeness: brute-force check against full enumeration.
		want := 0
		sp.EnumerateNode(p.Mask(), func(q Pattern) {
			if d := sp.Distance(p, q); d > 0 && d <= T+1e-9 {
				want++
			}
		})
		got := 0
		sp.NeighborsEuclidean(p, T, func(Pattern) { got++ })
		if got != want {
			t.Fatalf("radius %v: got %d neighbors, brute force says %d", T, got, want)
		}
	}
}

func TestNeighborsEuclideanZeroRadius(t *testing.T) {
	sp := testSpace(t)
	p := Pattern{0, 0, 0}
	sp.NeighborsEuclidean(p, 0, func(Pattern) {
		t.Fatal("zero radius must emit nothing")
	})
}
