package pattern

import "testing"

// FuzzKeyRoundTrip asserts Key/DecodeKey stay inverse for any slot
// assignment the encoding admits.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add(int16(-1), int16(0), int16(2))
	f.Add(int16(2), int16(2), int16(2))
	f.Fuzz(func(t *testing.T, a, b, c int16) {
		sp, err := NewSpace(testSchema())
		if err != nil {
			t.Fatal(err)
		}
		clamp := func(v int16, card int) int16 {
			if v < 0 {
				return Wildcard
			}
			return v % int16(card)
		}
		p := Pattern{clamp(a, sp.Cards[0]), clamp(b, sp.Cards[1]), clamp(c, sp.Cards[2])}
		if got := sp.DecodeKey(sp.Key(p)); !got.Equal(p) {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	})
}

// FuzzDominanceConsistency asserts that dominance implies containment:
// whenever general dominates specific, every row matching specific also
// matches general.
func FuzzDominanceConsistency(f *testing.F) {
	f.Add(int16(0), int16(-1), int16(1), int16(0), int16(2), int16(1), int32(0), int32(2), int32(1))
	f.Fuzz(func(t *testing.T, g0, g1, g2, s0, s1, s2 int16, r0, r1, r2 int32) {
		sp, err := NewSpace(testSchema())
		if err != nil {
			t.Fatal(err)
		}
		clampP := func(v int16, card int) int16 {
			if v < 0 {
				return Wildcard
			}
			return v % int16(card)
		}
		clampR := func(v int32, card int) int32 {
			if v < 0 {
				v = -v
			}
			return v % int32(card)
		}
		g := Pattern{clampP(g0, sp.Cards[0]), clampP(g1, sp.Cards[1]), clampP(g2, sp.Cards[2])}
		s := Pattern{clampP(s0, sp.Cards[0]), clampP(s1, sp.Cards[1]), clampP(s2, sp.Cards[2])}
		// Build a full schema row (protected slots + the unprotected
		// charge attribute).
		row := []int32{
			clampR(r0, sp.Cards[0]), clampR(r1, sp.Cards[1]), clampR(r2, sp.Cards[2]), 0,
		}
		if Dominates(g, s) && sp.MatchRow(s, row) && !sp.MatchRow(g, row) {
			t.Fatalf("dominance/containment broken: g=%v s=%v row=%v", g, s, row)
		}
	})
}
