package pattern

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestFPGrowthMatchesApriori(t *testing.T) {
	for _, minSize := range []int{1, 5, 30, 120} {
		sp, d := testData(t, 700, 51)
		apriori := sp.FrequentRegions(d, minSize)
		fp := sp.FrequentRegionsFP(d, minSize)
		if len(fp) != len(apriori) {
			t.Fatalf("minSize=%d: fp-growth %d regions, apriori %d", minSize, len(fp), len(apriori))
		}
		for i := range apriori {
			if !fp[i].Pattern.Equal(apriori[i].Pattern) {
				t.Fatalf("minSize=%d region %d: %s vs %s", minSize, i,
					sp.String(fp[i].Pattern), sp.String(apriori[i].Pattern))
			}
			if fp[i].Counts != apriori[i].Counts {
				t.Fatalf("minSize=%d %s: fp %+v apriori %+v", minSize,
					sp.String(fp[i].Pattern), fp[i].Counts, apriori[i].Counts)
			}
		}
	}
}

func TestFPGrowthSkewedData(t *testing.T) {
	// Heavily repeated transactions are FP-growth's best case: the tree
	// compresses to a few paths. Correctness must hold regardless.
	s := testSchema()
	d := dataset.New(s)
	r := stats.NewRNG(53)
	for i := 0; i < 900; i++ {
		row := []int32{0, 0, 0, 0}
		if r.Intn(10) == 0 {
			row = []int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(2))}
		}
		d.Append(row, int8(r.Intn(2)))
	}
	sp, err := NewSpace(s)
	if err != nil {
		t.Fatal(err)
	}
	a := sp.FrequentRegions(d, 20)
	b := sp.FrequentRegionsFP(d, 20)
	if len(a) != len(b) {
		t.Fatalf("fp-growth %d vs apriori %d", len(b), len(a))
	}
	for i := range a {
		if !a[i].Pattern.Equal(b[i].Pattern) || a[i].Counts != b[i].Counts {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestFPGrowthHighFloor(t *testing.T) {
	sp, d := testData(t, 80, 57)
	if got := sp.FrequentRegionsFP(d, 10000); len(got) != 0 {
		t.Fatalf("mined %d regions above the floor", len(got))
	}
}

func TestFPItemEncoding(t *testing.T) {
	for slot := 0; slot < MaxDim; slot++ {
		for v := int16(0); v < 30; v++ {
			it := mkItem(slot, v)
			if it.slot() != slot || it.value() != v {
				t.Fatalf("item round trip (%d, %d) -> (%d, %d)", slot, v, it.slot(), it.value())
			}
		}
	}
}

func BenchmarkFrequentRegionsFP(b *testing.B) {
	sp, d := benchData(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.FrequentRegionsFP(d, 30)
	}
}
