// Package pattern implements the intersectional region machinery of the
// paper: patterns over the protected attribute space X (conjunctions of
// attribute = value with wildcards), the dominance relation (Def. 2),
// the region hierarchy of Fig. 1, and fast counting of positive/negative
// instances for every region.
//
// A Pattern is a fixed-width vector with one slot per protected
// attribute; slot value -1 is the non-deterministic element "a = X".
// Patterns are interned into compact uint64 keys so the count tables of
// the exponentially large lattice stay cheap to index.
package pattern

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/dataset"
)

// MaxDim is the largest supported number of protected attributes. The
// key encoding packs 5 bits per attribute slot into a uint64, which
// caps the dimensionality at 12 and attribute cardinalities at 30 —
// comfortably above the paper's maximum of 8 attributes.
const MaxDim = 12

// maxCard is the largest supported attribute cardinality (5-bit slots,
// with 0 reserved for the wildcard).
const maxCard = 30

// Space describes the intersectional space of the protected attributes
// of a schema: which schema columns participate, their cardinalities,
// and their names (for printing).
type Space struct {
	Schema  *dataset.Schema
	AttrIdx []int // schema attribute indices, in schema order
	Cards   []int
	Names   []string
	Ordered []bool
}

// NewSpace builds the Space from the schema's protected attributes.
func NewSpace(s *dataset.Schema) (*Space, error) {
	sp := &Space{Schema: s}
	for i := range s.Attrs {
		if !s.Attrs[i].Protected {
			continue
		}
		if c := s.Attrs[i].Cardinality(); c > maxCard {
			return nil, fmt.Errorf("pattern: attribute %s cardinality %d exceeds %d",
				s.Attrs[i].Name, c, maxCard)
		}
		sp.AttrIdx = append(sp.AttrIdx, i)
		sp.Cards = append(sp.Cards, s.Attrs[i].Cardinality())
		sp.Names = append(sp.Names, s.Attrs[i].Name)
		sp.Ordered = append(sp.Ordered, s.Attrs[i].Ordered)
	}
	if len(sp.AttrIdx) == 0 {
		return nil, fmt.Errorf("pattern: schema has no protected attributes")
	}
	if len(sp.AttrIdx) > MaxDim {
		return nil, fmt.Errorf("pattern: %d protected attributes exceed MaxDim %d",
			len(sp.AttrIdx), MaxDim)
	}
	return sp, nil
}

// Dim returns |X|, the number of protected attributes.
func (sp *Space) Dim() int { return len(sp.AttrIdx) }

// NumRegions returns the total number of regions in the hierarchy,
// Π (c_i + 1), including the level-0 whole-dataset region.
func (sp *Space) NumRegions() int {
	n := 1
	for _, c := range sp.Cards {
		n *= c + 1
	}
	return n
}

// Pattern is a region descriptor: one slot per protected attribute,
// holding a value code or -1 for the wildcard.
type Pattern []int16

// Wildcard is the non-deterministic slot value ("a = X").
const Wildcard int16 = -1

// NewPattern returns the all-wildcard pattern of dimension dim (the
// level-0 region: the entire dataset).
func NewPattern(dim int) Pattern {
	p := make(Pattern, dim)
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// Clone copies the pattern.
func (p Pattern) Clone() Pattern { return append(Pattern(nil), p...) }

// Level returns d, the number of deterministic elements.
func (p Pattern) Level() int {
	var d int
	for _, v := range p {
		if v != Wildcard {
			d++
		}
	}
	return d
}

// Mask returns the bitmask of deterministic slots.
func (p Pattern) Mask() uint32 {
	var m uint32
	for i, v := range p {
		if v != Wildcard {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Equal reports slot-wise equality.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether general dominates specific (Def. 2):
// general is obtained from specific by replacing deterministic elements
// with wildcards while keeping the rest unchanged. Every pattern
// dominates itself.
func Dominates(general, specific Pattern) bool {
	if len(general) != len(specific) {
		return false
	}
	for i := range general {
		if general[i] != Wildcard && general[i] != specific[i] {
			return false
		}
	}
	return true
}

// MatchRow reports whether a dataset row falls in the region described
// by p.
func (sp *Space) MatchRow(p Pattern, row []int32) bool {
	for i, v := range p {
		if v != Wildcard && row[sp.AttrIdx[i]] != int32(v) {
			return false
		}
	}
	return true
}

// Key packs p into a uint64: 5 bits per slot, wildcard = 0, value v
// stored as v+1.
func (sp *Space) Key(p Pattern) uint64 {
	var k uint64
	for i, v := range p {
		k |= uint64(v+1) << uint(5*i)
	}
	return k
}

// DecodeKey inverts Key.
func (sp *Space) DecodeKey(k uint64) Pattern {
	p := make(Pattern, sp.Dim())
	for i := range p {
		p[i] = int16((k>>uint(5*i))&31) - 1
	}
	return p
}

// String renders the pattern with attribute names, omitting wildcard
// slots as the paper does ("(age=25-45, priors=>3)"). The all-wildcard
// pattern renders as "(*)".
func (sp *Space) String(p Pattern) string {
	var parts []string
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", sp.Names[i],
			sp.Schema.Attrs[sp.AttrIdx[i]].Values[v]))
	}
	if len(parts) == 0 {
		return "(*)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Parse builds a pattern from name=value pairs, e.g.
// Parse("age", "25-45", "priors", ">3"). Unknown names or values return
// an error.
func (sp *Space) Parse(pairs ...string) (Pattern, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("pattern: Parse needs name/value pairs")
	}
	p := NewPattern(sp.Dim())
	for i := 0; i < len(pairs); i += 2 {
		slot := -1
		for j, n := range sp.Names {
			if n == pairs[i] {
				slot = j
			}
		}
		if slot < 0 {
			return nil, fmt.Errorf("pattern: %q is not a protected attribute", pairs[i])
		}
		v := sp.Schema.Attrs[sp.AttrIdx[slot]].ValueIndex(pairs[i+1])
		if v < 0 {
			return nil, fmt.Errorf("pattern: %q is not a value of %s", pairs[i+1], pairs[i])
		}
		p[slot] = int16(v)
	}
	return p, nil
}

// Masks returns all 2^dim deterministic-slot masks, i.e. one per node
// in the hierarchy of Fig. 1 (mask 0 is the level-0 whole-dataset node).
// Masks are ordered by level, then numerically, matching a level-wise
// traversal.
func (sp *Space) Masks() []uint32 {
	n := 1 << uint(sp.Dim())
	masks := make([]uint32, 0, n)
	for m := 0; m < n; m++ {
		masks = append(masks, uint32(m))
	}
	// Stable level-wise order: sort by popcount, ties by value.
	byLevel := make([][]uint32, sp.Dim()+1)
	for _, m := range masks {
		l := bits.OnesCount32(m)
		byLevel[l] = append(byLevel[l], m)
	}
	out := masks[:0]
	for _, ms := range byLevel {
		out = append(out, ms...)
	}
	return out
}

// EnumerateNode calls f for every fully assigned pattern in the node
// identified by mask (all value combinations over the mask's slots).
func (sp *Space) EnumerateNode(mask uint32, f func(Pattern)) {
	sp.EnumerateNodeUntil(mask, func(p Pattern) bool {
		f(p)
		return true
	})
}

// EnumerateNodeUntil is EnumerateNode with early termination: it stops
// the enumeration as soon as f returns false and reports whether the
// node was enumerated to completion. Cancellable traversals use it to
// abandon a node mid-scan.
func (sp *Space) EnumerateNodeUntil(mask uint32, f func(Pattern) bool) bool {
	slots := make([]int, 0, sp.Dim())
	for i := 0; i < sp.Dim(); i++ {
		if mask&(1<<uint(i)) != 0 {
			slots = append(slots, i)
		}
	}
	p := NewPattern(sp.Dim())
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(slots) {
			return f(p)
		}
		s := slots[k]
		for v := 0; v < sp.Cards[s]; v++ {
			p[s] = int16(v)
			if !rec(k + 1) {
				return false
			}
		}
		p[s] = Wildcard
		return true
	}
	return rec(0)
}

// Parents calls f for each pattern obtained by removing one
// deterministic element of p — the set R_d of dominating regions one
// level up used by the optimized algorithm. f receives a reused buffer;
// it must Clone if it retains the pattern.
func (sp *Space) Parents(p Pattern, f func(Pattern)) {
	q := p.Clone()
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		q[i] = Wildcard
		f(q)
		q[i] = v
	}
}

// Neighbors calls f for every region in the neighboring region of p
// (Def. 4) in the basic unit-distance setting: regions with the same
// deterministic slots whose values differ from p in at least 1 and at
// most T slots. f receives a reused buffer.
func (sp *Space) Neighbors(p Pattern, T int, f func(Pattern)) {
	slots := make([]int, 0, sp.Dim())
	for i, v := range p {
		if v != Wildcard {
			slots = append(slots, i)
		}
	}
	if T > len(slots) {
		T = len(slots)
	}
	q := p.Clone()
	// Choose 1..T slots to change in increasing slot order, each taking
	// a value different from p's, so every neighbor is emitted exactly
	// once.
	var walk func(start, remaining int, changed bool)
	walk = func(start, remaining int, changed bool) {
		if changed {
			f(q)
		}
		if remaining == 0 {
			return
		}
		for k := start; k < len(slots); k++ {
			s := slots[k]
			orig := q[s]
			for v := 0; v < sp.Cards[s]; v++ {
				if int16(v) == p[s] {
					continue
				}
				q[s] = int16(v)
				walk(k+1, remaining-1, true)
			}
			q[s] = orig
		}
	}
	walk(0, T, false)
}

// NeighborsOrdered is the refined-distance variant of Neighbors for
// T=1: for ordered attributes only adjacent value codes (distance 1 on
// the natural numeric ordering) are neighbors; unordered attributes
// keep the unit-distance semantics. This implements the refinement
// discussed under Def. 4.
func (sp *Space) NeighborsOrdered(p Pattern, f func(Pattern)) {
	q := p.Clone()
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		if sp.Ordered[i] {
			for _, w := range []int16{v - 1, v + 1} {
				if w >= 0 && int(w) < sp.Cards[i] {
					q[i] = w
					f(q)
				}
			}
		} else {
			for w := 0; w < sp.Cards[i]; w++ {
				if int16(w) == v {
					continue
				}
				q[i] = int16(w)
				f(q)
			}
		}
		q[i] = v
	}
}
