package pattern

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestFrequentRegionsMatchesCountAll(t *testing.T) {
	for _, minSize := range []int{1, 5, 30, 100} {
		sp, d := testData(t, 600, 21)
		got := sp.FrequentRegions(d, minSize)
		table := sp.CountAll(d)
		want := map[uint64]Counts{}
		for k, c := range table {
			if c.N >= minSize && sp.DecodeKey(k).Level() > 0 {
				want[k] = c
			}
		}
		if len(got) != len(want) {
			t.Fatalf("minSize=%d: mined %d regions, want %d", minSize, len(got), len(want))
		}
		for _, fr := range got {
			k := sp.Key(fr.Pattern)
			if want[k] != fr.Counts {
				t.Fatalf("minSize=%d: %s counts %+v, want %+v",
					minSize, sp.String(fr.Pattern), fr.Counts, want[k])
			}
		}
	}
}

func TestFrequentRegionsAntiMonotone(t *testing.T) {
	sp, d := testData(t, 800, 23)
	mined := sp.FrequentRegions(d, 40)
	inSet := map[uint64]bool{}
	for _, fr := range mined {
		inSet[sp.Key(fr.Pattern)] = true
	}
	// Every parent of a frequent region must itself be frequent.
	for _, fr := range mined {
		if fr.Pattern.Level() < 2 {
			continue
		}
		sp.Parents(fr.Pattern, func(q Pattern) {
			if !inSet[sp.Key(q)] {
				t.Fatalf("parent %s of frequent %s is not frequent",
					sp.String(q), sp.String(fr.Pattern))
			}
		})
	}
}

func TestFrequentRegionsOrderingAndLevels(t *testing.T) {
	sp, d := testData(t, 500, 27)
	mined := sp.FrequentRegions(d, 10)
	for i := 1; i < len(mined); i++ {
		li, lj := mined[i-1].Pattern.Level(), mined[i].Pattern.Level()
		if lj < li {
			t.Fatal("regions not in level order")
		}
		if lj == li && sp.Key(mined[i].Pattern) <= sp.Key(mined[i-1].Pattern) {
			t.Fatal("regions not key-ordered within a level")
		}
	}
	for _, fr := range mined {
		if fr.Pattern.Level() == 0 {
			t.Fatal("the whole-dataset region must be excluded")
		}
	}
}

func TestFrequentRegionsHighFloor(t *testing.T) {
	sp, d := testData(t, 100, 29)
	if got := sp.FrequentRegions(d, 1000); len(got) != 0 {
		t.Fatalf("floor above dataset size mined %d regions", len(got))
	}
	// minSize below 1 clamps to 1: every populated region is frequent.
	all := sp.FrequentRegions(d, 0)
	if len(all) == 0 {
		t.Fatal("clamped floor mined nothing")
	}
}

func TestLevelMasks(t *testing.T) {
	ms := levelMasks(4, 2)
	if len(ms) != 6 { // C(4,2)
		t.Fatalf("levelMasks(4,2) = %d masks", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i] <= ms[i-1] {
			t.Fatal("masks not ascending")
		}
	}
}

func benchData(b *testing.B, n int) (*Space, *dataset.Dataset) {
	b.Helper()
	s := testSchema()
	d := dataset.New(s)
	r := stats.NewRNG(1)
	for i := 0; i < n; i++ {
		d.Append([]int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(2))},
			int8(r.Intn(2)))
	}
	sp, err := NewSpace(s)
	if err != nil {
		b.Fatal(err)
	}
	return sp, d
}

func BenchmarkFrequentRegions(b *testing.B) {
	sp, d := benchData(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.FrequentRegions(d, 30)
	}
}

func BenchmarkCountAll(b *testing.B) {
	sp, d := benchData(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.CountAll(d)
	}
}
