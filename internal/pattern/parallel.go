package pattern

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// CountAllParallel is CountAll sharded across workers: each worker
// counts a contiguous slice of rows into a private table and the shards
// are merged. Workers <= 0 selects GOMAXPROCS. The result is identical
// to CountAll; the scalability experiments use it to preload the
// hierarchy for large |X|.
func (sp *Space) CountAllParallel(d *dataset.Dataset, workers int) Table {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := d.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return sp.CountAll(d)
	}
	shards := make([]Table, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			shards[w] = sp.countRange(d, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := shards[0]
	for _, shard := range shards[1:] {
		for k, c := range shard {
			agg := out[k]
			agg.N += c.N
			agg.Pos += c.Pos
			out[k] = agg
		}
	}
	return out
}

// countRange is CountAll restricted to rows [lo, hi).
func (sp *Space) countRange(d *dataset.Dataset, lo, hi int) Table {
	dim := sp.Dim()
	nMasks := 1 << uint(dim)
	t := make(Table, sp.NumRegions()/2)
	contrib := make([]uint64, dim)
	for i := lo; i < hi; i++ {
		row := d.Rows[i]
		for s := 0; s < dim; s++ {
			contrib[s] = uint64(row[sp.AttrIdx[s]]+1) << uint(5*s)
		}
		pos := d.Labels[i] == 1
		for m := 0; m < nMasks; m++ {
			var k uint64
			mm := m
			for mm != 0 {
				s := bits.TrailingZeros(uint(mm))
				k |= contrib[s]
				mm &^= 1 << uint(s)
			}
			c := t[k]
			c.Add(pos)
			t[k] = c
		}
	}
	return t
}

// SplitByMask partitions a full-lattice table into per-node tables
// keyed by deterministic-slot mask, as the hierarchy caches them.
func (sp *Space) SplitByMask(table Table) map[uint32]Table {
	out := make(map[uint32]Table, 1<<uint(sp.Dim()))
	for k, c := range table {
		var mask uint32
		for s := 0; s < sp.Dim(); s++ {
			if (k>>uint(5*s))&31 != 0 {
				mask |= 1 << uint(s)
			}
		}
		t := out[mask]
		if t == nil {
			t = make(Table)
			out[mask] = t
		}
		t[k] = c
	}
	return out
}
