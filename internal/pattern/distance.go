package pattern

import "math"

// This file implements Def. 4's distance metric in full generality: the
// Euclidean distance between two regions with identical deterministic
// attributes is the l2 norm of their per-attribute value distances.
// In the basic setting every pair of distinct values is one unit apart;
// the refinement for attributes with a meaningful order (age buckets,
// income buckets) uses the natural numeric spacing |i − j| of the value
// codes. Neighbors(p, T) is the special case of unit distances with an
// integer radius; NeighborsOrdered(p) is the radius-1 ball under the
// refined metric.

// Distance returns the Euclidean distance between two regions under
// the refined metric, or NaN if the regions do not share the same
// deterministic attributes (the paper deems such regions incomparable).
func (sp *Space) Distance(p, q Pattern) float64 {
	if p.Mask() != q.Mask() {
		return math.NaN()
	}
	var sum float64
	for i := range p {
		if p[i] == Wildcard {
			continue
		}
		d := sp.valueDistance(i, p[i], q[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

// valueDistance is the per-attribute distance: natural spacing for
// ordered attributes, unit distance otherwise.
func (sp *Space) valueDistance(slot int, a, b int16) float64 {
	if a == b {
		return 0
	}
	if sp.Ordered[slot] {
		return math.Abs(float64(a) - float64(b))
	}
	return 1
}

// NeighborsEuclidean calls f for every region within Euclidean
// distance T of p (excluding p itself) under the refined metric. The
// enumeration prunes by accumulated squared distance, so the cost is
// proportional to the ball volume rather than the node size. f receives
// a reused buffer; Clone to retain.
func (sp *Space) NeighborsEuclidean(p Pattern, T float64, f func(Pattern)) {
	if T <= 0 {
		return
	}
	slots := make([]int, 0, sp.Dim())
	for i, v := range p {
		if v != Wildcard {
			slots = append(slots, i)
		}
	}
	t2 := T * T
	q := p.Clone()
	var walk func(k int, used float64, changed bool)
	walk = func(k int, used float64, changed bool) {
		if k == len(slots) {
			if changed {
				f(q)
			}
			return
		}
		s := slots[k]
		for v := 0; v < sp.Cards[s]; v++ {
			d := sp.valueDistance(s, p[s], int16(v))
			d2 := d * d
			if used+d2 > t2+1e-12 {
				continue
			}
			q[s] = int16(v)
			walk(k+1, used+d2, changed || int16(v) != p[s])
		}
		q[s] = p[s]
	}
	walk(0, 0, false)
}
