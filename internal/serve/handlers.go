package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// routes builds the server's mux. All routing uses the standard
// library's method-and-wildcard patterns; there is no framework. Every
// route is registered through obs.InstrumentHandler, so each one gets
// a latency histogram, an in-flight gauge, and a status-class counter
// labeled by the pattern string (bounded cardinality: patterns, not
// URLs).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, obs.InstrumentHandler(s.metrics, pattern, h))
	}
	handle("POST /datasets", http.HandlerFunc(s.handleDatasetUpload))
	handle("GET /datasets", http.HandlerFunc(s.handleDatasetList))
	handle("GET /datasets/{id}", http.HandlerFunc(s.handleDatasetGet))
	handle("DELETE /datasets/{id}", http.HandlerFunc(s.handleDatasetDelete))
	handle("POST /jobs", http.HandlerFunc(s.handleJobSubmit))
	handle("GET /jobs", http.HandlerFunc(s.handleJobList))
	handle("GET /jobs/{id}", http.HandlerFunc(s.handleJobGet))
	handle("DELETE /jobs/{id}", http.HandlerFunc(s.handleJobCancel))
	handle("GET /jobs/{id}/result", http.HandlerFunc(s.handleJobResult))
	handle("GET /jobs/{id}/trace", http.HandlerFunc(s.handleJobTrace))
	handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	handle("GET /livez", http.HandlerFunc(s.handleLivez))
	handle("GET /readyz", http.HandlerFunc(s.handleReadyz))
	handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	handle("GET /metrics/fleet", http.HandlerFunc(s.handleMetricsFleet))
	return mux
}

// infraPath reports whether the path is a probe/ops endpoint that must
// answer locally on every node: never gated on readiness, never
// forwarded to the leader.
func infraPath(p string) bool {
	return p == "/livez" || p == "/readyz" || p == "/healthz" || p == "/metrics"
}

// forwardedHeader marks a request a follower forwarded to its leader;
// a forwarded request is never forwarded again (loop prevention).
const forwardedHeader = "X-Remedy-Forwarded"

// Handler returns the server's HTTP handler with request accounting,
// the readiness gate, and — in a cluster — follower-to-leader
// forwarding wrapped around the routes.
func (s *Server) Handler() http.Handler {
	mux := s.routes()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //lint:allow determinism request latency metric; the serving layer is wall-clock by nature
		s.metrics.Counter("serve.http_requests").Inc()
		defer func() {
			s.metrics.Histogram("serve.http_duration_ms", obs.DefaultDurationBucketsMS).
				Observe(float64(time.Since(start).Milliseconds()))
		}()
		// Continue an incoming cross-node trace: the headers carry the
		// trace identity, the forwarding header names the relaying hop.
		if tc, ok := obs.ExtractHTTP(r.Header); ok {
			tc.Via = r.Header.Get(forwardedHeader)
			r = r.WithContext(obs.WithTraceContext(r.Context(), tc))
		}
		if !infraPath(r.URL.Path) {
			// Forwarding comes before the readiness gate: a standby
			// follower is not ready to serve from its own engine, but the
			// fleet is — any node can take traffic as long as it knows the
			// leader.
			if s.forwardToLeader(w, r) {
				return
			}
			if ready, reason := s.Readiness(); !ready {
				// Not-ready wears the same clothes as backpressure: 503 with
				// a Retry-After, so the retrying Client backs off and tries
				// again instead of failing the request.
				s.metrics.Counter("serve.not_ready_rejected").Inc()
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "serve: not ready: " + reason})
				return
			}
		}
		mux.ServeHTTP(w, r)
	})
}

// forwardToLeader proxies API traffic hitting a follower to the
// current leader, so clients can point at any node. It reports whether
// it handled the request.
func (s *Server) forwardToLeader(w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil {
		return false
	}
	role, _, _ := s.cluster.Role()
	if role == "leader" {
		return false
	}
	if r.Header.Get(forwardedHeader) != "" {
		// A forwarded request landing on a non-leader means the fleet's
		// view of the leader is stale mid-handoff; bounce, don't loop.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "serve: not the leader"})
		return true
	}
	leaderURL := s.cluster.LeaderURL()
	if leaderURL == "" {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "serve: leader unknown"})
		return true
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, leaderURL+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeError(w, err)
		return true
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, s.cfg.NodeID)
	if _, ok := obs.ExtractHTTP(r.Header); !ok {
		// This hop starts the trace: mint a deterministic ID from the
		// node's forward sequence (no entropy, no clock) so the
		// submission correlates on the leader and the forwarding node is
		// visible in the stitched timeline instead of being a silent hop.
		obs.InjectHTTP(req.Header, obs.TraceContext{
			TraceID: fmt.Sprintf("%s/fwd-%06d", s.cfg.NodeID, s.fwdSeq.Add(1)),
		})
	}
	hc := s.forward
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: "serve: forward to leader: " + err.Error()})
		return true
	}
	defer resp.Body.Close() //lint:allow errdiscard read-only close carries no information
	s.metrics.Counter("serve.requests_forwarded").Inc()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body) //lint:allow errdiscard best-effort relay to a disconnecting client
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //lint:allow errdiscard best-effort write to a disconnecting client
}

// writeError maps the library's sentinel errors onto HTTP statuses:
// missing resources are 404, a full queue is 429 (backpressure, with a
// Retry-After hint for well-behaved clients), an over-budget upload is
// 413, a pinned-full registry is 507, shutdown is 503, conflicts are
// 409, a result lost to a restart is 410, and anything else from
// request handling is a 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrDatasetNotFound), errors.Is(err, ErrJobNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		status = http.StatusTooManyRequests
		// The Retry-After is derived, not constant: queue depth over
		// drain rate for a full queue, token-refill time for a throttled
		// tenant, both clamped to [1, 60]s by the engine.
		ra := "1"
		var rae *RetryAfterError
		if errors.As(err, &rae) && rae.Seconds > 0 {
			ra = strconv.Itoa(rae.Seconds)
		}
		w.Header().Set("Retry-After", ra)
	case errors.Is(err, dataset.ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrRegistryFull):
		status = http.StatusInsufficientStorage
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrDatasetBusy), errors.Is(err, ErrJobNotDone):
		status = http.StatusConflict
	case errors.Is(err, ErrResultGone):
		status = http.StatusGone
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// handleDatasetUpload is POST /datasets?target=...&protected=a,b[&name=...]
// with the CSV as the request body, streamed through the size caps.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	target := q.Get("target")
	if target == "" {
		writeError(w, errors.New("query parameter target is required"))
		return
	}
	var protected []string
	if p := q.Get("protected"); p != "" {
		protected = strings.Split(p, ",")
	}
	if len(protected) == 0 {
		writeError(w, errors.New("query parameter protected is required (comma-separated attribute names)"))
		return
	}
	info, err := s.registry.Put(r.Context(), r.Body, q.Get("name"), target, protected)
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.Counter("serve.datasets_uploaded").Inc()
	s.metrics.Histogram("serve.upload_bytes", []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}).
		Observe(float64(info.Bytes))
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleDatasetList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	detail, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, detail)
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.registry.Delete(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobSubmit is POST /jobs with a JobRequest body. The request
// is validated and the dataset reference acquired before the job is
// queued, so a queued job can always run; a full queue is an
// immediate 429.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	// The transport header wins over a tenant named in the body: the
	// header is what the retrying Client stamps and what a forwarding
	// follower relays verbatim.
	if t := r.Header.Get(TenantHeader); t != "" {
		req.Tenant = t
	}
	if _, err := validateRequest(req); err != nil {
		writeError(w, err)
		return
	}
	_, release, err := s.registry.Acquire(req.DatasetID)
	if err != nil {
		writeError(w, err)
		return
	}
	j, err := s.engine.Submit(r.Context(), req, release)
	if err != nil {
		// Submit released the dataset reference already.
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.engine.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Cancel(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult is GET /jobs/{id}/result: the job's typed result
// payload once done, 409 while it is still queued or running, and the
// error detail for failed/cancelled jobs.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.engine.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	j.mu.Lock()
	state, res, errMsg := j.state, j.result, j.errMsg
	j.mu.Unlock()
	switch state {
	case StateDone:
		if res == nil {
			// Recovered history: the journal proves the job finished, but
			// result payloads are not retained across restarts.
			writeError(w, fmt.Errorf("%w: %s", ErrResultGone, j.id))
			return
		}
		writeJSON(w, http.StatusOK, res)
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusOK, struct {
			State State  `json:"state"`
			Error string `json:"error"`
		}{state, errMsg})
	default:
		writeError(w, fmt.Errorf("%w: state %s", ErrJobNotDone, state))
	}
}

// handleJobTrace serves the job's span tree as JSON — the per-job
// equivalent of remedyctl -trace-out.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.engine.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.tracer.WriteJSON(w) //lint:allow errdiscard best-effort write to a disconnecting client
}

// handleMetrics serves the server-level registry: indented JSON by
// default, the Prometheus text exposition with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.Snapshot().WriteProm(w) //lint:allow errdiscard best-effort write to a disconnecting client
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w) //lint:allow errdiscard best-effort write to a disconnecting client
}

// handleMetricsFleet serves the fleet-wide observability view. On a
// clustered leader the installed aggregator fans out to every node; a
// follower never answers this itself (the path is not an infraPath, so
// it forwards to the leader); a single node serves a fleet of one.
// ?format=prom serves the merged registry as text exposition.
func (s *Server) handleMetricsFleet(w http.ResponseWriter, r *http.Request) {
	var fo FleetObs
	if s.fleetObs != nil {
		var err error
		fo, err = s.fleetObs(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
	} else {
		local := s.LocalNodeObs()
		fo = FleetObs{
			Leader: local.NodeID,
			Term:   local.Term,
			Nodes:  []NodeObs{local},
			Merged: obs.MergeSnapshots(map[string]obs.Snapshot{local.NodeID: local.Metrics}),
		}
	}
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = fo.Merged.WriteProm(w) //lint:allow errdiscard best-effort write to a disconnecting client
		return
	}
	writeJSON(w, http.StatusOK, fo)
}

// health assembles the shared /healthz / /readyz body.
func (s *Server) health() Health {
	queued, running := s.engine.counts()
	ready, reason := s.Readiness()
	h := Health{
		Status:   "ok",
		Datasets: s.registry.Len(),
		Queued:   queued,
		Running:  running,
		Ready:    ready,
		Reason:   reason,
		NodeID:   s.cfg.NodeID,
	}
	if !ready {
		h.Status = "not ready"
	}
	if s.cluster != nil {
		h.Role, h.Term, h.Leader = s.cluster.Role()
		if fl, ok := s.cluster.(FleetLag); ok {
			h.Lag = fl.FollowerLag()
		}
	}
	h.Tenants = s.engine.queue.tenantHealth()
	if s.store != nil {
		st := s.store.Stats(obs.WithMetrics(context.Background(), s.metrics))
		h.Store = &st
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleLivez is pure liveness: if the process can answer, it is
// alive. Restart-worthy conditions (a wedged process) are exactly the
// ones that fail to produce this response.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"alive"})
}

// handleReadyz is the readiness probe: 200 when the node can serve,
// 503 with the reason (and a Retry-After hint) while it is replaying
// its journal, holds no cluster term, or has been deposed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	if !h.Ready {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}
