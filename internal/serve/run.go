package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/remedy"
)

// JobKinds lists the pipeline stages the engine runs.
var JobKinds = []string{"identify", "remedy", "train", "audit"}

// jobParams is a JobRequest resolved against the library's parsers
// and sentinels, with defaults applied.
type jobParams struct {
	identify  core.Config
	technique remedy.Technique
	model     ml.ModelKind
	stat      fairness.Statistic
	minSup    float64
	seed      int64
}

// validateRequest resolves and validates a JobRequest up front, so a
// bad job is a 400 at submission rather than a failed job later. Each
// field is checked against the library's own validators: the scope
// parser, remedy.ParseTechnique, ml.NewClassifier (ErrUnknownModel),
// and fairness.Statistic.Validate (ErrUnknownStatistic).
func validateRequest(req JobRequest) (jobParams, error) {
	var p jobParams
	kindOK := false
	for _, k := range JobKinds {
		if req.Kind == k {
			kindOK = true
		}
	}
	if !kindOK {
		return p, fmt.Errorf("unknown job kind %q (want one of %s)", req.Kind, strings.Join(JobKinds, ", "))
	}
	if req.DatasetID == "" {
		return p, fmt.Errorf("dataset_id is required")
	}

	p.identify = core.Config{TauC: 0.1, T: 1, MinSize: core.DefaultMinSize, Scope: core.Lattice}
	if req.TauC != 0 {
		p.identify.TauC = req.TauC
	}
	if p.identify.TauC < 0 {
		return p, fmt.Errorf("tau_c must be >= 0, got %v", req.TauC)
	}
	if req.T != 0 {
		p.identify.T = req.T
	}
	if p.identify.T < 1 {
		return p, fmt.Errorf("t must be >= 1, got %d", req.T)
	}
	if req.MinSize != 0 {
		p.identify.MinSize = req.MinSize
	}
	if p.identify.MinSize < 1 {
		return p, fmt.Errorf("min_size must be >= 1, got %d", req.MinSize)
	}
	if req.Scope != "" {
		scope, err := ParseScope(req.Scope)
		if err != nil {
			return p, err
		}
		p.identify.Scope = scope
	}
	if req.Workers < 0 || req.Workers > 64 {
		return p, fmt.Errorf("workers must be in [0, 64], got %d", req.Workers)
	}
	p.identify.Workers = req.Workers

	p.technique = remedy.PreferentialSampling
	if req.Technique != "" {
		t, err := remedy.ParseTechnique(req.Technique)
		if err != nil {
			return p, err
		}
		p.technique = t
	}

	p.model = ml.DT
	if req.Model != "" {
		p.model = ml.ModelKind(strings.ToUpper(req.Model))
		if _, err := ml.NewClassifier(p.model, 1); err != nil {
			return p, err
		}
	}

	p.stat = fairness.FPR
	if req.Stat != "" {
		p.stat = fairness.Statistic(strings.ToUpper(req.Stat))
		if err := p.stat.Validate(); err != nil {
			return p, err
		}
	}

	p.minSup = req.MinSupport
	if p.minSup < 0 || p.minSup >= 1 {
		return p, fmt.Errorf("min_support must be in [0, 1), got %v", req.MinSupport)
	}
	p.seed = req.Seed
	if p.seed == 0 {
		p.seed = 1
	}
	if req.TimeoutMS < 0 {
		return p, fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	if err := validateTenant(req.Tenant); err != nil {
		return p, err
	}
	return p, nil
}

// validateTenant bounds tenant names: they label metrics and health
// rows, so the charset and length are restricted ("" is the default
// tenant and always fine).
func validateTenant(name string) error {
	if name == "" {
		return nil
	}
	if len(name) > 64 {
		return fmt.Errorf("tenant name longer than 64 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("tenant name %q: want letters, digits, '.', '_', '-'", name)
		}
	}
	return nil
}

// ParseScope resolves an identification scope name
// (case-insensitive).
func ParseScope(s string) (core.Scope, error) {
	switch strings.ToLower(s) {
	case "lattice":
		return core.Lattice, nil
	case "leaf":
		return core.Leaf, nil
	case "top":
		return core.Top, nil
	}
	return 0, fmt.Errorf("unknown scope %q (lattice, leaf, top)", s)
}

// runJob executes one job's pipeline stage. It runs on an engine
// worker under the job's context, span tree, and private metrics
// registry; the dataset reference was acquired at submission.
func (s *Server) runJob(ctx context.Context, j *job) (any, error) {
	p, err := validateRequest(j.req)
	if err != nil {
		// Unreachable via HTTP (the handler validates first), but the
		// engine re-checks so library callers get the same contract.
		return nil, err
	}
	d, release, err := s.acquireDataset(ctx, j.req.DatasetID)
	if err != nil {
		return nil, err
	}
	defer release()

	if s.store != nil && (j.req.Kind == "identify" || j.req.Kind == "remedy") {
		// Resume from the checkpoints a crashed attempt journaled (empty
		// on a first life). New checkpoints are cut per completed lattice
		// level — but only for sequential traversals: OnLevel forces the
		// sequential path, and a request that asked for Workers > 1 keeps
		// its parallelism instead of checkpointing.
		p.identify.Resume = j.resume
		if p.identify.Workers <= 1 {
			p.identify.OnLevel = func(ctx context.Context, snap core.LevelSnapshot) error {
				return s.engine.journalCheckpoint(ctx, j.id, snap)
			}
		}
	}

	return s.execute(ctx, d, p, j.req)
}

// execute dispatches one validated request to its pipeline stage.
func (s *Server) execute(ctx context.Context, d *dataset.Dataset, p jobParams, req JobRequest) (any, error) {
	switch req.Kind {
	case "identify":
		return s.runIdentify(ctx, d, p)
	case "remedy":
		return s.runRemedy(ctx, d, p, req.DatasetID)
	case "train":
		return s.runTrain(ctx, d, p)
	case "audit":
		return s.runAudit(ctx, d, p)
	}
	return nil, fmt.Errorf("unknown job kind %q", req.Kind)
}

// RunRequest executes one job request synchronously against this
// node's data: the execution half of work stealing. The stealing node
// owns no engine record for the job — lifecycle transitions stay on
// the leader's journal via StealQueued/CompleteStolen — so the run is
// bare: validated, dataset acquired (fetched from the fleet on miss),
// pipeline executed, result returned. Checkpoints are not cut; a
// stolen job that dies with its stealer is re-queued whole by
// RequeueStolen.
func (s *Server) RunRequest(ctx context.Context, req JobRequest) (any, error) {
	p, err := validateRequest(req)
	if err != nil {
		return nil, err
	}
	d, release, err := s.acquireDataset(ctx, req.DatasetID)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.execute(ctx, d, p, req)
}

// StealGrant is the leader's hand-off of one queued job to a stealing
// node: the job's identity and request, the attempt number fencing the
// steal, and the job's trace ID so the stealer's spans come back under
// the same cross-node trace.
type StealGrant struct {
	JobID   string     `json:"job_id"`
	Request JobRequest `json:"request"`
	Attempt int        `json:"attempt"`
	TraceID string     `json:"trace_id,omitempty"`
}

// StealQueued exposes the engine's work-stealing pop: the oldest
// queued job leaves for node, which must report its outcome through
// CompleteStolen carrying the granted attempt number (or be recovered
// by RequeueStolen).
func (s *Server) StealQueued(ctx context.Context, node string) (StealGrant, error) {
	j, attempt, err := s.engine.StealQueued(ctx, node)
	if err != nil {
		return StealGrant{}, err
	}
	_, traceID := j.tracer.Identity()
	return StealGrant{JobID: j.id, Request: j.req, Attempt: attempt, TraceID: traceID}, nil
}

// CompleteStolen lands a stolen job's terminal outcome (see the engine
// method). attempt must be the value StealQueued handed out; a report
// for a superseded attempt is rejected with ErrStaleAttempt. spans are
// the stealer's span tree, grafted into the job's trace.
func (s *Server) CompleteStolen(ctx context.Context, id string, final State, errMsg string, result json.RawMessage, node string, attempt int, spans []obs.SpanSnapshot) error {
	return s.engine.CompleteStolen(ctx, id, final, errMsg, result, node, attempt, spans)
}

// RequeueStolen returns a stolen job to the queue after its stealer
// died without reporting (see the engine method).
func (s *Server) RequeueStolen(ctx context.Context, id string) error {
	return s.engine.RequeueStolen(ctx, id)
}

func (s *Server) runIdentify(ctx context.Context, d *dataset.Dataset, p jobParams) (any, error) {
	res, err := core.IdentifyOptimizedCtx(ctx, d, p.identify)
	if err != nil {
		return nil, err
	}
	out := &IdentifyResult{
		TauC:     p.identify.TauC,
		T:        p.identify.T,
		MinSize:  p.identify.MinSize,
		Scope:    p.identify.Scope.String(),
		Explored: res.Explored,
		Pruned:   res.Pruned,
		Regions:  make([]RegionJSON, 0, len(res.Regions)),
	}
	for _, r := range res.Regions {
		out.Regions = append(out.Regions, RegionJSON{
			Pattern:       res.Space.String(r.Pattern),
			N:             r.Counts.N,
			Pos:           r.Counts.Pos,
			Neg:           r.Counts.Neg(),
			Ratio:         r.Ratio,
			NeighborRatio: r.NeighborRatio,
			Gap:           r.Gap(),
		})
	}
	return out, nil
}

func (s *Server) runRemedy(ctx context.Context, d *dataset.Dataset, p jobParams, srcID string) (any, error) {
	out, rep, err := remedy.ApplyCtx(ctx, d, remedy.Options{
		Identify: p.identify, Technique: p.technique, Seed: p.seed,
	})
	if err != nil {
		if rep != nil {
			// Surface the partial-report contract in the job's error
			// detail; the counters are also in the progress snapshot.
			return nil, fmt.Errorf("%d regions remedied (+%d/-%d/%d flips) before failure: %w",
				len(rep.Actions), rep.Added, rep.Removed, rep.Flipped, err)
		}
		return nil, err
	}
	sp, err2 := pattern.NewSpace(d.Schema)
	if err2 != nil {
		return nil, err2
	}
	info, err := s.registry.PutDataset(ctx, out, srcID+"-remedied-"+string(rep.Technique))
	if err != nil {
		return nil, fmt.Errorf("registering remedied dataset: %w", err)
	}
	res := &RemedyResult{
		Technique:       string(rep.Technique),
		TechniqueName:   rep.Technique.Name(),
		BiasedRegions:   rep.BiasedRegions,
		Added:           rep.Added,
		Removed:         rep.Removed,
		Flipped:         rep.Flipped,
		RowsBefore:      d.Len(),
		RowsAfter:       out.Len(),
		ResultDatasetID: info.ID,
		Actions:         make([]ActionJSON, 0, len(rep.Actions)),
	}
	for _, a := range rep.Actions {
		res.Actions = append(res.Actions, ActionJSON{
			Pattern: sp.String(a.Pattern),
			Added:   a.Added,
			Removed: a.Removed,
			Flipped: a.Flipped,
			Skipped: a.Skipped,
		})
	}
	return res, nil
}

func (s *Server) runTrain(ctx context.Context, d *dataset.Dataset, p jobParams) (any, error) {
	train, test := d.StratifiedSplit(0.7, p.seed)
	m, err := ml.TrainKindCtx(ctx, train, p.model, p.seed)
	if err != nil {
		return nil, err
	}
	ev, err := experiments.Score(test, m.Predict(test))
	if err != nil {
		return nil, err
	}
	return &TrainResult{
		Model:     string(p.model),
		TrainRows: train.Len(),
		TestRows:  test.Len(),
		Accuracy:  ev.Accuracy,
		IndexFPR:  ev.IndexFPR,
		IndexFNR:  ev.IndexFNR,
		Violation: ev.Violation,
	}, nil
}

func (s *Server) runAudit(ctx context.Context, d *dataset.Dataset, p jobParams) (any, error) {
	train, test := d.StratifiedSplit(0.7, p.seed)
	m, err := ml.TrainKindCtx(ctx, train, p.model, p.seed)
	if err != nil {
		return nil, err
	}
	preds := m.Predict(test)
	rep, err := divexplorer.ExploreCtx(ctx, test, preds, p.stat, divexplorer.Options{MinSupport: p.minSup})
	if err != nil {
		return nil, err
	}
	res := &AuditResult{
		Model:     string(p.model),
		Stat:      string(p.stat),
		Overall:   rep.Overall,
		TrainRows: train.Len(),
		TestRows:  test.Len(),
		Accuracy:  ml.NewConfusion(test.Labels, preds).Accuracy(),
		Subgroups: make([]SubgroupJSON, 0, len(rep.Subgroups)),
	}
	for _, g := range rep.Subgroups {
		res.Subgroups = append(res.Subgroups, SubgroupJSON{
			Pattern:     rep.Space.String(g.Pattern),
			N:           g.N,
			Support:     g.Support,
			Value:       g.Value,
			Divergence:  g.Divergence,
			Significant: g.Significant,
		})
	}
	return res, nil
}
