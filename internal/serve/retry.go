package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand" //lint:allow determinism type-only consumer: the jitter RNG is constructed by internal/stats.NewRNG from a caller-supplied seed
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open (repeated failures tripped it and
// the single half-open probe is already in flight).
var ErrCircuitOpen = errors.New("serve: circuit breaker open")

// RetryPolicy configures the Client's retry loop. The zero value of
// every field takes the documented default; attach a policy with
// NewRetryingClient or by setting Client.Retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, first
	// attempt included (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// it doubles each retry up to MaxDelay (default 2s). The actual
	// sleep is jittered to [delay/2, delay] by a deterministic RNG
	// seeded with Seed, and stretched to honor a server Retry-After.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed seeds the jitter RNG and the generated idempotency keys
	// (default 1). Two clients with the same seed retry identically —
	// the repository's reproducibility contract extends to backoff.
	Seed int64
	// BreakerThreshold is the number of consecutive eligible failures
	// that opens the circuit breaker (default 5; negative disables the
	// breaker). While open, one probe request at a time is allowed
	// through; a probe success closes the breaker, anything else fails
	// fast with ErrCircuitOpen. The breaker needs no clock, so it adds
	// no nondeterminism.
	BreakerThreshold int
	// OnRetry, when non-nil, is called before each backoff sleep —
	// remedyctl uses it for "queue full, retrying (attempt n/k)" lines.
	OnRetry func(RetryInfo)
}

// RetryInfo describes one failed attempt that is about to be retried.
type RetryInfo struct {
	// Attempt is the 1-based attempt that just failed, of MaxAttempts.
	Attempt     int
	MaxAttempts int
	Method      string
	Path        string
	// Status is the HTTP status of the failed attempt (0 for transport
	// errors) and Err the error it produced.
	Status int
	Err    error
	// Delay is the backoff about to be slept.
	Delay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	return p
}

// retryState is the Client's mutable retry bookkeeping: the seeded
// jitter/key RNG and the circuit breaker.
type retryState struct {
	mu      sync.Mutex
	rng     *rand.Rand
	fails   int  // consecutive eligible failures
	open    bool // breaker tripped
	probing bool // the one half-open probe is in flight
}

// rngLocked lazily builds the deterministic RNG.
func (c *Client) rngLocked(seed int64) *rand.Rand {
	if c.st.rng == nil {
		c.st.rng = stats.NewRNG(seed)
	}
	return c.st.rng
}

// nextIdemKey mints a deterministic idempotency key for one
// submission. Keys are unique per client (the RNG stream advances) and
// reproducible across runs with the same seed.
func (c *Client) nextIdemKey(p RetryPolicy) string {
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	return fmt.Sprintf("ck-%016x", c.rngLocked(p.Seed).Uint64())
}

// jitter maps a backoff delay to a deterministic sleep in
// [delay/2, delay].
func (c *Client) jitter(p RetryPolicy, delay time.Duration) time.Duration {
	if delay <= 1 {
		return delay
	}
	half := delay / 2
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	return half + time.Duration(c.rngLocked(p.Seed).Int63n(int64(half)+1))
}

// breakerAllow gates one request. It returns probe=true when the
// breaker is open and this request is the half-open probe.
func (c *Client) breakerAllow(p RetryPolicy) (probe bool, err error) {
	if p.BreakerThreshold < 0 {
		return false, nil
	}
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	if !c.st.open {
		return false, nil
	}
	if c.st.probing {
		c.Obs.Counter("client.breaker_open").Inc()
		return false, fmt.Errorf("%w after %d consecutive failures", ErrCircuitOpen, c.st.fails)
	}
	c.st.probing = true
	return true, nil
}

// breakerRecord folds one attempt's outcome into the breaker. Only
// eligible failures (the retryable kind: transport errors and 429/5xx)
// count toward opening it; a success closes it.
func (c *Client) breakerRecord(p RetryPolicy, probe, success, eligible bool) {
	if p.BreakerThreshold < 0 {
		return
	}
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	if probe {
		c.st.probing = false
	}
	switch {
	case success:
		c.st.fails = 0
		c.st.open = false
	case eligible:
		c.st.fails++
		if c.st.fails >= p.BreakerThreshold {
			c.st.open = true
		}
	}
}

// retryable classifies one attempt's failure: transport errors and the
// transient statuses (429 backpressure, 5xx) are worth retrying;
// context cancellation and client errors (4xx) are not.
func retryable(err error) (status int, ok bool) {
	if err == nil {
		return 0, false
	}
	var ae *apiError
	if errors.As(err, &ae) {
		switch {
		case ae.Status == 429:
			return ae.Status, true
		case ae.Status >= 500:
			return ae.Status, true
		}
		return ae.Status, false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	return 0, true // transport error
}

// backoff computes the sleep before retry number attempt (1-based),
// honoring a server-supplied Retry-After if it asks for longer.
func (c *Client) backoff(p RetryPolicy, attempt int, err error) time.Duration {
	delay := p.BaseDelay << (attempt - 1)
	if delay > p.MaxDelay || delay <= 0 {
		delay = p.MaxDelay
	}
	delay = c.jitter(p, delay)
	var ae *apiError
	if errors.As(err, &ae) && ae.RetryAfter > delay {
		delay = ae.RetryAfter
	}
	return delay
}

// doRetry runs the attempt loop for a request whose body can be
// replayed. It is the policy half of Client.do; the transport half is
// Client.attempt.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, out any) error {
	p := c.Retry.withDefaults()
	probe, err := c.breakerAllow(p)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		lastErr = c.attempt(ctx, method, path, bodyReader(body), out)
		status, eligible := retryable(lastErr)
		c.breakerRecord(p, probe, lastErr == nil, eligible)
		if lastErr == nil {
			return nil
		}
		if !eligible || attempt == p.MaxAttempts {
			if eligible {
				c.Obs.Counter("client.retry_give_up").Inc()
			}
			return lastErr
		}
		if probe {
			// The half-open probe failed: fail fast rather than hammer a
			// server the breaker already believes is down.
			return lastErr
		}
		delay := c.backoff(p, attempt, lastErr)
		c.Obs.Counter("client.retries").Inc()
		if status != 0 {
			c.Obs.Counter(obs.WithLabel("client.retry_status", "status", fmt.Sprintf("%d", status))).Inc()
		}
		if p.OnRetry != nil {
			p.OnRetry(RetryInfo{
				Attempt: attempt, MaxAttempts: p.MaxAttempts,
				Method: method, Path: path,
				Status: status, Err: lastErr, Delay: delay,
			})
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
	return lastErr
}
