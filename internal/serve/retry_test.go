package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// flakyHandler fails the first n requests with status, then succeeds.
func flakyHandler(n int, status int) (*atomic.Int64, http.Handler) {
	var hits atomic.Int64
	return &hits, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(n) {
			http.Error(w, "transient", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"status":"ok"}`)); err != nil {
			panic(err) // test handler; unreachable
		}
	})
}

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestRetryAbsorbsTransientFailures(t *testing.T) {
	for _, status := range []int{429, 500, 502, 503} {
		hits, h := flakyHandler(2, status)
		srv := httptest.NewServer(h)
		c := NewRetryingClient(srv.URL, fastPolicy())
		if _, err := c.Health(context.Background()); err != nil {
			t.Errorf("status %d: Health after retries: %v", status, err)
		}
		if got := hits.Load(); got != 3 {
			t.Errorf("status %d: server saw %d requests, want 3", status, got)
		}
		srv.Close()
	}
}

func TestRetryStopsOnNonRetryableStatus(t *testing.T) {
	hits, h := flakyHandler(100, http.StatusNotFound)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := NewRetryingClient(srv.URL, fastPolicy())
	_, err := c.Job(context.Background(), "job-000001")
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want a 404 apiError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a 404, want 1 (no retries)", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	hits, h := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()
	p := fastPolicy()
	p.MaxAttempts = 3
	var notices []RetryInfo
	p.OnRetry = func(info RetryInfo) { notices = append(notices, info) }
	c := NewRetryingClient(srv.URL, p)
	_, err := c.Health(context.Background())
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want the full budget of 3", got)
	}
	if len(notices) != 2 {
		t.Fatalf("OnRetry fired %d times, want 2 (between the 3 attempts)", len(notices))
	}
	for i, info := range notices {
		if info.Attempt != i+1 || info.MaxAttempts != 3 || info.Status != 503 {
			t.Errorf("notice %d = %+v, want attempt %d/3 at status 503", i, info, i+1)
		}
	}
}

func TestBackoffDeterministicAndRetryAfterAware(t *testing.T) {
	p := fastPolicy().withDefaults()
	a := NewRetryingClient("http://unused", p)
	b := NewRetryingClient("http://unused", p)
	for attempt := 1; attempt <= 4; attempt++ {
		da := a.backoff(p, attempt, &apiError{Status: 503})
		db := b.backoff(p, attempt, &apiError{Status: 503})
		if da != db {
			t.Fatalf("attempt %d: same-seed clients backed off %v vs %v", attempt, da, db)
		}
		base := p.BaseDelay << (attempt - 1)
		if base > p.MaxDelay {
			base = p.MaxDelay
		}
		if da < base/2 || da > base {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, da, base/2, base)
		}
	}
	// A server Retry-After longer than the computed backoff wins.
	long := &apiError{Status: 429, RetryAfter: 3 * time.Second}
	if got := a.backoff(p, 1, long); got != 3*time.Second {
		t.Fatalf("backoff with Retry-After 3s = %v, want 3s", got)
	}
}

func TestRetryAfterHeaderParsed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := NewClient(srv.URL) // single attempt: inspect the error
	_, err := c.Health(context.Background())
	var ae *apiError
	if !errors.As(err, &ae) || ae.RetryAfter != 7*time.Second {
		t.Fatalf("err = %#v, want apiError carrying Retry-After 7s", err)
	}
}

func TestSubmitIdempotencyKeyDeterministic(t *testing.T) {
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := readJSONBody(r, &req); err != nil {
			t.Error(err)
		}
		keys = append(keys, req.IdempotencyKey)
		writeJSON(w, http.StatusAccepted, JobStatus{ID: "job-000001"})
	}))
	defer srv.Close()
	req := JobRequest{Kind: "identify", DatasetID: "ds-x"}
	a := NewRetryingClient(srv.URL, fastPolicy())
	b := NewRetryingClient(srv.URL, fastPolicy())
	if _, err := a.SubmitJob(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubmitJob(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] == "" || !strings.HasPrefix(keys[0], "ck-") {
		t.Fatalf("captured keys %q, want two generated ck- keys", keys)
	}
	if keys[0] != keys[1] {
		t.Fatalf("same-seed clients generated different first keys: %q vs %q", keys[0], keys[1])
	}
	// A caller-supplied key is never overwritten.
	req.IdempotencyKey = "mine"
	if _, err := a.SubmitJob(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if keys[2] != "mine" {
		t.Fatalf("caller key overwritten with %q", keys[2])
	}
}

func readJSONBody(r *http.Request, out any) error {
	defer r.Body.Close() //lint:allow errdiscard test helper reading a request body
	return json.NewDecoder(r.Body).Decode(out)
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	release := make(chan struct{})
	probeIn := make(chan struct{}, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("probe") == "" && !fail.Load() {
			writeJSON(w, http.StatusOK, Health{Status: "ok"})
			return
		}
		if r.URL.Query().Get("probe") != "" {
			probeIn <- struct{}{}
			<-release
		}
		if fail.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, Health{Status: "ok"})
	}))
	defer srv.Close()

	p := RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, BreakerThreshold: 2}
	c := NewRetryingClient(srv.URL, p)
	ctx := context.Background()

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Health(ctx); err == nil {
			t.Fatal("expected failure while the server is down")
		}
	}
	// The next request is the half-open probe; park it in the handler
	// and verify a concurrent request fails fast without touching the
	// network.
	probeErr := make(chan error, 1)
	go func() {
		err := c.do(ctx, http.MethodGet, "/healthz?probe=1", nil, nil)
		probeErr <- err
	}()
	<-probeIn
	if _, err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("concurrent call during probe: err = %v, want ErrCircuitOpen", err)
	}
	fail.Store(false)
	close(release)
	if err := <-probeErr; err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	// Probe success closed the breaker: normal traffic flows again.
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("post-recovery request: %v", err)
	}
}

func TestRetryNoGoroutineLeakOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	before := runtime.NumGoroutine()

	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 30 * time.Second}
	for i := 0; i < 5; i++ {
		c := NewRetryingClient(srv.URL, p)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := c.Health(ctx)
			done <- err
		}()
		// Let the first attempt fail and the client park in its long
		// backoff, then cancel: the call must return promptly with the
		// context error, not sleep out the timer.
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled retry returned %v, want context.Canceled", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("cancelled retry did not return; backoff timer ignored the context")
		}
	}

	// Idle keep-alive connections hold pool goroutines on both sides;
	// drain them so the count below reflects only the retry machinery.
	srv.CloseClientConnections()
	deadline := time.Now().Add(2 * time.Second) //lint:allow determinism test-only goroutine settle deadline
	for runtime.NumGoroutine() > before+2 {
		http.DefaultClient.CloseIdleConnections()
		if time.Now().After(deadline) { //lint:allow determinism test-only goroutine settle deadline
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientDoFaultPointAbsorbedByRetries(t *testing.T) {
	hits, h := flakyHandler(0, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()
	var fired atomic.Int64
	faults.Set(faults.ClientDo, func(arg any) error {
		if fired.Add(1) <= 2 {
			return errors.New("injected transport failure")
		}
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ClientDo) })

	c := NewRetryingClient(srv.URL, fastPolicy())
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health with injected transport failures: %v", err)
	}
	if fired.Load() != 3 {
		t.Fatalf("fault point fired %d times, want 3 (one per attempt)", fired.Load())
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (injected failures never reach the wire)", hits.Load())
	}
}
