package serve

import (
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
)

// This file defines the HTTP wire types. They are shared verbatim by
// the server handlers and the Client (used by remedyctl -serve-url),
// so the two sides cannot drift apart.

// DatasetInfo is the registry's public view of one dataset.
type DatasetInfo struct {
	// ID is derived from the content hash of the CSV bytes plus the
	// target/protected configuration, so re-uploading the same data is
	// idempotent and returns the existing entry.
	ID        string   `json:"id"`
	Name      string   `json:"name,omitempty"`
	Target    string   `json:"target"`
	Protected []string `json:"protected"`
	Rows      int      `json:"rows"`
	Attrs     int      `json:"attrs"`
	Positives int      `json:"positives"`
	BaseRate  float64  `json:"base_rate"`
	// Bytes counts the CSV bytes consumed at upload (0 for datasets
	// produced server-side, e.g. a remedy job's output).
	Bytes int64 `json:"bytes"`
	// Refs is the number of live job references pinning the dataset
	// against eviction.
	Refs int `json:"refs"`
}

// AttrProfile is the cached Describe summary of one attribute.
type AttrProfile struct {
	Name      string    `json:"name"`
	Protected bool      `json:"protected"`
	Ordered   bool      `json:"ordered"`
	Values    []string  `json:"values"`
	Counts    []int     `json:"counts"`
	PosRate   []float64 `json:"pos_rate"`
}

// DatasetDetail is DatasetInfo plus the per-attribute profile,
// returned by GET /datasets/{id}.
type DatasetDetail struct {
	DatasetInfo
	Summary []AttrProfile `json:"summary"`
}

// State is a job's lifecycle state. The machine is:
//
//	queued ──▶ running ──▶ done
//	   │          ├──────▶ failed
//	   └──────────┴──────▶ cancelled
//
// queued → cancelled happens via DELETE /jobs/{id} before a worker
// picks the job up (or at shutdown); running → cancelled when the
// job's context is cancelled by DELETE or shutdown; running → failed
// covers pipeline errors, injected faults, worker panics, and the
// per-job deadline. Terminal states (done/failed/cancelled) never
// transition again.
//
// One state exists only in durable journals: a job found running when
// a crashed server's journal is replayed is recorded as interrupted,
// then immediately re-queued (attempt counter bumped) or failed once
// its attempt budget is spent. A live engine never reports it.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobRequest is the body of POST /jobs. Kind selects the pipeline
// stage; the remaining fields parameterize it and are validated
// against the library's sentinels (core.Config.validate via the
// identify entry point, remedy.ParseTechnique, ml.ErrUnknownModel,
// fairness.ErrUnknownStatistic) before the job is queued.
type JobRequest struct {
	// Kind is identify | remedy | train | audit.
	Kind string `json:"kind"`
	// DatasetID names a registered dataset.
	DatasetID string `json:"dataset_id"`

	// Identification parameters (identify, remedy, and the remedy half
	// of audit). Zero values take the paper's defaults: τ_c=0.1, T=1,
	// k=30, scope=lattice.
	TauC    float64 `json:"tau_c,omitempty"`
	T       int     `json:"t,omitempty"`
	MinSize int     `json:"min_size,omitempty"`
	Scope   string  `json:"scope,omitempty"`
	// Workers > 1 runs the identification's parallel fan-out with that
	// many goroutines (identical results, more CPU).
	Workers int `json:"workers,omitempty"`

	// Technique is the remedy sampler: PS | US | DP | MS (default PS).
	Technique string `json:"technique,omitempty"`

	// Model (DT | RF | LG | NN, default DT) and Stat (FPR, FNR, …,
	// default FPR) drive train and audit jobs. MinSupport bounds the
	// audited subgroups (default 0.01).
	Model      string  `json:"model,omitempty"`
	Stat       string  `json:"stat,omitempty"`
	MinSupport float64 `json:"min_support,omitempty"`

	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS overrides the server's default per-job deadline; it is
	// clamped to the server's maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Tenant names the submitting tenant for fair-share scheduling and
	// quota accounting. The handler fills it from the X-Remedy-Tenant
	// header; "" is the default tenant. It never affects the result —
	// only admission and accounting — so the response cache ignores it.
	Tenant string `json:"tenant,omitempty"`

	// IdempotencyKey makes the submission safe to retry: a second POST
	// carrying the same key returns the job the first one created
	// instead of enqueuing a duplicate. The retrying Client fills it
	// automatically; keys survive restarts via the durable journal.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// JobStatus is the engine's public view of one job, returned by POST
// /jobs, GET /jobs, GET /jobs/{id}, and DELETE /jobs/{id}.
type JobStatus struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	DatasetID string `json:"dataset_id"`
	// Tenant is the tenant the job is accounted under (the default
	// tenant when the submission named none).
	Tenant string `json:"tenant,omitempty"`
	State  State  `json:"state"`
	// Error carries the failure detail for failed jobs and the
	// cancellation cause for cancelled ones.
	Error string `json:"error,omitempty"`
	// Progress is a snapshot of the job's private metrics registry —
	// the pipeline's live counters (identify.nodes_visited,
	// remedy.samples_added, ml.epochs, …), readable mid-run and, for a
	// job that failed partway, a faithful partial-progress report per
	// the library's partial-result contract.
	Progress map[string]int64 `json:"progress,omitempty"`

	EnqueuedAt time.Time  `json:"enqueued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// Attempts counts how many times the job has been re-queued after a
	// crash interrupted it (0 for a job on its first run).
	Attempts int `json:"attempts,omitempty"`
}

// RegionJSON is one IBS member in an IdentifyResult.
type RegionJSON struct {
	Pattern       string  `json:"pattern"`
	N             int     `json:"n"`
	Pos           int     `json:"pos"`
	Neg           int     `json:"neg"`
	Ratio         float64 `json:"ratio"`
	NeighborRatio float64 `json:"neighbor_ratio"`
	Gap           float64 `json:"gap"`
}

// IdentifyResult is the result payload of an identify job.
type IdentifyResult struct {
	TauC     float64      `json:"tau_c"`
	T        int          `json:"t"`
	MinSize  int          `json:"min_size"`
	Scope    string       `json:"scope"`
	Explored int          `json:"explored"`
	Pruned   int          `json:"pruned"`
	Regions  []RegionJSON `json:"regions"`
}

// ActionJSON records the remedy applied to one region.
type ActionJSON struct {
	Pattern string `json:"pattern"`
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	Flipped int    `json:"flipped"`
	Skipped string `json:"skipped,omitempty"`
}

// RemedyResult is the result payload of a remedy job. The remedied
// dataset is registered back into the registry under ResultDatasetID,
// so a follow-up train or audit job can run on it without re-upload.
type RemedyResult struct {
	Technique       string       `json:"technique"`
	TechniqueName   string       `json:"technique_name"`
	BiasedRegions   int          `json:"biased_regions"`
	Added           int          `json:"added"`
	Removed         int          `json:"removed"`
	Flipped         int          `json:"flipped"`
	RowsBefore      int          `json:"rows_before"`
	RowsAfter       int          `json:"rows_after"`
	ResultDatasetID string       `json:"result_dataset_id"`
	Actions         []ActionJSON `json:"actions"`
}

// TrainResult is the result payload of a train job: the model is
// trained on a stratified 70% split and scored on the held-out 30%.
type TrainResult struct {
	Model     string  `json:"model"`
	TrainRows int     `json:"train_rows"`
	TestRows  int     `json:"test_rows"`
	Accuracy  float64 `json:"accuracy"`
	IndexFPR  float64 `json:"index_fpr"`
	IndexFNR  float64 `json:"index_fnr"`
	Violation float64 `json:"violation"`
}

// SubgroupJSON is one audited subgroup in an AuditResult.
type SubgroupJSON struct {
	Pattern     string  `json:"pattern"`
	N           int     `json:"n"`
	Support     float64 `json:"support"`
	Value       float64 `json:"value"`
	Divergence  float64 `json:"divergence"`
	Significant bool    `json:"significant"`
}

// AuditResult is the result payload of an audit job: a DivExplorer
// sweep over the held-out split of a model trained on the dataset.
type AuditResult struct {
	Model     string         `json:"model"`
	Stat      string         `json:"stat"`
	Overall   float64        `json:"overall"`
	TrainRows int            `json:"train_rows"`
	TestRows  int            `json:"test_rows"`
	Accuracy  float64        `json:"accuracy"`
	Subgroups []SubgroupJSON `json:"subgroups"`
}

// Health is the body of GET /healthz and GET /readyz. /healthz always
// answers 200 with the full picture (it is the detail probe); /readyz
// answers 503 with Ready=false and a Reason while the node is
// replaying its journal, holds no cluster term, or has been deposed.
type Health struct {
	Status   string `json:"status"`
	Datasets int    `json:"datasets"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`

	// Ready is the readiness verdict; Reason explains a false one.
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`

	// Cluster identity, present when the node runs in a fleet: this
	// node's ID and role, the current leadership term, and the leader's
	// node ID.
	NodeID string `json:"node_id,omitempty"`
	Role   string `json:"role,omitempty"`
	Term   uint64 `json:"term,omitempty"`
	Leader string `json:"leader,omitempty"`

	// Lag maps follower node ID → journal frames behind the leader,
	// present on a leader running replication. A reading of 0 is in
	// sync; a growing value is the early-warning signal a handoff to
	// that follower would lose acknowledged work.
	Lag map[string]uint64 `json:"lag,omitempty"`

	// Tenants is the multi-tenant admission picture: one row per known
	// tenant with its weight/quota and lifetime accounting, in
	// deterministic registration order.
	Tenants []TenantHealth `json:"tenants,omitempty"`

	// Store is the durable compaction picture — snapshot horizon and
	// content address, journal base/size, records accumulated since the
	// last snapshot — present when the node runs on a durable store.
	Store *durable.StoreStats `json:"store,omitempty"`
}

// NodeObs is one node's observability snapshot inside a fleet view:
// its identity and health alongside its full metrics registry. The
// /cluster/obs endpoint serves it per node; the leader aggregates them
// into a FleetObs.
type NodeObs struct {
	NodeID string `json:"node_id"`
	Role   string `json:"role,omitempty"`
	Term   uint64 `json:"term,omitempty"`
	// Lag is this node's journal frames behind the leader (0 on the
	// leader itself), filled in by the leader-side aggregation.
	Lag     uint64       `json:"lag,omitempty"`
	Health  Health       `json:"health"`
	Metrics obs.Snapshot `json:"metrics"`
	// Err notes a failed snapshot fetch; the metrics are then empty but
	// the node still appears in the fleet view (absence would read as
	// health, which is the opposite of the truth).
	Err string `json:"error,omitempty"`
}

// FleetObs is the body of GET /metrics/fleet: every node's snapshot
// plus the merged registry (counters summed, gauges node-labeled,
// histograms merged bucket-wise — see obs.MergeSnapshots).
type FleetObs struct {
	Leader string       `json:"leader"`
	Term   uint64       `json:"term"`
	Nodes  []NodeObs    `json:"nodes"`
	Merged obs.Snapshot `json:"merged"`
}

// errorBody is the uniform error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
