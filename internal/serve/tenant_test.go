package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTenantHeaderFlow checks the tenant identity end to end over
// HTTP: the client stamps X-Remedy-Tenant, the job status carries the
// tenant, /healthz grows a per-tenant row, and the server counts the
// submission under the tenant label.
func TestTenantHeaderFlow(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	info := uploadCompas(t, c, 800, 2)

	tc := NewClient(c.BaseURL)
	tc.Tenant = "team-a"
	st, err := tc.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "team-a" {
		t.Fatalf("JobStatus.Tenant = %q, want team-a", st.Tenant)
	}
	if st, err = tc.Wait(ctx, st.ID, 0); err != nil || st.State != StateDone {
		t.Fatalf("job: %s %v", st.State, err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var row *TenantHealth
	for i := range h.Tenants {
		if h.Tenants[i].Name == "team-a" {
			row = &h.Tenants[i]
		}
	}
	if row == nil {
		t.Fatalf("no team-a row in health tenants: %+v", h.Tenants)
	}
	if row.Submitted != 1 || row.Done != 1 {
		t.Fatalf("team-a row = %+v, want submitted=1 done=1", row)
	}
	if got := srv.Metrics().Counter("serve.tenant_submitted{tenant=\"team-a\"}").Value(); got != 1 {
		t.Fatalf("tenant_submitted counter = %d, want 1", got)
	}
	if err := validateTenant("bad tenant!"); err == nil {
		t.Fatal("tenant with space and '!' should be rejected")
	}
}

// TestEngineTenantFairness drives the real engine: with the single
// worker pinned, a 3:1 weighted backlog must be picked up in DRR order
// (three alpha jobs per beta job), observed via the ServeJob hook's
// pickup sequence.
func TestEngineTenantFairness(t *testing.T) {
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	_, c := newTestServer(t, Config{
		Workers: 1, QueueDepth: 16,
		Tenants: map[string]TenantConfig{
			"alpha": {Weight: 3},
			"beta":  {Weight: 1},
		},
	})
	info := uploadCompas(t, c, 300, 4)

	blocker, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, entered) // worker pinned; everything below queues up

	byTenant := map[string]string{} // job ID → tenant
	submit := func(tenant string, n int, seedBase int64) {
		for i := 0; i < n; i++ {
			// Distinct seeds keep these six-plus jobs out of each other's
			// response cache.
			st, serr := c.SubmitJob(ctx, JobRequest{
				Kind: "identify", DatasetID: info.ID, Tenant: tenant, Seed: seedBase + int64(i),
			})
			if serr != nil {
				t.Fatalf("submit %s #%d: %v", tenant, i, serr)
			}
			byTenant[st.ID] = tenant
		}
	}
	submit("alpha", 6, 100)
	submit("beta", 2, 200)

	close(gate)
	var order []string
	for i := 0; i < 8; i++ {
		id := waitEntered(t, entered)
		order = append(order, byTenant[id])
	}
	want := []string{"alpha", "alpha", "alpha", "beta", "alpha", "alpha", "alpha", "beta"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pickup order %v, want %v", order, want)
		}
	}
	if st, err := c.Wait(ctx, blocker.ID, 0); err != nil || st.State != StateDone {
		t.Fatalf("blocker: %s %v", st.State, err)
	}
}

// TestDerivedRetryAfter fills the queue behind a pinned worker and
// checks the 429 carries a Retry-After derived from the backlog (8
// queued jobs × the cold 250ms estimate / 1 worker = 2s), not the old
// constant 1s.
func TestDerivedRetryAfter(t *testing.T) {
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	info := uploadCompas(t, c, 200, 5)

	if _, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID}); err != nil {
		t.Fatal(err)
	}
	waitEntered(t, entered)
	for i := 0; i < 8; i++ {
		if _, err := c.SubmitJob(ctx, JobRequest{
			Kind: "identify", DatasetID: info.ID, Seed: 10 + int64(i),
		}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	_, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, Seed: 99})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %v, want 429", err)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %v, want 2s (8 queued × 250ms / 1 worker)", ae.RetryAfter)
	}
	close(gate)
}

// TestTenantQuota429 checks an exhausted token bucket surfaces as a
// 429 whose Retry-After is the (clamped) refill time, and that the
// default tenant is unaffected.
func TestTenantQuota429(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		Tenants: map[string]TenantConfig{
			"metered": {Weight: 1, Rate: 0.001, Burst: 1}, // ~17min refill → clamped hint
		},
	})
	info := uploadCompas(t, c, 200, 6)

	mc := NewClient(c.BaseURL)
	mc.Tenant = "metered"
	if _, err := mc.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID}); err != nil {
		t.Fatalf("burst submit: %v", err)
	}
	_, err := mc.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, Seed: 2})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %v, want 429", err)
	}
	if ae.RetryAfter != 60*time.Second {
		t.Fatalf("Retry-After = %v, want the 60s clamp", ae.RetryAfter)
	}
	// The default tenant rides its own bucket (unlimited here).
	if _, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, Seed: 3}); err != nil {
		t.Fatalf("default-tenant submit: %v", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range h.Tenants {
		if row.Name == "metered" && row.Throttled != 1 {
			t.Fatalf("metered throttled = %d, want 1", row.Throttled)
		}
	}
}

// TestClientRetryCounters checks the client surfaces its backoff
// decisions as obs counters instead of logs: retries count per
// attempt, give-ups once per exhausted budget, breaker trips on the
// fast-fail path.
func TestClientRetryCounters(t *testing.T) {
	ctx := context.Background()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()

	c := NewRetryingClient(hs.URL, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		BreakerThreshold: -1,
	})
	c.Obs = obs.NewRegistry()
	if err := c.Livez(ctx); StatusOf(err) != http.StatusTooManyRequests {
		t.Fatalf("want 429 after budget, got %v", err)
	}
	if got := c.Obs.Counter("client.retries").Value(); got != 2 {
		t.Fatalf("client.retries = %d, want 2 (3 attempts)", got)
	}
	if got := c.Obs.Counter("client.retry_give_up").Value(); got != 1 {
		t.Fatalf("client.retry_give_up = %d, want 1", got)
	}
	if got := c.Obs.Counter("client.retry_status{status=\"429\"}").Value(); got != 2 {
		t.Fatalf("labeled retry counter = %d, want 2", got)
	}

	// Breaker fast-fail: open with a probe already in flight.
	bc := NewRetryingClient(hs.URL, RetryPolicy{MaxAttempts: 1, BreakerThreshold: 2})
	bc.Obs = obs.NewRegistry()
	bc.st.open = true
	bc.st.probing = true
	if err := bc.Livez(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if got := bc.Obs.Counter("client.breaker_open").Value(); got != 1 {
		t.Fatalf("client.breaker_open = %d, want 1", got)
	}

	if StatusOf(errors.New("plain")) != 0 {
		t.Fatal("StatusOf must be 0 for non-API errors")
	}
}
