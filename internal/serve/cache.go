package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"
)

// respCache is the engine's bounded response cache: terminal done
// results keyed by the result-affecting request parameters, so an
// identical resubmission (same content-addressed dataset, same kind,
// same parameters, same seed) is answered without touching the worker
// pool. Entries are the compact json.Marshal of the result; replaying
// one as json.RawMessage through writeJSON produces bytes identical to
// the cold run, because the indenting encoder re-indents the compact
// form the same way it indents a fresh Marshal.
type respCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	raw json.RawMessage
}

// newRespCache builds a cache holding up to capacity entries; a
// non-positive capacity disables caching (nil receiver, every method
// no-ops).
func newRespCache(capacity int) *respCache {
	if capacity <= 0 {
		return nil
	}
	return &respCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached result bytes for key, refreshing its recency.
func (c *respCache) get(key string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).raw, true
}

// put stores raw under key, evicting the least-recently-used entry
// past capacity.
func (c *respCache) put(key string, raw json.RawMessage) {
	if c == nil || len(raw) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).raw = raw
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, raw: raw})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the live entry count.
func (c *respCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// cacheKey derives the cache key for req, or ok=false when the request
// kind is not cacheable. Remedy jobs are excluded: running one
// registers its output dataset into the registry (a side effect a
// cached replay would silently skip). The key covers exactly the
// result-affecting fields — DatasetID is content-addressed, so equal
// IDs mean equal data — and deliberately excludes IdempotencyKey,
// TimeoutMS, and Tenant, which change delivery, not the answer.
func cacheKey(req JobRequest) (string, bool) {
	if req.Kind == "remedy" {
		return "", false
	}
	return fmt.Sprintf("%s|%s|tau=%g|t=%d|min=%d|scope=%s|w=%d|tech=%s|model=%s|stat=%s|sup=%g|seed=%d",
		req.Kind, req.DatasetID, req.TauC, req.T, req.MinSize, req.Scope, req.Workers,
		req.Technique, req.Model, req.Stat, req.MinSupport, req.Seed), true
}
