package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Engine errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull is returned by Submit when the bounded queue has no
	// room — the server's backpressure signal (429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown is returned by Submit once Shutdown has begun
	// (503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrJobNotFound is returned for an unknown job ID (404).
	ErrJobNotFound = errors.New("serve: job not found")
	// ErrJobNotDone is returned when fetching the result of a job that
	// has not reached a terminal state (409).
	ErrJobNotDone = errors.New("serve: job not finished")
	// ErrResultGone is returned when fetching the result of a job that
	// finished before a restart: the journal proves the outcome but
	// result payloads are not retained across restarts (410).
	ErrResultGone = errors.New("serve: job result not retained across restart")
	// ErrNoStealable is returned by StealQueued when nothing is queued
	// for a remote node to take.
	ErrNoStealable = errors.New("serve: no stealable job queued")
	// ErrStaleAttempt is returned by CompleteStolen when the reported
	// attempt is not the job's current one: the steal timed out and the
	// job was re-queued (or re-run) since, so the late result must not
	// finish the newer incarnation.
	ErrStaleAttempt = errors.New("serve: stale steal attempt")
)

// job is the engine's internal record for one submitted job. The
// mutex guards the mutable lifecycle fields; the immutable identity
// fields (id, req) are safe to read bare.
type job struct {
	id  string
	req JobRequest
	// tenant is the canonical tenant the job was accounted under
	// (written once by fairQueue.push / the cache fast path before the
	// job is observable; the fair queue's mutex publishes it).
	tenant string

	mu         sync.Mutex
	state      State
	errMsg     string
	result     any
	cancel     context.CancelFunc // set while running
	cancelWant bool               // Cancel called; disambiguates ctx.Canceled
	enqueued   time.Time
	started    time.Time
	finished   time.Time

	// metrics is the job's private registry: the pipeline's counters
	// accumulate here and GET /jobs/{id} snapshots them as progress.
	metrics *obs.Registry
	// tracer records the job's span tree, served by /jobs/{id}/trace.
	tracer *obs.Tracer
	// release returns the dataset reference taken at submission.
	release func()
	// done is closed on entry to any terminal state.
	done chan struct{}
	// admitted is closed once the job's submission record is journaled
	// (or its journaling definitively failed). Workers wait on it before
	// touching a dequeued job, so a "running" record can never precede
	// the job's "submit" record in the journal.
	admitted chan struct{}

	// attempts counts crash-recovery re-queues (0 on a first life).
	attempts int
	// resume holds the identify checkpoints recovered from the journal,
	// seeded into the traversal when the job re-runs.
	resume []core.LevelSnapshot
}

// status snapshots the job's public view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.req.Kind,
		DatasetID:  j.req.DatasetID,
		Tenant:     j.tenant,
		State:      j.state,
		Error:      j.errMsg,
		EnqueuedAt: j.enqueued,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if counters := j.metrics.Snapshot().Counters; len(counters) > 0 {
		st.Progress = counters
	}
	st.Attempts = j.attempts
	return st
}

// runnerFunc executes one job's pipeline work under its context.
type runnerFunc func(ctx context.Context, j *job) (any, error)

// engine is the bounded worker pool behind POST /jobs. Jobs flow
// through the multi-tenant fair queue (per-tenant bounded FIFOs,
// token-bucket quotas, deficit-round-robin dispatch — see fairq.go); a
// fixed set of worker goroutines drains it. Submission never blocks: a
// full tenant queue is an immediate ErrQueueFull, an empty tenant
// bucket is ErrRateLimited, both carrying a derived Retry-After.
type engine struct {
	mu         sync.Mutex
	jobs       map[string]*job
	order      []string // submission order, for GET /jobs
	idem       map[string]*job
	idemOrder  []string // idem keys in insertion order, for bounded eviction
	queue      *fairQueue
	cache      *respCache // done-result replay cache; nil = disabled
	closed     bool
	seq        int
	seqRunning int // currently-running job count, behind mu
	workers    int
	wg         sync.WaitGroup
	abort      context.CancelFunc // cancels the workers' base context, hard-stopping running jobs

	jobTimeout time.Duration // default per-job deadline
	maxTimeout time.Duration // clamp for request-supplied deadlines
	run        runnerFunc
	metrics    *obs.Registry // server-level registry
	logger     *obs.Logger

	// node names this engine's fleet member; it prefixes the
	// deterministic per-job trace IDs (node/job-NNNNNN).
	node string
	// slowJob, when positive, logs the span timings of any job whose
	// run exceeds it.
	slowJob time.Duration

	// journal, when non-nil, is the durable job log: every lifecycle
	// transition is appended before it is acknowledged. Nil is the
	// in-memory mode — every journaling helper returns immediately.
	journal *durable.Journal
	// maxAttempts caps crash-recovery re-queues of one job.
	maxAttempts int
	// maxIdemKeys bounds the idem table (<=0 after config defaulting
	// means unlimited; Config.withDefaults supplies 1024).
	maxIdemKeys int
}

// newEngine builds the engine without starting its worker pool;
// callers attach durability (journal, recovered jobs) and then call
// start. Submissions before start simply wait in the queue.
func newEngine(workers, queueDepth int, jobTimeout, maxTimeout time.Duration, run runnerFunc, m *obs.Registry, lg *obs.Logger) *engine {
	if workers <= 0 {
		workers = 4
	}
	if queueDepth <= 0 {
		queueDepth = 16
	}
	return &engine{
		jobs:       map[string]*job{},
		idem:       map[string]*job{},
		queue:      newFairQueue(queueDepth, TenantConfig{Weight: 1}, nil),
		workers:    workers,
		jobTimeout: jobTimeout,
		maxTimeout: maxTimeout,
		run:        run,
		metrics:    m,
		logger:     lg,
	}
}

// start launches the worker pool. The base context is cancelled by
// abort to hard-stop running jobs. It is handed to each worker
// goroutine as a parameter — never stored on the engine — so
// cancellation stays attached to the call tree (ctxfirst contract).
func (e *engine) start() {
	baseCtx, abort := context.WithCancel(context.Background())
	e.abort = abort
	e.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go e.worker(baseCtx)
	}
}

// journalObs routes journal-append observability to the server-level
// registry and logger while keeping the caller's span (so injected
// faults land on the job's trace). A background ctx is fine: appends
// are never skipped on cancellation.
func (e *engine) journalObs(ctx context.Context) context.Context {
	return obs.WithLogger(obs.WithMetrics(ctx, e.metrics), e.logger)
}

// journalSubmit appends the job's admission record. No-op without a
// journal.
func (e *engine) journalSubmit(ctx context.Context, j *job) error {
	if e.journal == nil {
		return nil
	}
	raw, err := json.Marshal(j.req)
	if err != nil {
		return err
	}
	return e.journal.Append(e.journalObs(ctx), durable.Record{
		Type:    durable.RecSubmit,
		JobID:   j.id,
		IdemKey: j.req.IdempotencyKey,
		Request: raw,
		Attempt: j.attempts,
	})
}

// journalState appends one state transition. No-op without a journal.
func (e *engine) journalState(ctx context.Context, id string, st State, errMsg string, attempt int) error {
	return e.journalStateNode(ctx, id, st, errMsg, attempt, "")
}

// journalStateNode is journalState with work-stealing attribution: the
// node that ran the transition, recorded on the journal record for
// audit trails ("" for the journal's own node).
func (e *engine) journalStateNode(ctx context.Context, id string, st State, errMsg string, attempt int, node string) error {
	if e.journal == nil {
		return nil
	}
	return e.journal.Append(e.journalObs(ctx), durable.Record{
		Type:    durable.RecState,
		JobID:   id,
		State:   string(st),
		Error:   errMsg,
		Attempt: attempt,
		Node:    node,
	})
}

// journalCheckpoint appends one completed identify level for the job.
// No-op without a journal.
func (e *engine) journalCheckpoint(ctx context.Context, id string, snap core.LevelSnapshot) error {
	if e.journal == nil {
		return nil
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := e.journal.Append(e.journalObs(ctx), durable.Record{
		Type:       durable.RecCheckpoint,
		JobID:      id,
		Level:      snap.Level,
		Checkpoint: raw,
	}); err != nil {
		return err
	}
	e.metrics.Counter("serve.checkpoints_journaled").Inc()
	return nil
}

// idemInsertLocked records key → j in the dedup table and evicts past
// the cap. Caller holds e.mu.
func (e *engine) idemInsertLocked(key string, j *job) {
	if _, exists := e.idem[key]; !exists {
		e.idemOrder = append(e.idemOrder, key)
	}
	e.idem[key] = j
	e.evictIdemLocked()
}

// idemDeleteLocked releases key from the dedup table and its insertion
// order — the two must move together, or keys dropped from the table
// (the Submit journal-failure path) accumulate in idemOrder until the
// table next overflows its cap. Caller holds e.mu.
func (e *engine) idemDeleteLocked(key string) {
	delete(e.idem, key)
	for i, k := range e.idemOrder {
		if k == key {
			e.idemOrder = append(e.idemOrder[:i], e.idemOrder[i+1:]...)
			return
		}
	}
}

// evictIdemLocked bounds the dedup table: while it exceeds the cap,
// the oldest keys whose jobs are terminal — their outcome already
// journaled, since every terminal transition is journaled before it is
// acknowledged — are dropped. A key whose job is still live is never
// evicted (a retry of an in-flight submission must keep deduping), so
// the table can transiently exceed the cap by the number of live
// keyed jobs, which the bounded queue itself bounds. Caller holds
// e.mu.
func (e *engine) evictIdemLocked() {
	if e.maxIdemKeys <= 0 || len(e.idem) <= e.maxIdemKeys {
		return
	}
	kept := e.idemOrder[:0]
	for _, key := range e.idemOrder {
		j, ok := e.idem[key]
		if !ok {
			continue // key already released (journal-failure path)
		}
		if len(e.idem) > e.maxIdemKeys {
			select {
			case <-j.done: // terminal: journaled, safe to forget
				delete(e.idem, key)
				e.metrics.Counter("serve.idem_keys_evicted").Inc()
				continue
			default:
			}
		}
		kept = append(kept, key)
	}
	e.idemOrder = kept
}

// Submit validates nothing (the handler already has), records the job
// and enqueues it; with a journal attached the admission is journaled
// before Submit returns, so an acknowledged job survives a crash.
// release is the dataset reference to return when the job reaches a
// terminal state; on submission failure (and on an idempotent replay,
// where the prior job holds its own reference) Submit releases it
// itself.
func (e *engine) Submit(ctx context.Context, req JobRequest, release func()) (*job, error) {
	j := &job{
		req:      req,
		state:    StateQueued,
		enqueued: time.Now(), //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
		metrics:  obs.NewRegistry(),
		tracer:   obs.NewTracer(),
		release:  release,
		done:     make(chan struct{}),
		admitted: make(chan struct{}),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		release()
		return nil, ErrShuttingDown
	}
	if req.IdempotencyKey != "" {
		if prev, ok := e.idem[req.IdempotencyKey]; ok {
			e.mu.Unlock()
			release()
			e.metrics.Counter("serve.jobs_deduped").Inc()
			e.logger.Info("job submission deduped", "job", prev.id, "idem_key", req.IdempotencyKey)
			return prev, nil
		}
	}
	e.seq++
	j.id = fmt.Sprintf("job-%06d", e.seq)
	if key, cacheable := cacheKey(req); cacheable && e.cache != nil {
		if raw, hit := e.cache.get(key); hit {
			// Cache fast path: the job goes straight to done with the
			// stored result — never queued, never charged against the
			// tenant's quota, still journaled like any other submission.
			j.tenant = e.queue.canonical(tenantOf(req))
			e.jobs[j.id] = j
			e.order = append(e.order, j.id)
			if req.IdempotencyKey != "" {
				e.idemInsertLocked(req.IdempotencyKey, j)
			}
			e.mu.Unlock()
			return e.finishFromCache(ctx, j, raw)
		}
	}
	tenant, hint, qerr := e.queue.push(j, false)
	if qerr != nil {
		e.mu.Unlock()
		release()
		switch {
		case errors.Is(qerr, ErrRateLimited):
			e.metrics.Counter("serve.jobs_throttled").Inc()
			e.metrics.Counter(obs.WithLabel("serve.tenant_throttled", "tenant", tenant)).Inc()
			return nil, &RetryAfterError{Err: qerr, Seconds: hint}
		case errors.Is(qerr, ErrQueueFull):
			e.metrics.Counter("serve.jobs_rejected").Inc()
			e.metrics.Counter(obs.WithLabel("serve.tenant_rejected", "tenant", tenant)).Inc()
			return nil, &RetryAfterError{Err: qerr, Seconds: e.retryAfter()}
		}
		return nil, qerr
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	if req.IdempotencyKey != "" {
		e.idemInsertLocked(req.IdempotencyKey, j)
	}
	e.mu.Unlock()
	e.metrics.Counter(obs.WithLabel("serve.tenant_submitted", "tenant", tenant)).Inc()
	e.traceIdentity(ctx, j)
	if err := e.journalSubmit(ctx, j); err != nil {
		// The job is already in the queue; poison it so the worker that
		// dequeues it skips (terminal states are never run), and release
		// its idempotency claim so a retry is not deduped onto a job
		// that was never durably admitted.
		j.mu.Lock()
		j.finishLocked(StateCancelled, "submission not journaled: "+err.Error())
		j.mu.Unlock()
		close(j.admitted)
		if req.IdempotencyKey != "" {
			e.mu.Lock()
			e.idemDeleteLocked(req.IdempotencyKey)
			e.mu.Unlock()
		}
		e.metrics.Counter("serve.journal_errors").Inc()
		return nil, fmt.Errorf("serve: journal submission: %w", err)
	}
	close(j.admitted)
	e.metrics.Counter("serve.jobs_submitted").Inc()
	e.metrics.Gauge("serve.jobs_queued").Set(float64(e.queue.len()))
	e.logger.Info("job queued", "job", j.id, "kind", req.Kind, "dataset", req.DatasetID, "tenant", tenant)
	return j, nil
}

// finishFromCache completes a cache-hit submission: the job is
// journaled (admission + done) exactly like a run job — recovery must
// agree the job finished — then finished with the cached result bytes.
// A journal failure follows the same contracts as the slow path: an
// unjournaled admission poisons the submission; an unjournaled done
// degrades to failed.
func (e *engine) finishFromCache(ctx context.Context, j *job, raw json.RawMessage) (*job, error) {
	e.traceIdentity(ctx, j)
	_, sp := obs.StartSpan(obs.WithTracer(ctx, j.tracer), "serve.cache_hit")
	sp.SetStr("job", j.id)
	sp.SetStr("kind", j.req.Kind)
	sp.End()
	if err := e.journalSubmit(ctx, j); err != nil {
		j.mu.Lock()
		j.finishLocked(StateCancelled, "submission not journaled: "+err.Error())
		j.mu.Unlock()
		close(j.admitted)
		if key := j.req.IdempotencyKey; key != "" {
			e.mu.Lock()
			e.idemDeleteLocked(key)
			e.mu.Unlock()
		}
		e.metrics.Counter("serve.journal_errors").Inc()
		return nil, fmt.Errorf("serve: journal submission: %w", err)
	}
	if err := e.journalState(ctx, j.id, StateDone, "", 0); err != nil {
		e.metrics.Counter("serve.journal_errors").Inc()
		msg := "cached result not journaled: " + err.Error()
		if j2 := e.journalState(ctx, j.id, StateFailed, msg, 0); j2 != nil {
			e.logger.Error("journal append failed", "job", j.id, "err", j2)
		}
		j.mu.Lock()
		j.finishLocked(StateFailed, msg)
		j.mu.Unlock()
		close(j.admitted)
		e.metrics.Counter("serve.jobs_submitted").Inc()
		e.accountFinish(j.tenant, StateFailed)
		e.metrics.Counter("serve.jobs_failed").Inc()
		return j, nil
	}
	j.mu.Lock()
	j.result = raw
	j.finishLocked(StateDone, "")
	j.mu.Unlock()
	close(j.admitted)
	e.queue.recordCacheHit(j.tenant)
	e.metrics.Counter("serve.jobs_submitted").Inc()
	e.metrics.Counter("serve.cache_hits").Inc()
	e.metrics.Counter(obs.WithLabel("serve.tenant_cache_hits", "tenant", j.tenant)).Inc()
	e.metrics.Counter("serve.jobs_done").Inc()
	e.logger.Info("job served from cache", "job", j.id, "kind", j.req.Kind, "tenant", j.tenant)
	return j, nil
}

// cacheFill stores a done job's result for replay. Marshal errors just
// skip the fill — the cache is an optimization, never a correctness
// dependency.
func (e *engine) cacheFill(req JobRequest, res any) {
	if e.cache == nil || res == nil {
		return
	}
	key, ok := cacheKey(req)
	if !ok {
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return
	}
	e.cache.put(key, raw)
}

// accountFinish folds a terminal transition into the job's tenant
// accounting (fair-queue rows + labeled server counters).
func (e *engine) accountFinish(tenant string, final State) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	e.queue.recordOutcome(tenant, final)
	switch final {
	case StateDone:
		e.metrics.Counter(obs.WithLabel("serve.tenant_done", "tenant", tenant)).Inc()
	case StateFailed:
		e.metrics.Counter(obs.WithLabel("serve.tenant_failed", "tenant", tenant)).Inc()
	case StateCancelled:
		e.metrics.Counter(obs.WithLabel("serve.tenant_cancelled", "tenant", tenant)).Inc()
	}
}

// retryAfter derives the Retry-After hint for a full-queue rejection
// from the current backlog and the observed mean job duration across
// the worker pool.
func (e *engine) retryAfter() int {
	h := e.metrics.Histogram("serve.job_duration_ms", obs.DefaultDurationBucketsMS)
	var avg float64
	if n := h.Count(); n > 0 {
		avg = h.Sum() / float64(n)
	}
	return retryAfterSecs(e.queue.len(), e.workers, avg)
}

// traceIdentity stamps the job's tracer with its deterministic
// cross-node identity and records the submission span. The trace ID is
// node/job-NNNNNN from the engine sequence — no entropy, no clock — or
// the ID an upstream hop already minted (a forwarding follower, the
// client), carried in on the request context. A forwarded submission
// records a "forwarded" event naming the relaying node, so the hop is
// visible in the stitched timeline.
func (e *engine) traceIdentity(ctx context.Context, j *job) {
	tc := obs.TraceContextFrom(ctx)
	traceID := tc.TraceID
	if traceID == "" {
		traceID = j.id
		if e.node != "" {
			traceID = e.node + "/" + j.id
		}
	}
	j.tracer.SetIdentity(e.node, traceID)
	_, sp := obs.StartSpan(obs.WithTracer(ctx, j.tracer), "serve.submit")
	sp.SetStr("job", j.id)
	sp.SetStr("kind", j.req.Kind)
	if tc.Via != "" {
		sp.Event("forwarded", "via "+tc.Via)
	}
	sp.End()
}

// Job returns the engine's record for id.
func (e *engine) Job(id string) (*job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	return j, nil
}

// List returns every job's status in submission order.
func (e *engine) List() []JobStatus {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, e.jobs[id])
	}
	e.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation: a queued job goes terminal
// immediately (journaled first, so the cancellation is durable before
// it is acknowledged); a running job has its context cancelled and
// goes terminal when the pipeline unwinds to its next cooperative
// checkpoint (that transition is journaled by the worker). Cancelling
// a terminal job is a no-op.
func (e *engine) Cancel(ctx context.Context, id string) (JobStatus, error) {
	j, err := e.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	j.cancelWant = true
	switch j.state {
	case StateQueued:
		//lint:allow heldcall j.mu held across the append on purpose: check-journal-finish must be atomic or a worker can dequeue the job mid-cancellation
		if jerr := e.journalState(ctx, j.id, StateCancelled, "cancelled while queued", j.attempts); jerr != nil {
			j.mu.Unlock()
			e.metrics.Counter("serve.journal_errors").Inc()
			return JobStatus{}, fmt.Errorf("serve: journal cancellation: %w", jerr)
		}
		// The worker that eventually dequeues it sees the terminal
		// state and skips.
		j.finishLocked(StateCancelled, "cancelled while queued")
		e.accountFinish(j.tenant, StateCancelled)
	case StateRunning:
		j.cancel()
	}
	j.mu.Unlock()
	return j.status(), nil
}

// restore inserts a job recovered from the journal: terminal jobs
// become queryable history; queued jobs re-enter the queue. The
// recovery path runs before start, so insertion order is preserved.
func (e *engine) restore(j *job) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrShuttingDown
	}
	if _, dup := e.jobs[j.id]; dup {
		return fmt.Errorf("serve: restore: duplicate job id %s", j.id)
	}
	if j.admitted == nil {
		// Recovered jobs were journaled in a previous life.
		ch := make(chan struct{})
		close(ch)
		j.admitted = ch
	}
	if j.tracer != nil {
		// Recovered jobs re-mint the same deterministic identity their
		// first life carried: node + journaled job ID.
		traceID := j.id
		if e.node != "" {
			traceID = e.node + "/" + j.id
		}
		j.tracer.SetIdentity(e.node, traceID)
	}
	if !j.state.Terminal() {
		// Recovery re-admits already-accepted work: it bypasses the token
		// bucket (the quota was charged in the job's first life) but still
		// respects the per-tenant depth bound.
		if _, _, err := e.queue.push(j, true); err != nil {
			return fmt.Errorf("restore %s: %w", j.id, err)
		}
	} else {
		j.tenant = e.queue.canonical(tenantOf(j.req))
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	if key := j.req.IdempotencyKey; key != "" {
		e.idemInsertLocked(key, j)
	}
	return nil
}

// StealQueued hands the oldest queued job to a remote node: the job
// leaves the local queue, its running state is journaled with the
// stealer's attribution, and the stealer executes it via RunRequest on
// its own data. Terminal outcomes come back through CompleteStolen,
// which fences on the returned attempt number. Jobs cancelled while
// queued are skipped (they are already finished); an empty queue is
// ErrNoStealable.
func (e *engine) StealQueued(ctx context.Context, node string) (*job, int, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, 0, ErrShuttingDown
	}
	for {
		j, ok := e.queue.tryPop()
		if !ok {
			return nil, 0, ErrNoStealable
		}
		e.metrics.Gauge("serve.jobs_queued").Set(float64(e.queue.len()))
		<-j.admitted
		j.mu.Lock()
		if j.state.Terminal() { // cancelled while queued: already finished
			j.mu.Unlock()
			continue
		}
		attempt := j.attempts
		j.mu.Unlock()
		if err := e.journalStateNode(ctx, j.id, StateRunning, "", attempt, node); err != nil {
			// Same contract as a local start: a job whose start cannot be
			// journaled must not run anywhere.
			e.metrics.Counter("serve.journal_errors").Inc()
			j.mu.Lock()
			j.finishLocked(StateFailed, "steal start not journaled: "+err.Error())
			j.mu.Unlock()
			e.metrics.Counter("serve.jobs_failed").Inc()
			e.accountFinish(j.tenant, StateFailed)
			return nil, 0, fmt.Errorf("serve: journal steal: %w", err)
		}
		j.mu.Lock()
		if j.state.Terminal() { // cancelled in the journaling window
			j.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = time.Now() //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
		j.mu.Unlock()
		// The hand-off is a leader-side span: the stitched trace shows
		// who stole the job and when even before the stealer reports.
		_, sp := obs.StartSpan(obs.WithTracer(ctx, j.tracer), "serve.steal")
		sp.SetStr("job", j.id)
		sp.SetStr("stolen_by", node)
		sp.SetInt("attempt", int64(attempt))
		sp.End()
		e.metrics.Counter("serve.jobs_stolen").Inc()
		e.logger.Info("job stolen", "job", j.id, "node", node, "attempt", attempt)
		return j, attempt, nil
	}
}

// CompleteStolen lands a stolen job's terminal outcome, journaled with
// the stealer's attribution before it becomes observable. Reporting an
// already-terminal job is a no-op (a duplicate report after a retried
// delivery must not double-finish it), and a report whose attempt is
// not the job's current one is ErrStaleAttempt: the term alone cannot
// fence a stealer that outlives its steal timeout, because the
// re-queued copy runs under the same leadership — the attempt number
// is the per-life fence. spans, when non-empty, are the stealer's
// span tree, grafted into the job's tracer so GET /jobs/{id}/trace
// serves one stitched timeline spanning both nodes.
func (e *engine) CompleteStolen(ctx context.Context, id string, final State, errMsg string, result json.RawMessage, node string, attempt int, spans []obs.SpanSnapshot) error {
	if !final.Terminal() {
		return fmt.Errorf("serve: stolen job %s reported non-terminal state %q", id, final)
	}
	j, err := e.Job(id)
	if err != nil {
		return err
	}
	// j.mu is held across the fence check, the journal append, and the
	// state change (the same discipline as Cancel): a RequeueStolen
	// interleaving between check and append would re-queue the job under
	// a new attempt and this result would then finish the wrong life.
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return nil
	}
	if attempt != j.attempts {
		e.metrics.Counter("serve.steal_results_stale").Inc()
		e.logger.Warn("dropped stale stolen-job result",
			"job", id, "node", node, "reported_attempt", attempt, "current_attempt", j.attempts)
		return fmt.Errorf("%w: job %s is on attempt %d, result reports attempt %d",
			ErrStaleAttempt, id, j.attempts, attempt)
	}
	//lint:allow heldcall j.mu covers fence check + append + state change (the comment above); releasing for the fsync would reopen the RequeueStolen race
	if jerr := e.journalStateNode(ctx, id, final, errMsg, attempt, node); jerr != nil {
		e.metrics.Counter("serve.journal_errors").Inc()
		return fmt.Errorf("serve: journal steal result: %w", jerr)
	}
	if len(spans) > 0 {
		// Stitch the stealer's spans under the trace root: remote work
		// joins the local timeline, attributed to the node that ran it.
		j.tracer.Graft(0, node, spans)
		e.metrics.Counter("serve.trace_spans_grafted").Add(int64(len(spans)))
	}
	switch final {
	case StateDone:
		if len(result) > 0 {
			j.result = result
			e.cacheFill(j.req, result)
		}
		j.finishLocked(StateDone, "")
		e.metrics.Counter("serve.jobs_done").Inc()
		e.accountFinish(j.tenant, StateDone)
		e.logger.Info("stolen job done", "job", id, "node", node)
	case StateCancelled:
		j.finishLocked(StateCancelled, errMsg)
		e.metrics.Counter("serve.jobs_cancelled").Inc()
		e.accountFinish(j.tenant, StateCancelled)
	default:
		j.finishLocked(StateFailed, errMsg)
		e.metrics.Counter("serve.jobs_failed").Inc()
		e.accountFinish(j.tenant, StateFailed)
		e.logger.Error("stolen job failed", "job", id, "node", node, "err", errMsg)
	}
	return nil
}

// RequeueStolen returns a stolen job to the queue after its stealer
// died without reporting, burning one attempt — the same budget a
// crash recovery charges. A spent budget fails the job. j.mu is held
// across the state check, the journal append, and the attempt bump, so
// a late CompleteStolen cannot slip between them: it either lands
// first (and the requeue sees a terminal job) or arrives after the
// bump and is fenced off by its stale attempt.
func (e *engine) RequeueStolen(ctx context.Context, id string) error {
	j, err := e.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.state != StateRunning {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("serve: requeue stolen job %s: state is %s, not running", id, st)
	}
	attempt := j.attempts + 1
	if e.maxAttempts > 0 && attempt >= e.maxAttempts {
		reason := fmt.Sprintf("stealer died; attempt budget exhausted (%d/%d)", attempt, e.maxAttempts)
		if jerr := e.journalState(ctx, id, StateFailed, reason, attempt); jerr != nil {
			j.mu.Unlock()
			e.metrics.Counter("serve.journal_errors").Inc()
			return fmt.Errorf("serve: journal steal failure: %w", jerr)
		}
		j.finishLocked(StateFailed, reason)
		j.mu.Unlock()
		e.metrics.Counter("serve.jobs_failed").Inc()
		e.accountFinish(j.tenant, StateFailed)
		return nil
	}
	if jerr := e.journalState(ctx, id, StateQueued, "", attempt); jerr != nil {
		j.mu.Unlock()
		e.metrics.Counter("serve.journal_errors").Inc()
		return fmt.Errorf("serve: journal steal requeue: %w", jerr)
	}
	j.state = StateQueued
	j.attempts = attempt
	j.started = time.Time{}
	j.mu.Unlock()
	// Re-admission bypasses the token bucket: the job's quota was
	// charged at its original submission.
	if _, _, qerr := e.queue.push(j, true); qerr != nil {
		j.mu.Lock()
		j.finishLocked(StateFailed, "requeue after stealer death: queue full")
		j.mu.Unlock()
		e.metrics.Counter("serve.jobs_failed").Inc()
		e.accountFinish(j.tenant, StateFailed)
		return fmt.Errorf("%w: requeue of stolen job %s", ErrQueueFull, id)
	}
	return nil
}

// setSeq raises the job-ID sequence to at least n, so IDs minted after
// a recovery never collide with journaled ones.
func (e *engine) setSeq(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n > e.seq {
		e.seq = n
	}
}

// finishLocked moves the job to a terminal state. Caller holds j.mu.
func (j *job) finishLocked(s State, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.errMsg = errMsg
	j.finished = time.Now() //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
	if j.release != nil {
		j.release()
	}
	close(j.done)
}

// counts returns the number of non-terminal jobs by state.
func (e *engine) counts() (queued, running int) {
	e.mu.Lock()
	jobs := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

func (e *engine) worker(baseCtx context.Context) {
	defer e.wg.Done()
	for {
		j, ok := e.queue.pop()
		if !ok {
			return
		}
		e.metrics.Gauge("serve.jobs_queued").Set(float64(e.queue.len()))
		e.runOne(baseCtx, j)
	}
}

// runOne executes one dequeued job end to end. baseCtx is the
// engine's hard-stop context, threaded in from the worker loop.
func (e *engine) runOne(baseCtx context.Context, j *job) {
	// Wait out the submission's journal append (Submit enqueues before
	// it journals), so this job's records always follow its admission
	// record and a poisoned submission is seen as terminal below.
	<-j.admitted
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	attempt := j.attempts
	j.mu.Unlock()

	// Journal the start before the job observably runs. A job whose
	// start cannot be journaled must not run: its work would be
	// invisible to recovery, so it fails here instead.
	if jerr := e.journalState(baseCtx, j.id, StateRunning, "", attempt); jerr != nil {
		e.metrics.Counter("serve.journal_errors").Inc()
		j.mu.Lock()
		j.finishLocked(StateFailed, "start not journaled: "+jerr.Error())
		j.mu.Unlock()
		e.metrics.Counter("serve.jobs_failed").Inc()
		e.accountFinish(j.tenant, StateFailed)
		e.logger.Error("job failed", "job", j.id, "err", jerr)
		return
	}

	j.mu.Lock()
	if j.state.Terminal() { // cancelled in the journaling window
		j.mu.Unlock()
		return
	}
	timeout := e.jobTimeout
	if j.req.TimeoutMS > 0 {
		timeout = time.Duration(j.req.TimeoutMS) * time.Millisecond
	}
	if e.maxTimeout > 0 && (timeout <= 0 || timeout > e.maxTimeout) {
		timeout = e.maxTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(baseCtx)
	}
	j.state = StateRunning
	j.started = time.Now() //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	// The job's observability is private: its own registry (progress
	// counters) and tracer (span tree), plus the server's logger.
	ctx = obs.WithMetrics(ctx, j.metrics)
	ctx = obs.WithTracer(ctx, j.tracer)
	ctx = obs.WithLogger(ctx, e.logger)
	ctx, sp := obs.StartSpan(ctx, "serve.job")
	sp.SetStr("job", j.id)
	sp.SetStr("kind", j.req.Kind)

	e.metrics.Gauge("serve.jobs_running").Set(float64(e.running(+1)))
	e.logger.Info("job started", "job", j.id, "kind", j.req.Kind, "attempt", attempt)
	res, err := e.invoke(ctx, j)
	sp.End()
	e.metrics.Gauge("serve.jobs_running").Set(float64(e.running(-1)))
	elapsed := time.Since(j.started)
	e.metrics.Histogram("serve.job_duration_ms", obs.DefaultDurationBucketsMS).
		Observe(float64(elapsed.Milliseconds()))
	e.logSlowJob(j, elapsed)

	j.mu.Lock()
	cancelWant := j.cancelWant
	j.mu.Unlock()
	var final State
	var msg string
	switch {
	case err == nil:
		final = StateDone
	case cancelWant || errors.Is(err, context.Canceled):
		// DELETE /jobs/{id} or shutdown: both surface as cancelled.
		final, msg = StateCancelled, err.Error()
	default:
		final, msg = StateFailed, err.Error()
	}
	// Journal the outcome before it becomes observable. A completed job
	// whose "done" cannot be journaled is not acknowledged as done —
	// recovery would re-run it and a client could see the same job
	// finish twice — so it degrades to failed with the journal error.
	if jerr := e.journalState(ctx, j.id, final, msg, attempt); jerr != nil {
		e.metrics.Counter("serve.journal_errors").Inc()
		if final == StateDone {
			final, msg, res = StateFailed, "result not journaled: "+jerr.Error(), nil
			if j2 := e.journalState(ctx, j.id, final, msg, attempt); j2 != nil {
				e.logger.Error("journal append failed", "job", j.id, "err", j2)
			}
		} else {
			e.logger.Error("journal append failed", "job", j.id, "err", jerr)
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	switch final {
	case StateDone:
		j.result = res
		// Fill the replay cache before the done channel closes, so a
		// client that waits for this job and immediately resubmits the
		// identical request always hits.
		e.cacheFill(j.req, res)
		j.finishLocked(StateDone, "")
		e.metrics.Counter("serve.jobs_done").Inc()
		e.accountFinish(j.tenant, StateDone)
		e.logger.Info("job done", "job", j.id)
	case StateCancelled:
		j.finishLocked(StateCancelled, msg)
		e.metrics.Counter("serve.jobs_cancelled").Inc()
		e.accountFinish(j.tenant, StateCancelled)
		e.logger.Info("job cancelled", "job", j.id, "err", msg)
	default:
		j.finishLocked(StateFailed, msg)
		e.metrics.Counter("serve.jobs_failed").Inc()
		e.accountFinish(j.tenant, StateFailed)
		e.logger.Error("job failed", "job", j.id, "err", msg)
	}
}

// logSlowJob names where a slow job's time went: when the run exceeds
// the configured threshold, every finished span is logged with its
// duration — for an identify/remedy job that is the level-by-level
// lattice timings (core.identify.level spans), exactly the breakdown
// the hot-path work needs without anyone racing to fetch the trace.
func (e *engine) logSlowJob(j *job, elapsed time.Duration) {
	if e.slowJob <= 0 || elapsed < e.slowJob {
		return
	}
	e.metrics.Counter("serve.jobs_slow").Inc()
	e.logger.Warn("slow job", "job", j.id, "kind", j.req.Kind,
		"elapsed_ms", elapsed.Milliseconds(), "threshold_ms", e.slowJob.Milliseconds())
	for _, ss := range j.tracer.Snapshot() {
		if ss.Unfinished {
			continue
		}
		e.logger.Warn("slow job span", "job", j.id, "span", ss.Name,
			"start_us", ss.StartUS, "duration_us", ss.DurationUS)
	}
}

// invoke runs the job's pipeline stage, converting a panic anywhere
// under the runner (including injected worker crashes that escape the
// library's own recovery) into an error so one bad job cannot take a
// worker goroutine down with it.
func (e *engine) invoke(ctx context.Context, j *job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if err := faults.FireCtx(ctx, faults.ServeJob, j.id); err != nil {
		return nil, err
	}
	return e.run(ctx, j)
}

// running adjusts and returns the live-worker gauge count.
func (e *engine) running(delta int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seqRunning += delta
	return e.seqRunning
}

// demote quiesces the engine for a live deposed-node rejoin: every
// known job is forgotten, running work is cancelled, the queue is
// drained — but the workers stay up and intake stays open, so a later
// Promote can rebuild state from the re-replicated journal on the same
// engine. Nothing is journaled: the caller has already fenced the
// journal (a deposed node's originated appends must never land), and
// any forked suffix these jobs sat on is about to be truncated or
// snapshot-replaced by the new leader's stream — the fleet's journal
// owns their fate now. Returns the number of live jobs dropped.
func (e *engine) demote() int {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0
	}
	jobs := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.jobs = make(map[string]*job)
	e.order = nil
	e.idem = make(map[string]*job)
	e.idemOrder = nil
	e.mu.Unlock()
	dropped := 0
	for _, j := range jobs {
		j.mu.Lock()
		switch {
		case j.state.Terminal():
			// History only; nothing to unwind.
		case j.state == StateRunning && j.cancel != nil:
			// The worker unwinds via its cancelled context. Its final
			// append hits the fence, so the outcome degrades to a local
			// failure and can never be acked from this deposed node.
			j.cancelWant = true
			j.cancel()
			dropped++
		default:
			// Queued, mid-admission, or stolen-out with no local worker:
			// finish locally without a journal record. The fence forbids
			// the append, and the record would sit on a superseded suffix
			// anyway — the new leader's log decides what became of the job.
			//lint:allow journalgate deposed-node demotion is local-only by design: the journal is fenced and the new leader's replicated log supersedes these jobs' state
			j.finishLocked(StateCancelled, "node demoted; rejoining the fleet")
			e.accountFinish(j.tenant, StateCancelled)
			dropped++
		}
		j.mu.Unlock()
	}
	// Empty the tenant FIFOs so stale (now-terminal) entries don't hold
	// per-tenant depth against jobs a later Promote restores. Workers
	// racing this drain just skip the terminal jobs they pop.
	for {
		if _, ok := e.queue.tryPop(); !ok {
			break
		}
	}
	e.metrics.Counter("serve.jobs_demoted").Add(int64(dropped))
	return dropped
}

// Shutdown stops intake, discards the queue (those jobs go
// cancelled), and waits for running jobs to drain. If ctx expires
// first the engine cancels its base context — every running job stops
// at its next cooperative checkpoint and is marked cancelled — and
// waits for the workers to exit.
func (e *engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	// Drain queued jobs: they never ran, they are cancelled outright.
	// close stops intake and wakes every worker blocked in pop. Jobs
	// already cancelled while queued (still parked in a tenant FIFO) were
	// finished and accounted then; skip them here.
	for _, j := range e.queue.close() {
		j.mu.Lock()
		if j.state.Terminal() {
			j.mu.Unlock()
			continue
		}
		// Journal the cancellation before it becomes observable —
		// Cancel's discipline, found missing here by journalgate:
		// without the record, a crash after this drain re-queues (and
		// re-runs) jobs whose submitters were already told "cancelled".
		// Unlike Cancel we proceed on journal failure: the server is
		// going away either way, and a loud error beats wedging
		// shutdown on a failing disk.
		if jerr := e.journalState(ctx, j.id, StateCancelled, "server shutting down", j.attempts); jerr != nil {
			e.metrics.Counter("serve.journal_errors").Inc()
			e.logger.Error("journal shutdown cancellation", "job", j.id, "err", jerr)
		}
		j.finishLocked(StateCancelled, "server shutting down")
		j.mu.Unlock()
		e.metrics.Counter("serve.jobs_cancelled").Inc()
		e.accountFinish(j.tenant, StateCancelled)
	}
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline hit: hard-cancel the stragglers and wait for
		// the cooperative unwind (bounded by the pipeline's checkpoint
		// stride, not by the jobs' full runtime).
		err = ctx.Err()
		e.abort()
		<-done
	}
	e.abort() // release the base context either way
	return err
}
