package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Engine errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull is returned by Submit when the bounded queue has no
	// room — the server's backpressure signal (429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown is returned by Submit once Shutdown has begun
	// (503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrJobNotFound is returned for an unknown job ID (404).
	ErrJobNotFound = errors.New("serve: job not found")
	// ErrJobNotDone is returned when fetching the result of a job that
	// has not reached a terminal state (409).
	ErrJobNotDone = errors.New("serve: job not finished")
)

// job is the engine's internal record for one submitted job. The
// mutex guards the mutable lifecycle fields; the immutable identity
// fields (id, req) are safe to read bare.
type job struct {
	id  string
	req JobRequest

	mu         sync.Mutex
	state      State
	errMsg     string
	result     any
	cancel     context.CancelFunc // set while running
	cancelWant bool               // Cancel called; disambiguates ctx.Canceled
	enqueued   time.Time
	started    time.Time
	finished   time.Time

	// metrics is the job's private registry: the pipeline's counters
	// accumulate here and GET /jobs/{id} snapshots them as progress.
	metrics *obs.Registry
	// tracer records the job's span tree, served by /jobs/{id}/trace.
	tracer *obs.Tracer
	// release returns the dataset reference taken at submission.
	release func()
	// done is closed on entry to any terminal state.
	done chan struct{}
}

// status snapshots the job's public view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.req.Kind,
		DatasetID:  j.req.DatasetID,
		State:      j.state,
		Error:      j.errMsg,
		EnqueuedAt: j.enqueued,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if counters := j.metrics.Snapshot().Counters; len(counters) > 0 {
		st.Progress = counters
	}
	return st
}

// runnerFunc executes one job's pipeline work under its context.
type runnerFunc func(ctx context.Context, j *job) (any, error)

// engine is the bounded worker pool behind POST /jobs. Jobs flow
// through a buffered channel (the queue); a fixed set of worker
// goroutines drains it. Submission never blocks: a full queue is an
// immediate ErrQueueFull.
type engine struct {
	mu         sync.Mutex
	jobs       map[string]*job
	order      []string // submission order, for GET /jobs
	queue      chan *job
	closed     bool
	seq        int
	seqRunning int // currently-running job count, behind mu
	wg         sync.WaitGroup
	abort      context.CancelFunc // cancels the workers' base context, hard-stopping running jobs

	jobTimeout time.Duration // default per-job deadline
	maxTimeout time.Duration // clamp for request-supplied deadlines
	run        runnerFunc
	metrics    *obs.Registry // server-level registry
	logger     *obs.Logger
}

func newEngine(workers, queueDepth int, jobTimeout, maxTimeout time.Duration, run runnerFunc, m *obs.Registry, lg *obs.Logger) *engine {
	if workers <= 0 {
		workers = 4
	}
	if queueDepth <= 0 {
		queueDepth = 16
	}
	// The base context is cancelled by abort to hard-stop running
	// jobs. It is handed to each worker goroutine as a parameter —
	// never stored on the engine — so cancellation stays attached to
	// the call tree (ctxfirst contract).
	baseCtx, abort := context.WithCancel(context.Background())
	e := &engine{
		jobs:       map[string]*job{},
		queue:      make(chan *job, queueDepth),
		abort:      abort,
		jobTimeout: jobTimeout,
		maxTimeout: maxTimeout,
		run:        run,
		metrics:    m,
		logger:     lg,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker(baseCtx)
	}
	return e
}

// Submit validates nothing (the handler already has), records the job
// and enqueues it. release is the dataset reference to return when
// the job reaches a terminal state; on submission failure Submit
// releases it itself.
func (e *engine) Submit(req JobRequest, release func()) (*job, error) {
	j := &job{
		req:      req,
		state:    StateQueued,
		enqueued: time.Now(), //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
		metrics:  obs.NewRegistry(),
		tracer:   obs.NewTracer(),
		release:  release,
		done:     make(chan struct{}),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		release()
		return nil, ErrShuttingDown
	}
	e.seq++
	j.id = fmt.Sprintf("job-%06d", e.seq)
	select {
	case e.queue <- j:
	default:
		e.mu.Unlock()
		release()
		e.metrics.Counter("serve.jobs_rejected").Inc()
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, cap(e.queue))
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.mu.Unlock()
	e.metrics.Counter("serve.jobs_submitted").Inc()
	e.metrics.Gauge("serve.jobs_queued").Set(float64(len(e.queue)))
	e.logger.Info("job queued", "job", j.id, "kind", req.Kind, "dataset", req.DatasetID)
	return j, nil
}

// Job returns the engine's record for id.
func (e *engine) Job(id string) (*job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	return j, nil
}

// List returns every job's status in submission order.
func (e *engine) List() []JobStatus {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, e.jobs[id])
	}
	e.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation: a queued job goes terminal
// immediately; a running job has its context cancelled and goes
// terminal when the pipeline unwinds to its next cooperative
// checkpoint. Cancelling a terminal job is a no-op.
func (e *engine) Cancel(id string) (JobStatus, error) {
	j, err := e.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	j.cancelWant = true
	switch j.state {
	case StateQueued:
		// The worker that eventually dequeues it sees the terminal
		// state and skips.
		j.finishLocked(StateCancelled, "cancelled while queued")
	case StateRunning:
		j.cancel()
	}
	j.mu.Unlock()
	return j.status(), nil
}

// finishLocked moves the job to a terminal state. Caller holds j.mu.
func (j *job) finishLocked(s State, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.errMsg = errMsg
	j.finished = time.Now() //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
	if j.release != nil {
		j.release()
	}
	close(j.done)
}

// counts returns the number of non-terminal jobs by state.
func (e *engine) counts() (queued, running int) {
	e.mu.Lock()
	jobs := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

func (e *engine) worker(baseCtx context.Context) {
	defer e.wg.Done()
	for j := range e.queue {
		e.metrics.Gauge("serve.jobs_queued").Set(float64(len(e.queue)))
		e.runOne(baseCtx, j)
	}
}

// runOne executes one dequeued job end to end. baseCtx is the
// engine's hard-stop context, threaded in from the worker loop.
func (e *engine) runOne(baseCtx context.Context, j *job) {
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	timeout := e.jobTimeout
	if j.req.TimeoutMS > 0 {
		timeout = time.Duration(j.req.TimeoutMS) * time.Millisecond
	}
	if e.maxTimeout > 0 && (timeout <= 0 || timeout > e.maxTimeout) {
		timeout = e.maxTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(baseCtx)
	}
	j.state = StateRunning
	j.started = time.Now() //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	// The job's observability is private: its own registry (progress
	// counters) and tracer (span tree), plus the server's logger.
	ctx = obs.WithMetrics(ctx, j.metrics)
	ctx = obs.WithTracer(ctx, j.tracer)
	ctx = obs.WithLogger(ctx, e.logger)
	ctx, sp := obs.StartSpan(ctx, "serve.job")
	sp.SetStr("job", j.id)
	sp.SetStr("kind", j.req.Kind)

	e.metrics.Gauge("serve.jobs_running").Set(float64(e.running(+1)))
	e.logger.Info("job started", "job", j.id, "kind", j.req.Kind)
	res, err := e.invoke(ctx, j)
	sp.End()
	e.metrics.Gauge("serve.jobs_running").Set(float64(e.running(-1)))
	e.metrics.Histogram("serve.job_duration_ms", obs.DefaultDurationBucketsMS).
		Observe(float64(time.Since(j.started).Milliseconds()))

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.result = res
		j.finishLocked(StateDone, "")
		e.metrics.Counter("serve.jobs_done").Inc()
		e.logger.Info("job done", "job", j.id)
	case j.cancelWant || errors.Is(err, context.Canceled):
		// DELETE /jobs/{id} or shutdown: both surface as cancelled.
		j.finishLocked(StateCancelled, err.Error())
		e.metrics.Counter("serve.jobs_cancelled").Inc()
		e.logger.Info("job cancelled", "job", j.id, "err", err)
	default:
		j.finishLocked(StateFailed, err.Error())
		e.metrics.Counter("serve.jobs_failed").Inc()
		e.logger.Error("job failed", "job", j.id, "err", err)
	}
}

// invoke runs the job's pipeline stage, converting a panic anywhere
// under the runner (including injected worker crashes that escape the
// library's own recovery) into an error so one bad job cannot take a
// worker goroutine down with it.
func (e *engine) invoke(ctx context.Context, j *job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if err := faults.FireCtx(ctx, faults.ServeJob, j.id); err != nil {
		return nil, err
	}
	return e.run(ctx, j)
}

// running adjusts and returns the live-worker gauge count.
func (e *engine) running(delta int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seqRunning += delta
	return e.seqRunning
}

// Shutdown stops intake, discards the queue (those jobs go
// cancelled), and waits for running jobs to drain. If ctx expires
// first the engine cancels its base context — every running job stops
// at its next cooperative checkpoint and is marked cancelled — and
// waits for the workers to exit.
func (e *engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	// Drain queued jobs: they never ran, they are cancelled outright.
	for {
		select {
		case j := <-e.queue:
			j.mu.Lock()
			j.finishLocked(StateCancelled, "server shutting down")
			j.mu.Unlock()
			e.metrics.Counter("serve.jobs_cancelled").Inc()
		default:
			close(e.queue)
			e.mu.Unlock()
			goto drained
		}
	}
drained:
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline hit: hard-cancel the stragglers and wait for
		// the cooperative unwind (bounded by the pipeline's checkpoint
		// stride, not by the jobs' full runtime).
		err = ctx.Err()
		e.abort()
		<-done
	}
	e.abort() // release the base context either way
	return err
}
