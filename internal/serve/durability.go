package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/obs"
)

// This file is the restart half of the durability contract: it turns
// the journal and spill area left by a dead server into a live one.
// Datasets come back first (so recovered jobs can re-acquire their
// inputs), then the journal is reduced to a job table and each job is
// restored per its proven state:
//
//   - terminal (done/failed/cancelled): queryable history. Result
//     payloads are not retained across restarts, so fetching a
//     recovered done job's result returns ErrResultGone (410).
//   - queued: re-enters the queue unchanged — it never ran.
//   - running / interrupted: the crash orphaned it. It is journaled
//     as interrupted with a bumped attempt counter and re-queued to
//     resume from its last completed identify checkpoint, until its
//     attempt budget (Config.MaxAttempts) is spent, at which point it
//     is journaled failed.
//
// Every state written during recovery is appended to the same journal
// before the job is restored, so a crash *during* recovery replays to
// the same table.

// recover restores registry and engine state from s.store. Called by
// NewDurable before the worker pool starts, so no job runs against a
// partially restored registry. The node reports not-ready for the
// duration of the replay.
func (s *Server) recover(ctx context.Context) error {
	s.SetNotReady("replaying journal")
	if err := s.recoverInto(ctx, true); err != nil {
		return err
	}
	s.SetReady()
	return nil
}

// recoverStandby is the follower half of recovery: datasets and the
// journal's bookkeeping (sequence, torn tail) are restored so the node
// can receive replicated records, but jobs are not — and nothing is
// appended, because a follower's journal must stay a positional
// replica of its leader's. The node stays not-ready.
func (s *Server) recoverStandby(ctx context.Context) error {
	return s.recoverInto(ctx, false)
}

// Promote turns a standby follower into a serving leader: the
// accumulated replicated journal is replayed into the engine — jobs
// the dead leader finished become history, its orphaned running job is
// re-queued to resume from its last replicated checkpoint — and the
// node goes ready. Jobs the engine already knows (a defensive case;
// a standby's engine is normally empty) are skipped, so Promote is
// safe to call on a node that has partially recovered before.
//
// The caller (internal/cluster) appends the new term's RecTerm before
// calling Promote, so every record the promotion itself appends is
// already fenced under the new term.
func (s *Server) Promote(ctx context.Context) error {
	s.SetNotReady("replaying journal")
	if err := s.recoverInto(ctx, true); err != nil {
		s.SetNotReady("promotion failed: " + err.Error())
		return err
	}
	s.SetReady()
	return nil
}

// Demote is Promote's inverse, run when the cluster deposes this node
// while it is still alive: the engine forgets every job, cancels
// running work, and drains its queue — without journaling anything,
// because the cluster fences the journal before calling Demote and the
// new leader's replicated log supersedes whatever this node was doing.
// The engine itself stays up (workers, cache, registry), so the node
// can re-enter as a follower and even be promoted again later, all
// without a process restart. The caller owns the readiness reason.
func (s *Server) Demote(ctx context.Context) {
	dropped := s.engine.demote()
	obs.LoggerFrom(ctx).Scope("serve").Info("engine demoted for rejoin", "jobs_dropped", dropped)
}

// recoverInto is the shared recovery walk. restoreJobs selects the
// full mode (jobs restored, recovery records appended) versus the
// standby mode (bookkeeping only, nothing appended).
func (s *Server) recoverInto(ctx context.Context, restoreJobs bool) error {
	ctx = obs.WithLogger(obs.WithMetrics(ctx, s.metrics), s.logger)
	ctx, sp := obs.StartSpan(ctx, "serve.recover")
	defer sp.End()

	s.engine.journal = s.store.Journal()

	if err := s.restoreDatasets(ctx); err != nil {
		return err
	}

	tbl, err := s.store.Recover(ctx)
	if err != nil {
		return fmt.Errorf("serve: recover journal: %w", err)
	}
	s.engine.setSeq(tbl.MaxJobSeq)
	s.recTerm, s.recLeader = tbl.Term, tbl.Leader
	s.recTermStarts = append([]durable.TermStart(nil), tbl.TermStarts...)
	sp.SetInt("jobs", int64(len(tbl.Jobs)))
	if tbl.Replay.Torn {
		s.logger.Warn("journal tail damaged; recovering the proven prefix",
			"records", tbl.NextSeq, "reason", tbl.Replay.Reason)
		// Cut the damaged bytes before any new append lands behind them:
		// an append after a torn tail would be unreadable on the next
		// replay, silently shortening the journal's proven history.
		// NextSeq is absolute (snapshot-folded prefix + intact tail).
		if err := s.store.Journal().TruncateTo(ctx, tbl.NextSeq); err != nil {
			return fmt.Errorf("serve: cut torn journal tail: %w", err)
		}
	}
	s.store.Journal().InitSequence(tbl.NextSeq)

	if !restoreJobs {
		s.logger.Info("standby recovery complete",
			"datasets", s.registry.Len(), "records", tbl.Replay.Records)
		return nil
	}

	requeued := 0
	for _, rec := range tbl.Jobs {
		if _, err := s.engine.Job(rec.ID); err == nil {
			continue // already restored by an earlier recovery pass
		}
		rq, err := s.restoreJob(ctx, rec)
		if err != nil {
			return err
		}
		if rq {
			requeued++
		}
	}
	sp.SetInt("requeued", int64(requeued))
	s.metrics.Counter("serve.jobs_requeued").Add(int64(requeued))
	s.logger.Info("recovery complete",
		"datasets", s.registry.Len(), "jobs", len(tbl.Jobs), "requeued", requeued)
	return nil
}

// restoreDatasets re-admits every committed spilled dataset under its
// original ID. A dataset that no longer parses is skipped with a
// warning — jobs referencing it fail at restore with a clear error —
// rather than aborting the whole recovery.
func (s *Server) restoreDatasets(ctx context.Context) error {
	spilled, err := s.store.LoadDatasets(ctx)
	if err != nil {
		return fmt.Errorf("serve: recover datasets: %w", err)
	}
	for _, sd := range spilled {
		if err := s.restoreOneDataset(ctx, sd); err != nil {
			s.logger.Warn("skipping unrecoverable dataset", "id", sd.Meta.ID, "err", err)
		}
	}
	return nil
}

func (s *Server) restoreOneDataset(ctx context.Context, sd durable.SpilledDataset) error {
	f, err := os.Open(sd.CSVPath)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errdiscard read-only file; close errors cannot lose data
	// Spilled CSVs are the canonical WriteCSV form the server itself
	// produced, so the upload caps do not apply on the way back in.
	d, err := dataset.ReadCSVLimit(f, sd.Meta.Target, sd.Meta.Protected, 0, 0)
	if err != nil {
		return err
	}
	_, err = s.registry.Restore(ctx, sd.Meta.ID, sd.Meta.Name, d, sd.Meta.Bytes)
	return err
}

// restoreJob rebuilds one journaled job. It returns whether the job
// re-entered the queue. Only journal-append failures are fatal (the
// recovery cannot prove its own writes); everything else degrades to
// a failed job carrying the reason.
func (s *Server) restoreJob(ctx context.Context, rec *durable.JobRecord) (bool, error) {
	j := &job{
		id:       rec.ID,
		state:    State(rec.State),
		errMsg:   rec.Error,
		attempts: rec.Attempt,
		metrics:  obs.NewRegistry(),
		tracer:   obs.NewTracer(),
		done:     make(chan struct{}),
		enqueued: time.Now(), //lint:allow determinism job lifecycle timestamp is reporting metadata, not a pipeline input
	}
	if len(rec.Request) > 0 {
		if err := json.Unmarshal(rec.Request, &j.req); err != nil {
			return false, s.restoreFailed(ctx, j, rec, "journaled request undecodable: "+err.Error())
		}
	}

	if j.state.Terminal() {
		// History only: the terminal timestamp is lost with the process,
		// so finished mirrors the restore time. No new journal record —
		// the journal already proves this outcome.
		j.finished = j.enqueued
		close(j.done)
		return false, s.restoreInsert(ctx, j, rec)
	}

	if j.req.Kind == "" || j.req.DatasetID == "" {
		return false, s.restoreFailed(ctx, j, rec, "journaled request incomplete")
	}

	switch j.state {
	case StateQueued:
		// Never ran; same attempt, no new record.
	case StateRunning, StateInterrupted:
		attempt := rec.Attempt + 1
		if attempt >= s.cfg.MaxAttempts {
			return false, s.restoreFailed(ctx, j, rec, fmt.Sprintf(
				"interrupted by restart; attempt budget exhausted (%d/%d)", attempt, s.cfg.MaxAttempts))
		}
		if err := s.engine.journalState(ctx, j.id, StateInterrupted, "interrupted by restart", attempt); err != nil {
			return false, fmt.Errorf("serve: journal interruption: %w", err)
		}
		j.attempts = attempt
		j.resume = decodeCheckpoints(rec)
	default:
		return false, s.restoreFailed(ctx, j, rec, "journaled state unknown: "+string(j.state))
	}

	// Re-take the dataset reference the original submission held. In a
	// cluster the dataset may live on another node's shard (the dead
	// leader pushed it there); acquireDataset fetches it on miss.
	_, release, err := s.acquireDataset(ctx, j.req.DatasetID)
	if err != nil {
		return false, s.restoreFailed(ctx, j, rec, "dataset not recovered: "+err.Error())
	}
	j.release = release
	j.state = StateQueued
	j.errMsg = ""
	if err := s.engine.restore(j); err != nil {
		release()
		j.release = nil
		return false, s.restoreFailed(ctx, j, rec, "re-queue failed: "+err.Error())
	}
	s.logger.Info("job re-queued after restart",
		"job", j.id, "attempt", j.attempts, "checkpoints", len(j.resume))
	return true, nil
}

// restoreFailed journals the job as failed with reason and inserts it
// as failed history. The journal append must succeed: a recovery that
// cannot write its own conclusions would replay differently next time.
func (s *Server) restoreFailed(ctx context.Context, j *job, rec *durable.JobRecord, reason string) error {
	if err := s.engine.journalState(ctx, j.id, StateFailed, reason, j.attempts); err != nil {
		return fmt.Errorf("serve: journal recovery failure: %w", err)
	}
	j.state = StateFailed
	j.errMsg = reason
	j.finished = j.enqueued
	close(j.done)
	s.metrics.Counter("serve.jobs_failed").Inc()
	s.logger.Warn("recovered job marked failed", "job", j.id, "reason", reason)
	return s.restoreInsert(ctx, j, rec)
}

// restoreInsert registers a terminal recovered job with the engine.
func (s *Server) restoreInsert(_ context.Context, j *job, rec *durable.JobRecord) error {
	if j.req.IdempotencyKey == "" {
		j.req.IdempotencyKey = rec.IdemKey
	}
	if err := s.engine.restore(j); err != nil {
		return fmt.Errorf("serve: restore job %s: %w", j.id, err)
	}
	return nil
}

// decodeCheckpoints turns a job's journaled checkpoint payloads into
// resume snapshots, skipping any that no longer decode (a corrupt
// checkpoint costs re-running its level, nothing more).
func decodeCheckpoints(rec *durable.JobRecord) []core.LevelSnapshot {
	levels := rec.CheckpointLevels()
	out := make([]core.LevelSnapshot, 0, len(levels))
	for _, lv := range levels {
		var snap core.LevelSnapshot
		if err := json.Unmarshal(rec.Checkpoints[lv], &snap); err != nil {
			continue
		}
		if snap.Level < 1 {
			continue
		}
		out = append(out, snap)
	}
	return out
}
