package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/faults"
)

// Tests for the liveness/readiness split, the not-ready-as-backpressure
// client behavior, and the bounded idempotency-key table.

func TestLivezReadyzSplit(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Ready by default: both probes answer 200.
	if err := c.Livez(ctx); err != nil {
		t.Fatalf("livez on ready server: %v", err)
	}
	h, err := c.Readyz(ctx)
	if err != nil || !h.Ready {
		t.Fatalf("readyz on ready server: %+v, %v", h, err)
	}

	srv.SetNotReady("replaying journal")

	// Liveness is unaffected; readiness is a 503 carrying the reason
	// and a Retry-After hint.
	if err := c.Livez(ctx); err != nil {
		t.Fatalf("livez on not-ready server: %v", err)
	}
	_, err = c.Readyz(ctx)
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz on not-ready server: %v, want 503", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("readyz Retry-After = %v, want 1s", ae.RetryAfter)
	}

	// API traffic is gated the same way; /healthz still answers 200
	// with the detail.
	_, err = c.Job(ctx, "job-000001")
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.RetryAfter != time.Second {
		t.Fatalf("API call on not-ready server: %v, want 503 + Retry-After", err)
	}
	hh, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("healthz on not-ready server: %v", err)
	}
	if hh.Ready || hh.Reason != "replaying journal" {
		t.Fatalf("healthz body = %+v, want ready=false reason=replaying journal", hh)
	}

	srv.SetReady()
	if h, err := c.Readyz(ctx); err != nil || !h.Ready {
		t.Fatalf("readyz after SetReady: %+v, %v", h, err)
	}
}

// TestClientTreatsNotReadyLike429 is the satellite contract: a node
// that answers 503 not-ready must look like backpressure to the
// retrying client — backed off and retried, not failed.
func TestClientTreatsNotReadyLike429(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	srv.SetNotReady("no current term")

	var hits atomic.Int32
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 2 {
			srv.SetReady() // the node finishes its replay mid-retry-loop
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer counting.Close()

	c := NewRetryingClient(counting.URL, fastPolicy())
	if _, err := c.Job(context.Background(), "job-missing"); err != nil {
		// 404 is the *ready* answer: the request got through once the
		// node came up. Any 503-shaped error means the retry loop gave up
		// on not-ready, which is the regression this test guards.
		var ae *apiError
		if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
			t.Fatalf("request against waking server: %v, want eventual 404", err)
		}
	}
	if got := hits.Load(); got < 2 {
		t.Fatalf("server saw %d requests, want at least 2 (a retry after not-ready)", got)
	}
}

func TestIdemTableBounded(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 2, QueueDepth: 4, MaxIdemKeys: 8})
	info := uploadCompas(t, c, 200, 7)

	// Far more keyed submissions than the cap, each run to completion.
	for i := 0; i < 40; i++ {
		st, err := c.SubmitJob(ctx, JobRequest{
			Kind: "train", DatasetID: info.ID,
			IdempotencyKey: fmt.Sprintf("bounded-%03d", i),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st, err = c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != StateDone {
			t.Fatalf("job %d: %s %v (%s)", i, st.State, err, st.Error)
		}
	}

	srv.engine.mu.Lock()
	size, order := len(srv.engine.idem), len(srv.engine.idemOrder)
	srv.engine.mu.Unlock()
	if size > 8 {
		t.Fatalf("idem table holds %d keys after 40 terminal jobs, cap is 8", size)
	}
	if order > 8 {
		t.Fatalf("idemOrder holds %d entries, cap is 8", order)
	}
	if got := srv.Metrics().Snapshot().Counters["serve.idem_keys_evicted"]; got == 0 {
		t.Fatal("no evictions counted despite 40 keys against a cap of 8")
	}
}

// TestIdemTableNeverEvictsLiveKeys pins the safety half of the bound:
// a key whose job is still in flight survives any amount of eviction
// pressure, so retried submissions keep deduping onto it.
func TestIdemTableNeverEvictsLiveKeys(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxIdemKeys: 2})
	info := uploadCompas(t, c, 200, 7)

	release := make(chan struct{})
	var blocked sync.Once
	ready := make(chan struct{})
	faults.Set(faults.ServeJob, func(any) error {
		blocked.Do(func() { close(ready) })
		<-release
		return nil
	})
	t.Cleanup(func() { close(release); faults.Clear(faults.ServeJob) })

	live, err := c.SubmitJob(ctx, JobRequest{
		Kind: "train", DatasetID: info.ID, IdempotencyKey: "live-key",
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ready // the live job is on the worker, holding its key

	// Flood the table far past its cap of 2. These jobs queue behind
	// the blocked worker and stay live too — so the table legitimately
	// exceeds the cap — but the point is that "live-key" survives.
	for i := 0; i < 4; i++ {
		if _, err := c.SubmitJob(ctx, JobRequest{
			Kind: "train", DatasetID: info.ID, Seed: int64(i + 2),
			IdempotencyKey: fmt.Sprintf("flood-%d", i),
		}); err != nil {
			t.Fatalf("flood submit %d: %v", i, err)
		}
	}

	dup, err := c.SubmitJob(ctx, JobRequest{
		Kind: "train", DatasetID: info.ID, IdempotencyKey: "live-key",
	})
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != live.ID {
		t.Fatalf("live key stopped deduping under eviction pressure: got %s, want %s", dup.ID, live.ID)
	}
	srv.engine.mu.Lock()
	_, held := srv.engine.idem["live-key"]
	srv.engine.mu.Unlock()
	if !held {
		t.Fatal("live job's idempotency key was evicted")
	}
}

// TestRetryAfterGarbageIgnored pins the Retry-After parse: non-integer
// and negative values are ignored (no crash, no negative sleep), the
// retry loop still runs on its own backoff.
func TestRetryAfterGarbageIgnored(t *testing.T) {
	for _, hdr := range []string{"not-a-number", "-5", "1.5", ""} {
		var hits atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hits.Add(1) <= 2 {
				w.Header().Set("Retry-After", hdr)
				w.WriteHeader(http.StatusTooManyRequests)
				_ = json.NewEncoder(w).Encode(errorBody{Error: "busy"}) //lint:allow errdiscard test handler
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok"}`)) //lint:allow errdiscard test handler
		}))
		c := NewRetryingClient(srv.URL, fastPolicy())
		if _, err := c.Health(context.Background()); err != nil {
			t.Errorf("Retry-After %q: Health after retries: %v", hdr, err)
		}
		if got := hits.Load(); got != 3 {
			t.Errorf("Retry-After %q: server saw %d requests, want 3", hdr, got)
		}
		srv.Close()
	}

	// The parsed value itself: garbage and negatives decode to zero.
	for _, hdr := range []string{"junk", "-1"} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", hdr)
			w.WriteHeader(http.StatusTooManyRequests)
		}))
		c := NewClient(srv.URL)
		_, err := c.Health(context.Background())
		var ae *apiError
		if !errors.As(err, &ae) {
			t.Fatalf("Retry-After %q: err = %v, want apiError", hdr, err)
		}
		if ae.RetryAfter != 0 {
			t.Errorf("Retry-After %q parsed as %v, want 0", hdr, ae.RetryAfter)
		}
		srv.Close()
	}
}

// TestBreakerConcurrentHalfOpenProbe races many callers at an open
// breaker (run under -race): exactly one may probe at a time, the
// probe's success closes the breaker, and nobody panics or double
// probes. The assertions are structural; the race detector is the
// real judge here.
func TestBreakerConcurrentHalfOpenProbe(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`)) //lint:allow errdiscard test handler
	}))
	defer srv.Close()

	policy := RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, BreakerThreshold: 3}
	c := NewRetryingClient(srv.URL, policy)
	ctx := context.Background()

	// Trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Health(ctx); err == nil {
			t.Fatal("expected failure while server is down")
		}
	}
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("expected probe failure or fast-fail while breaker open")
	}

	// Server recovers; hammer the half-open breaker from many
	// goroutines. Every outcome must be either a success (a probe got
	// through and closed the breaker) or ErrCircuitOpen (fast-fail
	// while someone else held the probe slot).
	healthy.Store(true)
	before := hits.Load()
	var wg sync.WaitGroup
	var successes, fastFails, unexpected atomic.Int32
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Health(ctx)
			switch {
			case err == nil:
				successes.Add(1)
			case errors.Is(err, ErrCircuitOpen):
				fastFails.Add(1)
			default:
				unexpected.Add(1)
			}
		}()
	}
	wg.Wait()
	if unexpected.Load() != 0 {
		t.Fatalf("%d callers saw an unexpected error kind", unexpected.Load())
	}
	if successes.Load() == 0 {
		t.Fatal("no caller succeeded: the half-open probe never ran")
	}

	// The breaker is closed now: a fresh call goes straight through.
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("call after breaker closed: %v", err)
	}
	if hits.Load() == before {
		t.Fatal("server never saw the probe")
	}
}

// TestIdemOrderReleasedOnJournalFailure pins the dedup table's
// bookkeeping on the Submit journal-failure path: a key whose
// admission could not be journaled leaves both the table and the
// insertion-order slice, so repeated failures cannot grow idemOrder
// while the table itself stays small.
func TestIdemOrderReleasedOnJournalFailure(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store, err := durable.Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDurable(ctx, Config{Workers: 1, QueueDepth: 8}, store)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
		if err := store.Close(); err != nil {
			t.Errorf("close store: %v", err)
		}
	})
	c := NewClient(hs.URL)
	info := uploadCompas(t, c, 200, 7)

	// One keyed job that lands durably, as the baseline table entry.
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "train", DatasetID: info.ID, IdempotencyKey: "keeper"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("baseline job: %+v, %v", st, err)
	}

	// The journal refuses every further admission; each keyed submit
	// fails after its key was provisionally inserted.
	faults.Set(faults.JournalAppend, func(arg any) error {
		if rec, ok := arg.(durable.Record); ok && rec.Type == durable.RecSubmit {
			return errors.New("injected: submit append failed")
		}
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.JournalAppend) })
	for i := 0; i < 10; i++ {
		if _, err := c.SubmitJob(ctx, JobRequest{
			Kind: "train", DatasetID: info.ID,
			IdempotencyKey: fmt.Sprintf("leak-%02d", i),
		}); err == nil {
			t.Fatalf("submit %d under failing journal succeeded", i)
		}
	}
	faults.Clear(faults.JournalAppend)

	srv.engine.mu.Lock()
	size, order := len(srv.engine.idem), len(srv.engine.idemOrder)
	srv.engine.mu.Unlock()
	if size != 1 || order != 1 {
		t.Fatalf("idem table = %d keys / %d order entries after 10 failed keyed submissions, want 1/1", size, order)
	}

	// A failed key is fully released: reusing it admits a fresh job
	// instead of deduping onto a submission that never became durable.
	st2, err := c.SubmitJob(ctx, JobRequest{
		Kind: "train", DatasetID: info.ID, IdempotencyKey: "leak-00",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("reused key deduped onto an unrelated job %s", st2.ID)
	}
	if st2, err = c.Wait(ctx, st2.ID, 5*time.Millisecond); err != nil || st2.State != StateDone {
		t.Fatalf("job on reused key: %+v, %v", st2, err)
	}
}
