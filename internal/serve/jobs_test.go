package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// gateServeJob installs a ServeJob hook that reports each job a worker
// picks up on entered, then blocks until gate is closed. Closing the
// gate releases every blocked and future invocation.
func gateServeJob(t *testing.T) (entered chan string, gate chan struct{}) {
	t.Helper()
	entered = make(chan string, 32)
	gate = make(chan struct{})
	faults.Set(faults.ServeJob, func(arg any) error {
		entered <- arg.(string)
		<-gate
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	return entered, gate
}

func waitEntered(t *testing.T, entered chan string) string {
	t.Helper()
	select {
	case id := <-entered:
		return id
	case <-time.After(5 * time.Second):
		t.Fatal("no worker picked a job up")
		return ""
	}
}

// TestQueueBackpressure pins the single worker inside the ServeJob
// hook, fills the 2-slot queue, and checks the next submission is an
// immediate 429 rather than a blocked request.
func TestQueueBackpressure(t *testing.T) {
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	info := uploadCompas(t, c, 200, 1)

	req := JobRequest{Kind: "identify", DatasetID: info.ID}
	first, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, entered) // the worker holds job 1; the queue is empty

	ids := []string{first.ID}
	for i := 0; i < 2; i++ { // fill both queue slots
		st, err := c.SubmitJob(ctx, req)
		if err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	_, err = c.SubmitJob(ctx, req)
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %v, want 429", err)
	}

	close(gate) // drain: every held and future hook call returns
	for _, id := range ids {
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s after drain: %+v, %v", id, st, err)
		}
	}
}

// TestCancelInFlight is the cancellation acceptance path: a running
// job is cancelled over HTTP and must reach the cancelled state well
// under a second after the pipeline resumes, releasing its dataset
// reference.
func TestCancelInFlight(t *testing.T) {
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	info := uploadCompas(t, c, 2000, 3)

	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, entered)

	// DELETE while the job is mid-flight: its context is cancelled now;
	// the pipeline observes it at the first cooperative checkpoint once
	// the gate opens.
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	close(gate)
	st, err = c.Wait(ctx, st.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lat := time.Since(start); lat > time.Second {
		t.Fatalf("cancellation took %v, want < 1s", lat)
	}
	if st.State != StateCancelled {
		t.Fatalf("state = %s (%s), want cancelled", st.State, st.Error)
	}

	// The dataset reference is back: the dataset deletes cleanly.
	req, _ := http.NewRequest(http.MethodDelete, c.BaseURL+"/datasets/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("dataset delete after cancel = %d", resp.StatusCode)
	}
}

// TestCancelQueued cancels a job before any worker picks it up.
func TestCancelQueued(t *testing.T) {
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	defer close(gate)
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	info := uploadCompas(t, c, 200, 1)

	req := JobRequest{Kind: "identify", DatasetID: info.ID}
	if _, err := c.SubmitJob(ctx, req); err != nil { // occupies the worker
		t.Fatal(err)
	}
	waitEntered(t, entered)
	queued, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled || !strings.Contains(st.Error, "queued") {
		t.Fatalf("queued cancel = %+v", st)
	}
}

// TestFaultInjectedFailure forces failures through both injection
// layers — a ServeJob error at the server boundary and a worker panic
// inside the parallel identify fan-out — and checks the job surfaces
// state "failed" with the error detail while the server keeps serving.
func TestFaultInjectedFailure(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	info := uploadCompas(t, c, 500, 2)

	// Error hook at the server layer.
	faults.Set(faults.ServeJob, func(arg any) error {
		return fmt.Errorf("injected outage for %v", arg)
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "injected outage") {
		t.Fatalf("error-hook job = %s (%q)", st.State, st.Error)
	}

	// Panic hook: the engine must absorb the crash, not lose a worker.
	faults.Set(faults.ServeJob, func(any) error { panic("injected crash") })
	st, err = c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panic-hook job = %s (%q)", st.State, st.Error)
	}

	// A worker crash deep in the parallel identify fan-out (workers>1
	// routes through the pool that fires faults.IdentifyWorker).
	faults.Clear(faults.ServeJob)
	faults.Set(faults.IdentifyWorker, func(any) error { panic("identify worker down") })
	t.Cleanup(func() { faults.Clear(faults.IdentifyWorker) })
	st, err = c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "identify worker down") {
		t.Fatalf("identify-fault job = %s (%q)", st.State, st.Error)
	}
	faults.Clear(faults.IdentifyWorker)

	// Not wedged: the same request now succeeds.
	st, err = c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil || st.State != StateDone {
		t.Fatalf("post-fault job = %+v, %v", st, err)
	}
}

// TestJobTimeout gives a job a 10ms deadline and delays it past that
// inside the hook: the pipeline starts on an expired context and the
// job must fail with the deadline error, not hang.
func TestJobTimeout(t *testing.T) {
	ctx := context.Background()
	faults.Set(faults.ServeJob, func(any) error {
		time.Sleep(50 * time.Millisecond)
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	_, c := newTestServer(t, Config{Workers: 1})
	info := uploadCompas(t, c, 200, 1)

	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, TimeoutMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timed-out job = %s (%q)", st.State, st.Error)
	}
}

// TestConcurrentJobs floods a 2-worker pool with more jobs than slots
// from parallel clients and verifies every job completes and no
// goroutines survive the server.
func TestConcurrentJobs(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	srv := New(Config{Workers: 2, QueueDepth: 32})
	hs := httptest.NewServer(srv.Handler())
	c := NewClient(hs.URL)
	info := uploadCompas(t, c, 500, 4)

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, Seed: int64(i + 1)})
			if err != nil {
				errs <- err
				return
			}
			st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
			if err != nil {
				errs <- err
				return
			}
			if st.State != StateDone {
				errs <- fmt.Errorf("job %s: %s (%s)", st.ID, st.State, st.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs.Close()
	http.DefaultClient.CloseIdleConnections()
	assertNoGoroutineLeak(t, base)
}

// TestShutdownDrain exercises the graceful path: the running job is
// allowed to finish, queued jobs are cancelled, and new submissions
// are refused with 503.
func TestShutdownDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	srv := New(Config{Workers: 1, QueueDepth: 4})
	hs := httptest.NewServer(srv.Handler())
	c := NewClient(hs.URL)
	info := uploadCompas(t, c, 200, 1)

	req := JobRequest{Kind: "identify", DatasetID: info.ID}
	running, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, entered)
	queued, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate) // let the running job proceed mid-drain
	}()
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// The engine is stopped but the handler still answers reads.
	st, err := c.Job(ctx, running.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("running job after drain = %+v, %v", st, err)
	}
	st, err = c.Job(ctx, queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("queued job after drain = %+v, %v", st, err)
	}
	_, err = c.SubmitJob(ctx, req)
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %v, want 503", err)
	}

	hs.Close()
	http.DefaultClient.CloseIdleConnections()
	assertNoGoroutineLeak(t, base)
}

// TestShutdownDeadline exercises the hard path: the drain deadline
// expires while a job is still running, the engine aborts its base
// context, and the straggler is marked cancelled once it unwinds.
func TestShutdownDeadline(t *testing.T) {
	ctx := context.Background()
	entered, gate := gateServeJob(t)
	srv := New(Config{Workers: 1, QueueDepth: 4})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL)
	info := uploadCompas(t, c, 200, 1)

	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, entered)

	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gate) // the straggler unwinds only after the deadline fired
	}()
	sctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(sctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard shutdown err = %v, want deadline exceeded", err)
	}

	fst, err := c.Job(ctx, st.ID)
	if err != nil || fst.State != StateCancelled {
		t.Fatalf("straggler = %+v, %v", fst, err)
	}
}
