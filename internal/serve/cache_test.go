package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// rawResult fetches /jobs/{id}/result as raw bytes, bypassing the
// client's JSON decoding so byte-level comparisons see the wire form.
func rawResult(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //lint:allow errdiscard read-only close in test
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, b)
	}
	return b
}

// TestResponseCacheHit submits the same identify request twice: the
// second submission must finish from cache (never started, counted in
// serve.cache_hits) and its result bytes must equal the cold run's
// exactly.
func TestResponseCacheHit(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	info := uploadCompas(t, c, 1500, 7)

	req := JobRequest{Kind: "identify", DatasetID: info.ID, TauC: 0.1, Seed: 3}
	st1, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st1, err = c.Wait(ctx, st1.ID, 0); err != nil || st1.State != StateDone {
		t.Fatalf("cold job: state %s err %v", st1.State, err)
	}
	cold := rawResult(t, c.BaseURL, st1.ID)

	st2, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st1.ID {
		t.Fatalf("second submission returned the first job (no idem key was set)")
	}
	if st2.State != StateDone {
		t.Fatalf("cached submission state = %s, want immediate done", st2.State)
	}
	if st2.StartedAt != nil {
		t.Fatalf("cached job has StartedAt %v, want nil (never ran)", st2.StartedAt)
	}
	warm := rawResult(t, c.BaseURL, st2.ID)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache replay differs from cold run:\ncold: %.200s\nwarm: %.200s", cold, warm)
	}
	if got := srv.Metrics().Counter("serve.cache_hits").Value(); got != 1 {
		t.Fatalf("serve.cache_hits = %d, want 1", got)
	}
}

// TestResponseCacheKeyExclusions checks the key covers what affects
// the result and nothing else: a different idempotency key, timeout,
// or tenant still hits; a different seed or dataset misses.
func TestResponseCacheKeyExclusions(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	info := uploadCompas(t, c, 1200, 11)

	base := JobRequest{Kind: "identify", DatasetID: info.ID, Seed: 5}
	st, err := c.SubmitJob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil || st.State != StateDone {
		t.Fatalf("cold job: %s %v", st.State, err)
	}

	delivery := base
	delivery.IdempotencyKey = "other-key"
	delivery.TimeoutMS = 60000
	delivery.Tenant = "someone-else"
	st2, err := c.SubmitJob(ctx, delivery)
	if err != nil {
		t.Fatal(err)
	}
	if st2.StartedAt != nil || st2.State != StateDone {
		t.Fatalf("delivery-field change missed the cache: state %s started %v", st2.State, st2.StartedAt)
	}

	reseeded := base
	reseeded.Seed = 6
	st3, err := c.SubmitJob(ctx, reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if st3, err = c.Wait(ctx, st3.ID, 0); err != nil || st3.State != StateDone {
		t.Fatalf("reseeded job: %s %v", st3.State, err)
	}
	if st3.StartedAt == nil {
		t.Fatal("seed change hit the cache; the seed is result-affecting")
	}
	if got := srv.Metrics().Counter("serve.cache_hits").Value(); got != 1 {
		t.Fatalf("serve.cache_hits = %d, want exactly 1", got)
	}
}

// TestRemedyNotCached pins the side-effect exclusion: remedy jobs
// register their output dataset, so an identical resubmission must run
// again (and register again), never replay from cache.
func TestRemedyNotCached(t *testing.T) {
	if _, ok := cacheKey(JobRequest{Kind: "remedy", DatasetID: "ds-x"}); ok {
		t.Fatal("remedy requests must not be cacheable")
	}
	for _, kind := range []string{"identify", "train", "audit"} {
		if _, ok := cacheKey(JobRequest{Kind: kind, DatasetID: "ds-x"}); !ok {
			t.Fatalf("%s requests should be cacheable", kind)
		}
	}
}

// TestRespCacheLRU exercises the bounded store directly: capacity 2,
// three inserts, the least-recently-used entry is evicted.
func TestRespCacheLRU(t *testing.T) {
	c := newRespCache(2)
	c.put("a", json.RawMessage(`1`))
	c.put("b", json.RawMessage(`2`))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", json.RawMessage(`3`))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	var nilCache *respCache
	if _, ok := nilCache.get("a"); ok {
		t.Fatal("nil cache must miss")
	}
	nilCache.put("a", json.RawMessage(`1`)) // must not panic
	if newRespCache(0) != nil || newRespCache(-1) != nil {
		t.Fatal("non-positive capacity should disable the cache")
	}
}
