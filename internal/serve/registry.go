package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/durable"
)

// Registry errors, mapped to HTTP statuses by the handlers.
var (
	// ErrDatasetNotFound is returned for an unknown dataset ID (404).
	ErrDatasetNotFound = errors.New("serve: dataset not found")
	// ErrDatasetBusy is returned when deleting a dataset that live
	// jobs still reference (409).
	ErrDatasetBusy = errors.New("serve: dataset is referenced by running jobs")
	// ErrRegistryFull is returned when the registry is at capacity and
	// every resident dataset is pinned by a job reference (507).
	ErrRegistryFull = errors.New("serve: dataset registry full")
)

// Registry is the server's resident dataset store. Datasets are keyed
// by content hash (upload is idempotent), profiled once at admission
// (the Describe summary is cached), and evicted least-recently-used
// when capacity is exceeded — but never while a job holds a
// reference, which is what Acquire/release ref-counting guarantees.
type Registry struct {
	mu sync.Mutex
	// capacity is the maximum number of resident datasets; maxRows and
	// maxBytes cap one upload (enforced by dataset.ReadCSVLimit).
	capacity int
	maxRows  int
	maxBytes int64
	clock    int64 // LRU tick, bumped on every touch
	entries  map[string]*regEntry
	// store, when non-nil, is the durability spill area: every admitted
	// dataset is written to disk (canonical CSV + identity sidecar)
	// before the admission returns, and evicted/deleted datasets are
	// unspilled. Nil is the in-memory mode with no spill work at all.
	store *durable.Store
}

type regEntry struct {
	info     DatasetInfo
	summary  []AttrProfile
	data     *dataset.Dataset
	refs     int
	lastUsed int64
}

// NewRegistry returns a registry holding at most capacity datasets,
// admitting uploads of at most maxRows data rows and maxBytes CSV
// bytes (zero = unlimited, as in dataset.ReadCSVLimit).
func NewRegistry(capacity, maxRows int, maxBytes int64) *Registry {
	if capacity <= 0 {
		capacity = 16
	}
	return &Registry{
		capacity: capacity,
		maxRows:  maxRows,
		maxBytes: maxBytes,
		entries:  map[string]*regEntry{},
	}
}

// countingWriter tracks bytes fed to the content hash.
type countingWriter struct {
	w hash.Hash
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Put streams a CSV body into the registry: the bytes are hashed and
// parsed in one pass (never buffered whole), the dataset is profiled,
// and the entry is admitted under its content-derived ID. Uploading
// identical content with the same target/protected configuration
// returns the existing entry. Size violations surface
// dataset.ErrTooLarge; a full registry with no evictable entry
// surfaces ErrRegistryFull.
func (rg *Registry) Put(ctx context.Context, r io.Reader, name, target string, protected []string) (DatasetInfo, error) {
	h := sha256.New()
	// The target and protected set are part of the identity: the same
	// CSV parsed with a different label column is a different dataset.
	fmt.Fprintf(h, "target=%s;protected=%v;", target, protected)
	cw := &countingWriter{w: h}
	d, err := dataset.ReadCSVLimit(io.TeeReader(r, cw), target, protected, rg.maxRows, rg.maxBytes)
	if err != nil {
		return DatasetInfo{}, err
	}
	id := "ds-" + hex.EncodeToString(h.Sum(nil))[:16]
	return rg.admit(ctx, id, name, d, cw.n, true)
}

// PutDataset admits an already-materialized dataset (a remedy job's
// output). The ID is derived from the canonical CSV serialization, so
// identical results dedup the same way uploads do.
func (rg *Registry) PutDataset(ctx context.Context, d *dataset.Dataset, name string) (DatasetInfo, error) {
	h := sha256.New()
	var protected []string
	for _, a := range d.Schema.Attrs {
		if a.Protected {
			protected = append(protected, a.Name)
		}
	}
	fmt.Fprintf(h, "target=%s;protected=%v;", d.Schema.Target, protected)
	if err := d.WriteCSV(h); err != nil {
		return DatasetInfo{}, err
	}
	id := "ds-" + hex.EncodeToString(h.Sum(nil))[:16]
	return rg.admit(ctx, id, name, d, 0, true)
}

// Restore re-admits a dataset recovered from the durable spill area
// under its original content-derived ID, without re-spilling the bytes
// that were just read from disk.
func (rg *Registry) Restore(ctx context.Context, id, name string, d *dataset.Dataset, bytes int64) (DatasetInfo, error) {
	return rg.admit(ctx, id, name, d, bytes, false)
}

// Install admits a dataset under an ID minted elsewhere in the fleet —
// the receiving half of a cluster shard push or fetch-on-miss. Unlike
// Restore it spills: the copy must survive this node's restart, since
// the fleet now counts on this node holding it. Installing an ID the
// registry already has is a no-op returning the existing entry.
func (rg *Registry) Install(ctx context.Context, id, name string, d *dataset.Dataset, bytes int64) (DatasetInfo, error) {
	return rg.admit(ctx, id, name, d, bytes, true)
}

// admit inserts d under id. With spill set (every live admission) the
// dataset is spilled to the durable store — if one is attached —
// before the admission is acknowledged, so a crash after a 201 can
// always restore the upload; a failed spill fails the admission.
func (rg *Registry) admit(ctx context.Context, id, name string, d *dataset.Dataset, bytes int64, spill bool) (DatasetInfo, error) {
	var protected []string
	for _, a := range d.Schema.Attrs {
		if a.Protected {
			protected = append(protected, a.Name)
		}
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if e, ok := rg.entries[id]; ok {
		rg.clock++
		e.lastUsed = rg.clock
		return rg.infoLocked(e), nil
	}
	if err := rg.evictLocked(ctx); err != nil {
		return DatasetInfo{}, err
	}
	if spill && rg.store != nil {
		meta := durable.DatasetMeta{
			ID: id, Name: name, Target: d.Schema.Target, Protected: protected, Bytes: bytes,
		}
		if err := rg.store.SpillDataset(ctx, meta, d.WriteCSV); err != nil {
			return DatasetInfo{}, fmt.Errorf("serve: spill dataset: %w", err)
		}
	}
	e := &regEntry{
		info: DatasetInfo{
			ID:        id,
			Name:      name,
			Target:    d.Schema.Target,
			Protected: protected,
			Rows:      d.Len(),
			Attrs:     len(d.Schema.Attrs),
			Positives: d.PositiveCount(),
			BaseRate:  d.BaseRate(),
			Bytes:     bytes,
		},
		summary: profile(d),
		data:    d,
	}
	rg.clock++
	e.lastUsed = rg.clock
	rg.entries[id] = e
	return rg.infoLocked(e), nil
}

// evictLocked makes room for one more entry, dropping the
// least-recently-used unreferenced dataset — and its spilled files —
// if the registry is full.
func (rg *Registry) evictLocked(ctx context.Context) error {
	if len(rg.entries) < rg.capacity {
		return nil
	}
	victim := ""
	var oldest int64
	for id, e := range rg.entries {
		if e.refs > 0 {
			continue
		}
		if victim == "" || e.lastUsed < oldest {
			victim, oldest = id, e.lastUsed
		}
	}
	if victim == "" {
		return fmt.Errorf("%w: %d datasets resident, all referenced", ErrRegistryFull, len(rg.entries))
	}
	delete(rg.entries, victim)
	if rg.store != nil {
		if err := rg.store.RemoveDataset(ctx, victim); err != nil {
			// The entry is gone either way; an orphaned spill only costs
			// disk and is skipped by recovery once its sidecar is removed.
			return fmt.Errorf("serve: unspill evicted dataset: %w", err)
		}
	}
	return nil
}

// profile computes the cached Describe summary.
func profile(d *dataset.Dataset) []AttrProfile {
	sums := d.Describe()
	out := make([]AttrProfile, len(sums))
	for i, s := range sums {
		out[i] = AttrProfile{
			Name:      s.Name,
			Protected: s.Protected,
			Ordered:   s.Ordered,
			Values:    append([]string(nil), d.Schema.Attrs[i].Values...),
			Counts:    s.Counts,
			PosRate:   s.PosRate,
		}
	}
	return out
}

func (rg *Registry) infoLocked(e *regEntry) DatasetInfo {
	info := e.info
	info.Refs = e.refs
	return info
}

// Get returns the info and cached profile for one dataset.
func (rg *Registry) Get(id string) (DatasetDetail, error) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	e, ok := rg.entries[id]
	if !ok {
		return DatasetDetail{}, fmt.Errorf("%w: %s", ErrDatasetNotFound, id)
	}
	rg.clock++
	e.lastUsed = rg.clock
	return DatasetDetail{DatasetInfo: rg.infoLocked(e), Summary: e.summary}, nil
}

// List returns every resident dataset, most recently used first.
func (rg *Registry) List() []DatasetInfo {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	type pair struct {
		info DatasetInfo
		used int64
	}
	pairs := make([]pair, 0, len(rg.entries))
	for _, e := range rg.entries {
		pairs = append(pairs, pair{rg.infoLocked(e), e.lastUsed})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].used > pairs[j].used })
	out := make([]DatasetInfo, len(pairs))
	for i, p := range pairs {
		out[i] = p.info
	}
	return out
}

// Acquire pins a dataset against eviction and returns it with a
// release func. Jobs acquire at submission (so a queued job's data
// cannot be evicted underneath it) and release when they reach a
// terminal state. release is idempotent.
func (rg *Registry) Acquire(id string) (*dataset.Dataset, func(), error) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	e, ok := rg.entries[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrDatasetNotFound, id)
	}
	e.refs++
	rg.clock++
	e.lastUsed = rg.clock
	var once sync.Once
	release := func() {
		once.Do(func() {
			rg.mu.Lock()
			defer rg.mu.Unlock()
			e.refs--
		})
	}
	return e.data, release, nil
}

// Delete removes an unreferenced dataset (and its spilled files);
// deleting one that live jobs still hold fails with ErrDatasetBusy.
func (rg *Registry) Delete(ctx context.Context, id string) error {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	e, ok := rg.entries[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrDatasetNotFound, id)
	}
	if e.refs > 0 {
		return fmt.Errorf("%w: %s has %d references", ErrDatasetBusy, id, e.refs)
	}
	delete(rg.entries, id)
	if rg.store != nil {
		if err := rg.store.RemoveDataset(ctx, id); err != nil {
			return fmt.Errorf("serve: unspill deleted dataset: %w", err)
		}
	}
	return nil
}

// Len returns the number of resident datasets.
func (rg *Registry) Len() int {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return len(rg.entries)
}
