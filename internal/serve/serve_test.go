package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// newTestServer builds a server, mounts it on httptest, and tears
// both down (shutdown first, so workers are joined) at cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	})
	return srv, NewClient(hs.URL)
}

// uploadCompas registers a synthetic COMPAS dataset of n rows.
func uploadCompas(t *testing.T, c *Client, n int, seed int64) DatasetInfo {
	t.Helper()
	d := synth.CompasN(n, seed)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(context.Background(), &buf, "compas-test",
		"two_year_recid", []string{"age", "race", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// assertNoGoroutineLeak waits for the goroutine count to drop back to
// (roughly) the baseline captured before the test body ran.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestE2EIdentifyRemedy is the serving acceptance path: upload a
// dataset, run an identify job to completion, fetch the JSON result,
// chain a remedy job, and train on the remedied output — all over
// HTTP.
func TestE2EIdentifyRemedy(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	info := uploadCompas(t, c, 2000, 5)
	if info.Rows != 2000 || len(info.Protected) != 3 {
		t.Fatalf("upload info = %+v", info)
	}

	// Upload is idempotent: same bytes, same ID.
	info2 := uploadCompas(t, c, 2000, 5)
	if info2.ID != info.ID {
		t.Fatalf("re-upload got %s, want %s", info2.ID, info.ID)
	}

	// The cached profile is served with the dataset.
	detail, err := c.Dataset(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(detail.Summary) != 6 {
		t.Fatalf("summary has %d attrs, want 6", len(detail.Summary))
	}

	// Identify.
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID, TauC: 0.1, MinSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("initial state = %s", st.State)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("identify job %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Progress["identify.nodes_visited"] == 0 {
		t.Fatalf("progress counters missing: %v", st.Progress)
	}
	var ident IdentifyResult
	if err := c.Result(ctx, st.ID, &ident); err != nil {
		t.Fatal(err)
	}
	if len(ident.Regions) == 0 {
		t.Fatal("identify found no biased regions on the biased generator")
	}
	if ident.Regions[0].Pattern == "" || ident.Regions[0].Gap <= 0 {
		t.Fatalf("malformed region: %+v", ident.Regions[0])
	}

	// Remedy; the result dataset must be registered and usable.
	st, err = c.SubmitJob(ctx, JobRequest{Kind: "remedy", DatasetID: info.ID, TauC: 0.1, MinSize: 20, Technique: "PS"})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("remedy job: %s (%s)", st.State, st.Error)
	}
	var rem RemedyResult
	if err := c.Result(ctx, st.ID, &rem); err != nil {
		t.Fatal(err)
	}
	if rem.BiasedRegions == 0 || rem.ResultDatasetID == "" {
		t.Fatalf("remedy result = %+v", rem)
	}
	if _, err := c.Dataset(ctx, rem.ResultDatasetID); err != nil {
		t.Fatalf("remedied dataset not registered: %v", err)
	}

	// Train on the remedied dataset.
	st, err = c.SubmitJob(ctx, JobRequest{Kind: "train", DatasetID: rem.ResultDatasetID, Model: "DT"})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("train job: %s (%s)", st.State, st.Error)
	}
	var tr TrainResult
	if err := c.Result(ctx, st.ID, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Accuracy <= 0.5 {
		t.Fatalf("train accuracy = %v", tr.Accuracy)
	}

	// Audit the original dataset.
	st, err = c.SubmitJob(ctx, JobRequest{Kind: "audit", DatasetID: info.ID, Model: "DT", Stat: "FPR"})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("audit job: %s (%s)", st.State, st.Error)
	}
	var aud AuditResult
	if err := c.Result(ctx, st.ID, &aud); err != nil {
		t.Fatal(err)
	}
	if len(aud.Subgroups) == 0 || aud.Stat != "FPR" {
		t.Fatalf("audit result = %+v", aud)
	}

	// Health and metrics reflect the work done.
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if h.Datasets < 2 {
		t.Fatalf("health datasets = %d, want >= 2", h.Datasets)
	}
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"serve.jobs_submitted", "serve.jobs_done", "serve.http_requests"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

func TestUploadValidation(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 1})

	// Missing target.
	_, err := c.UploadDataset(ctx, strings.NewReader("a,b\n1,0\n"), "", "", []string{"a"})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("missing target: %v", err)
	}

	// Over the row cap: 413.
	_, c413 := newTestServer(t, Config{Workers: 1, MaxUploadRows: 10})
	d := synth.CompasN(50, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = c413.UploadDataset(ctx, &buf, "", "two_year_recid", []string{"race"})
	if !errors.As(err, &ae) || ae.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("row cap: %v", err)
	}
}

func TestJobValidation(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 1})
	info := uploadCompas(t, c, 200, 1)

	bad := []JobRequest{
		{Kind: "explode", DatasetID: info.ID},
		{Kind: "identify", DatasetID: ""},
		{Kind: "identify", DatasetID: info.ID, TauC: -1},
		{Kind: "identify", DatasetID: info.ID, Scope: "sideways"},
		{Kind: "remedy", DatasetID: info.ID, Technique: "XX"},
		{Kind: "train", DatasetID: info.ID, Model: "GPT"},
		{Kind: "audit", DatasetID: info.ID, Stat: "vibes"},
		{Kind: "identify", DatasetID: info.ID, Workers: -1},
		{Kind: "identify", DatasetID: info.ID, TimeoutMS: -5},
	}
	for _, req := range bad {
		_, err := c.SubmitJob(ctx, req)
		var ae *apiError
		if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Fatalf("request %+v: err = %v, want 400", req, err)
		}
	}

	// Unknown dataset is 404.
	_, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: "ds-nope"})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown dataset: %v", err)
	}

	// Result of an unfinished job is 409.
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Result(ctx, st.ID, &IdentifyResult{})
	if err != nil {
		if !errors.As(err, &ae) || ae.Status != http.StatusConflict {
			t.Fatalf("early result fetch: %v", err)
		}
	} // else the tiny job already finished — equally fine.
}

// TestClientAgainstServer exercises the rest of the Client surface
// (List via raw HTTP, Cancel on a terminal job, trace endpoint).
func TestClientAgainstServer(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 1})
	info := uploadCompas(t, c, 300, 2)

	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil || st.State != StateDone {
		t.Fatalf("wait: %+v, %v", st, err)
	}

	// Cancelling a finished job is a no-op, not an error.
	st2, err := c.Cancel(ctx, st.ID)
	if err != nil || st2.State != StateDone {
		t.Fatalf("cancel terminal: %+v, %v", st2, err)
	}

	// The span tree is served per job.
	resp, err := http.Get(c.BaseURL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serve.job") {
		t.Fatalf("trace missing root span: %s", buf.String())
	}

	// Unknown job IDs 404 everywhere.
	if _, err := c.Job(ctx, "job-999999"); err == nil {
		t.Fatal("unknown job must 404")
	}

	// DELETE /datasets works once no job holds it... identify job is
	// done so the ref is back.
	req, _ := http.NewRequest(http.MethodDelete, c.BaseURL+"/datasets/"+info.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("dataset delete = %d", resp2.StatusCode)
	}
	if _, err := c.Dataset(ctx, info.ID); err == nil {
		t.Fatal("deleted dataset must be gone")
	}
}

// TestUploadStreamCap verifies the byte cap is enforced on the stream
// (the server never buffers an over-budget body whole).
func TestUploadStreamCap(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 1, MaxUploadBytes: 1024})
	d := synth.CompasN(2000, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := c.UploadDataset(ctx, &buf, "", "two_year_recid", []string{"race"})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("byte cap: %v", err)
	}
	if !strings.Contains(ae.Msg, dataset.ErrTooLarge.Error()) {
		t.Fatalf("error detail %q does not name the limit", ae.Msg)
	}
}
