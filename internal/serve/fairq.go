package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// This file is the multi-tenant admission layer of the job engine: a
// weighted fair queue replacing the engine's former single FIFO
// channel. Every submission carries a tenant (the X-Remedy-Tenant
// header; DefaultTenant when absent) and lands in that tenant's own
// bounded FIFO after passing its token bucket. Workers drain the
// tenant queues by deficit round robin — each visit grants a tenant a
// quantum equal to its weight and serves up to that many jobs before
// the ring advances — so under saturation tenants progress in
// proportion to their weights, and even a weight-1 tenant behind a
// weight-100 neighbor is served every ring rotation (no starvation).
// The queue is clock-free except for the token buckets, whose clock is
// injected so quota tests run on a fake one.

// TenantHeader is the HTTP header naming the submitting tenant on
// POST /jobs. Requests without it belong to DefaultTenant.
const TenantHeader = "X-Remedy-Tenant"

// DefaultTenant is the tenant attributed to submissions that name none.
const DefaultTenant = "default"

// maxTenants bounds the tenant table against cardinality abuse: once
// this many distinct tenants exist, submissions from further unknown
// tenants are folded into the default tenant's queue and quota (they
// still run; they just stop getting a private share).
const maxTenants = 64

// ErrRateLimited is returned by Submit when the tenant's token bucket
// is empty — the per-tenant quota signal, mapped to 429 like queue
// backpressure but with a refill-derived Retry-After.
var ErrRateLimited = errors.New("serve: tenant rate limit exceeded")

// TenantConfig is one tenant's admission policy.
type TenantConfig struct {
	// Weight is the tenant's fair-share weight: the number of jobs the
	// scheduler may dispatch for this tenant per ring visit (default 1).
	// Under saturation, tenant throughput is proportional to weight.
	Weight int
	// Rate is the sustained submission quota in jobs per second refilled
	// into the tenant's token bucket (0 = unlimited, the default).
	Rate float64
	// Burst is the token bucket depth — how many submissions above the
	// sustained rate are absorbed at once (default ceil(Rate), min 1;
	// meaningless while Rate is 0).
	Burst int
}

func (t TenantConfig) withDefaults() TenantConfig {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Rate > 0 && t.Burst <= 0 {
		t.Burst = int(math.Ceil(t.Rate))
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return t
}

// TenantHealth is one tenant's row in the Health report: its
// configuration and lifetime accounting on this engine.
type TenantHealth struct {
	Name   string  `json:"name"`
	Weight int     `json:"weight"`
	Rate   float64 `json:"rate,omitempty"`
	Queued int     `json:"queued"`

	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done,omitempty"`
	Failed    int64 `json:"failed,omitempty"`
	Cancelled int64 `json:"cancelled,omitempty"`
	// Rejected counts 429s from a full tenant queue; Throttled counts
	// 429s from an empty token bucket; CacheHits counts submissions
	// answered from the response cache without queueing.
	Rejected  int64 `json:"rejected,omitempty"`
	Throttled int64 `json:"throttled,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
}

// tenantQ is one tenant's slice of the fair queue. All fields are
// guarded by the owning fairQueue's mutex.
type tenantQ struct {
	name string
	cfg  TenantConfig

	fifo    []*job
	deficit int // remaining quantum in the current ring visit

	// Token bucket: tokens refill at cfg.Rate per second up to
	// cfg.Burst, clocked by the queue's injected now.
	tokens float64
	last   time.Time

	submitted, done, failed, cancelled int64
	rejected, throttled, cacheHits     int64
}

// fairQueue is the engine's multi-tenant queue: per-tenant bounded
// FIFOs drained by deficit round robin, fronted by per-tenant token
// buckets.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantQ
	ring    []*tenantQ // deterministic round-robin order (registration order)
	cur     int        // ring cursor
	size    int        // total queued jobs across tenants

	depth    int // per-tenant FIFO cap (the former global queue depth)
	defaults TenantConfig
	closed   bool
	now      func() time.Time
}

// newFairQueue builds the queue with the given per-tenant depth and
// the quota applied to tenants that were not explicitly configured.
// now clocks the token buckets; nil means the wall clock. The default
// tenant always exists, so the overflow fold has somewhere to land.
func newFairQueue(depth int, defaults TenantConfig, now func() time.Time) *fairQueue {
	if depth <= 0 {
		depth = 16
	}
	if now == nil {
		now = time.Now //lint:allow determinism token-bucket refill clock; quota admission is wall-clock by nature and tests inject a fake
	}
	q := &fairQueue{
		tenants:  map[string]*tenantQ{},
		depth:    depth,
		defaults: defaults.withDefaults(),
		now:      now,
	}
	q.cond = sync.NewCond(&q.mu)
	q.addLocked(DefaultTenant, q.defaults)
	return q
}

// setDefaults replaces the unconfigured-tenant quota and re-points the
// default tenant at it. Call during construction, before traffic.
func (q *fairQueue) setDefaults(cfg TenantConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.defaults = cfg.withDefaults()
	q.tenants[DefaultTenant].cfg = q.defaults
	q.tenants[DefaultTenant].tokens = float64(q.defaults.Burst)
	q.tenants[DefaultTenant].last = q.now()
}

// configure registers (or re-points) one named tenant's policy.
func (q *fairQueue) configure(name string, cfg TenantConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	cfg = cfg.withDefaults()
	if t, ok := q.tenants[name]; ok {
		t.cfg = cfg
		t.tokens = float64(cfg.Burst)
		t.last = q.now()
		return
	}
	q.addLocked(name, cfg)
}

// addLocked appends a new tenant to the table and the ring. Caller
// holds q.mu (or is the constructor).
func (q *fairQueue) addLocked(name string, cfg TenantConfig) *tenantQ {
	t := &tenantQ{name: name, cfg: cfg, tokens: float64(cfg.Burst), last: q.now()}
	q.tenants[name] = t
	q.ring = append(q.ring, t)
	return t
}

// tenantLocked resolves name to its tenant entry, creating one with
// the default quota on first sight — or folding it into the default
// tenant once the table is full. Caller holds q.mu.
func (q *fairQueue) tenantLocked(name string) *tenantQ {
	if t, ok := q.tenants[name]; ok {
		return t
	}
	if len(q.tenants) >= maxTenants {
		return q.tenants[DefaultTenant]
	}
	return q.addLocked(name, q.defaults)
}

// canonical returns the tenant name submissions under name are
// accounted to (name itself, or the default tenant after the overflow
// fold).
func (q *fairQueue) canonical(name string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tenantLocked(name).name
}

// push enqueues j on its tenant's FIFO. bypassQuota skips the token
// bucket (journal recovery re-admits already-accepted work; charging
// quota twice would reject jobs the server once acknowledged). It
// returns the canonical tenant name the job was accounted under and,
// on ErrRateLimited, a refill-derived Retry-After hint in seconds.
func (q *fairQueue) push(j *job, bypassQuota bool) (tenant string, hint int, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return "", 0, ErrShuttingDown
	}
	t := q.tenantLocked(tenantOf(j.req))
	if !bypassQuota && t.cfg.Rate > 0 {
		now := q.now()
		if elapsed := now.Sub(t.last).Seconds(); elapsed > 0 {
			t.tokens = math.Min(float64(t.cfg.Burst), t.tokens+elapsed*t.cfg.Rate)
			t.last = now
		}
		if t.tokens < 1 {
			t.throttled++
			secs := int(math.Ceil((1 - t.tokens) / t.cfg.Rate))
			return t.name, clampSecs(secs), fmt.Errorf("%w: tenant %s over %.3g jobs/s quota", ErrRateLimited, t.name, t.cfg.Rate)
		}
	}
	if len(t.fifo) >= q.depth {
		t.rejected++
		return t.name, 0, fmt.Errorf("%w: tenant %s has %d jobs queued", ErrQueueFull, t.name, len(t.fifo))
	}
	if !bypassQuota && t.cfg.Rate > 0 {
		t.tokens--
	}
	// Stamp the canonical tenant here, under q.mu: a worker can pop the
	// job the instant it is appended, and the queue mutex is the
	// happens-before edge that publishes the write.
	j.tenant = t.name
	t.fifo = append(t.fifo, j)
	t.submitted++
	q.size++
	q.cond.Signal()
	return t.name, 0, nil
}

// pop blocks until a job is available (dispatched by deficit round
// robin) or the queue is closed and drained, in which case ok is
// false and the calling worker exits.
func (q *fairQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	return q.popLocked(), true
}

// tryPop is the non-blocking pop behind work stealing.
func (q *fairQueue) tryPop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return nil, false
	}
	return q.popLocked(), true
}

// popLocked dispatches one job by deficit round robin: visiting a
// tenant grants it a quantum of cfg.Weight jobs; the ring advances
// when the quantum is spent or the tenant's FIFO empties. Unit job
// cost keeps the arithmetic integral. Caller holds q.mu and has
// checked size > 0, so the scan terminates within one rotation.
func (q *fairQueue) popLocked() *job {
	for {
		t := q.ring[q.cur]
		if len(t.fifo) == 0 {
			t.deficit = 0
			q.cur = (q.cur + 1) % len(q.ring)
			continue
		}
		if t.deficit <= 0 {
			t.deficit = t.cfg.Weight
		}
		j := t.fifo[0]
		t.fifo[0] = nil
		t.fifo = t.fifo[1:]
		t.deficit--
		q.size--
		if t.deficit <= 0 || len(t.fifo) == 0 {
			t.deficit = 0
			q.cur = (q.cur + 1) % len(q.ring)
		}
		return j
	}
}

// close stops intake, wakes every blocked worker, and returns the
// still-queued jobs in deterministic ring order for the caller to
// cancel.
func (q *fairQueue) close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var drained []*job
	for _, t := range q.ring {
		drained = append(drained, t.fifo...)
		t.fifo = nil
		t.deficit = 0
	}
	q.size = 0
	q.cond.Broadcast()
	return drained
}

// len returns the total queued job count across tenants.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// recordOutcome folds one job's terminal state into its tenant's
// accounting.
func (q *fairQueue) recordOutcome(tenant string, final State) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenantLocked(tenant)
	switch final {
	case StateDone:
		t.done++
	case StateFailed:
		t.failed++
	case StateCancelled:
		t.cancelled++
	}
}

// recordCacheHit accounts one submission answered from the response
// cache: it counts as submitted and done without ever queueing.
func (q *fairQueue) recordCacheHit(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenantLocked(tenant)
	t.submitted++
	t.cacheHits++
	t.done++
}

// tenantHealth snapshots every tenant's row in ring (registration)
// order — deterministic output for /healthz and remedyctl status.
func (q *fairQueue) tenantHealth() []TenantHealth {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantHealth, 0, len(q.ring))
	for _, t := range q.ring {
		out = append(out, TenantHealth{
			Name:      t.name,
			Weight:    t.cfg.Weight,
			Rate:      t.cfg.Rate,
			Queued:    len(t.fifo),
			Submitted: t.submitted,
			Done:      t.done,
			Failed:    t.failed,
			Cancelled: t.cancelled,
			Rejected:  t.rejected,
			Throttled: t.throttled,
			CacheHits: t.cacheHits,
		})
	}
	return out
}

// tenantOf names the tenant a request belongs to.
func tenantOf(req JobRequest) string {
	if req.Tenant == "" {
		return DefaultTenant
	}
	return req.Tenant
}

// RetryAfterError decorates a backpressure error with a derived
// Retry-After in seconds; the handlers surface it on the 429 so
// well-behaved clients wait roughly one drain instead of a fixed
// second.
type RetryAfterError struct {
	Err     error
	Seconds int
}

func (e *RetryAfterError) Error() string { return e.Err.Error() }
func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfterSecs estimates how long a rejected submission should wait
// for the backlog to drain: queued jobs times the observed mean job
// duration, divided across the worker pool, clamped to [1, 60]
// seconds. A cold server (no observed jobs yet) assumes 250ms per
// job rather than zero, so the floor still applies.
func retryAfterSecs(queued, workers int, avgJobMS float64) int {
	if workers < 1 {
		workers = 1
	}
	if avgJobMS <= 0 {
		avgJobMS = 250
	}
	secs := math.Ceil(float64(queued) * avgJobMS / float64(workers) / 1000)
	return clampSecs(int(secs))
}

func clampSecs(secs int) int {
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}
