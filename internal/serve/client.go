package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is a minimal HTTP client for a running remedyd, speaking the
// same wire types the handlers serve. remedyctl -serve-url is built
// on it; tests drive it against httptest servers.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is returned for any non-2xx response, carrying the
// server's error envelope.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Status, e.Msg)
}

// do issues one request and decodes the JSON response into out (when
// out is non-nil).
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //lint:allow errdiscard read-only close carries no information
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); derr != nil || eb.Error == "" {
			eb.Error = resp.Status
		}
		return &apiError{Status: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// UploadDataset streams a CSV body into the registry and returns the
// registered entry. Uploading the same content twice is idempotent.
func (c *Client) UploadDataset(ctx context.Context, csv io.Reader, name, target string, protected []string) (DatasetInfo, error) {
	q := url.Values{}
	q.Set("target", target)
	q.Set("protected", strings.Join(protected, ","))
	if name != "" {
		q.Set("name", name)
	}
	var info DatasetInfo
	err := c.do(ctx, http.MethodPost, "/datasets?"+q.Encode(), csv, &info)
	return info, err
}

// Dataset fetches one dataset's info and cached profile.
func (c *Client) Dataset(ctx context.Context, id string) (DatasetDetail, error) {
	var d DatasetDetail
	err := c.do(ctx, http.MethodGet, "/datasets/"+url.PathEscape(id), nil, &d)
	return d, err
}

// SubmitJob queues a job and returns its initial status.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/jobs", bytes.NewReader(body), &st)
	return st, err
}

// Job fetches one job's status (including progress counters).
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Cancel requests cancellation and returns the post-cancel status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Result decodes a finished job's result payload into out (pass a
// *IdentifyResult, *RemedyResult, … or *json.RawMessage). Fetching
// the result of an unfinished job is a 409 from the server.
func (c *Client) Result(ctx context.Context, id string, out any) error {
	return c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/result", nil, out)
}

// Wait polls the job every interval until it reaches a terminal state
// or ctx is cancelled, returning the final status.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}
