package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Client is an HTTP client for a running remedyd, speaking the same
// wire types the handlers serve. remedyctl -serve-url is built on it;
// tests drive it against httptest servers.
//
// With a RetryPolicy attached (NewRetryingClient, or set Retry), every
// request with a replayable body retries transient failures —
// transport errors, 429 backpressure, 5xx — with deterministic
// jittered exponential backoff, honors the server's Retry-After, and
// trips a circuit breaker after repeated failures. Job submissions are
// stamped with an idempotency key so a retried POST /jobs can never
// enqueue a duplicate. A nil Retry is the legacy single-attempt mode.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry, when non-nil, enables the retry loop on every request
	// except the streaming dataset upload (its body cannot be
	// replayed).
	Retry *RetryPolicy
	// Tenant, when non-empty, is stamped on every request as the
	// X-Remedy-Tenant header — the client-side half of the server's
	// multi-tenant admission.
	Tenant string
	// Obs, when non-nil, receives the client-side counters
	// (client.retries, client.breaker_open, client.retry_give_up) so
	// callers report backoff behavior without scraping logs. The obs
	// registry is nil-safe, so leaving it nil costs nothing.
	Obs *obs.Registry

	st retryState
}

// NewClient returns a single-attempt client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// NewRetryingClient returns a client with the given retry policy
// (zero-value fields take the policy's documented defaults).
func NewRetryingClient(baseURL string, policy RetryPolicy) *Client {
	c := NewClient(baseURL)
	c.Retry = &policy
	return c
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is returned for any non-2xx response, carrying the
// server's error envelope and its Retry-After hint (zero if absent).
type apiError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Status, e.Msg)
}

// StatusOf extracts the HTTP status a client call failed with, or 0
// for transport-level errors that never reached a response. It is how
// callers (remedyload's error taxonomy) classify failures without the
// client exporting its error type.
func StatusOf(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// bodyReader wraps replayable bytes for one attempt (nil stays nil so
// bodyless requests carry no Content-Type).
func bodyReader(body []byte) io.Reader {
	if body == nil {
		return nil
	}
	return bytes.NewReader(body)
}

// do issues a request whose body (possibly nil) can be replayed,
// through the retry policy when one is attached.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	if c.Retry == nil {
		return c.attempt(ctx, method, path, bodyReader(body), out)
	}
	return c.doRetry(ctx, method, path, body, out)
}

// attempt issues one request and decodes the JSON response into out
// (when out is non-nil). The serve.client.do fault point fires before
// every attempt, retries included, simulating transport failure.
func (c *Client) attempt(ctx context.Context, method, path string, body io.Reader, out any) error {
	if err := faults.FireCtx(ctx, faults.ClientDo, method+" "+path); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	// Carry the caller's trace across the hop (no-op when untraced), so
	// client submissions and inter-node calls join one timeline.
	obs.InjectHTTP(req.Header, obs.TraceContextFrom(ctx))
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //lint:allow errdiscard read-only close carries no information
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); derr != nil || eb.Error == "" {
			eb.Error = resp.Status
		}
		ae := &apiError{Status: resp.StatusCode, Msg: eb.Error}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// DoJSON issues one JSON request with a replayable (possibly nil)
// body through the client's retry policy and decodes the response into
// out (when non-nil). It is the inter-node transport the cluster layer
// rides on: replication batches, steal requests, and dataset pushes
// all inherit the backoff, Retry-After handling, and circuit breaker —
// a not-ready peer (503 + Retry-After) backs the sender off exactly
// like 429 backpressure does.
func (c *Client) DoJSON(ctx context.Context, method, path string, body []byte, out any) error {
	return c.do(ctx, method, path, body, out)
}

// Livez fetches /livez, the pure liveness probe.
func (c *Client) Livez(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/livez", nil, nil)
}

// Readyz fetches /readyz. A not-ready node is a 503 apiError whose
// message carries the reason.
func (c *Client) Readyz(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/readyz", nil, &h)
	return h, err
}

// UploadDataset streams a CSV body into the registry and returns the
// registered entry. Uploading the same content twice is idempotent.
// The stream cannot be replayed, so this call is always a single
// attempt even on a retrying client.
func (c *Client) UploadDataset(ctx context.Context, csv io.Reader, name, target string, protected []string) (DatasetInfo, error) {
	q := url.Values{}
	q.Set("target", target)
	q.Set("protected", strings.Join(protected, ","))
	if name != "" {
		q.Set("name", name)
	}
	var info DatasetInfo
	err := c.attempt(ctx, http.MethodPost, "/datasets?"+q.Encode(), csv, &info)
	return info, err
}

// Dataset fetches one dataset's info and cached profile.
func (c *Client) Dataset(ctx context.Context, id string) (DatasetDetail, error) {
	var d DatasetDetail
	err := c.do(ctx, http.MethodGet, "/datasets/"+url.PathEscape(id), nil, &d)
	return d, err
}

// SubmitJob queues a job and returns its initial status. A retrying
// client stamps the request with a generated idempotency key first, so
// a retry after an ambiguous failure (the POST may or may not have
// landed) returns the already-queued job instead of a duplicate.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	if c.Retry != nil && req.IdempotencyKey == "" {
		req.IdempotencyKey = c.nextIdemKey(c.Retry.withDefaults())
	}
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/jobs", body, &st)
	return st, err
}

// Job fetches one job's status (including progress counters).
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Cancel requests cancellation and returns the post-cancel status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Result decodes a finished job's result payload into out (pass a
// *IdentifyResult, *RemedyResult, … or *json.RawMessage). Fetching
// the result of an unfinished job is a 409 from the server.
func (c *Client) Result(ctx context.Context, id string, out any) error {
	return c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/result", nil, out)
}

// Wait polls the job every interval until it reaches a terminal state
// or ctx is cancelled, returning the final status.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Trace fetches a job's stitched trace document from
// GET /jobs/{id}/trace.
func (c *Client) Trace(ctx context.Context, id string) (obs.TraceDoc, error) {
	var doc obs.TraceDoc
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/trace", nil, &doc)
	return doc, err
}

// FleetObs fetches the fleet-wide observability view from
// GET /metrics/fleet. Pointing at a follower works: the request
// forwards to the leader like any API call, so one round-trip answers
// for the whole fleet.
func (c *Client) FleetObs(ctx context.Context) (FleetObs, error) {
	var fo FleetObs
	err := c.do(ctx, http.MethodGet, "/metrics/fleet", nil, &fo)
	return fo, err
}
