package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/faults"
)

// openStore opens a durable store on dir for one server generation.
func openStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	store, err := durable.Open(context.Background(), dir, false)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// newDurableServer builds one crash-safe server generation on dir.
// The returned stop func shuts the generation down and closes its
// store — the orderly path; chaos tests that simulate a crash freeze
// the journal first, so the shutdown's appends never reach disk and
// the on-disk image is exactly what an abrupt death would leave.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Client, func()) {
	t.Helper()
	store := openStore(t, dir)
	srv, err := NewDurable(context.Background(), cfg, store)
	if err != nil {
		if cerr := store.Close(); cerr != nil {
			t.Error(cerr)
		}
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	var stopped atomic.Bool
	stop := func() {
		if !stopped.CompareAndSwap(false, true) {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
		if err := store.Close(); err != nil {
			t.Errorf("close store: %v", err)
		}
	}
	t.Cleanup(stop)
	return NewClient(hs.URL), stop
}

// submitAndWait runs one job to a terminal state.
func submitAndWait(t *testing.T, c *Client, req JobRequest) JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// journalRecords replays dir's journal into a slice.
func journalRecords(t *testing.T, dir string) []durable.Record {
	t.Helper()
	var recs []durable.Record
	if _, err := durable.ReplayJournal(context.Background(), dir+"/journal.wal", func(rec durable.Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestDurableRestartRecoversDatasetsAndHistory(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	c, stop := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	info := uploadCompas(t, c, 1500, 5)
	req := JobRequest{Kind: "identify", DatasetID: info.ID, TauC: 0.1, MinSize: 20, IdempotencyKey: "idem-restart"}
	st := submitAndWait(t, c, req)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	var live IdentifyResult
	if err := c.Result(ctx, st.ID, &live); err != nil {
		t.Fatal(err)
	}
	stop() // graceful restart

	c2, _ := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	// The dataset survived via the spill area, under its original ID.
	detail, err := c2.Dataset(ctx, info.ID)
	if err != nil {
		t.Fatalf("dataset lost across restart: %v", err)
	}
	if detail.Rows != info.Rows || detail.Target != info.Target {
		t.Fatalf("restored dataset %+v, want %+v", detail.DatasetInfo, info)
	}
	// The finished job is queryable history...
	got, err := c2.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Attempts != 0 {
		t.Fatalf("recovered job = %+v, want done at attempt 0", got)
	}
	// ...but its result payload was not retained: 410, not a hang or a
	// phantom re-run.
	var res IdentifyResult
	err = c2.Result(ctx, st.ID, &res)
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusGone {
		t.Fatalf("result after restart: err = %v, want 410", err)
	}
	// The idempotency key survived the restart: re-submitting the same
	// request returns the recovered job, not a duplicate.
	st2, err := c2.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("idempotent resubmit created %s, want the recovered %s", st2.ID, st.ID)
	}
}

// freezeJournalAfter installs a durable.journal.append hook that lets
// appends through until trip reports true for a record, then fails
// that append and every later one. A frozen journal is the on-disk
// image of a process that died right after its last successful append.
func freezeJournalAfter(t *testing.T, trip func(durable.Record) bool) {
	t.Helper()
	var frozen atomic.Bool
	faults.Set(faults.JournalAppend, func(arg any) error {
		if frozen.Load() {
			return errors.New("injected crash: journal unreachable")
		}
		if rec, ok := arg.(durable.Record); ok && trip(rec) {
			frozen.Store(true)
			return errors.New("injected crash: journal unreachable")
		}
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.JournalAppend) })
}

// TestCrashMidIdentifyResumesFromCheckpoint is the headline chaos
// test: a server dies (journal frozen) after two identify levels have
// been checkpointed; a new generation on the same data dir must
// re-queue the orphaned job, resume it from the checkpoints, and
// produce a byte-identical IBS to an uninterrupted run — with the job
// neither lost nor duplicated.
func TestCrashMidIdentifyResumesFromCheckpoint(t *testing.T) {
	ctx := context.Background()
	req := JobRequest{Kind: "identify", DatasetID: "", TauC: 0.1, MinSize: 20}

	// Baseline: the same job on an in-memory server, never interrupted.
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	baseInfo := uploadCompas(t, base, 1500, 5)
	req.DatasetID = baseInfo.ID
	baseSt := submitAndWait(t, base, req)
	if baseSt.State != StateDone {
		t.Fatalf("baseline job ended %s (%s)", baseSt.State, baseSt.Error)
	}
	var want IdentifyResult
	if err := base.Result(ctx, baseSt.ID, &want); err != nil {
		t.Fatal(err)
	}

	// Generation A: crash after the second checkpoint lands.
	dir := t.TempDir()
	cA, stopA := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	info := uploadCompas(t, cA, 1500, 5)
	if info.ID != baseInfo.ID {
		t.Fatalf("content-addressed IDs diverged: %s vs %s", info.ID, baseInfo.ID)
	}
	checkpoints := 0
	freezeJournalAfter(t, func(rec durable.Record) bool {
		if rec.Type == durable.RecCheckpoint {
			checkpoints++
		}
		return checkpoints > 2 // the 3rd checkpoint append dies
	})
	st, err := cA.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = cA.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// In memory the job failed (its checkpoint write died); on disk the
	// journal says running + 2 checkpoints — the crash image.
	if st.State != StateFailed {
		t.Fatalf("job under frozen journal ended %s, want failed", st.State)
	}
	stopA()
	faults.Clear(faults.JournalAppend)

	recs := journalRecords(t, dir)
	var onDisk []durable.Record
	for _, r := range recs {
		if r.JobID == st.ID {
			onDisk = append(onDisk, r)
		}
	}
	if n := len(onDisk); n != 4 { // submit, running, cp, cp
		t.Fatalf("crash image has %d records for the job, want 4: %+v", n, onDisk)
	}

	// Generation B: recover and let the job run out.
	cB, _ := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	got, err := cB.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered job ended %s (%s), want done", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Fatalf("recovered job at attempt %d, want 1", got.Attempts)
	}
	var resumed IdentifyResult
	if err := cB.Result(ctx, st.ID, &resumed); err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("resumed IBS differs from uninterrupted run:\n resumed: %s\n want:    %s", gotJSON, wantJSON)
	}

	// No job lost, none duplicated, and the resumed attempt checkpointed
	// only the levels it actually ran: the two recovered levels appear
	// exactly once in the journal.
	jobs, err := listJobs(cB)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("job table after recovery = %+v, want exactly the one job", jobs)
	}
	perLevel := map[int]int{}
	for _, r := range journalRecords(t, dir) {
		if r.Type == durable.RecCheckpoint && r.JobID == st.ID {
			perLevel[r.Level]++
		}
	}
	// The pattern space spans the 3 protected attributes, so a full
	// lattice identify checkpoints levels 3..1. Two landed before the
	// crash; the resumed run cuts only the remaining one.
	if len(perLevel) != 3 {
		t.Fatalf("checkpointed levels = %v, want all 3", perLevel)
	}
	for lv, n := range perLevel {
		if n != 1 {
			t.Fatalf("level %d checkpointed %d times, want once (resume must skip completed levels)", lv, n)
		}
	}
}

// listJobs fetches GET /jobs through the client's transport.
func listJobs(c *Client) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(context.Background(), http.MethodGet, "/jobs", nil, &out)
	return out, err
}

// TestCrashMidRemedyReRunsJob kills a remedy job with an injected
// worker panic while the journal is frozen at the "running" record —
// a crash with no checkpoints yet. The next generation must re-run
// the job from scratch and finish it.
func TestCrashMidRemedyReRunsJob(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cA, stopA := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	info := uploadCompas(t, cA, 1200, 7)

	// Freeze the journal right after the "running" record lands, then
	// kill the job with an injected worker panic: in memory the job
	// fails (and the failure cannot be journaled); on disk the crash
	// image ends at "running" with no checkpoints.
	var seenRunning atomic.Bool
	freezeJournalAfter(t, func(rec durable.Record) bool {
		if seenRunning.Load() {
			return true
		}
		if rec.Type == durable.RecState && rec.State == string(StateRunning) {
			seenRunning.Store(true)
		}
		return false
	})
	faults.Set(faults.ServeJob, func(any) error { panic("injected worker crash") })
	st, err := cA.SubmitJob(ctx, JobRequest{Kind: "remedy", DatasetID: info.ID, TauC: 0.1, MinSize: 20, Technique: "PS", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err = cA.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("job under crash injection ended %s, want failed", st.State)
	}
	stopA()
	faults.Reset()

	cB, _ := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	got, err := cB.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("re-run job ended %s (%s), want done", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Fatalf("re-run job at attempt %d, want 1", got.Attempts)
	}
	var res RemedyResult
	if err := cB.Result(ctx, st.ID, &res); err != nil {
		t.Fatal(err)
	}
	// The remedied output landed in the registry of the new generation.
	if _, err := cB.Dataset(ctx, res.ResultDatasetID); err != nil {
		t.Fatalf("remedied dataset %s not registered: %v", res.ResultDatasetID, err)
	}
}

// TestRecoveryAttemptBudgetAndMissingDataset hand-crafts crash images
// to exercise the recovery's failure rules: a job out of attempts is
// journaled failed, and a job whose dataset cannot be restored fails
// with a clear reason instead of wedging the queue.
func TestRecoveryAttemptBudgetAndMissingDataset(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store := openStore(t, dir)
	j := store.Journal()
	mustAppend := func(rec durable.Record) {
		t.Helper()
		if err := j.Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	req := []byte(`{"kind":"identify","dataset_id":"ds-missing"}`)
	// job-000001: interrupted on its last allowed life.
	mustAppend(durable.Record{Type: durable.RecSubmit, JobID: "job-000001", Request: req})
	mustAppend(durable.Record{Type: durable.RecState, JobID: "job-000001", State: string(StateRunning), Attempt: 2})
	// job-000002: first life, but its dataset was never spilled.
	mustAppend(durable.Record{Type: durable.RecSubmit, JobID: "job-000002", Request: req})
	mustAppend(durable.Record{Type: durable.RecState, JobID: "job-000002", State: string(StateRunning)})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	c, _ := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8, MaxAttempts: 3})
	budget, err := c.Job(ctx, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if budget.State != StateFailed || !contains(budget.Error, "attempt budget exhausted") {
		t.Fatalf("over-budget job = %+v, want failed with budget detail", budget)
	}
	missing, err := c.Job(ctx, "job-000002")
	if err != nil {
		t.Fatal(err)
	}
	if missing.State != StateFailed || !contains(missing.Error, "dataset not recovered") {
		t.Fatalf("dataset-less job = %+v, want failed with dataset detail", missing)
	}
	// Both conclusions were journaled: a second recovery replays to the
	// same terminal states instead of re-queueing anything.
	recs := journalRecords(t, dir)
	failed := map[string]bool{}
	for _, r := range recs {
		if r.Type == durable.RecState && r.State == string(StateFailed) {
			failed[r.JobID] = true
		}
	}
	if !failed["job-000001"] || !failed["job-000002"] {
		t.Fatalf("recovery verdicts not journaled; records: %+v", recs)
	}
	// New submissions continue the ID sequence past the recovered ones.
	info := uploadCompas(t, c, 600, 9)
	st := submitAndWait(t, c, JobRequest{Kind: "identify", DatasetID: info.ID, TauC: 0.2, MinSize: 20})
	if st.ID != "job-000003" {
		t.Fatalf("post-recovery job ID = %s, want job-000003", st.ID)
	}
}

// TestRecoveryRequeuesJournaledQueuedJob crafts the crash image of a
// job that was acknowledged (journaled queued) but never started, on
// top of a real spilled dataset; the next generation must run it to
// completion on its first attempt.
func TestRecoveryRequeuesJournaledQueuedJob(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	cA, stopA := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	info := uploadCompas(t, cA, 800, 11)
	stopA()

	store := openStore(t, dir)
	reqJSON, err := json.Marshal(JobRequest{Kind: "identify", DatasetID: info.ID, TauC: 0.2, MinSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Journal().Append(ctx, durable.Record{
		Type: durable.RecSubmit, JobID: "job-000042", Request: reqJSON,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	cB, _ := newDurableServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	st, err := cB.Wait(ctx, "job-000042", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Attempts != 0 {
		t.Fatalf("recovered queued job = %+v, want done at attempt 0 (queued jobs keep their first life)", st)
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || bytes.Contains([]byte(s), []byte(sub))
}
