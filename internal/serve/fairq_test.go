package serve

import (
	"errors"
	"testing"
	"time"
)

// fqJob builds a bare queued job for fair-queue unit tests (no engine
// attached, never run).
func fqJob(id, tenant string) *job {
	return &job{
		id:       id,
		req:      JobRequest{Kind: "identify", DatasetID: "ds-x", Tenant: tenant},
		state:    StateQueued,
		done:     make(chan struct{}),
		admitted: make(chan struct{}),
	}
}

func mustPush(t *testing.T, q *fairQueue, j *job) {
	t.Helper()
	if _, _, err := q.push(j, false); err != nil {
		t.Fatalf("push %s: %v", j.id, err)
	}
}

// TestFairQueueWeights saturates two tenants and checks the DRR
// dispatch interleaving honors the 3:1 weight ratio exactly: every
// ring rotation serves three alpha jobs then one beta job.
func TestFairQueueWeights(t *testing.T) {
	q := newFairQueue(32, TenantConfig{Weight: 1}, nil)
	q.configure("alpha", TenantConfig{Weight: 3})
	q.configure("beta", TenantConfig{Weight: 1})
	for i := 0; i < 12; i++ {
		mustPush(t, q, fqJob(string(rune('a'+i)), "alpha"))
	}
	for i := 0; i < 4; i++ {
		mustPush(t, q, fqJob(string(rune('A'+i)), "beta"))
	}
	var gotAlpha, gotBeta int
	for i := 0; i < 16; i++ {
		j, ok := q.tryPop()
		if !ok {
			t.Fatalf("tryPop %d: queue empty early", i)
		}
		switch j.tenant {
		case "alpha":
			gotAlpha++
		case "beta":
			gotBeta++
		default:
			t.Fatalf("job %s has tenant %q", j.id, j.tenant)
		}
		// While both backlogs last (first 4 rotations of 4 pops), each
		// rotation must be alpha,alpha,alpha,beta.
		if i < 16 && i%4 == 3 && gotBeta != i/4+1 {
			t.Fatalf("after %d pops want %d beta jobs, got %d", i+1, i/4+1, gotBeta)
		}
	}
	if gotAlpha != 12 || gotBeta != 4 {
		t.Fatalf("served alpha=%d beta=%d, want 12/4", gotAlpha, gotBeta)
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestFairQueueNoStarvation pins the invariant the DRR design exists
// for: a weight-1 tenant behind a weight-100 neighbor with an always-
// full backlog is still served at least once per ring rotation.
func TestFairQueueNoStarvation(t *testing.T) {
	q := newFairQueue(256, TenantConfig{Weight: 1}, nil)
	q.configure("whale", TenantConfig{Weight: 100})
	q.configure("minnow", TenantConfig{Weight: 1})
	for i := 0; i < 210; i++ {
		mustPush(t, q, fqJob(string(rune(i)), "whale"))
	}
	mustPush(t, q, fqJob("m1", "minnow"))
	mustPush(t, q, fqJob("m2", "minnow"))
	// One full whale quantum (100 pops) plus one more pop must reach the
	// minnow: the ring cannot revisit the whale before visiting everyone
	// else.
	var sawMinnowAt []int
	for i := 0; i < 202; i++ {
		j, ok := q.tryPop()
		if !ok {
			t.Fatalf("tryPop %d: queue empty early", i)
		}
		if j.tenant == "minnow" {
			sawMinnowAt = append(sawMinnowAt, i)
		}
	}
	if len(sawMinnowAt) != 2 {
		t.Fatalf("minnow served %d times in 202 pops, want 2 (at %v)", len(sawMinnowAt), sawMinnowAt)
	}
	if sawMinnowAt[0] > 100 || sawMinnowAt[1] > 201 {
		t.Fatalf("minnow starved: served at pops %v", sawMinnowAt)
	}
}

// TestFairQueuePerTenantDepth checks the depth bound is per tenant: a
// tenant at its cap gets ErrQueueFull while another tenant is still
// admitted.
func TestFairQueuePerTenantDepth(t *testing.T) {
	q := newFairQueue(2, TenantConfig{Weight: 1}, nil)
	mustPush(t, q, fqJob("a1", "alpha"))
	mustPush(t, q, fqJob("a2", "alpha"))
	if _, _, err := q.push(fqJob("a3", "alpha"), false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third alpha push: want ErrQueueFull, got %v", err)
	}
	mustPush(t, q, fqJob("b1", "beta")) // other tenant unaffected
	th := q.tenantHealth()
	var alpha *TenantHealth
	for i := range th {
		if th[i].Name == "alpha" {
			alpha = &th[i]
		}
	}
	if alpha == nil || alpha.Rejected != 1 || alpha.Submitted != 2 {
		t.Fatalf("alpha health = %+v, want rejected=1 submitted=2", alpha)
	}
}

// TestFairQueueRateLimit drives a 2/s, burst-2 token bucket on a fake
// clock: the burst admits two, the third is throttled with a sane
// refill hint, and advancing the clock refills admission.
func TestFairQueueRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := newFairQueue(16, TenantConfig{Weight: 1}, clock)
	q.configure("metered", TenantConfig{Weight: 1, Rate: 2, Burst: 2})

	mustPush(t, q, fqJob("j1", "metered"))
	mustPush(t, q, fqJob("j2", "metered"))
	_, hint, err := q.push(fqJob("j3", "metered"), false)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third push: want ErrRateLimited, got %v", err)
	}
	if hint < 1 || hint > 60 {
		t.Fatalf("retry hint %d out of [1, 60]", hint)
	}
	// Recovery re-admission bypasses the bucket even while it is empty.
	if _, _, err := q.push(fqJob("j4", "metered"), true); err != nil {
		t.Fatalf("bypass push: %v", err)
	}
	// Half a second refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	mustPush(t, q, fqJob("j5", "metered"))
	if _, _, err := q.push(fqJob("j6", "metered"), false); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-refill second push: want ErrRateLimited, got %v", err)
	}
	th := q.tenantHealth()
	for _, row := range th {
		if row.Name == "metered" && row.Throttled != 2 {
			t.Fatalf("metered throttled = %d, want 2", row.Throttled)
		}
	}
}

// TestFairQueueOverflowFold checks the bounded tenant table: past
// maxTenants distinct names, new tenants fold into the default queue
// instead of growing the ring.
func TestFairQueueOverflowFold(t *testing.T) {
	q := newFairQueue(4096, TenantConfig{Weight: 1}, nil)
	for i := 0; i < maxTenants+10; i++ {
		name := "t" + string(rune('0'+i%10)) + string(rune('A'+i/10))
		j := fqJob(name+"-job", name)
		mustPush(t, q, j)
		if i >= maxTenants-1 { // default tenant occupies one slot
			if j.tenant != DefaultTenant {
				t.Fatalf("tenant %d (%s) accounted as %q, want fold into %q", i, name, j.tenant, DefaultTenant)
			}
		} else if j.tenant != name {
			t.Fatalf("tenant %d accounted as %q, want %q", i, j.tenant, name)
		}
	}
	if got := len(q.tenantHealth()); got != maxTenants {
		t.Fatalf("tenant table grew to %d rows, want %d", got, maxTenants)
	}
}

// TestRetryAfterBounds pins the derived Retry-After clamp: never below
// 1s, never above 60s, and proportional in between.
func TestRetryAfterBounds(t *testing.T) {
	cases := []struct {
		queued, workers int
		avgMS           float64
		want            int
	}{
		{0, 4, 100, 1},      // empty queue → floor
		{1, 4, 1, 1},        // sub-second drain → floor
		{8, 4, 1000, 2},     // 8 jobs × 1s / 4 workers = 2s
		{100, 1, 10000, 60}, // 1000s backlog → ceiling
		{4, 0, 500, 2},      // workers clamps to 1: 4×0.5s
		{10, 4, 0, 1},       // cold server assumes 250ms/job: ceil(0.625)=1
		{1000, 4, 0, 60},    // cold but deep backlog still hits... 1000*250/4/1000=62.5 → 60
		{-5, 4, 100, 1},     // negative queue (impossible) → floor
		{100, 4, -10, 7},    // negative avg treated as cold 250ms: ceil(100×0.25/4)=7
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.queued, tc.workers, tc.avgMS); got != tc.want {
			t.Errorf("retryAfterSecs(%d, %d, %v) = %d, want %d",
				tc.queued, tc.workers, tc.avgMS, got, tc.want)
		}
	}
	for q := 0; q < 5000; q += 7 { // monotone and always in bounds
		got := retryAfterSecs(q, 4, 800)
		if got < 1 || got > 60 {
			t.Fatalf("retryAfterSecs(%d, 4, 800) = %d out of [1, 60]", q, got)
		}
	}
}
