package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// Tests for the fleet-observability surfaces owned by the serve layer:
// trace adoption on forwarded submissions, deterministic trace minting
// on the forwarding hop, the Prometheus exposition of /metrics, the
// per-route instrumentation, and the slow-job log.

func TestForwardedSubmissionAdoptsTraceAndRecordsEvent(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4, NodeID: "node-l"})
	info := uploadCompas(t, c, 120, 7)

	// Simulate what a forwarding follower sends: the job submission
	// with the trace identity it minted and the forwarding marker. The
	// leader must adopt the incoming trace ID instead of minting its
	// own, and the submit span must carry a "forwarded" event naming
	// the relay hop.
	body := strings.NewReader(`{"kind":"train","dataset_id":"` + info.ID + `"}`)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Remedy-Forwarded", "node-f")
	obs.InjectHTTP(req.Header, obs.TraceContext{TraceID: "node-f/fwd-000001"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := decodeInto(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("forwarded job: %+v, %v", st, err)
	}

	doc, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != "node-f/fwd-000001" {
		t.Fatalf("trace ID = %q, want the forwarded hop's %q", doc.TraceID, "node-f/fwd-000001")
	}
	var forwarded bool
	for _, sp := range doc.Spans {
		if sp.Name != "serve.submit" {
			continue
		}
		for _, ev := range sp.Events {
			if ev.Name == "forwarded" && strings.Contains(ev.Attr, "node-f") {
				forwarded = true
			}
		}
	}
	if !forwarded {
		t.Fatalf("submit span has no forwarded event naming node-f: %+v", doc.Spans)
	}
}

func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// fwdView is a minimal ClusterView fake: always a follower of a fixed
// leader URL.
type fwdView struct{ leader string }

func (v fwdView) Role() (string, uint64, string) { return "follower", 1, "node-l" }
func (v fwdView) LeaderURL() string              { return v.leader }

func TestForwardMintsDeterministicTraceID(t *testing.T) {
	var mu sync.Mutex
	var traceIDs, vias []string
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		traceIDs = append(traceIDs, r.Header.Get(obs.HeaderTraceID))
		vias = append(vias, r.Header.Get("X-Remedy-Forwarded"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{}`)) //lint:allow errdiscard test stub response
	}))
	defer leader.Close()

	srv, c := newTestServer(t, Config{Workers: 1, NodeID: "node-f"})
	srv.SetCluster(fwdView{leader: leader.URL})

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Job(ctx, "job-000001"); err != nil {
			t.Fatalf("forwarded call %d: %v", i, err)
		}
	}
	// A client that already carries a trace keeps it through the hop.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/job-000001", nil)
	if err != nil {
		t.Fatal(err)
	}
	obs.InjectHTTP(req.Header, obs.TraceContext{TraceID: "client/abc"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"node-f/fwd-000001", "node-f/fwd-000002", "client/abc"}
	if len(traceIDs) != 3 {
		t.Fatalf("leader saw %d forwards, want 3", len(traceIDs))
	}
	for i, id := range traceIDs {
		if id != want[i] {
			t.Fatalf("forward %d trace ID = %q, want deterministic %q", i, id, want[i])
		}
		if vias[i] != "node-f" {
			t.Fatalf("forward %d missing forwarding marker: %q", i, vias[i])
		}
	}
}

func TestMetricsPromExposition(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{
		"# TYPE serve_http_requests counter",
		// The per-route middleware: the /healthz probe above is counted
		// under its route pattern and status class.
		`serve_http_requests_total{route="GET /healthz",status="2xx"} 1`,
		`serve_http_duration_ms_bucket{route="GET /healthz",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestPerRouteInstrumentationBoundsCardinality(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	// Many distinct job IDs must collapse into one route series — the
	// label is the mux pattern, not the raw URL.
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		_, _ = c.Job(ctx, id) //lint:allow errdiscard 404s are fine; only the route accounting matters
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counters[`serve.http_requests_total{route="GET /jobs/{id}",status="4xx"}`]; got != 3 {
		t.Fatalf("route series count = %d, want 3 collapsed onto the pattern (counters: %v)", got, snap.Counters)
	}
	if h, ok := snap.Histograms[`serve.http_duration_ms{route="GET /jobs/{id}"}`]; !ok || h.Count != 3 {
		t.Fatalf("route histogram = %+v ok=%v, want 3 observations", h, ok)
	}
	if g, ok := snap.Gauges[`serve.http_inflight{route="GET /jobs/{id}"}`]; !ok || g != 0 {
		t.Fatalf("inflight gauge = %v ok=%v, want 0 after requests drain", g, ok)
	}
}

// lockedBuf is an io.Writer safe to read while the engine's worker
// goroutines are still logging.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestSlowJobLogNamesSpans(t *testing.T) {
	var buf lockedBuf
	srv, c := newTestServer(t, Config{
		Workers:          1,
		SlowJobThreshold: time.Nanosecond, // every job is slow
		Logger:           obs.NewLogger(&buf, obs.LevelWarn),
	})
	ctx := context.Background()
	info := uploadCompas(t, c, 120, 7)
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("job: %+v, %v", st, err)
	}

	if got := srv.Metrics().Snapshot().Counters["serve.jobs_slow"]; got != 1 {
		t.Fatalf("jobs_slow = %d, want 1", got)
	}
	out := buf.String()
	if !strings.Contains(out, "slow job") || !strings.Contains(out, st.ID) {
		t.Fatalf("slow-job warning missing:\n%s", out)
	}
	// The breakdown: at least one finished span logged with its timing.
	if !strings.Contains(out, "slow job span") || !strings.Contains(out, "duration_us") {
		t.Fatalf("slow-job span breakdown missing:\n%s", out)
	}

	// Threshold 0 disables the log entirely.
	var quiet lockedBuf
	_, c2 := newTestServer(t, Config{Workers: 1, Logger: obs.NewLogger(&quiet, obs.LevelWarn)})
	info2 := uploadCompas(t, c2, 120, 7)
	st2, err := c2.SubmitJob(ctx, JobRequest{Kind: "identify", DatasetID: info2.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = c2.Wait(ctx, st2.ID, 5*time.Millisecond); err != nil || st2.State != StateDone {
		t.Fatalf("job: %+v, %v", st2, err)
	}
	if strings.Contains(quiet.String(), "slow job") {
		t.Fatalf("slow-job log fired with threshold 0:\n%s", quiet.String())
	}
}
