package serve

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// regCSV builds a small CSV body with n data rows.
func regCSV(n int) string {
	var b strings.Builder
	b.WriteString("race,sex,label\n")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.WriteString("a,m,1\n")
		} else {
			b.WriteString("b,f,0\n")
		}
	}
	return b.String()
}

func mustPut(t *testing.T, rg *Registry, body, name string) DatasetInfo {
	t.Helper()
	info, err := rg.Put(context.Background(), strings.NewReader(body), name, "label", []string{"race"})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestRegistryContentIdentity(t *testing.T) {
	rg := NewRegistry(8, 0, 0)
	a := mustPut(t, rg, regCSV(10), "a")
	b := mustPut(t, rg, regCSV(10), "ignored") // same bytes, same config
	if a.ID != b.ID {
		t.Fatalf("identical content got distinct IDs %s / %s", a.ID, b.ID)
	}
	if rg.Len() != 1 {
		t.Fatalf("registry holds %d entries, want 1 (dedup)", rg.Len())
	}
	if a.Rows != 10 || a.Bytes != int64(len(regCSV(10))) {
		t.Fatalf("info = %+v", a)
	}

	// Same bytes under a different protected set is a different dataset.
	c, err := rg.Put(context.Background(), strings.NewReader(regCSV(10)), "c", "label", []string{"sex"})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("different protected config must produce a different ID")
	}
}

func TestRegistryUploadCaps(t *testing.T) {
	rg := NewRegistry(8, 5, 0)
	if _, err := rg.Put(context.Background(), strings.NewReader(regCSV(6)), "", "label", []string{"race"}); !errors.Is(err, dataset.ErrTooLarge) {
		t.Fatalf("row cap err = %v", err)
	}
	body := regCSV(6)
	rg = NewRegistry(8, 0, int64(len(body)-1))
	if _, err := rg.Put(context.Background(), strings.NewReader(body), "", "label", []string{"race"}); !errors.Is(err, dataset.ErrTooLarge) {
		t.Fatalf("byte cap err = %v", err)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	rg := NewRegistry(2, 0, 0)
	a := mustPut(t, rg, regCSV(2), "a")
	b := mustPut(t, rg, regCSV(4), "b")
	if _, err := rg.Get(a.ID); err != nil { // touch a: b is now LRU
		t.Fatal(err)
	}
	c := mustPut(t, rg, regCSV(6), "c")
	if _, err := rg.Get(b.ID); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("LRU entry b should be evicted, got %v", err)
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, err := rg.Get(id); err != nil {
			t.Fatalf("survivor %s: %v", id, err)
		}
	}
}

func TestRegistryEvictionRespectsRefs(t *testing.T) {
	rg := NewRegistry(2, 0, 0)
	a := mustPut(t, rg, regCSV(2), "a")
	b := mustPut(t, rg, regCSV(4), "b")
	_, releaseA, err := rg.Acquire(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, releaseB, err := rg.Acquire(b.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Both pinned: a third dataset cannot be admitted.
	if _, err := rg.Put(context.Background(), strings.NewReader(regCSV(6)), "c", "label", []string{"race"}); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("pinned-full err = %v", err)
	}

	// Releasing a makes it the only evictable entry.
	releaseA()
	releaseA() // idempotent: must not double-decrement
	c := mustPut(t, rg, regCSV(6), "c")
	if _, err := rg.Get(a.ID); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("released entry a should be the victim, got %v", err)
	}
	if _, err := rg.Get(b.ID); err != nil {
		t.Fatalf("pinned entry b must survive: %v", err)
	}
	if _, err := rg.Get(c.ID); err != nil {
		t.Fatal(err)
	}
	releaseB()
}

func TestRegistryDeleteBusy(t *testing.T) {
	rg := NewRegistry(4, 0, 0)
	a := mustPut(t, rg, regCSV(2), "a")
	_, release, err := rg.Acquire(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Delete(context.Background(), a.ID); !errors.Is(err, ErrDatasetBusy) {
		t.Fatalf("busy delete err = %v", err)
	}
	release()
	if err := rg.Delete(context.Background(), a.ID); err != nil {
		t.Fatalf("delete after release: %v", err)
	}
	if err := rg.Delete(context.Background(), a.ID); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestRegistryPutDataset(t *testing.T) {
	rg := NewRegistry(4, 0, 0)
	d := synth.CompasN(100, 1)
	a, err := rg.PutDataset(context.Background(), d, "derived")
	if err != nil {
		t.Fatal(err)
	}
	b, err := rg.PutDataset(context.Background(), d, "derived-again")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || rg.Len() != 1 {
		t.Fatalf("identical derived datasets must dedup: %s / %s (%d entries)", a.ID, b.ID, rg.Len())
	}
	if a.Bytes != 0 {
		t.Fatalf("server-side dataset reports %d upload bytes, want 0", a.Bytes)
	}
	detail, err := rg.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(detail.Summary) != len(d.Schema.Attrs) {
		t.Fatalf("profile has %d attrs, want %d", len(detail.Summary), len(d.Schema.Attrs))
	}
}
