// Package serve turns the one-shot pipeline (identify → remedy →
// train → audit) into a long-running fairness-repair service — the
// auditing-as-a-service deployment shape: clients register datasets
// once and submit repeated audit/repair jobs against them as models
// and data evolve.
//
// The server is three pieces on the Go standard library:
//
//   - a dataset Registry: CSV uploads are streamed through
//     dataset.ReadCSVLimit (size-capped, never buffered whole), keyed
//     by content hash (idempotent re-upload), profiled once
//     (cached Describe summaries), and evicted LRU — but never while
//     a job holds a reference;
//
//   - an async job engine: a bounded worker pool drains a bounded
//     queue of identify/remedy/train/audit jobs. Submission never
//     blocks — a full queue is an immediate 429 — and every job runs
//     under its own context deadline, span tree, and private metrics
//     registry, so GET /jobs/{id} reports live partial-progress
//     counters and DELETE /jobs/{id} cancels with bounded latency via
//     the pipeline's cooperative checkpoints;
//
//   - HTTP handlers binding the two together, plus /healthz and a
//     /metrics endpoint serving the server-level obs registry.
//
// Jobs honor the internal/faults hooks (the engine fires
// faults.ServeJob as each job starts, and the pipeline's own points
// fire inside jobs), so the robustness suite extends to the server:
// injected failures surface as failed jobs with error detail, never
// as wedged workers. Shutdown drains running jobs within a deadline
// and marks everything else cancelled.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/obs"
)

// Config sizes the server. Zero values take the documented defaults.
type Config struct {
	// MaxDatasets caps the registry (default 16 resident datasets).
	MaxDatasets int
	// MaxUploadRows / MaxUploadBytes cap one CSV upload (defaults
	// 2,000,000 rows and 256 MiB; negative = unlimited).
	MaxUploadRows  int
	MaxUploadBytes int64
	// Workers is the job pool size (default 4) and QueueDepth the
	// bounded queue length behind it (default 16).
	Workers    int
	QueueDepth int
	// JobTimeout is the default per-job deadline (default 5m);
	// MaxJobTimeout clamps request-supplied deadlines (default
	// JobTimeout). Zero JobTimeout with zero MaxJobTimeout means jobs
	// run without a deadline.
	JobTimeout    time.Duration
	MaxJobTimeout time.Duration
	// MaxAttempts caps how many lives one job gets across crash
	// recoveries (default 3): a job found running in the journal is
	// re-queued with its attempt counter bumped until the budget is
	// spent, then marked failed. Only meaningful with a durable store.
	MaxAttempts int
	// MaxIdemKeys caps the idempotency-key dedup table (default 1024;
	// negative = unlimited). Past the cap, keys of terminal jobs —
	// whose outcome the journal already proves — are evicted oldest
	// first; keys of live jobs are never evicted, so dedup of anything
	// still in flight is unaffected.
	MaxIdemKeys int
	// Tenants configures the multi-tenant admission layer: per-tenant
	// fair-share weight and token-bucket quota, keyed by the tenant name
	// clients send in the X-Remedy-Tenant header. Tenants not listed
	// here are admitted under DefaultQuota on first sight (up to a
	// bounded table; overflow folds into the default tenant).
	Tenants map[string]TenantConfig
	// DefaultQuota applies to the default tenant and to every tenant not
	// named in Tenants (zero value: weight 1, unlimited rate).
	DefaultQuota TenantConfig
	// CacheEntries bounds the response cache replaying identical
	// identify/train/audit submissions without re-running them (default
	// 128; negative disables caching).
	CacheEntries int
	// NodeID names this node in a cluster ("" for single-node mode);
	// it appears in health output, work-stealing attribution, and the
	// deterministic trace IDs minted at submission.
	NodeID string
	// SlowJobThreshold, when positive, turns on the slow-job log: a job
	// whose run exceeds it logs its span timings level by level at
	// completion, so the expensive lattice levels are named without
	// anyone having to fetch the trace in time.
	SlowJobThreshold time.Duration
	// Logger and Metrics are the server-level observability handles;
	// nil means a silent logger and a fresh registry.
	Logger  *obs.Logger
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxDatasets == 0 {
		c.MaxDatasets = 16
	}
	if c.MaxUploadRows == 0 {
		c.MaxUploadRows = 2_000_000
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxJobTimeout == 0 {
		c.MaxJobTimeout = c.JobTimeout
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.MaxIdemKeys == 0 {
		c.MaxIdemKeys = 1024
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// ClusterView is the narrow window the serving layer needs onto the
// cluster a node belongs to. internal/cluster implements it; a nil
// view is single-node mode. Keeping the interface here (and the
// implementation there) is what lets cluster import serve for its
// inter-node client without a cycle.
type ClusterView interface {
	// Role returns this node's current role ("leader", "follower", or
	// "deposed"), the current term, and the leading node's ID ("" while
	// no term is established).
	Role() (role string, term uint64, leader string)
	// LeaderURL returns the base URL of the current leader, or "" when
	// it is unknown or this node is the leader itself.
	LeaderURL() string
}

// FleetLag is an optional extension of ClusterView: a leader-side
// cluster exposes per-follower replication lag (journal frames
// behind), surfaced in /readyz and /healthz. Checked by assertion so
// existing ClusterView implementations and test fakes keep compiling.
type FleetLag interface {
	// FollowerLag maps follower node ID → frames behind the leader's
	// journal (nil when this node is not leading).
	FollowerLag() map[string]uint64
}

// Server is the remedyd application: registry + engine + handlers,
// plus an optional durable store (journal + dataset spill).
type Server struct {
	cfg      Config
	registry *Registry
	engine   *engine
	metrics  *obs.Registry
	logger   *obs.Logger
	store    *durable.Store

	// readyMu guards the readiness fields. notReady is "" when the node
	// is ready to serve; otherwise it carries the reason (/readyz body).
	readyMu  sync.Mutex
	notReady string

	// cluster, when non-nil, makes this node fleet-aware: follower
	// nodes forward API traffic to the leader and health output carries
	// the role/term. Set once via SetCluster before serving traffic.
	cluster ClusterView
	// forward issues forwarded requests; nil means http.DefaultClient.
	forward *http.Client
	// fetchDataset, when non-nil, is called on a dataset-registry miss
	// during recovery or stolen-job execution to pull the dataset from
	// the cluster before the lookup is retried.
	fetchDataset func(ctx context.Context, id string) error
	// fleetObs, when non-nil, assembles the fleet-wide observability
	// view behind GET /metrics/fleet (the cluster installs it on the
	// leader). Nil serves a single-node fleet of one.
	fleetObs func(ctx context.Context) (FleetObs, error)
	// fwdSeq numbers the trace IDs this node mints for forwarded
	// requests that arrived untraced — deterministic per node
	// (node-id/fwd-NNNNNN), no entropy.
	fwdSeq atomic.Int64

	// recTerm/recLeader are the last leadership term the journal
	// witnessed, captured during recovery for the cluster bootstrap;
	// recTermStarts is the full term-start history (snapshot + tail),
	// which the cluster exchanges for fork detection.
	recTerm       uint64
	recLeader     string
	recTermStarts []durable.TermStart
}

// newServer builds the registry and engine without starting workers.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxDatasets, cfg.MaxUploadRows, cfg.MaxUploadBytes),
		metrics:  cfg.Metrics,
		logger:   cfg.Logger,
	}
	s.engine = newEngine(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, cfg.MaxJobTimeout,
		func(ctx context.Context, j *job) (any, error) { return s.runJob(ctx, j) },
		s.metrics, s.logger)
	s.engine.maxAttempts = cfg.MaxAttempts
	s.engine.maxIdemKeys = cfg.MaxIdemKeys
	s.engine.node = cfg.NodeID
	s.engine.slowJob = cfg.SlowJobThreshold
	s.engine.cache = newRespCache(cfg.CacheEntries)
	s.engine.queue.setDefaults(cfg.DefaultQuota)
	// Sorted registration keeps the DRR ring order — and everything
	// derived from it (health rows, drain order) — deterministic across
	// restarts regardless of map iteration order.
	names := make([]string, 0, len(cfg.Tenants))
	for name := range cfg.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.engine.queue.configure(name, cfg.Tenants[name])
	}
	return s
}

// New builds an in-memory server and starts its worker pool. Callers
// mount Handler on an http.Server and call Shutdown when done. State
// does not survive a restart; see NewDurable for the crash-safe mode.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.engine.start()
	return s
}

// NewDurable builds a crash-safe server on the given store: recovery
// replays the journal and re-loads spilled datasets before any worker
// runs, then every dataset admission and job transition is made
// durable before it is acknowledged. The store's journal stays open
// for the server's lifetime; Close the store after Shutdown.
func NewDurable(ctx context.Context, cfg Config, store *durable.Store) (*Server, error) {
	s := newServer(cfg)
	s.store = store
	s.registry.store = store
	if err := s.recover(ctx); err != nil {
		return nil, err
	}
	s.engine.start()
	return s, nil
}

// NewFollower builds a durable server in cluster-standby mode: the
// store is attached and the journal's intact prefix is made consistent
// (datasets restored, sequence seeded, any torn tail cut), but no job
// is restored and — critically — nothing is appended. A follower's
// journal is a replica of its leader's log; appending recovery records
// of its own would fork it positionally. The node starts not-ready
// ("no current term") and its engine runs with an empty queue; Promote
// turns it into a serving leader when the cluster elects it.
func NewFollower(ctx context.Context, cfg Config, store *durable.Store) (*Server, error) {
	s := newServer(cfg)
	s.store = store
	s.registry.store = store
	s.engine.journal = store.Journal()
	s.SetNotReady("no current term")
	if err := s.recoverStandby(ctx); err != nil {
		return nil, err
	}
	s.engine.start()
	return s, nil
}

// Registry exposes the dataset registry (tests and embedding callers).
func (s *Server) Registry() *Registry { return s.registry }

// Metrics exposes the server-level registry backing /metrics.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Store exposes the durable store (nil in the in-memory mode).
func (s *Server) Store() *durable.Store { return s.store }

// NodeID returns the configured cluster node ID ("" single-node).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// RecoveredTerm returns the last leadership term (and its leader) the
// journal witnessed, captured at recovery — the cluster bootstrap's
// starting point. Zero/"" for a journal that never ran in a cluster.
func (s *Server) RecoveredTerm() (uint64, string) { return s.recTerm, s.recLeader }

// RecoveredTermStarts returns the journal's full term-start history as
// recovery reconstructed it — snapshot-carried entries plus the tail's
// RecTerm records, with absolute sequences. The cluster seeds its fork
// detection from this instead of re-scanning the journal file, which
// after compaction no longer holds the early RecTerm records.
func (s *Server) RecoveredTermStarts() []durable.TermStart {
	return append([]durable.TermStart(nil), s.recTermStarts...)
}

// SetCluster attaches the cluster view. Call once, before the handler
// serves traffic.
func (s *Server) SetCluster(cv ClusterView) { s.cluster = cv }

// SetForwardClient overrides the HTTP client used to forward follower
// traffic to the leader (tests inject an httptest client).
func (s *Server) SetForwardClient(c *http.Client) { s.forward = c }

// SetDatasetFetcher installs the cluster's fetch-on-miss hook: on a
// dataset-registry miss during recovery or stolen-job execution, fn is
// invoked to pull the dataset from its owning node, then the lookup is
// retried.
func (s *Server) SetDatasetFetcher(fn func(ctx context.Context, id string) error) {
	s.fetchDataset = fn
}

// SetFleetObs installs the fleet-wide observability aggregator behind
// GET /metrics/fleet (the cluster layer provides it; a nil fn keeps
// the single-node fleet-of-one view). Call before serving traffic.
func (s *Server) SetFleetObs(fn func(ctx context.Context) (FleetObs, error)) {
	s.fleetObs = fn
}

// LocalNodeObs snapshots this node's own observability view — the
// per-node unit the fleet aggregation is built from, and the body
// /cluster/obs serves.
func (s *Server) LocalNodeObs() NodeObs {
	h := s.health()
	return NodeObs{
		NodeID:  s.cfg.NodeID,
		Role:    h.Role,
		Term:    h.Term,
		Health:  h,
		Metrics: s.metrics.Snapshot(),
	}
}

// SetReady marks the node ready to serve.
func (s *Server) SetReady() {
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	s.notReady = ""
}

// SetNotReady marks the node not ready, with the reason /readyz
// reports. Liveness (/livez) is unaffected.
func (s *Server) SetNotReady(reason string) {
	if reason == "" {
		reason = "not ready"
	}
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	s.notReady = reason
}

// Readiness reports whether the node is ready and, when it is not,
// the reason.
func (s *Server) Readiness() (bool, string) {
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	return s.notReady == "", s.notReady
}

// acquireDataset is Registry.Acquire plus the cluster's fetch-on-miss
// hook: an unknown dataset is fetched from the fleet once, then the
// lookup is retried.
func (s *Server) acquireDataset(ctx context.Context, id string) (*dataset.Dataset, func(), error) {
	d, release, err := s.registry.Acquire(id)
	if err == nil || s.fetchDataset == nil || !errors.Is(err, ErrDatasetNotFound) {
		return d, release, err
	}
	if ferr := s.fetchDataset(ctx, id); ferr != nil {
		return nil, nil, fmt.Errorf("%w (cluster fetch: %v)", err, ferr)
	}
	return s.registry.Acquire(id)
}

// Shutdown stops job intake, cancels queued jobs, and drains running
// ones until ctx expires; stragglers are then hard-cancelled and
// marked cancelled once they unwind. It returns ctx.Err() if the
// drain deadline was hit, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.engine.Shutdown(ctx)
}
