// Package serve turns the one-shot pipeline (identify → remedy →
// train → audit) into a long-running fairness-repair service — the
// auditing-as-a-service deployment shape: clients register datasets
// once and submit repeated audit/repair jobs against them as models
// and data evolve.
//
// The server is three pieces on the Go standard library:
//
//   - a dataset Registry: CSV uploads are streamed through
//     dataset.ReadCSVLimit (size-capped, never buffered whole), keyed
//     by content hash (idempotent re-upload), profiled once
//     (cached Describe summaries), and evicted LRU — but never while
//     a job holds a reference;
//
//   - an async job engine: a bounded worker pool drains a bounded
//     queue of identify/remedy/train/audit jobs. Submission never
//     blocks — a full queue is an immediate 429 — and every job runs
//     under its own context deadline, span tree, and private metrics
//     registry, so GET /jobs/{id} reports live partial-progress
//     counters and DELETE /jobs/{id} cancels with bounded latency via
//     the pipeline's cooperative checkpoints;
//
//   - HTTP handlers binding the two together, plus /healthz and a
//     /metrics endpoint serving the server-level obs registry.
//
// Jobs honor the internal/faults hooks (the engine fires
// faults.ServeJob as each job starts, and the pipeline's own points
// fire inside jobs), so the robustness suite extends to the server:
// injected failures surface as failed jobs with error detail, never
// as wedged workers. Shutdown drains running jobs within a deadline
// and marks everything else cancelled.
package serve

import (
	"context"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
)

// Config sizes the server. Zero values take the documented defaults.
type Config struct {
	// MaxDatasets caps the registry (default 16 resident datasets).
	MaxDatasets int
	// MaxUploadRows / MaxUploadBytes cap one CSV upload (defaults
	// 2,000,000 rows and 256 MiB; negative = unlimited).
	MaxUploadRows  int
	MaxUploadBytes int64
	// Workers is the job pool size (default 4) and QueueDepth the
	// bounded queue length behind it (default 16).
	Workers    int
	QueueDepth int
	// JobTimeout is the default per-job deadline (default 5m);
	// MaxJobTimeout clamps request-supplied deadlines (default
	// JobTimeout). Zero JobTimeout with zero MaxJobTimeout means jobs
	// run without a deadline.
	JobTimeout    time.Duration
	MaxJobTimeout time.Duration
	// MaxAttempts caps how many lives one job gets across crash
	// recoveries (default 3): a job found running in the journal is
	// re-queued with its attempt counter bumped until the budget is
	// spent, then marked failed. Only meaningful with a durable store.
	MaxAttempts int
	// Logger and Metrics are the server-level observability handles;
	// nil means a silent logger and a fresh registry.
	Logger  *obs.Logger
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxDatasets == 0 {
		c.MaxDatasets = 16
	}
	if c.MaxUploadRows == 0 {
		c.MaxUploadRows = 2_000_000
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxJobTimeout == 0 {
		c.MaxJobTimeout = c.JobTimeout
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Server is the remedyd application: registry + engine + handlers,
// plus an optional durable store (journal + dataset spill).
type Server struct {
	cfg      Config
	registry *Registry
	engine   *engine
	metrics  *obs.Registry
	logger   *obs.Logger
	store    *durable.Store
}

// newServer builds the registry and engine without starting workers.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxDatasets, cfg.MaxUploadRows, cfg.MaxUploadBytes),
		metrics:  cfg.Metrics,
		logger:   cfg.Logger,
	}
	s.engine = newEngine(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, cfg.MaxJobTimeout,
		func(ctx context.Context, j *job) (any, error) { return s.runJob(ctx, j) },
		s.metrics, s.logger)
	s.engine.maxAttempts = cfg.MaxAttempts
	return s
}

// New builds an in-memory server and starts its worker pool. Callers
// mount Handler on an http.Server and call Shutdown when done. State
// does not survive a restart; see NewDurable for the crash-safe mode.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.engine.start()
	return s
}

// NewDurable builds a crash-safe server on the given store: recovery
// replays the journal and re-loads spilled datasets before any worker
// runs, then every dataset admission and job transition is made
// durable before it is acknowledged. The store's journal stays open
// for the server's lifetime; Close the store after Shutdown.
func NewDurable(ctx context.Context, cfg Config, store *durable.Store) (*Server, error) {
	s := newServer(cfg)
	s.store = store
	s.registry.store = store
	if err := s.recover(ctx); err != nil {
		return nil, err
	}
	s.engine.start()
	return s, nil
}

// Registry exposes the dataset registry (tests and embedding callers).
func (s *Server) Registry() *Registry { return s.registry }

// Metrics exposes the server-level registry backing /metrics.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Shutdown stops job intake, cancels queued jobs, and drains running
// ones until ctx expires; stragglers are then hard-cancelled and
// marked cancelled once they unwind. It returns ctx.Err() if the
// drain deadline was hit, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.engine.Shutdown(ctx)
}
