package index

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/synth"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len %d count %d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(65) {
		t.Fatal("unset bit reads true")
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d", b.Count())
	}
	if got := b.Indices(); len(got) != 4 || got[0] != 0 || got[3] != 129 {
		t.Fatalf("indices = %v", got)
	}
}

func TestBitmapAndOps(t *testing.T) {
	a, b := NewBitmap(100), NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	if got := a.AndCount(b); got != 17 { // multiples of 6 in [0, 100)
		t.Fatalf("AndCount = %d, want 17", got)
	}
	c := NewBitmap(100)
	c.CopyFrom(a)
	c.And(b)
	if c.Count() != 17 {
		t.Fatalf("And count = %d", c.Count())
	}
	// a unchanged.
	if a.Count() != 50 {
		t.Fatal("And mutated its operand")
	}
}

func TestBitmapIterateMatchesGet(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRNG(seed)
		b := NewBitmap(200)
		want := map[int]bool{}
		for i := 0; i < 50; i++ {
			j := r.Intn(200)
			b.Set(j)
			want[j] = true
		}
		got := map[int]bool{}
		prev := -1
		ok := true
		b.Iterate(func(i int) {
			if i <= prev {
				ok = false
			}
			prev = i
			got[i] = true
		})
		if !ok || len(got) != len(want) {
			return false
		}
		for i := range want {
			if !got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testData(t *testing.T) (*dataset.Dataset, *pattern.Space) {
	t.Helper()
	d := synth.CompasN(2000, 7)
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return d, sp
}

func TestIndexMatchesScans(t *testing.T) {
	d, sp := testData(t)
	ix := Build(d)
	if ix.Rows() != d.Len() {
		t.Fatalf("Rows = %d", ix.Rows())
	}
	for _, mask := range sp.Masks() {
		sp.EnumerateNode(mask, func(p pattern.Pattern) {
			if got, want := ix.CountPattern(sp, p), sp.CountPattern(d, p); got != want {
				t.Fatalf("%s: index %+v scan %+v", sp.String(p), got, want)
			}
		})
	}
}

func TestIndexRowsInMatchesScan(t *testing.T) {
	d, sp := testData(t)
	ix := Build(d)
	p, err := sp.Parse("race", "Afr-Am", "sex", "Male")
	if err != nil {
		t.Fatal(err)
	}
	got := ix.RowsIn(sp, p)
	want := sp.RowsIn(d, p)
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestIndexAllWildcard(t *testing.T) {
	d, sp := testData(t)
	ix := Build(d)
	root := pattern.NewPattern(sp.Dim())
	c := ix.CountPattern(sp, root)
	if c.N != d.Len() || c.Pos != d.PositiveCount() {
		t.Fatalf("root counts %+v", c)
	}
}

func BenchmarkCountPatternScan(b *testing.B) {
	d := synth.CompasN(6172, 1)
	sp, _ := pattern.NewSpace(d.Schema)
	p, _ := sp.Parse("race", "Afr-Am", "sex", "Male")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.CountPattern(d, p)
	}
}

func BenchmarkCountPatternBitmap(b *testing.B) {
	d := synth.CompasN(6172, 1)
	sp, _ := pattern.NewSpace(d.Schema)
	ix := Build(d)
	p, _ := sp.Parse("race", "Afr-Am", "sex", "Male")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.CountPattern(sp, p)
	}
}
