// Package index provides a bitmap index over a categorical dataset:
// one bitset per (attribute, value) pair plus a label bitset. Region
// selections — the row sets and class counts of arbitrary conjunctive
// patterns — reduce to word-wise ANDs and popcounts, replacing the
// per-row scans that dominate the remedy loop on wide datasets. This is
// the classic database substrate for the paper's workload: the
// hierarchy traversal issues thousands of conjunctive count queries
// against a read-mostly table.
package index

import "math/bits"

// Bitmap is a fixed-length bitset.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitset of n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitset's capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CopyFrom overwrites b with src (capacities must match).
func (b *Bitmap) CopyFrom(src *Bitmap) {
	copy(b.words, src.words)
}

// And intersects b with other in place.
func (b *Bitmap) And(other *Bitmap) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// AndCount returns |b ∩ other| without materializing the intersection.
func (b *Bitmap) AndCount(other *Bitmap) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// Iterate calls f with each set bit index in ascending order.
func (b *Bitmap) Iterate(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Indices returns the set bit positions.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	b.Iterate(func(i int) { out = append(out, i) })
	return out
}
