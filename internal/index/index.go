package index

import (
	"repro/internal/dataset"
	"repro/internal/pattern"
)

// Index is a bitmap index over one dataset snapshot. It is immutable;
// rebuild after the dataset changes (construction is a single O(rows ×
// attrs) pass, far cheaper than the selections it accelerates).
type Index struct {
	rows int
	// perValue[a][v] marks the rows where attribute a takes value v.
	perValue [][]*Bitmap
	// positive marks the rows with label 1.
	positive *Bitmap
}

// Build indexes the dataset.
func Build(d *dataset.Dataset) *Index {
	ix := &Index{
		rows:     d.Len(),
		perValue: make([][]*Bitmap, len(d.Schema.Attrs)),
		positive: NewBitmap(d.Len()),
	}
	for a := range d.Schema.Attrs {
		ix.perValue[a] = make([]*Bitmap, d.Schema.Attrs[a].Cardinality())
		for v := range ix.perValue[a] {
			ix.perValue[a][v] = NewBitmap(d.Len())
		}
	}
	for i, row := range d.Rows {
		for a, v := range row {
			ix.perValue[a][v].Set(i)
		}
		if d.Labels[i] == 1 {
			ix.positive.Set(i)
		}
	}
	return ix
}

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.rows }

// Select returns the bitmap of rows matching pattern p over the given
// space (a fresh bitmap; the caller may mutate it).
func (ix *Index) Select(sp *pattern.Space, p pattern.Pattern) *Bitmap {
	out := NewBitmap(ix.rows)
	first := true
	for slot, v := range p {
		if v == pattern.Wildcard {
			continue
		}
		bm := ix.perValue[sp.AttrIdx[slot]][v]
		if first {
			out.CopyFrom(bm)
			first = false
		} else {
			out.And(bm)
		}
	}
	if first {
		// All-wildcard pattern: every row matches.
		for i := 0; i < ix.rows; i++ {
			out.Set(i)
		}
	}
	return out
}

// CountPattern returns the size and positive count of the region
// matched by p — the bitmap equivalent of pattern.Space.CountPattern.
func (ix *Index) CountPattern(sp *pattern.Space, p pattern.Pattern) pattern.Counts {
	sel := ix.Select(sp, p)
	return pattern.Counts{N: sel.Count(), Pos: sel.AndCount(ix.positive)}
}

// RowsIn returns the indices of rows matching p, ascending — the
// bitmap equivalent of pattern.Space.RowsIn.
func (ix *Index) RowsIn(sp *pattern.Space, p pattern.Pattern) []int {
	return ix.Select(sp, p).Indices()
}
