// Package fairness defines the statistical fairness vocabulary of the
// paper: the model statistics γ (FPR, FNR, and the discussion metrics
// of §VI), the divergence Δγ_g of a subgroup (Def. 1 context), the
// τ_d-fairness test, the Fairness Index aggregating all significant
// unfair subgroups (§V-A.d), and the GerryFair-style fairness violation
// used in the baseline comparison (§V-B4).
package fairness

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ml"
)

// Statistic is a model statistic γ computable from a confusion matrix.
type Statistic string

// ErrUnknownStatistic is returned by Statistic.Validate for a value
// outside the defined vocabulary.
var ErrUnknownStatistic = errors.New("fairness: unknown statistic")

const (
	// FPR is the false-positive rate Pr[h(x)=1 | y=0] (predictive
	// equality / equalized opportunity contexts).
	FPR Statistic = "FPR"
	// FNR is the false-negative rate Pr[h(x)=0 | y=1] (equalized odds
	// context).
	FNR Statistic = "FNR"
	// PositiveRate is Pr[h(x)=1], the statistic behind statistical
	// parity (§VI).
	PositiveRate Statistic = "PositiveRate"
	// Accuracy is Pr[h(x)=y] (§VI's accuracy-related measures).
	Accuracy Statistic = "Accuracy"
	// ErrorRate is Pr[h(x)≠y].
	ErrorRate Statistic = "ErrorRate"
)

// Validate reports whether s is one of the defined statistics,
// returning ErrUnknownStatistic otherwise. Entry points that accept a
// caller-supplied Statistic (divexplorer.Explore, the audit CLIs)
// validate up front so the NaN fallback of Of never reaches results.
func (s Statistic) Validate() error {
	switch s {
	case FPR, FNR, PositiveRate, Accuracy, ErrorRate:
		return nil
	}
	return fmt.Errorf("%w %q", ErrUnknownStatistic, s)
}

// Of evaluates the statistic on a confusion matrix. An unknown
// statistic evaluates to NaN; use Validate to reject it with an error
// instead.
func (s Statistic) Of(c ml.Confusion) float64 {
	switch s {
	case FPR:
		return c.FPR()
	case FNR:
		return c.FNR()
	case PositiveRate:
		return c.PositiveRate()
	case Accuracy:
		return c.Accuracy()
	case ErrorRate:
		return c.ErrorRate()
	}
	return math.NaN()
}

// BaseCount returns the size of the statistic's conditioning population
// within c — negatives for FPR, positives for FNR, everything for the
// outcome statistics. Significance tests and violation weights are
// computed over this population.
func (s Statistic) BaseCount(c ml.Confusion) (n, successes int) {
	switch s {
	case FPR:
		return int(c.FP + c.TN), int(c.FP)
	case FNR:
		return int(c.TP + c.FN), int(c.FN)
	case PositiveRate:
		return int(c.TP + c.FP + c.TN + c.FN), int(c.TP + c.FP)
	case Accuracy:
		return int(c.TP + c.FP + c.TN + c.FN), int(c.TP + c.TN)
	case ErrorRate:
		return int(c.TP + c.FP + c.TN + c.FN), int(c.FP + c.FN)
	}
	// Unknown statistics have an empty conditioning population; Validate
	// is the error-returning guard.
	return 0, 0
}

// Divergence is Δγ_g = |γ_g − γ_d|, the behavioral distinction between
// a subgroup and the entire dataset.
func Divergence(gammaG, gammaD float64) float64 { return math.Abs(gammaG - gammaD) }

// IsFair applies Def. 1: g is τ_d-fair under γ when Δγ_g ≤ τ_d.
func IsFair(gammaG, gammaD, tauD float64) bool {
	return Divergence(gammaG, gammaD) <= tauD
}

// GroupOutcome is the per-subgroup evidence the aggregate metrics
// consume: the subgroup's support, its divergence, its significance
// under the t-test, and the size of the statistic's conditioning
// population inside the subgroup.
type GroupOutcome struct {
	Support     float64 // |g| / |D|
	Divergence  float64 // Δγ_g
	Significant bool    // Welch t-test at the auditor's α
	BaseN       int     // conditioning population size within g
}

// FairnessIndex is the paper's dataset-level unfairness measure: the
// sum of divergences over subgroups with support above minSupport
// (the paper uses 0.1) and a statistically significant divergence.
// Lower is fairer.
func FairnessIndex(groups []GroupOutcome, minSupport float64) float64 {
	var idx float64
	for _, g := range groups {
		if g.Support > minSupport && g.Significant {
			idx += g.Divergence
		}
	}
	return idx
}

// Violation is the GerryFair-style fairness violation (§V-B4): the
// maximum over subgroups of the divergence weighted by the violated
// group's share of the statistic's conditioning population. totalBase
// is that population's size in the whole dataset.
func Violation(groups []GroupOutcome, totalBase int) float64 {
	var worst float64
	if totalBase <= 0 {
		return 0
	}
	for _, g := range groups {
		v := g.Divergence * float64(g.BaseN) / float64(totalBase)
		if v > worst {
			worst = v
		}
	}
	return worst
}
