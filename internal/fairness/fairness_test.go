package fairness

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ml"
)

func conf(tp, fp, tn, fn float64) ml.Confusion {
	return ml.Confusion{TP: tp, FP: fp, TN: tn, FN: fn}
}

func TestStatisticOf(t *testing.T) {
	c := conf(3, 1, 4, 2)
	cases := []struct {
		s    Statistic
		want float64
	}{
		{FPR, 0.2},
		{FNR, 0.4},
		{PositiveRate, 0.4},
		{Accuracy, 0.7},
		{ErrorRate, 0.3},
	}
	for _, tc := range cases {
		if got := tc.s.Of(c); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestUnknownStatistic(t *testing.T) {
	bad := Statistic("nope")
	if err := bad.Validate(); !errors.Is(err, ErrUnknownStatistic) {
		t.Fatalf("Validate = %v, want ErrUnknownStatistic", err)
	}
	if v := bad.Of(conf(1, 1, 1, 1)); !math.IsNaN(v) {
		t.Fatalf("unknown statistic Of = %v, want NaN", v)
	}
	if n, k := bad.BaseCount(conf(1, 1, 1, 1)); n != 0 || k != 0 {
		t.Fatalf("unknown statistic BaseCount = %d/%d, want 0/0", k, n)
	}
	for _, s := range []Statistic{FPR, FNR, PositiveRate, Accuracy, ErrorRate} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s.Validate = %v", s, err)
		}
	}
}

func TestBaseCount(t *testing.T) {
	c := conf(3, 1, 4, 2)
	if n, k := FPR.BaseCount(c); n != 5 || k != 1 {
		t.Fatalf("FPR base = %d/%d", k, n)
	}
	if n, k := FNR.BaseCount(c); n != 5 || k != 2 {
		t.Fatalf("FNR base = %d/%d", k, n)
	}
	if n, k := PositiveRate.BaseCount(c); n != 10 || k != 4 {
		t.Fatalf("PositiveRate base = %d/%d", k, n)
	}
	if n, k := Accuracy.BaseCount(c); n != 10 || k != 7 {
		t.Fatalf("Accuracy base = %d/%d", k, n)
	}
	if n, k := ErrorRate.BaseCount(c); n != 10 || k != 3 {
		t.Fatalf("ErrorRate base = %d/%d", k, n)
	}
}

func TestDivergenceAndIsFair(t *testing.T) {
	// Example 2: Δγ = |1 − 0.276| = 0.724, not 0.1-fair.
	if d := Divergence(1, 0.276); math.Abs(d-0.724) > 1e-12 {
		t.Fatalf("divergence = %v", d)
	}
	if IsFair(1, 0.276, 0.1) {
		t.Fatal("g1 must not be 0.1-fair")
	}
	// Δγ = |0.369 − 0.276| = 0.093 is 0.1-fair.
	if !IsFair(0.369, 0.276, 0.1) {
		t.Fatal("g2 must be 0.1-fair")
	}
}

func TestFairnessIndex(t *testing.T) {
	groups := []GroupOutcome{
		{Support: 0.2, Divergence: 0.3, Significant: true},  // counted
		{Support: 0.05, Divergence: 0.5, Significant: true}, // support too low
		{Support: 0.4, Divergence: 0.2, Significant: false}, // not significant
		{Support: 0.15, Divergence: 0.1, Significant: true}, // counted
	}
	if got := FairnessIndex(groups, 0.1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("index = %v, want 0.4", got)
	}
	if got := FairnessIndex(nil, 0.1); got != 0 {
		t.Fatalf("empty index = %v", got)
	}
}

func TestViolation(t *testing.T) {
	groups := []GroupOutcome{
		{Divergence: 0.5, BaseN: 10},  // 0.05 at totalBase 100
		{Divergence: 0.1, BaseN: 100}, // 0.10 — the max
		{Divergence: 0.9, BaseN: 1},   // 0.009
	}
	if got := Violation(groups, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("violation = %v, want 0.1", got)
	}
	if got := Violation(groups, 0); got != 0 {
		t.Fatalf("violation with empty base = %v", got)
	}
}
