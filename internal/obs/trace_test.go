package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanParentChildOrdering builds a three-deep tree and checks the
// snapshot preserves the parent links and start ordering.
func TestSpanParentChildOrdering(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	_, sibling := StartSpan(ctx, "sibling")
	grand.End()
	child.End()
	sibling.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root parent = %d", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatal("child must link to root")
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Fatal("grandchild must link to child")
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Fatal("sibling must link to root, not child")
	}
	// Snapshot order is start order (IDs ascend with start).
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("snapshot not in start order: %+v", spans)
		}
		if spans[i].StartUS < spans[i-1].StartUS {
			t.Fatalf("start times not monotone: %+v", spans)
		}
	}
	for _, s := range spans {
		if s.Unfinished {
			t.Fatalf("span %s unexpectedly unfinished", s.Name)
		}
	}
}

// TestNoopTracerAllocs asserts the uninstrumented path allocates
// nothing: without a tracer in the context, StartSpan, attribute
// setters, End, and the registry/logger lookups must be free.
func TestNoopTracerAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sctx, sp := StartSpan(ctx, "noop")
		sp.SetInt("k", 42)
		sp.SetStr("s", "v")
		sp.Event("e", "")
		MetricsFrom(sctx).Counter("c").Add(1)
		if LoggerFrom(sctx).On(LevelDebug) {
			t.Error("nil logger reported enabled")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op instrumentation allocated %.1f times per run, want 0", allocs)
	}
}

// TestPartialTraceSnapshot takes a snapshot while spans are still open
// — the cancelled-pipeline case — and checks it is valid JSON with the
// open span marked unfinished.
func TestPartialTraceSnapshot(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	_ = root // root deliberately left open

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct{ Spans []SpanSnapshot }
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("partial trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("got %d spans", len(doc.Spans))
	}
	for _, s := range doc.Spans {
		switch s.Name {
		case "root":
			if !s.Unfinished {
				t.Fatal("open root span must be marked unfinished")
			}
		case "child":
			if s.Unfinished {
				t.Fatal("ended child span must not be unfinished")
			}
		}
	}
}

// TestConcurrentSpans starts sibling spans from parallel goroutines —
// the identify worker-shard pattern — and checks nothing is lost.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "parallel")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, "shard")
			sp.SetInt("worker", int64(w))
			sp.Event("tick", "")
			sp.End()
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != workers+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers+1)
	}
	for _, s := range spans {
		if s.Name == "shard" && s.Parent != spans[0].ID {
			t.Fatalf("shard parent = %d, want %d", s.Parent, spans[0].ID)
		}
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "outer")
	_, in := StartSpan(ctx, "inner")
	in.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "outer") || !strings.Contains(out, "  inner") {
		t.Fatalf("tree rendering wrong:\n%s", out)
	}
}

func TestDoubleEndKeepsFirst(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "x")
	sp.End()
	first := tr.Snapshot()[0].DurationUS
	sp.End()
	if got := tr.Snapshot()[0].DurationUS; got != first {
		t.Fatalf("second End changed duration: %d -> %d", first, got)
	}
}
