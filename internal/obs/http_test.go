package obs

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"testing"
)

func TestSnapshotHandler(t *testing.T) {
	m := NewRegistry()
	m.Counter("x.count").Add(7)
	h := SnapshotHandler(func() *Registry { return m })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["x.count"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["x.count"])
	}
}

func TestSnapshotHandlerNilRegistry(t *testing.T) {
	h := SnapshotHandler(func() *Registry { return nil })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("nil registry must serve an empty snapshot: %v", err)
	}
}

func TestPublishExpvarRepoints(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(1)
	b.Counter("n").Add(2)
	PublishExpvar("obs_test_metric", func() *Registry { return a })
	// Re-publishing the same name must not panic (expvar.Publish
	// would) and must repoint the source.
	PublishExpvar("obs_test_metric", func() *Registry { return b })
	v := expvar.Get("obs_test_metric")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["n"] != 2 {
		t.Fatalf("counter = %d, want the repointed registry's 2", snap.Counters["n"])
	}
}
