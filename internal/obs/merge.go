package obs

import (
	"sort"
	"strings"
)

// Metrics federation: every fleet node exposes its own Registry
// snapshot, and the leader folds them into one fleet view. The merge
// rules follow the instruments' semantics:
//
//   - counters are monotonic totals, so same-named counters sum;
//   - gauges are point-in-time readings whose sum means nothing (two
//     nodes' queue depths are two facts, not one), so each gauge keeps
//     a per-node label: x → x{node="node-b"};
//   - histograms with identical bucket layouts merge bucket-wise
//     (counts, sums, and per-bucket tallies add, so fleet quantiles
//     come from the merged buckets); layouts that disagree cannot be
//     added meaningfully, so mismatched histograms fall back to
//     per-node labels like gauges.
//
// Metric names may already carry a {key="value"} label suffix (the
// per-route instruments); WithLabel appends to it.

// WithLabel returns name with a key="value" label appended to its
// label set, creating the {...} suffix if absent: x → x{k="v"},
// x{a="b"} → x{a="b",k="v"}.
func WithLabel(name, key, value string) string {
	if strings.HasSuffix(name, "}") {
		if i := strings.LastIndex(name, "{"); i >= 0 {
			return name[:len(name)-1] + `,` + key + `="` + value + `"}`
		}
	}
	return name + "{" + key + `="` + value + `"}`
}

// SplitLabels splits a metric name into its base and label suffix
// ("" when unlabeled): `x{a="b"}` → `x`, `{a="b"}`.
func SplitLabels(name string) (base, labels string) {
	if strings.HasSuffix(name, "}") {
		if i := strings.Index(name, "{"); i >= 0 {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// MergeSnapshots folds per-node registry snapshots into one fleet
// snapshot keyed by node ID. Nodes are processed in sorted-ID order,
// so the merge is deterministic: the same inputs produce the same
// output regardless of map iteration order (first sorted node with a
// given histogram name fixes its bucket layout; later mismatches keep
// their per-node labels). Nil/empty snapshots merge as empty.
func MergeSnapshots(parts map[string]Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	ids := make([]string, 0, len(parts))
	for id := range parts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		part := parts[id]
		for name, v := range part.Counters {
			out.Counters[name] += v
		}
		for name, v := range part.Gauges {
			out.Gauges[WithLabel(name, "node", id)] = v
		}
		for name, h := range part.Histograms {
			cur, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = HistogramSnapshot{
					Count:   h.Count,
					Sum:     h.Sum,
					Bounds:  append([]float64(nil), h.Bounds...),
					Buckets: append([]int64(nil), h.Buckets...),
				}
				continue
			}
			if merged, ok := cur.merge(h); ok {
				out.Histograms[name] = merged
				continue
			}
			// Incompatible bucket layout: this node's copy stays
			// separate under a node label rather than being silently
			// mis-added.
			out.Histograms[WithLabel(name, "node", id)] = h
		}
	}
	return out
}
