package obs

import (
	"context"
	"net/http"
)

// Cross-node trace propagation. A TraceContext is the portable part of
// a trace — the correlation ID plus the sender-side span it continues —
// carried on HTTP hops between fleet members (client submissions,
// follower→leader forwarding, replication, steal requests, shard
// fetches) as two headers. IDs are deterministic by construction: the
// serving layer derives them from node IDs and its own sequence
// counters, never from entropy or the clock, so the same workload
// schedule reproduces the same trace IDs.

// Trace propagation headers. The X-Remedy- prefix matches the
// forwarding header the serve layer already uses.
const (
	// HeaderTraceID carries the cross-node trace correlation ID.
	HeaderTraceID = "X-Remedy-Trace-Id"
	// HeaderSpanID carries the sender-side span the receiver's work
	// continues (informational: receivers record it as an attribute,
	// they do not re-parent under it).
	HeaderSpanID = "X-Remedy-Span-Id"
)

// TraceContext is the wire-portable identity of a trace.
type TraceContext struct {
	// TraceID is the cross-node correlation ID ("" = no trace).
	TraceID string `json:"trace_id,omitempty"`
	// SpanID names the sender-side span this hop continues, as a
	// string (tracer span IDs are local; the pair node/span only means
	// something to the sender's tracer).
	SpanID string `json:"span_id,omitempty"`
	// Via names the hop that relayed the context (the forwarding
	// follower, the stealing node). It never travels in the trace
	// headers — relays identify themselves out of band (the serve
	// layer's forwarded header) — but receivers record it on span
	// events for the stitched timeline.
	Via string `json:"via,omitempty"`
}

// Empty reports whether the context carries no trace.
func (tc TraceContext) Empty() bool { return tc.TraceID == "" }

type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc. An empty tc returns
// ctx unchanged.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if tc.Empty() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx (the zero
// value when none is installed).
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// InjectHTTP writes tc into h. An empty context injects nothing, so
// un-traced requests stay header-clean.
func InjectHTTP(h http.Header, tc TraceContext) {
	if tc.Empty() {
		return
	}
	h.Set(HeaderTraceID, tc.TraceID)
	if tc.SpanID != "" {
		h.Set(HeaderSpanID, tc.SpanID)
	}
}

// ExtractHTTP reads a trace context from h; ok is false when no trace
// ID header is present.
func ExtractHTTP(h http.Header) (TraceContext, bool) {
	tc := TraceContext{TraceID: h.Get(HeaderTraceID), SpanID: h.Get(HeaderSpanID)}
	return tc, !tc.Empty()
}
