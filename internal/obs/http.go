package obs

import (
	"expvar"
	"net/http"
	"sync"
)

// This file is the one place the observability layer touches net/http:
// a JSON snapshot handler (the /metrics endpoint of remedyd) and a
// re-pointable expvar publication (the /debug/vars view of remedyctl's
// -pprof server). Both commands share these helpers instead of
// carrying private copies.

// SnapshotHandler returns an http.Handler that serves the current
// registry snapshot as indented JSON. src is called per request, so
// callers whose registry changes between runs pass a closure over
// their current registry; a nil registry serves an empty snapshot.
func SnapshotHandler(src func() *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// WriteJSON is nil-receiver safe; encoding a snapshot cannot
		// fail, so any error here is the client hanging up mid-write.
		_ = src().WriteJSON(w) //lint:allow errdiscard best-effort write to a disconnecting client
	})
}

// expvar.Publish is global and permanent and refuses duplicates, but
// callers (remedyctl's run, invoked repeatedly by tests) need to
// re-point a published name at a fresh registry. Each name is
// published once with an indirection through this table.
var (
	expvarMu  sync.Mutex
	expvarSrc = map[string]func() *Registry{}
)

// PublishExpvar publishes the registry source under name on
// /debug/vars. The first call for a name registers it with expvar;
// later calls simply swap the source, so the same name can follow a
// per-run registry across runs.
func PublishExpvar(name string, src func() *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarSrc[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			cur := expvarSrc[name]
			expvarMu.Unlock()
			if cur == nil {
				return Snapshot{}
			}
			return cur().Expvar()
		}))
	}
	expvarSrc[name] = src
}
