package obs

import (
	"expvar"
	"net/http"
	"sync"
	"time"
)

// This file is the one place the observability layer touches net/http:
// a JSON snapshot handler (the /metrics endpoint of remedyd) and a
// re-pointable expvar publication (the /debug/vars view of remedyctl's
// -pprof server). Both commands share these helpers instead of
// carrying private copies.

// SnapshotHandler returns an http.Handler that serves the current
// registry snapshot as indented JSON. src is called per request, so
// callers whose registry changes between runs pass a closure over
// their current registry; a nil registry serves an empty snapshot.
func SnapshotHandler(src func() *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// WriteJSON is nil-receiver safe; encoding a snapshot cannot
		// fail, so any error here is the client hanging up mid-write.
		_ = src().WriteJSON(w) //lint:allow errdiscard best-effort write to a disconnecting client
	})
}

// statusRecorder captures the response status for the per-route
// request counter. WriteHeader may never be called (implicit 200), so
// the zero state defaults to OK.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

// InstrumentHandler wraps next with per-route metrics on reg: a
// request counter and latency histogram labeled by route and status
// class, and an in-flight gauge labeled by route. route should be the
// mux pattern ("POST /jobs"), not the raw URL, so cardinality stays
// bounded. A nil registry returns next unwrapped — the uninstrumented
// path stays zero-cost.
func InstrumentHandler(reg *Registry, route string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	inflight := reg.Gauge(WithLabel("serve.http_inflight", "route", route))
	hist := reg.Histogram(WithLabel("serve.http_duration_ms", "route", route), DefaultDurationBucketsMS)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r)
		hist.Observe(float64(time.Since(start).Microseconds()) / 1000)
		inflight.Add(-1)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		class := []string{"1xx", "2xx", "3xx", "4xx", "5xx"}[min(max(status/100, 1), 5)-1]
		name := WithLabel(WithLabel("serve.http_requests_total", "route", route), "status", class)
		reg.Counter(name).Inc()
	})
}

// expvar.Publish is global and permanent and refuses duplicates, but
// callers (remedyctl's run, invoked repeatedly by tests) need to
// re-point a published name at a fresh registry. Each name is
// published once with an indirection through this table.
var (
	expvarMu  sync.Mutex
	expvarSrc = map[string]func() *Registry{}
)

// PublishExpvar publishes the registry source under name on
// /debug/vars. The first call for a name registers it with expvar;
// later calls simply swap the source, so the same name can follow a
// per-run registry across runs.
func PublishExpvar(name string, src func() *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarSrc[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			cur := expvarSrc[name]
			expvarMu.Unlock()
			if cur == nil {
				return Snapshot{}
			}
			return cur().Expvar()
		}))
	}
	expvarSrc[name] = src
}
