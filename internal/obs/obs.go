// Package obs is the pipeline's zero-dependency observability layer:
// hierarchical tracing, a metrics registry, and a leveled structured
// logger, all carried through context.Context so that uninstrumented
// callers pay near-zero cost.
//
// The design follows one convention throughout: every handle obtained
// from a context may be nil, and every method on a nil handle is a
// no-op. Library code therefore instruments unconditionally —
//
//	ctx, sp := obs.StartSpan(ctx, "core.identify.optimized")
//	defer sp.End()
//	obs.MetricsFrom(ctx).Counter("identify.nodes_visited").Add(n)
//
// — and pays only a context lookup plus a nil check when no tracer,
// registry, or logger is installed. The no-op path performs no heap
// allocations (asserted by TestNoopTracerAllocs), so hot loops such as
// the lattice traversal can stay instrumented in production builds.
//
// Attribute setters are typed (SetInt, SetStr, SetFloat) rather than
// taking `any`, so disabled instrumentation does not box its arguments.
// Guard expensive formatting with Logger.On:
//
//	if lg := obs.LoggerFrom(ctx); lg.On(obs.LevelDebug) {
//		lg.Debug("level scanned", "level", lv, "elapsed", time.Since(t0))
//	}
package obs

import "context"

type tracerKey struct{}
type spanKey struct{}
type metricsKey struct{}
type loggerKey struct{}

// WithTracer returns a context carrying tr. Spans started from the
// returned context (and its descendants) record into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// WithMetrics returns a context carrying the registry m.
func WithMetrics(ctx context.Context, m *Registry) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey{}, m)
}

// MetricsFrom returns the metrics registry carried by ctx, or nil. A
// nil registry is safe to use: Counter/Gauge/Histogram return nil
// instruments whose methods are no-ops.
func MetricsFrom(ctx context.Context) *Registry {
	m, _ := ctx.Value(metricsKey{}).(*Registry)
	return m
}

// WithLogger returns a context carrying lg.
func WithLogger(ctx context.Context, lg *Logger) context.Context {
	if lg == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, lg)
}

// LoggerFrom returns the logger carried by ctx, or nil. A nil logger
// discards everything and reports every level disabled.
func LoggerFrom(ctx context.Context) *Logger {
	lg, _ := ctx.Value(loggerKey{}).(*Logger)
	return lg
}
