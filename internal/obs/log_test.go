package obs

import (
	"strings"
	"sync"
	"testing"
)

type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestLoggerLevelsAndScope(t *testing.T) {
	var buf syncBuf
	lg := NewLogger(&buf, LevelInfo)
	lg.Debug("hidden")
	lg.Info("visible", "k", 1)
	lg.Scope("core").Scope("preload").Warn("nested scope")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked at info level:\n%s", out)
	}
	if !strings.Contains(out, "level=info") || !strings.Contains(out, "msg=visible") || !strings.Contains(out, "k=1") {
		t.Fatalf("info line malformed:\n%s", out)
	}
	if !strings.Contains(out, "scope=core/preload") {
		t.Fatalf("scope missing:\n%s", out)
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf syncBuf
	lg := NewLogger(&buf, LevelInfo)
	lg.Info("two words", "key", "a=b c")
	out := buf.String()
	if !strings.Contains(out, `msg="two words"`) || !strings.Contains(out, `key="a=b c"`) {
		t.Fatalf("values with spaces/= must be quoted:\n%s", out)
	}
}

// TestLoggerSharedLevel: SetLevel on a scope is visible to every other
// scope of the same root.
func TestLoggerSharedLevel(t *testing.T) {
	var buf syncBuf
	lg := NewLogger(&buf, LevelWarn)
	scoped := lg.Scope("ml")
	if scoped.On(LevelDebug) {
		t.Fatal("debug must start disabled")
	}
	lg.SetLevel(LevelDebug)
	if !scoped.On(LevelDebug) {
		t.Fatal("level change must reach existing scopes")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var lg *Logger
	lg.Error("e")
	lg.Warn("w")
	lg.Info("i")
	lg.Debug("d")
	lg.SetLevel(LevelDebug)
	if lg.On(LevelError) {
		t.Fatal("nil logger must report all levels off")
	}
	if lg.Scope("x") != nil {
		t.Fatal("nil logger scope must stay nil")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf syncBuf
	lg := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lg.Scope("w").Info("line", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, "msg=line") {
			t.Fatalf("interleaved/malformed line: %q", ln)
		}
	}
}
