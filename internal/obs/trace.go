package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records hierarchical spans. It is safe for concurrent use:
// parallel workers start sibling spans under one parent and the tracer
// serializes the bookkeeping. A snapshot can be taken at any moment —
// including after a cancelled pipeline — and spans still open at that
// point are reported with Unfinished set, so a partial trace is always
// a valid trace.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	spans  []*Span
	nextID uint64

	// Fleet identity (optional): node names the process recording the
	// spans and traceID is the cross-node correlation key. Both are
	// empty for a plain single-process tracer; SetIdentity installs
	// them, snapshots carry them, and Graft stitches remote subtrees
	// from other nodes into this tracer's tree.
	node    string
	traceID string
	// grafted holds span snapshots imported from other nodes' tracers,
	// re-IDed into this tracer's ID space (see Graft).
	grafted []SpanSnapshot
}

// NewTracer returns an empty tracer. Its epoch (the zero offset of
// every span's start time) is the moment of creation.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetIdentity names the tracer's node and cross-node trace ID. Both
// appear on every snapshot: the node on each span, the trace ID on the
// trace document. Callers derive the trace ID deterministically (node
// ID + a local sequence number) so the same workload schedule yields
// the same IDs — there is no entropy here. No-op on nil.
func (t *Tracer) SetIdentity(node, traceID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.node, t.traceID = node, traceID
	t.mu.Unlock()
}

// Identity returns the node name and trace ID installed by
// SetIdentity ("", "" on a plain or nil tracer).
func (t *Tracer) Identity() (node, traceID string) {
	if t == nil {
		return "", ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node, t.traceID
}

// Span is one timed operation in the trace tree. Starting a span
// through StartSpan links it to the innermost span of the context, and
// the returned context carries the new span so descendants nest under
// it. All methods are no-ops on a nil receiver.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration // offset from tracer epoch
	end    time.Duration // 0 until End
	ended  bool
	attrs  []Attr
	events []Event
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Event is a timestamped point annotation inside a span (for example
// an injected fault firing).
type Event struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at_us"` // offset from tracer epoch
	Attr string        `json:"attr,omitempty"`
}

// StartSpan starts a span named name under the innermost span of ctx
// and returns a derived context carrying it. Without a tracer in ctx it
// returns ctx unchanged and a nil span, allocating nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var parent uint64
	if ps := SpanFrom(ctx); ps != nil {
		parent = ps.id
	}
	sp := tr.start(name, parent)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

func (t *Tracer) start(name string, parent uint64) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	sp := &Span{
		tr:     t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		start:  time.Since(t.epoch),
	}
	t.spans = append(t.spans, sp)
	return sp
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.end = time.Since(s.tr.epoch)
	}
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, Value: v})
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, Value: v})
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, Value: v})
}

func (s *Span) set(a Attr) {
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.tr.mu.Unlock()
}

// Event records a point annotation at the current time. attr is a
// free-form detail string (empty for none).
func (s *Span) Event(name, attr string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.events = append(s.events, Event{Name: name, At: time.Since(s.tr.epoch), Attr: attr})
	s.tr.mu.Unlock()
}

// SpanSnapshot is the exported form of one recorded span. Times are
// microsecond offsets from the tracer epoch; DurationUS is 0 for
// unfinished spans.
type SpanSnapshot struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Node names the fleet member that recorded the span (empty on a
	// tracer without an identity). A stitched trace mixes nodes: local
	// spans carry this tracer's node, grafted ones keep their origin's.
	Node       string `json:"node,omitempty"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
	Unfinished bool   `json:"unfinished,omitempty"`
	// Remote marks a span grafted from another node's tracer; its
	// StartUS is an offset from that node's epoch, not this one's, so
	// remote timings are internally consistent but not directly
	// comparable to local offsets.
	Remote bool    `json:"remote,omitempty"`
	Attrs  []Attr  `json:"attrs,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// Snapshot returns every span recorded so far in start order — local
// spans first, then grafted remote subtrees in graft order. Spans
// still open are included with Unfinished set, so a snapshot taken
// after a cancellation is complete for the work that did run.
func (t *Tracer) Snapshot() []SpanSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSnapshot, len(t.spans), len(t.spans)+len(t.grafted))
	for i, sp := range t.spans {
		ss := SpanSnapshot{
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			Node:    t.node,
			StartUS: sp.start.Microseconds(),
			Attrs:   append([]Attr(nil), sp.attrs...),
			Events:  append([]Event(nil), sp.events...),
		}
		if sp.ended {
			ss.DurationUS = (sp.end - sp.start).Microseconds()
		} else {
			ss.Unfinished = true
		}
		out[i] = ss
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return append(out, append([]SpanSnapshot(nil), t.grafted...)...)
}

// Graft stitches a remote node's span subtree into this tracer's tree:
// the spans are re-IDed into this tracer's ID space (preserving their
// internal parent structure), roots of the remote tree are re-parented
// under parentID (0 grafts at the trace root), spans without a node
// are attributed to node, and every grafted span is marked Remote.
// This is how a stolen job's follower-side spans land back on the
// leader's per-job tracer, yielding one queryable timeline. No-op on a
// nil tracer.
func (t *Tracer) Graft(parentID uint64, node string, spans []SpanSnapshot) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idmap := make(map[uint64]uint64, len(spans))
	for _, ss := range spans {
		t.nextID++
		idmap[ss.ID] = t.nextID
	}
	for _, ss := range spans {
		ss.ID = idmap[ss.ID]
		if mapped, ok := idmap[ss.Parent]; ok {
			ss.Parent = mapped
		} else {
			ss.Parent = parentID
		}
		if ss.Node == "" {
			ss.Node = node
		}
		ss.Remote = true
		ss.Attrs = append([]Attr(nil), ss.Attrs...)
		ss.Events = append([]Event(nil), ss.Events...)
		t.grafted = append(t.grafted, ss)
	}
}

// TraceDoc is the exported form of a whole trace: its cross-node
// identity plus every span. It is the body of GET /jobs/{id}/trace and
// the -trace-out dump.
type TraceDoc struct {
	TraceID string         `json:"trace_id,omitempty"`
	Node    string         `json:"node,omitempty"`
	Spans   []SpanSnapshot `json:"spans"`
}

// Doc snapshots the whole trace with its identity.
func (t *Tracer) Doc() TraceDoc {
	if t == nil {
		return TraceDoc{}
	}
	node, traceID := t.Identity()
	return TraceDoc{TraceID: traceID, Node: node, Spans: t.Snapshot()}
}

// WriteJSON dumps the trace as an indented JSON document:
// {"trace_id": ..., "spans": [...]}. Valid at any moment, including
// mid-pipeline.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Doc())
}

// WriteTree renders the span hierarchy as an indented text tree with
// durations — the human-readable companion of WriteJSON.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := t.Snapshot()
	children := make(map[uint64][]SpanSnapshot)
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var render func(parent uint64, depth int) error
	render = func(parent uint64, depth int) error {
		for _, sp := range children[parent] {
			dur := "…"
			if !sp.Unfinished {
				dur = (time.Duration(sp.DurationUS) * time.Microsecond).String()
			}
			if _, err := fmt.Fprintf(w, "%*s%s %s\n", 2*depth, "", sp.Name, dur); err != nil {
				return err
			}
			if err := render(sp.ID, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return render(0, 0)
}
