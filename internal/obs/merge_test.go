package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestWithLabelAndSplit(t *testing.T) {
	cases := []struct {
		name, key, value, want string
	}{
		{"x", "node", "a", `x{node="a"}`},
		{`x{route="/jobs"}`, "node", "a", `x{route="/jobs",node="a"}`},
		{"serve.http_duration_ms", "route", "POST /jobs", `serve.http_duration_ms{route="POST /jobs"}`},
	}
	for _, c := range cases {
		if got := WithLabel(c.name, c.key, c.value); got != c.want {
			t.Errorf("WithLabel(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
	base, labels := SplitLabels(`x{a="b",c="d"}`)
	if base != "x" || labels != `{a="b",c="d"}` {
		t.Fatalf("SplitLabels = %q, %q", base, labels)
	}
	base, labels = SplitLabels("plain.name")
	if base != "plain.name" || labels != "" {
		t.Fatalf("SplitLabels(plain) = %q, %q", base, labels)
	}
}

func TestMergeSnapshotsCountersSum(t *testing.T) {
	merged := MergeSnapshots(map[string]Snapshot{
		"node-a": {Counters: map[string]int64{"jobs": 3, "only_a": 1}},
		"node-b": {Counters: map[string]int64{"jobs": 4}},
		"node-c": {Counters: map[string]int64{"jobs": 5}},
	})
	if got := merged.Counters["jobs"]; got != 12 {
		t.Fatalf("merged jobs = %d, want 12", got)
	}
	if got := merged.Counters["only_a"]; got != 1 {
		t.Fatalf("merged only_a = %d, want 1", got)
	}
}

func TestMergeSnapshotsGaugesKeepNodeLabels(t *testing.T) {
	merged := MergeSnapshots(map[string]Snapshot{
		"node-a": {Gauges: map[string]float64{"queue": 2}},
		"node-b": {Gauges: map[string]float64{"queue": 7}},
	})
	if got := merged.Gauges[`queue{node="node-a"}`]; got != 2 {
		t.Fatalf(`queue{node="node-a"} = %v, want 2`, got)
	}
	if got := merged.Gauges[`queue{node="node-b"}`]; got != 7 {
		t.Fatalf(`queue{node="node-b"} = %v, want 7`, got)
	}
	if _, ok := merged.Gauges["queue"]; ok {
		t.Fatal("unlabeled gauge survived the merge; node readings must stay distinct")
	}
}

func TestMergeSnapshotsHistogramsBucketWise(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	bounds := []float64{1, 10, 100}
	for _, v := range []float64{0.5, 5, 50} {
		ra.Histogram("lat", bounds).Observe(v)
	}
	for _, v := range []float64{5, 500} {
		rb.Histogram("lat", bounds).Observe(v)
	}
	merged := MergeSnapshots(map[string]Snapshot{
		"node-a": ra.Snapshot(), "node-b": rb.Snapshot(),
	})
	h, ok := merged.Histograms["lat"]
	if !ok {
		t.Fatal("matching-bounds histograms did not merge under the base name")
	}
	if h.Count != 5 {
		t.Fatalf("merged count = %d, want 5", h.Count)
	}
	if h.Sum != 560.5 {
		t.Fatalf("merged sum = %v, want 560.5", h.Sum)
	}
	want := []int64{1, 2, 1, 1} // ≤1, ≤10, ≤100, overflow
	for i, b := range h.Buckets {
		if b != want[i] {
			t.Fatalf("merged buckets = %v, want %v", h.Buckets, want)
		}
	}
}

func TestMergeSnapshotsMismatchedBoundsStaySeparate(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("lat", []float64{1, 10}).Observe(5)
	rb.Histogram("lat", []float64{2, 20}).Observe(5)
	merged := MergeSnapshots(map[string]Snapshot{
		"node-a": ra.Snapshot(), "node-b": rb.Snapshot(),
	})
	// Sorted-ID order fixes the layout: node-a's copy owns the base
	// name, node-b's incompatible copy keeps a node label.
	if h, ok := merged.Histograms["lat"]; !ok || h.Count != 1 || h.Bounds[0] != 1 {
		t.Fatalf("base histogram = %+v, ok=%v; want node-a's copy", h, ok)
	}
	h, ok := merged.Histograms[`lat{node="node-b"}`]
	if !ok || h.Count != 1 || h.Bounds[0] != 2 {
		t.Fatalf(`lat{node="node-b"} = %+v, ok=%v; want node-b's copy`, h, ok)
	}
}

func TestMergeSnapshotsNilAndEmpty(t *testing.T) {
	merged := MergeSnapshots(nil)
	if len(merged.Counters)+len(merged.Gauges)+len(merged.Histograms) != 0 {
		t.Fatalf("merge of nil parts = %+v, want empty", merged)
	}
	merged = MergeSnapshots(map[string]Snapshot{
		"node-a": {},
		"node-b": {Counters: map[string]int64{"jobs": 1}},
	})
	if got := merged.Counters["jobs"]; got != 1 {
		t.Fatalf("merge with empty part lost data: %+v", merged)
	}
}

func TestMergeSnapshotsDeterministic(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("lat", []float64{1, 10}).Observe(5)
	rb.Histogram("lat", []float64{2, 20}).Observe(5)
	parts := map[string]Snapshot{"node-a": ra.Snapshot(), "node-b": rb.Snapshot()}
	first := MergeSnapshots(parts)
	for i := 0; i < 50; i++ {
		again := MergeSnapshots(parts)
		if len(again.Histograms) != len(first.Histograms) {
			t.Fatalf("merge %d differs: %+v vs %+v", i, again, first)
		}
		for name := range first.Histograms {
			if _, ok := again.Histograms[name]; !ok {
				t.Fatalf("merge %d lost %q", i, name)
			}
		}
	}
}

// TestMergeWhileObserving merges snapshots while the source registries
// keep taking writes — the registry snapshot must be a consistent copy
// the merge can read without racing the instruments (run under -race).
func TestMergeWhileObserving(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, r := range []*Registry{ra, rb} {
		wg.Add(1)
		go func(r *Registry) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("jobs").Inc()
				r.Gauge("queue").Set(float64(i))
				r.Histogram("lat", DefaultDurationBucketsMS).Observe(float64(i % 100))
			}
		}(r)
	}
	for i := 0; i < 200; i++ {
		merged := MergeSnapshots(map[string]Snapshot{
			"node-a": ra.Snapshot(), "node-b": rb.Snapshot(),
		})
		if h, ok := merged.Histograms["lat"]; ok {
			var inBuckets int64
			for _, b := range h.Buckets {
				inBuckets += b
			}
			if inBuckets != h.Count {
				t.Fatalf("merged histogram torn: buckets sum %d, count %d", inBuckets, h.Count)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestQuantileFromMergedBuckets(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	bounds := []float64{10, 20, 30, 40}
	// 40 observations uniformly inside ≤10 on node-a, 40 inside (30,40]
	// on node-b: the merged median sits at the 10/20 boundary and the
	// p99 deep inside node-b's bucket.
	for i := 0; i < 40; i++ {
		ra.Histogram("lat", bounds).Observe(5)
		rb.Histogram("lat", bounds).Observe(35)
	}
	merged := MergeSnapshots(map[string]Snapshot{
		"node-a": ra.Snapshot(), "node-b": rb.Snapshot(),
	})
	h := merged.Histograms["lat"]
	if p50 := h.Quantile(0.5); p50 < 5 || p50 > 10 {
		t.Fatalf("merged p50 = %v, want within (0,10]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 30 || p99 > 40 {
		t.Fatalf("merged p99 = %v, want within (30,40]", p99)
	}
	if empty := (HistogramSnapshot{Bounds: bounds, Buckets: make([]int64, 5)}); empty.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", empty.Quantile(0.5))
	}
	// A quantile landing in the overflow bucket saturates at the last
	// finite bound rather than inventing an upper edge.
	ra2 := NewRegistry()
	ra2.Histogram("big", []float64{1}).Observe(1e9)
	if q := ra2.Snapshot().Histograms["big"].Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile = %v, want saturation at 1", q)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter(WithLabel("serve.http_requests_total", "route", "POST /jobs")).Add(3)
	r.Counter(WithLabel("serve.http_requests_total", "route", "GET /jobs")).Add(2)
	r.Gauge("cluster.replication_lag").Set(2)
	r.Histogram("serve.http_duration_ms", []float64{1, 10}).Observe(5)

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_http_requests_total counter",
		`serve_http_requests_total{route="POST /jobs"} 3`,
		"# TYPE cluster_replication_lag gauge",
		"cluster_replication_lag 2",
		"# TYPE serve_http_duration_ms histogram",
		`serve_http_duration_ms_bucket{le="1"} 0`,
		`serve_http_duration_ms_bucket{le="10"} 1`,
		`serve_http_duration_ms_bucket{le="+Inf"} 1`,
		"serve_http_duration_ms_sum 5",
		"serve_http_duration_ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// One # TYPE line per metric family, not per labeled series.
	if got := strings.Count(out, "# TYPE serve_http_requests_total counter"); got != 1 {
		t.Errorf("TYPE line emitted %d times for one family:\n%s", got, out)
	}
	if !strings.Contains(out, `serve_http_requests_total{route="GET /jobs"} 2`) {
		t.Errorf("second labeled series missing:\n%s", out)
	}
}

func TestEventLogRingAndSeq(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Append("kind", string(rune('a'+i)))
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(got))
	}
	// Oldest-first, and the monotonic Seq survives wraparound.
	for i, e := range got {
		if want := uint64(3 + i); e.Seq != want {
			t.Fatalf("entry %d seq = %d, want %d (snapshot %+v)", i, e.Seq, want, got)
		}
	}
	if got[0].Detail != "c" || got[2].Detail != "e" {
		t.Fatalf("ring order wrong: %+v", got)
	}
	var nilLog *EventLog
	nilLog.Append("kind", "ignored")
	if s := nilLog.Snapshot(); s != nil {
		t.Fatalf("nil event log snapshot = %+v, want nil", s)
	}
}
