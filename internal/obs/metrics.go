package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a set of named metrics. Instrument lookups take a mutex;
// the instruments themselves are lock-free atomics, so the pattern is
// to resolve names once per operation and increment per unit of work.
// All methods are safe on a nil *Registry and return nil instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing atomic counter. Methods are
// no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float value. Methods are no-ops on a
// nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Add adjusts the gauge by delta (negative to decrease) with a CAS
// loop — the in-flight-request counter pattern, where concurrent
// entries and exits must not lose updates.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram: observation i lands in the
// first bucket whose upper bound is >= v, or the overflow bucket.
// Observations also accumulate an atomic count and sum. Methods are
// no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; len(buckets) = len(bounds)+1
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefaultDurationBucketsMS is a general-purpose latency bucket layout
// in milliseconds, from sub-millisecond to ten seconds.
var DefaultDurationBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use. An existing histogram keeps its
// original bounds regardless of the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of all observations.
	Sum float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Buckets has one extra final
	// entry for observations above the last bound.
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts by linear interpolation inside the target bucket — the
// standard Prometheus-style estimate, usable on a single node's
// snapshot or on buckets merged across a fleet. The overflow bucket
// has no upper bound, so a quantile landing there reports the last
// finite bound (the estimate saturates). An empty histogram is 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Buckets {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: unbounded above, so saturate at the last
			// finite bound.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge adds other's observations into h bucket-wise; ok is false when
// the bucket layouts differ (the caller keeps them separate instead).
func (h HistogramSnapshot) merge(other HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(h.Bounds) != len(other.Bounds) || len(h.Buckets) != len(other.Buckets) {
		return h, false
	}
	for i, b := range h.Bounds {
		if other.Bounds[i] != b {
			return h, false
		}
	}
	out := HistogramSnapshot{
		Count:   h.Count + other.Count,
		Sum:     h.Sum + other.Sum,
		Bounds:  append([]float64(nil), h.Bounds...),
		Buckets: make([]int64, len(h.Buckets)),
	}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i] + other.Buckets[i]
	}
	return out, true
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric. Valid at any
// moment — concurrent increments simply land before or after the copy.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
		}
		for i := range h.buckets {
			hs.Buckets = append(hs.Buckets, h.buckets[i].Load())
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON dumps an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Expvar returns the snapshot as a plain value, suitable for
// publishing on /debug/vars via expvar.Func — the text form every
// expvar scraper understands.
func (r *Registry) Expvar() any { return r.Snapshot() }

// Names returns every registered metric name, sorted — handy for
// debug listings and tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
