package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race (make obs-check) this also proves the increment path is
// synchronization-clean.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent checks the CAS-summed histogram under
// contention: counts must be exact and the sum must match.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("lat", []float64{1, 10, 100})
			for i := 0; i < perWorker; i++ {
				h.Observe(5)
			}
		}()
	}
	wg.Wait()
	h := r.Histogram("lat", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	if h.Sum() != 5*workers*perWorker {
		t.Fatalf("sum = %v, want %v", h.Sum(), 5*workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	want := []int64{3, 1, 1} // <=10: 1,5,10; <=100: 50; overflow: 1000
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.gauge").Set(2.5)
	r.Histogram("c.hist", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a.count"] != 7 || s.Gauges["b.gauge"] != 2.5 || s.Histograms["c.hist"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

// TestNilRegistrySafe asserts the whole nil-receiver contract: every
// instrument obtained from a nil registry must be usable.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	if r.Counter("x").Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	r.Gauge("g").Set(1)
	if r.Gauge("g").Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	r.Histogram("h", []float64{1}).Observe(1)
	if n := r.Histogram("h", nil).Count(); n != 0 {
		t.Fatalf("nil histogram count = %d", n)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.Names() != nil {
		t.Fatal("nil registry names must be nil")
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Gauge("a")
	r.Histogram("m", nil)
	got := r.Names()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}
