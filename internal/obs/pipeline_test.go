package obs_test

// Integration tests: the obs layer observed through the real pipeline
// (identify → remedy), including PR 1's partial-result contract — a
// cancelled run must still flush a valid trace and metrics snapshot.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/synth"
)

func obsContext(t *testing.T) (context.Context, *obs.Tracer, *obs.Registry) {
	t.Helper()
	tr := obs.NewTracer()
	m := obs.NewRegistry()
	ctx := obs.WithTracer(context.Background(), tr)
	ctx = obs.WithMetrics(ctx, m)
	return ctx, tr, m
}

// TestIdentifyInstrumented: a full identification populates the work
// counters and a span tree with per-level children.
func TestIdentifyInstrumented(t *testing.T) {
	ctx, tr, m := obsContext(t)
	d := synth.CompasN(2000, 1)
	res, err := core.IdentifyOptimizedCtx(ctx, d, core.Config{TauC: 0.1, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("identify.nodes_visited").Value(); got != int64(res.Explored) || got == 0 {
		t.Fatalf("identify.nodes_visited = %d, want %d (nonzero)", got, res.Explored)
	}
	if got := m.Counter("identify.regions_flagged").Value(); got != int64(len(res.Regions)) {
		t.Fatalf("identify.regions_flagged = %d, want %d", got, len(res.Regions))
	}
	if m.Counter("identify.nodes_pruned").Value() != int64(res.Pruned) {
		t.Fatal("identify.nodes_pruned mismatch")
	}
	spans := tr.Snapshot()
	var rootID uint64
	levels := 0
	for _, s := range spans {
		switch s.Name {
		case "core.identify.optimized":
			rootID = s.ID
		case "core.identify.level":
			levels++
		}
	}
	if rootID == 0 || levels == 0 {
		t.Fatalf("span tree missing identify root or level spans: %+v", spans)
	}
	for _, s := range spans {
		if s.Name == "core.identify.level" && s.Parent != rootID {
			t.Fatalf("level span not parented to identify root: %+v", s)
		}
	}
}

// TestParallelIdentifyShardSpans: the parallel traversal emits one
// shard span per hierarchy node, all parented under the parallel root,
// and matches the sequential counters.
func TestParallelIdentifyShardSpans(t *testing.T) {
	ctx, tr, m := obsContext(t)
	d := synth.CompasN(2000, 1)
	if _, err := core.IdentifyOptimizedCtx(ctx, d, core.Config{TauC: 0.1, T: 1, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	var parallelID uint64
	shards := 0
	for _, s := range tr.Snapshot() {
		if s.Name == "core.identify.parallel" {
			parallelID = s.ID
		}
	}
	for _, s := range tr.Snapshot() {
		if s.Name == "core.identify.shard" {
			shards++
			if s.Parent != parallelID {
				t.Fatalf("shard span not under parallel root: %+v", s)
			}
		}
	}
	if shards == 0 {
		t.Fatal("no shard spans recorded")
	}
	if m.Counter("identify.nodes_visited").Value() == 0 {
		t.Fatal("parallel run must count nodes_visited")
	}
}

// TestCancelledRunFlushesPartialSnapshot is the PR 1 tie-in: a remedy
// run cancelled mid-flight must leave a trace that serializes to valid
// JSON (open spans marked unfinished) and a metrics snapshot counting
// exactly the work that happened before the cut.
func TestCancelledRunFlushesPartialSnapshot(t *testing.T) {
	ctx, tr, m := obsContext(t)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Cancel from inside the remedy loop after the second node, and grab
	// a mid-flight snapshot there — the moment a signal handler or
	// watchdog would flush — while the remedy.apply span is still open.
	nodes := 0
	var midFlight bytes.Buffer
	faults.Set(faults.RemedyNode, func(any) error {
		nodes++
		if nodes == 2 {
			if err := tr.WriteJSON(&midFlight); err != nil {
				t.Errorf("mid-flight flush: %v", err)
			}
			cancel()
		}
		return nil
	})
	t.Cleanup(faults.Reset)

	d := synth.CompasN(3000, 1)
	out, rep, err := remedy.ApplyCtx(ctx, d, remedy.Options{
		Identify: core.Config{TauC: 0.05, T: 1, MinSize: 5},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil || rep == nil {
		t.Fatal("partial-result contract: nil dataset, non-nil report")
	}

	// The mid-flight snapshot must be valid JSON with the in-progress
	// span marked unfinished.
	var doc struct{ Spans []obs.SpanSnapshot }
	if err := json.Unmarshal(midFlight.Bytes(), &doc); err != nil {
		t.Fatalf("mid-flight trace is not valid JSON: %v\n%s", err, midFlight.String())
	}
	sawApply := false
	for _, s := range doc.Spans {
		if s.Name == "remedy.apply" {
			sawApply = true
			if !s.Unfinished {
				t.Fatal("in-flight remedy.apply span must be marked unfinished")
			}
		}
	}
	if !sawApply {
		t.Fatalf("no remedy.apply span in mid-flight trace: %+v", doc.Spans)
	}

	// The post-cancellation flush closes the span cleanly and stays valid.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc.Spans = nil
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("final partial trace is not valid JSON: %v", err)
	}
	for _, s := range doc.Spans {
		if s.Name == "remedy.apply" && s.Unfinished {
			t.Fatal("remedy.apply must end via defer on the cancel path")
		}
	}

	// The metrics snapshot must agree with the partial report.
	var mbuf bytes.Buffer
	if err := m.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbuf.Bytes(), &snap); err != nil {
		t.Fatalf("partial metrics are not valid JSON: %v", err)
	}
	if snap.Counters["remedy.samples_added"] != int64(rep.Added) {
		t.Fatalf("remedy.samples_added = %d, want %d (partial report)",
			snap.Counters["remedy.samples_added"], rep.Added)
	}
	if snap.Counters["identify.nodes_visited"] == 0 {
		t.Fatal("pre-cancellation identification must have counted work")
	}
}

// TestInjectedFaultBecomesTraceEvent: a fault fired through FireCtx
// shows up as a fault.injected event on the active span.
func TestInjectedFaultBecomesTraceEvent(t *testing.T) {
	ctx, tr, _ := obsContext(t)
	injected := errors.New("injected")
	faults.Set(faults.RemedyNode, func(arg any) error {
		if mask, ok := arg.(uint32); ok && mask == 0x7 {
			return injected
		}
		return nil
	})
	t.Cleanup(faults.Reset)

	d := synth.CompasN(2000, 1)
	_, rep, err := remedy.ApplyCtx(ctx, d, remedy.Options{Identify: core.Config{TauC: 0.1, T: 1}})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if rep == nil {
		t.Fatal("partial report must survive the fault")
	}
	found := false
	for _, s := range tr.Snapshot() {
		for _, e := range s.Events {
			if e.Name == "fault.injected" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("injected fault left no trace event")
	}
}
