package obs

import (
	"sync"
	"time"
)

// EventLog is a bounded ring buffer of operational events — term
// changes, promotions, depositions, steals. The cluster layer appends
// on every state transition and /cluster/events serves the snapshot,
// so "what happened to this fleet overnight" is answerable without log
// scraping. Old entries are overwritten once the ring wraps; Seq is
// monotonic across the whole history, so a reader can tell how many
// entries it missed. All methods are safe on a nil receiver and for
// concurrent use.
type EventLog struct {
	mu   sync.Mutex
	ring []EventEntry
	next uint64 // total events ever appended; next Seq
}

// EventEntry is one recorded operational event.
type EventEntry struct {
	// Seq numbers the event within the log's whole history (monotonic
	// from 1), surviving ring wraparound.
	Seq uint64 `json:"seq"`
	// At is the wall-clock time of the event.
	At time.Time `json:"at"`
	// Kind classifies the event ("promoted", "deposed", "term",
	// "steal", ...).
	Kind string `json:"kind"`
	// Detail is a free-form description.
	Detail string `json:"detail,omitempty"`
}

// NewEventLog returns an event log holding the most recent capacity
// entries (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]EventEntry, capacity)}
}

// Append records an event, evicting the oldest entry if the ring is
// full.
func (l *EventLog) Append(kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	l.ring[(l.next-1)%uint64(len(l.ring))] = EventEntry{
		Seq:    l.next,
		At:     time.Now(),
		Kind:   kind,
		Detail: detail,
	}
}

// Snapshot returns the retained events, oldest first. Nil and empty
// logs return nil.
func (l *EventLog) Snapshot() []EventEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	capN := uint64(len(l.ring))
	if n == 0 {
		return nil
	}
	count := n
	if count > capN {
		count = capN
	}
	out := make([]EventEntry, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, l.ring[i%capN])
	}
	return out
}

// Len reports how many events are currently retained (0 on nil).
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next < uint64(len(l.ring)) {
		return int(l.next)
	}
	return len(l.ring)
}
