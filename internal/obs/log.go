package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities from quietest to most verbose.
type Level int32

const (
	// LevelError logs only failures.
	LevelError Level = iota
	// LevelWarn adds recoverable anomalies.
	LevelWarn
	// LevelInfo adds one line per pipeline stage (remedyctl -v).
	LevelInfo
	// LevelDebug adds per-node / per-level detail (remedyctl -vv).
	LevelDebug
)

func (l Level) String() string {
	switch l {
	case LevelError:
		return "error"
	case LevelWarn:
		return "warn"
	case LevelInfo:
		return "info"
	case LevelDebug:
		return "debug"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Logger writes leveled key=value lines. Loggers derived with Scope
// share the sink, mutex, and level of their root, so raising the level
// is visible to every scope. All methods are no-ops on a nil receiver
// and On reports false, which lets hot paths guard formatting:
//
//	if lg.On(obs.LevelDebug) { lg.Debug("scanned", "level", lv) }
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level *atomic.Int32
	scope string
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	lv := &atomic.Int32{}
	lv.Store(int32(level))
	return &Logger{mu: &sync.Mutex{}, w: w, level: lv}
}

// Scope returns a child logger that stamps every line with scope=name.
// Nested scopes join with "/".
func (l *Logger) Scope(name string) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	if child.scope != "" {
		child.scope += "/" + name
	} else {
		child.scope = name
	}
	return &child
}

// SetLevel changes the level for this logger and every scope sharing
// its root.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// On reports whether lines at the given level are emitted.
func (l *Logger) On(level Level) bool {
	return l != nil && Level(l.level.Load()) >= level
}

// Error logs at LevelError. kvs alternate key, value.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LevelWarn, msg, kvs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LevelInfo, msg, kvs) }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }

func (l *Logger) log(level Level, msg string, kvs []any) {
	if !l.On(level) {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ts=%s level=%s", time.Now().Format("15:04:05.000"), level)
	if l.scope != "" {
		fmt.Fprintf(&b, " scope=%s", l.scope)
	}
	fmt.Fprintf(&b, " msg=%s", quoteIfNeeded(msg))
	for i := 0; i+1 < len(kvs); i += 2 {
		fmt.Fprintf(&b, " %v=%s", kvs[i], quoteIfNeeded(fmt.Sprint(kvs[i+1])))
	}
	if len(kvs)%2 == 1 {
		fmt.Fprintf(&b, " !odd=%s", quoteIfNeeded(fmt.Sprint(kvs[len(kvs)-1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String()) //lint:allow errdiscard log sink failures must not fail the caller
}

// quoteIfNeeded wraps values containing spaces, quotes, or '=' in
// quotes so lines stay machine-splittable on spaces.
func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"=") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
