package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus-style text exposition (the exposition format, version
// 0.0.4) for a Snapshot. remedyd serves it at /metrics?format=prom so
// a standard scraper can read the same registry the JSON endpoint
// exposes — no client library, just the text rules: one
// `name{labels} value` line per sample, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.

// promName rewrites a metric base name into the exposition grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and other separators become
// underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSplit separates a registry metric name into an
// exposition-sanitized base and its label body (the inside of the
// {...}, "" when unlabeled): `x.y{node="a"}` → `x_y`, `node="a"`.
func promSplit(name string) (base, labels string) {
	base, lab := SplitLabels(name)
	if lab != "" {
		lab = strings.TrimSuffix(strings.TrimPrefix(lab, "{"), "}")
	}
	return promName(base), lab
}

// promSample writes one sample line, merging the metric's own labels
// with an optional extra label (the histogram le).
func promSample(w io.Writer, base, labels, extra string, value any) error {
	body := labels
	if extra != "" {
		if body != "" {
			body += ","
		}
		body += extra
	}
	if body != "" {
		body = "{" + body + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %v\n", base, body, value)
	return err
}

// WriteProm writes the snapshot in the Prometheus text exposition
// format, in sorted-name order so the output is deterministic.
func (s Snapshot) WriteProm(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	// One # TYPE line per metric family: labeled series of the same
	// base sort adjacently, so a change in base marks a new family.
	lastType := ""
	for _, n := range names {
		base, labels := promSplit(n)
		if base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
			lastType = base
		}
		if err := promSample(w, base, labels, "", s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	lastType = ""
	for _, n := range names {
		base, labels := promSplit(n)
		if base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
			lastType = base
		}
		if err := promSample(w, base, labels, "", s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	lastType = ""
	for _, n := range names {
		h := s.Histograms[n]
		base, labels := promSplit(n)
		if base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
			lastType = base
		}
		var cum int64
		for i, b := range h.Buckets {
			cum += b
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			if err := promSample(w, base+"_bucket", labels, fmt.Sprintf("le=%q", le), cum); err != nil {
				return err
			}
		}
		if err := promSample(w, base+"_sum", labels, "", h.Sum); err != nil {
			return err
		}
		if err := promSample(w, base+"_count", labels, "", h.Count); err != nil {
			return err
		}
	}
	return nil
}
