package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"
)

// Finding is a Diagnostic that survived suppression and baseline
// filtering, with its file path rewritten relative to the module root
// (slash-separated) for stable reports and baselines.
type Finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
}

// String renders the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Result is the outcome of one analysis run.
type Result struct {
	// Findings are the live problems: not waived inline, not
	// grandfathered. A non-empty slice fails the gate.
	Findings []Finding `json:"findings"`
	// Warnings are advisory: //lint:allow directives that are
	// malformed, unjustified, or no longer suppress anything. They do
	// not fail the gate but are always reported.
	Warnings []Finding `json:"warnings,omitempty"`
	// Suppressed and Baselined count the findings waived by
	// //lint:allow directives and by the baseline file respectively.
	Suppressed int `json:"suppressed"`
	Baselined  int `json:"baselined"`
	// TypeErrors count soft type-check errors across the loaded
	// packages. Analysis of a tree that does not compile is
	// best-effort; the driver surfaces the count so CI can insist on
	// zero.
	TypeErrors []string `json:"type_errors,omitempty"`
	// Analyzers lists the analyzer names that ran, sorted.
	Analyzers []string `json:"analyzers"`
	// Timings accumulates wall-clock time per analyzer across all
	// packages (plus a "(callgraph)" entry for Program construction).
	// Diagnostic output for `make lint -timings`; excluded from the
	// JSON artifact so reports stay byte-stable run-to-run.
	Timings map[string]time.Duration `json:"-"`
}

// TimingRows renders Timings sorted by descending cost for display.
func (r *Result) TimingRows() []string {
	names := make([]string, 0, len(r.Timings))
	for name := range r.Timings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if r.Timings[names[i]] != r.Timings[names[j]] {
			return r.Timings[names[i]] > r.Timings[names[j]]
		}
		return names[i] < names[j]
	})
	rows := make([]string, len(names))
	for i, name := range names {
		rows[i] = fmt.Sprintf("%-14s %s", name, r.Timings[name].Round(time.Microsecond))
	}
	return rows
}

// Run executes the analyzers over the packages, then applies
// //lint:allow suppression and the baseline. moduleDir anchors the
// relative paths in the result; pass the Loader's ModuleDir.
func Run(pkgs []*Package, analyzers []*Analyzer, baseline *Baseline, moduleDir string) *Result {
	// Findings starts non-nil so the JSON artifact always carries an
	// explicit array, never null.
	res := &Result{Findings: []Finding{}, Timings: map[string]time.Duration{}}
	for _, a := range analyzers {
		res.Analyzers = append(res.Analyzers, a.Name)
		// Pre-seed so every selected analyzer shows a timing row even
		// when AppliesTo filters it off all loaded packages.
		res.Timings[a.Name] = 0
	}
	sort.Strings(res.Analyzers)
	if baseline == nil {
		baseline = &Baseline{Version: 1}
	}

	// Wall-clock timing here is diagnostic output for the lint tooling
	// itself (make lint), never analysis input, so the determinism
	// contract's seeded-clock rule does not apply.
	var prog *Program
	for _, a := range analyzers {
		if a.NeedsProgram {
			start := time.Now() //lint:allow determinism diagnostic timing of the lint run itself, not analysis input
			prog = BuildProgram(pkgs)
			res.Timings["(callgraph)"] = time.Since(start)
			break
		}
	}

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			res.TypeErrors = append(res.TypeErrors, e.Error())
		}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Pkg:      pkg,
				Prog:     prog,
				analyzer: a,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			start := time.Now() //lint:allow determinism diagnostic timing of the lint run itself, not analysis input
			a.Run(pass)
			res.Timings[a.Name] += time.Since(start)
		}
	}

	allows := collectAllows(pkgs)
	idx := buildAllowIndex(allows)
	match := baseline.matcher()

	// Deterministic processing order so multiset baseline matching is
	// reproducible run-to-run.
	sort.Slice(raw, func(i, j int) bool { return lessDiag(raw[i], raw[j]) })

	var prev Diagnostic
	for i, d := range raw {
		if i > 0 && d == prev {
			continue // identical duplicate (e.g. nested flagging of one call)
		}
		prev = d
		rel := relFile(moduleDir, d.Pos.Filename)
		if idx.suppresses(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
			res.Suppressed++
			continue
		}
		if match(d.Analyzer, rel, d.Message) {
			res.Baselined++
			continue
		}
		res.Findings = append(res.Findings, Finding{
			File:     rel,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Severity: d.Severity,
			Message:  d.Message,
		})
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, d := range allows {
		w := Finding{
			File:     relFile(moduleDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: "lint",
			Severity: SeverityWarning,
		}
		switch {
		case d.Analyzer == "":
			w.Message = "malformed //lint:allow: missing analyzer name"
		case !known[d.Analyzer]:
			// Directives for analyzers excluded from this run cannot be
			// judged used or unused; stay silent about them.
			continue
		case d.Justification == "":
			w.Message = fmt.Sprintf("//lint:allow %s has no justification", d.Analyzer)
		case !d.used:
			w.Message = fmt.Sprintf("unused //lint:allow %s: nothing to suppress here", d.Analyzer)
		default:
			continue
		}
		res.Warnings = append(res.Warnings, w)
	}
	sort.Slice(res.Warnings, func(i, j int) bool { return lessFinding(res.Warnings[i], res.Warnings[j]) })
	return res
}

func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

func lessFinding(a, b Finding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	return a.Analyzer < b.Analyzer
}

// relFile rewrites an absolute filename relative to the module root
// with forward slashes; files outside the module keep their absolute
// path.
func relFile(moduleDir, file string) string {
	if moduleDir == "" {
		return file
	}
	rel, err := filepath.Rel(moduleDir, file)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return file
	}
	return filepath.ToSlash(rel)
}
