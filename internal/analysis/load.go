package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of a single Go module without
// golang.org/x/tools: module-local import paths are resolved against
// the module directory tree and recursively loaded by the Loader
// itself, while standard-library paths are delegated to the go/importer
// source importer (sharing this Loader's FileSet so every position is
// coherent). Test files are skipped everywhere.
type Loader struct {
	// ModulePath is the module path from go.mod (e.g. "repro").
	ModulePath string
	// ModuleDir is the absolute directory containing go.mod.
	ModuleDir string

	fset *token.FileSet
	ctxt build.Context
	std  types.Importer
	pkgs map[string]*Package // by import path; nil entry marks in-progress
}

// NewLoader locates the module containing dir (walking up to the
// nearest go.mod) and returns a Loader rooted there.
//
// The loader type-checks the standard library from source with cgo
// disabled so that pure-Go build variants are selected and no C
// toolchain is consulted; this flips build.Default.CgoEnabled for the
// process, which is acceptable for the analysis tooling this package
// exists to serve.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	// The source importer captures &build.Default; disable cgo before
	// first use so packages like net and os/user type-check their
	// pure-Go fallbacks.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		ModulePath: modPath,
		ModuleDir:  root,
		fset:       fset,
		ctxt:       build.Default,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the nearest go.mod and returns the
// module directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns to directories and loads each as a
// package. A pattern is either a directory path (absolute, or relative
// to the current working directory: "./internal/stats") or a recursive
// pattern ending in "/..." which loads every package directory beneath
// it, skipping testdata, vendor, and hidden directories. Results are
// sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		base, rec := strings.CutSuffix(pat, "...")
		if rec {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = "."
			}
			root, err := filepath.Abs(base)
			if err != nil {
				return nil, err
			}
			sub, err := l.walkPackageDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, abs)
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkPackageDirs returns every directory under root holding at least
// one buildable non-test .go file.
func (l *Loader) walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := l.sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// sourceFiles lists the buildable non-test .go files of dir, sorted.
// Build constraints are honored via the loader's build context.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: match %s: %w", filepath.Join(dir, name), err)
		}
		if ok {
			files = append(files, filepath.Join(dir, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForImport maps a module-local import path back to a directory.
func (l *Loader) dirForImport(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// loadPath loads (or returns the memoized) package for import path,
// parsing from dir.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker
	pkg, err := l.check(path, dir)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses and type-checks one package directory.
func (l *Loader) check(path, dir string) (*Package, error) {
	filenames, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly partial) package even on error.
	//lint:allow errdiscard Check's error duplicates the soft errors collected via conf.Error
	tpkg, _ := conf.Check(path, l.fset, files, pkg.TypesInfo)
	pkg.Types = tpkg
	return pkg, nil
}

// loaderImporter adapts Loader to types.Importer for dependency
// resolution during type-checking: module-local paths recurse into the
// Loader, everything else goes to the standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path, l.dirForImport(path))
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: no type information for %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
