// Package goroleak is a remedylint fixture for the bounded-goroutine
// contract: every go statement needs a visible cancellation path.
package goroleak

import (
	"context"
	"sync"
)

// ctxBound selects on ctx.Done: fine.
func ctxBound(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case n := <-work:
				_ = n
			}
		}
	}()
}

// wgJoined is joined on shutdown through the WaitGroup: fine.
func wgJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// worker ranges over its channel, so it ends when the channel closes.
func worker(jobs chan int) {
	for range jobs {
	}
}

// namedWorker spawns a declared function whose cancellation path the
// call graph can see: fine.
func namedWorker(jobs chan int) {
	go worker(jobs)
}

// condWaiter blocks on a condition variable (woken by Broadcast on
// shutdown, the fair-queue pattern): fine.
func condWaiter(c *sync.Cond) {
	go func() {
		c.L.Lock()
		c.Wait()
		c.L.Unlock()
	}()
}

// leaky spins forever with no way to stop it.
func leaky() {
	go func() { // want "no cancellation path"
		n := 0
		for {
			n++
		}
	}()
}

// spin has no signal, so spawning it by name is flagged too.
func spin() {
	n := 0
	for {
		n++
	}
}

func leakyNamed() {
	go spin() // want "no cancellation path"
}

// dynamic spawns a function value the call graph cannot see into.
func dynamic(f func()) {
	go f() // want "cannot verify a cancellation path"
}

// waived models a process-lifetime accept loop whose shutdown is the
// process exiting.
func waived() {
	//lint:allow goroleak fixture: process-lifetime loop, stopped only by process exit
	go spin()
}

var _ = []any{ctxBound, wgJoined, namedWorker, condWaiter, leaky, leakyNamed, dynamic, waived}
