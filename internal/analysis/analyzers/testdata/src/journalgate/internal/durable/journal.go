// Package durable is a fixture stand-in for the real CRC-framed job
// journal: journalgate classifies Append/AppendReplicated methods on
// types under an internal/durable path as journal events.
package durable

type Journal struct {
	appended int
}

func (j *Journal) Append(v int) error {
	j.appended++
	return nil
}

func (j *Journal) AppendReplicated(v int) error {
	j.appended++
	return nil
}
