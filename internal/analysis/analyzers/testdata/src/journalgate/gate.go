// Package journalgate is a remedylint fixture for the journal-before-
// acknowledge contract: every job state transition must reach a
// durable journal append earlier in the same function.
package journalgate

import (
	fixdur "repro/internal/analysis/analyzers/testdata/src/journalgate/internal/durable"
)

type job struct {
	state    int
	attempts int
}

// finishLocked is the transition choke point; assignments inside it
// are the mechanism, not a policy decision, and are exempt.
func (j *job) finishLocked(s int) {
	j.state = s
}

type engine struct {
	journal *fixdur.Journal
}

// goodFinish journals the transition before making it observable.
func (e *engine) goodFinish(j *job) error {
	if err := e.journal.Append(3); err != nil {
		return err
	}
	j.finishLocked(3)
	return nil
}

// journalState is the indirection the real serve engine uses: the
// append is one call-graph hop away.
func (e *engine) journalState(s int) error {
	return e.journal.Append(s)
}

// goodIndirect reaches the journal through the helper before the
// direct state assignment.
func (e *engine) goodIndirect(j *job) error {
	if err := e.journalState(2); err != nil {
		return err
	}
	j.state = 2
	return nil
}

// badFinish acknowledges a terminal transition nothing journaled: the
// crash window PR 5 closes.
func (e *engine) badFinish(j *job) {
	j.finishLocked(4) // want "no durable journal append"
}

// badAssign transitions in-flight state without a journal record.
func (e *engine) badAssign(j *job) {
	j.attempts++
	j.state = 5 // want "no durable journal append"
}

// badOrder journals only AFTER the transition is observable.
func (e *engine) badOrder(j *job) error {
	j.finishLocked(6) // want "no durable journal append"
	return e.journal.Append(6)
}

// recovery replays records: state is reconstructed FROM the journal,
// so there is nothing to append first.
func (e *engine) recovery(j *job, replayed int) {
	//lint:allow journalgate fixture: replay path reconstructs state from the journal it is reading
	j.state = replayed
}

var _ = []any{(*engine).goodFinish, (*engine).goodIndirect, (*engine).badFinish,
	(*engine).badAssign, (*engine).badOrder, (*engine).recovery}
