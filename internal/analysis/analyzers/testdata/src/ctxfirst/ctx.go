// Package ctxfirst is a remedylint fixture for the context-threading
// contract.
package ctxfirst

import "context"

// A stored context detaches cancellation from the call tree.
type holder struct {
	ctx context.Context // want "stored in a struct field"
	n   int
}

func first(ctx context.Context, n int) int { return n }

func second(n int, ctx context.Context) int { // want "must be the first parameter"
	return n
}

func (h *holder) apply(ctx context.Context, n int) error { return nil }

// RunCtx follows the *Ctx convention correctly.
func RunCtx(ctx context.Context) {}

// WalkCtx claims cancellability but takes no context.
func WalkCtx(n int) {} // want "named *Ctx but does not take"

type worker interface {
	Apply(n int, ctx context.Context) error // want "must be the first parameter"
	DoCtx(ctx context.Context, n int) error
}

func waived() {
	type bag struct {
		ctx context.Context //lint:allow ctxfirst fixture: demonstrates inline waivers
	}
}
