// Package lockorder is a remedylint fixture for the lock-ordering
// contract: opposing acquisition orders form a cycle, and sync.Mutex
// is not reentrant.
package lockorder

import "sync"

type P struct {
	mu sync.Mutex
	n  int
}

type Q struct {
	mu sync.Mutex
	n  int
}

// inversionOne acquires P.mu then Q.mu; inversionTwo opposes it. The
// cycle is reported once, at its first-seen edge.
func inversionOne(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock() // want "lock-order cycle"
	q.n++
	q.mu.Unlock()
}

func inversionTwo(p *P, q *Q) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Double re-acquires c.mu through the helper while already holding it:
// a guaranteed self-deadlock.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want "reacquired while already held"
	c.bump()
}

type R struct {
	mu sync.Mutex
	n  int
}

type S struct {
	mu sync.Mutex
	n  int
}

// waivedOne/waivedTwo oppose each other like the inversion pair above,
// but the fixture pretends a runtime invariant makes the race
// impossible, exercising suppression at the witness edge.
func waivedOne(r *R, s *S) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:allow lockorder fixture: a (pretend) runtime invariant keeps these two paths from running concurrently
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func waivedTwo(r *R, s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// ordered takes the same two locks in one consistent order everywhere:
// edges exist, but no cycle, so nothing is reported.
func ordered(p *P, c *Counter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

var _ = []any{inversionOne, inversionTwo, waivedOne, waivedTwo, ordered}
