// Package serve is a fixture stand-in for the real retrying
// serve.Client: heldcall classifies any exported method on a type
// named Client under an internal/serve path as a network round-trip.
package serve

type Client struct{}

// DoJSON models a blocking round-trip.
func (c *Client) DoJSON(path string) error { return nil }

// reset is unexported, so calls to it are not classified as blocking.
func (c *Client) reset() {}

var _ = (*Client).reset
