// Package heldcall is a remedylint fixture for the no-blocking-under-
// lock contract: network round-trips, unbuffered sends, and fsyncs may
// not be reached while a mutex is held.
package heldcall

import (
	"os"
	"sync"

	fixserve "repro/internal/analysis/analyzers/testdata/src/heldcall/internal/serve"
)

type server struct {
	mu sync.Mutex
	f  *os.File
	cl *fixserve.Client
}

// badFsync holds the lock across the persistence barrier.
func (s *server) badFsync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want "fsync"
}

// badNetwork holds the lock across a client round-trip.
func (s *server) badNetwork() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.DoJSON("/jobs") // want "network round-trip"
}

// badIndirect reaches the round-trip through a helper: the
// interprocedural case.
func (s *server) badIndirect() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want "network round-trip"
}

func (s *server) flush() error {
	return s.cl.DoJSON("/flush")
}

// badSend parks on an unbuffered channel while holding the lock.
func (s *server) badSend() {
	ready := make(chan int)
	s.mu.Lock()
	ready <- 1 // want "unbuffered"
	s.mu.Unlock()
}

// goodCopyThenCall is the sanctioned discipline: copy under the lock,
// release, then block.
func (s *server) goodCopyThenCall() error {
	s.mu.Lock()
	cl := s.cl
	s.mu.Unlock()
	return cl.DoJSON("/jobs")
}

// goodBufferedSend cannot park: the buffer absorbs the value.
func (s *server) goodBufferedSend() {
	done := make(chan int, 1)
	s.mu.Lock()
	done <- 1
	s.mu.Unlock()
}

// goodMethodValue takes the method value without calling it: no
// round-trip happens under the lock.
func (s *server) goodMethodValue() func(string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.DoJSON
}

// waivedFsync models the durable journal: serializing append+fsync
// under the mutex is the design.
func (s *server) waivedFsync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow heldcall fixture: the mutex exists to serialize the fsync, mirroring durable.Journal.append
	return s.f.Sync()
}

var _ = []any{(*server).badFsync, (*server).badNetwork, (*server).badIndirect,
	(*server).badSend, (*server).goodCopyThenCall, (*server).goodBufferedSend, (*server).waivedFsync}
