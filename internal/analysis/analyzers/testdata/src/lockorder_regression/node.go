// Package lockorder_regression reintroduces, in miniature, the lock
// inversion the PR 6 review caught in internal/cluster: the documented
// discipline is applyMu before mu (promote's order), and an apply-path
// helper that takes mu first and then fences on applyMu opposes it.
// lockorder must flag this pattern; the regression test in
// lockorder_regression_test.go pins that.
package lockorder_regression

import "sync"

type Node struct {
	applyMu sync.Mutex
	mu      sync.Mutex
	role    int
	term    int
}

// promote follows the documented order: applyMu serializes promotions,
// mu guards the role fields.
func (n *Node) promote() {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	n.role = 1
	n.term++
	n.mu.Unlock()
}

// applyFrame is the reintroduced bug: it holds mu and then fences on
// applyMu through a helper — the reverse of promote's order. Run
// concurrently with promote, each side can hold the lock the other
// needs.
func (n *Node) applyFrame() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fence()
}

func (n *Node) fence() {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.term++
}

var _ = []any{(*Node).promote, (*Node).applyFrame}
