package obspair

import (
	"context"

	"repro/internal/obs"
)

// --- ownership-handoff escapes (the steal-result span-graft class) ---
// A span stored into a struct field, composite literal, return value,
// or channel changes hands: the holder of the escaped reference ends
// it, so none of these are leaks.

type stealResult struct {
	Span  *obs.Span
	Spans []*obs.Span
}

func fieldHandoff(ctx context.Context, res *stealResult) {
	_, sp := obs.StartSpan(ctx, "grafted")
	sp.SetInt("attempt", 1)
	res.Span = sp
}

func sliceElemHandoff(ctx context.Context, res *stealResult) {
	_, sp := obs.StartSpan(ctx, "grafted")
	res.Spans[0] = sp
}

func literalHandoff(ctx context.Context) stealResult {
	_, sp := obs.StartSpan(ctx, "grafted")
	return stealResult{Span: sp}
}

func sliceLiteralHandoff(ctx context.Context) []*obs.Span {
	_, sp := obs.StartSpan(ctx, "grafted")
	return []*obs.Span{sp}
}

func returnHandoff(ctx context.Context) *obs.Span {
	_, sp := obs.StartSpan(ctx, "caller-owned")
	return sp
}

func channelHandoff(ctx context.Context, out chan<- *obs.Span) {
	_, sp := obs.StartSpan(ctx, "shipped")
	out <- sp
}

// Control: a span that only escapes into a plain local variable has
// not changed hands; the leak is still real.
func aliasNoHandoff(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "aliased") // want "never ended"
	alias := sp
	alias.SetInt("n", 1)
}
