// Package obspair is a remedylint fixture for the span-balancing
// contract.
package obspair

import (
	"context"

	"repro/internal/obs"
)

func deferred(ctx context.Context) context.Context {
	ctx, sp := obs.StartSpan(ctx, "deferred")
	defer sp.End()
	return ctx
}

func discarded(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "discarded") // want "discarded"
}

func neverEnded(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "leaked") // want "never ended"
	sp.SetInt("n", 1)
}

func earlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.StartSpan(ctx, "early")
	if fail {
		return context.Canceled // want "without ending span"
	}
	sp.End()
	return nil
}

// The loop-scoped closure-ender pattern from core/identify: each
// iteration's span is ended by calling a local closure.
func loopClosure(ctx context.Context, n int) {
	var sp *obs.Span
	endIter := func() { sp.End() }
	for i := 0; i < n; i++ {
		_, sp = obs.StartSpan(ctx, "iter")
		endIter()
	}
}

func finish(sp *obs.Span, n int64) {
	sp.SetInt("n", n)
	sp.End()
}

func leaky(sp *obs.Span) {
	sp.SetInt("n", 0)
}

// Handing the span to a same-package helper that ends it balances the
// span; handing it to one that does not is a leak.
func handoffGood(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "handoff")
	defer finish(sp, 1)
}

func handoffBad(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "handoff") // want "never ended"
	leaky(sp)
}

// Spans started inside a closure are balanced inside that closure.
func closureScoped(ctx context.Context) func() {
	return func() {
		_, sp := obs.StartSpan(ctx, "inner")
		defer sp.End()
	}
}

func waivedHandoff(ctx context.Context) {
	//lint:allow obspair fixture: span handed to a goroutine for ending
	_, sp := obs.StartSpan(ctx, "async")
	go func() { sp.End() }()
}
