// Package errdiscard is a remedylint fixture for the checked-error
// contract.
package errdiscard

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

var errFixture = errors.New("fixture")

func fails() error            { return errFixture }
func failsWith() (int, error) { return 0, errFixture }

func discards() int {
	_ = fails() // want "discarded via blank identifier"
	n, _ := failsWith() // want "discarded via blank identifier"
	return n
}

func drops() {
	fails()       // want "unchecked error result from call"
	defer fails() // want "deferred call"
	go fails()    // want "goroutine call"
}

// The comma-ok form's second value is a bool, not an error.
func commaOK(m map[string]int) int {
	v, _ := m["k"]
	return v
}

// Infallible writers are exempt by design: bytes.Buffer,
// strings.Builder, hash.Hash, tabwriter (buffers until the checked
// Flush), and fmt.Fprint* into any of them.
func exempt(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("buffered")
	var sb strings.Builder
	sb.WriteByte('!')
	fmt.Fprintf(&buf, "%s", sb.String())
	h := sha256.New()
	h.Write(buf.Bytes())
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "a\tb")
	return tw.Flush()
}

func waived() {
	_ = fails() //lint:allow errdiscard fixture: demonstrates inline waivers
}

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	return fails()
}
