// Package determinism is a remedylint fixture for the seeded-RNG,
// wall-clock, and map-iteration-order rules.
package determinism

import (
	"fmt"
	"math/rand" // want "import of math/rand"
	"sort"
	"time"
)

func ambient() int {
	return rand.Intn(6) // want "package-level math/rand.Intn"
}

func wallClock() time.Time {
	return time.Now() // want "time.Now"
}

func waivedClock() time.Time {
	//lint:allow determinism fixture: sanctioned wall-clock read
	return time.Now()
}

// Consuming an injected, seeded *rand.Rand is the sanctioned pattern:
// naming the type is not a finding (only the import line above is).
func draw(r *rand.Rand) int {
	return r.Intn(6)
}

func unordered(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "range over map"
	}
}

func ordered(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
