package panicgate

import (
	_ "net/http/pprof" // want "registers debug handlers on the default mux"
)
