package panicgate

//lint:allow panicgate fixture: sanctioned debug import on the next line
import _ "net/http/pprof"
