// Package panicgate is a remedylint fixture: positive and negative
// cases for the panic/pprof gate. `// want "substr"` comments are the
// expectations checked by the fixture harness in analyzers_test.go.
package panicgate

import "errors"

var errNegative = errors.New("negative input")

func explode(x int) error {
	if x < 0 {
		panic("negative input") // want "panic call in non-test code"
	}
	return errNegative
}

// Comments mentioning panic( and string literals holding "panic(" are
// the old grep gate's false positives; the typed gate stays silent.
func grepFalsePositives() string {
	return "panic(ignored)"
}

// A local identifier may shadow the builtin; calls through it are not
// the builtin panic.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}

func waived() {
	panic("sanctioned here") //lint:allow panicgate fixture: demonstrates inline waivers
}
