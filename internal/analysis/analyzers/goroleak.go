package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Goroleak enforces the bounded-goroutine contract: every `go`
// statement must have a visible cancellation path, so that shutdown
// actually terminates the process and long-running servers do not
// accrete parked goroutines. A spawned body (or any function it
// synchronously calls inside the module) satisfies the contract by:
//
//   - receiving from a channel (`<-ctx.Done()` in a select, a
//     close-signal channel, a work channel that closes on shutdown),
//   - ranging over a channel,
//   - joining a WaitGroup ((*sync.WaitGroup).Done marks the goroutine
//     as joined-on-shutdown; .Wait marks a joiner),
//   - blocking on a condition variable ((*sync.Cond).Wait — woken by
//     Broadcast on close, the fair-queue pattern).
//
// Spawns of function values the call graph cannot see into are flagged
// as unverifiable. Process-lifetime goroutines that intentionally
// outlive cancellation (an http.Server accept loop whose shutdown is
// the process exiting) waive with //lint:allow goroleak and a
// justification.
var Goroleak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "every go statement needs a cancellation path: a ctx.Done/channel " +
		"receive, a channel range, a joined WaitGroup, or a Cond wait",
	NeedsProgram: true,
	Run:          runGoroleak,
}

func runGoroleak(pass *analysis.Pass) {
	prog := pass.Prog
	for _, fn := range prog.Nodes {
		if fn.Pkg != pass.Pkg {
			continue
		}
		for _, site := range fn.Gos {
			switch {
			case site.Lit != nil:
				if !bodyTerminates(prog, fn.Pkg, site.Lit.Body, map[*analysis.FuncNode]bool{}) {
					pass.Report(site.Stmt.Pos(), "goroutine has no cancellation path (no channel receive, WaitGroup join, or Cond wait); bound it to a context or shutdown signal, or waive with //lint:allow goroleak")
				}
			case len(site.Targets) > 0:
				for _, t := range site.Targets {
					if !nodeTerminates(prog, t) {
						pass.Report(site.Stmt.Pos(), "goroutine running %s has no cancellation path (no channel receive, WaitGroup join, or Cond wait); bound it to a context or shutdown signal, or waive with //lint:allow goroleak", t.Name())
						break
					}
				}
			default:
				pass.Report(site.Stmt.Pos(), "cannot verify a cancellation path for this dynamically-dispatched goroutine; spawn a named function or waive with //lint:allow goroleak")
			}
		}
	}
}

// nodeTerminates memoizes the termination answer per declared function.
func nodeTerminates(prog *analysis.Program, fn *analysis.FuncNode) bool {
	v := prog.Cache("goroleak.term", func() any { return map[*analysis.FuncNode]bool{} })
	memo, ok := v.(map[*analysis.FuncNode]bool)
	if !ok {
		return true
	}
	if t, ok := memo[fn]; ok {
		return t
	}
	t := bodyTerminates(prog, fn.Pkg, fn.Decl.Body, map[*analysis.FuncNode]bool{fn: true})
	memo[fn] = t
	return t
}

// bodyTerminates scans one body for a cancellation signal, excluding
// nested `go` subtrees (an inner goroutine's signal does not bound the
// outer one) and recursing one call-graph hop at a time into
// module-local callees.
func bodyTerminates(prog *analysis.Program, pkg *analysis.Package, body ast.Node, visiting map[*analysis.FuncNode]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if syncJoinCall(pkg, n) {
				found = true
				return false
			}
			if callee := calleeFunc(pkg, n); callee != nil {
				if t := prog.FuncFor(callee); t != nil && !visiting[t] {
					visiting[t] = true
					if bodyTerminates(prog, t.Pkg, t.Decl.Body, visiting) {
						found = true
					}
					delete(visiting, t)
					if found {
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// syncJoinCall reports whether call is (*sync.WaitGroup).Done/.Wait or
// (*sync.Cond).Wait.
func syncJoinCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := pkg.TypesInfo.Selections[sel]
	if s == nil {
		return false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "WaitGroup":
		return f.Name() == "Done" || f.Name() == "Wait"
	case "Cond":
		return f.Name() == "Wait"
	}
	return false
}

// calleeFunc resolves a call's function object through the package's
// type info (static and method calls only).
func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s := pkg.TypesInfo.Selections[fun]; s != nil {
			if f, ok := s.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
