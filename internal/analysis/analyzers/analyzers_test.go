package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Each analyzer is exercised against a golden fixture package under
// testdata/src/<name>/. Expectations live in the fixtures as
//
//	// want "substring" ["substring" ...]
//
// comments on the line the finding is reported at; every want must be
// matched by a finding's message and every finding must be claimed by
// a want. Fixture //lint:allow directives double as suppression tests:
// they must all be used and justified, so the run must produce zero
// warnings.

func TestAnalyzerFixtures(t *testing.T) {
	for _, az := range All() {
		t.Run(az.Name, func(t *testing.T) {
			res, dir := runFixture(t, az)
			checkWants(t, dir, res)
			for _, w := range res.Warnings {
				t.Errorf("unexpected warning: %s", w)
			}
			if res.Suppressed == 0 {
				t.Errorf("fixture for %s suppressed nothing; each fixture must exercise //lint:allow", az.Name)
			}
		})
	}
}

// runFixture loads testdata/src/<analyzer> and runs the single
// analyzer over it with no baseline.
func runFixture(t *testing.T, az *analysis.Analyzer) (*analysis.Result, string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", az.Name)
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("fixture type error: %v", e)
		}
	}
	return analysis.Run(pkgs, []*analysis.Analyzer{az}, nil, loader.ModuleDir), dir
}

var (
	wantRE   = regexp.MustCompile(`// want (".*")\s*$`)
	quotedRE = regexp.MustCompile(`"([^"]*)"`)
)

// checkWants matches findings against the fixture's want comments,
// keyed by (base filename, line).
func checkWants(t *testing.T, dir string, res *analysis.Result) {
	t.Helper()

	type key struct {
		file string
		line int
	}
	remaining := make(map[key][]string)
	for _, f := range res.Findings {
		k := key{filepath.Base(f.File), f.Line}
		remaining[k] = append(remaining[k], f.Message)
	}
	// claim removes one finding message at k containing substr.
	claim := func(k key, substr string) bool {
		for i, msg := range remaining[k] {
			if strings.Contains(msg, substr) {
				remaining[k] = append(remaining[k][:i], remaining[k][i+1:]...)
				return true
			}
		}
		return false
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{e.Name(), i + 1}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				if !claim(k, q[1]) {
					t.Errorf("%s:%d: no finding matching %q (got %v)", e.Name(), i+1, q[1], remaining[k])
				}
			}
			if len(remaining[k]) == 0 {
				delete(remaining, k)
			}
		}
	}
	for k, msgs := range remaining {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected finding: %s", k.file, k.line, msg)
		}
	}
}
