package analyzers

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Lockorder derives the module-wide lock-acquisition graph and flags
// cycles as potential deadlocks. A directed edge A -> B is recorded
// whenever lock class B is acquired — directly, or anywhere down a
// synchronous call chain — while class A is held. Two orderings that
// oppose each other (the PR 6 `applyMu`/`mu` review class: promote
// holds applyMu then takes mu, while some other path holds mu then
// takes applyMu) form a cycle: two goroutines running the two paths
// concurrently can each hold the lock the other needs.
//
// Self-cycles are flagged too: sync.Mutex is not reentrant, so a
// function that (transitively) re-acquires a write lock it already
// holds deadlocks with itself.
//
// The graph is built on the interprocedural lock-set layer in
// internal/analysis: lock regions are source-order approximations, go
// statements are excluded from the caller's stack, and calls through
// function values are not traversed (documented soundness limits).
// Each cycle is reported once, at its smallest-position witness edge,
// so one //lint:allow lockorder at that line waives the whole cycle.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flags lock-order cycles (potential deadlocks) in the module-wide " +
		"lock-acquisition graph, including non-reentrant self-acquisition",
	NeedsProgram: true,
	Run:          runLockorder,
}

// lockEdge is one observed ordering: to acquired while from is held.
type lockEdge struct {
	from, to *analysis.LockClass
	// pos/fn locate the witness acquisition (smallest position wins).
	pos  token.Pos
	fn   *analysis.FuncNode
	path []string
	// readerPair marks edges where both the held region and the new
	// acquisition are read locks; a self-cycle of those is legal.
	readerPair bool
}

type lockorderResult struct {
	findings []lockFinding
	// edges/keys retain the observed ordering graph (deterministically
	// sorted) for the -graph debug dump.
	edges map[[2]*analysis.LockClass]*lockEdge
	keys  [][2]*analysis.LockClass
}

type lockFinding struct {
	fn  *analysis.FuncNode
	pos token.Pos
	msg string
}

func runLockorder(pass *analysis.Pass) {
	v := pass.Prog.Cache("lockorder.result", func() any { return computeLockorder(pass.Prog) })
	res, ok := v.(*lockorderResult)
	if !ok {
		return
	}
	for _, f := range res.findings {
		if f.fn.Pkg == pass.Pkg {
			pass.Report(f.pos, "%s", f.msg)
		}
	}
}

func computeLockorder(prog *analysis.Program) *lockorderResult {
	edges := map[[2]*analysis.LockClass]*lockEdge{}
	record := func(e *lockEdge) {
		k := [2]*analysis.LockClass{e.from, e.to}
		if old, ok := edges[k]; !ok || e.pos < old.pos {
			edges[k] = e
		}
	}

	for _, fn := range prog.Nodes {
		for _, cs := range fn.Calls {
			if cs.Async || cs.Deferred {
				continue
			}
			held := prog.HeldAt(fn, cs.Pos)
			if len(held) == 0 {
				continue
			}
			if class, op := prog.LockCall(cs); class != nil {
				if op != analysis.LockOpLock && op != analysis.LockOpRLock {
					continue
				}
				for _, h := range held {
					record(&lockEdge{
						from: h.Class, to: class, pos: cs.Pos, fn: fn,
						path:       []string{fn.Name() + " locks " + class.Key},
						readerPair: h.Reader && op == analysis.LockOpRLock,
					})
				}
				continue
			}
			for _, t := range cs.Targets {
				acq := prog.Acquired(t)
				classes := make([]*analysis.LockClass, 0, len(acq))
				for c := range acq {
					classes = append(classes, c)
				}
				sort.Slice(classes, func(i, j int) bool { return classes[i].Key < classes[j].Key })
				for _, c := range classes {
					for _, h := range held {
						record(&lockEdge{
							from: h.Class, to: c, pos: cs.Pos, fn: fn,
							path: append([]string{fn.Name()}, acq[c].Path...),
						})
					}
				}
			}
		}
	}

	// Condense the class graph into strongly connected components;
	// every SCC larger than one class — or any self-edge — is a
	// potential deadlock.
	adj := map[*analysis.LockClass][]*analysis.LockClass{}
	var classes []*analysis.LockClass
	seen := map[*analysis.LockClass]bool{}
	keys := make([][2]*analysis.LockClass, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0].Key != keys[j][0].Key {
			return keys[i][0].Key < keys[j][0].Key
		}
		return keys[i][1].Key < keys[j][1].Key
	})
	for _, k := range keys {
		adj[k[0]] = append(adj[k[0]], k[1])
		for _, c := range [2]*analysis.LockClass{k[0], k[1]} {
			if !seen[c] {
				seen[c] = true
				classes = append(classes, c)
			}
		}
	}
	sccs := tarjanSCC(classes, adj)

	res := &lockorderResult{edges: edges, keys: keys}
	for _, scc := range sccs {
		member := map[*analysis.LockClass]bool{}
		for _, c := range scc {
			member[c] = true
		}
		if len(scc) == 1 {
			c := scc[0]
			e, ok := edges[[2]*analysis.LockClass{c, c}]
			if !ok || e.readerPair {
				continue // no self-edge, or a legal RLock re-entry
			}
			res.findings = append(res.findings, lockFinding{
				fn: e.fn, pos: e.pos,
				msg: fmt.Sprintf("potential deadlock: %s reacquired while already held (%s); sync.Mutex is not reentrant",
					c.Key, strings.Join(e.path, " -> ")),
			})
			continue
		}
		// Multi-class cycle: report at the smallest-position in-SCC
		// edge, naming the reverse path so both sides are actionable.
		var witness *lockEdge
		for _, k := range keys {
			if !member[k[0]] || !member[k[1]] || k[0] == k[1] {
				continue
			}
			e := edges[k]
			if witness == nil || e.pos < witness.pos {
				witness = e
			}
		}
		if witness == nil {
			continue
		}
		names := make([]string, 0, len(scc))
		for _, c := range scc {
			names = append(names, c.Key)
		}
		sort.Strings(names)
		reverse := ""
		for _, k := range keys {
			if k[0] == witness.to && member[k[1]] && k[1] != witness.to {
				e := edges[k]
				p := e.fn.Pkg.Fset.Position(e.pos)
				reverse = fmt.Sprintf("; opposite order (%s -> %s) at %s:%d",
					k[0].Key, k[1].Key, filepath.Base(p.Filename), p.Line)
				break
			}
		}
		res.findings = append(res.findings, lockFinding{
			fn: witness.fn, pos: witness.pos,
			msg: fmt.Sprintf("potential deadlock: lock-order cycle among [%s]: %s acquired while holding %s (%s)%s",
				strings.Join(names, ", "), witness.to.Key, witness.from.Key,
				strings.Join(witness.path, " -> "), reverse),
		})
	}
	sort.Slice(res.findings, func(i, j int) bool { return res.findings[i].pos < res.findings[j].pos })
	return res
}

// tarjanSCC returns the strongly connected components of the class
// graph, each sorted by key, in deterministic order.
func tarjanSCC(nodes []*analysis.LockClass, adj map[*analysis.LockClass][]*analysis.LockClass) [][]*analysis.LockClass {
	index := map[*analysis.LockClass]int{}
	low := map[*analysis.LockClass]int{}
	onStack := map[*analysis.LockClass]bool{}
	var stack []*analysis.LockClass
	var out [][]*analysis.LockClass
	next := 0

	var strongconnect func(v *analysis.LockClass)
	strongconnect = func(v *analysis.LockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*analysis.LockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].Key < scc[j].Key })
			out = append(out, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return out
}
