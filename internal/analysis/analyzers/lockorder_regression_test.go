package analyzers

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestLockorderDetectsApplyMuInversion pins the analyzer against the
// exact bug class the PR 6 review caught by hand in internal/cluster:
// the documented discipline is applyMu before mu, and an apply-path
// helper that takes mu first and then fences on applyMu opposes it.
// The fixture under testdata/src/lockorder_regression reintroduces the
// pattern in miniature; if lockorder ever stops seeing it, this fails.
func TestLockorderDetectsApplyMuInversion(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "lockorder_regression"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("fixture type error: %v", e)
		}
	}
	res := analysis.Run(pkgs, []*analysis.Analyzer{Lockorder}, nil, loader.ModuleDir)
	if len(res.Findings) != 1 {
		t.Fatalf("want exactly 1 lockorder finding for the applyMu/mu inversion, got %d: %v",
			len(res.Findings), res.Findings)
	}
	msg := res.Findings[0].Message
	for _, want := range []string{"lock-order cycle", "applyMu", "Node.mu"} {
		if !strings.Contains(msg, want) {
			t.Errorf("finding message %q does not mention %q", msg, want)
		}
	}
	// The message must point at the opposing acquisition so the report
	// is actionable from either side of the cycle.
	if !strings.Contains(msg, "opposite order") {
		t.Errorf("finding message %q does not locate the reverse edge", msg)
	}
}
