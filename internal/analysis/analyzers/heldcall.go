package analyzers

import (
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Heldcall flags blocking operations reached while a mutex is held.
// Inside a critical section, the serve/cluster/durable layers may not
// — directly or down any synchronous call chain — perform:
//
//   - a network round-trip (any exported method on serve.Client; the
//     retrying client blocks for up to its full backoff budget),
//   - a send on a channel locally provable unbuffered (the send parks
//     until a receiver arrives — with a lock held, potentially
//     forever),
//   - a journal fsync ((*os.File).Sync, the durable layer's
//     persistence barrier; milliseconds per call on real disks).
//
// A blocked critical section stalls every other goroutine contending
// for the lock — under the cluster's lease ticks that turns a slow
// disk into a missed heartbeat and a spurious failover. The repo's
// discipline (PR 6) is to copy what is needed under the lock, release,
// then block; replicateAll and trySteal are the model citizens.
//
// Some short critical sections are intentionally durable — the journal
// serializes append+fsync under its own mutex by design — so findings
// are waivable with //lint:allow heldcall and a justification naming
// why the hold is deliberate.
var Heldcall = &analysis.Analyzer{
	Name: "heldcall",
	Doc: "flags blocking operations (serve.Client round-trips, unbuffered channel " +
		"sends, fsync) reached while a mutex is held",
	AppliesTo: func(path string) bool {
		return isUnder(path, "internal", "serve") ||
			isUnder(path, "internal", "cluster") ||
			isUnder(path, "internal", "durable") ||
			isUnder(path, "src", "heldcall")
	},
	NeedsProgram: true,
	Run:          runHeldcall,
}

func runHeldcall(pass *analysis.Pass) {
	prog := pass.Prog
	for _, fn := range prog.Nodes {
		if fn.Pkg != pass.Pkg {
			continue
		}
		for _, cs := range fn.Calls {
			if cs.Async {
				continue
			}
			held := prog.HeldAt(fn, cs.Pos)
			if len(held) == 0 {
				continue
			}
			if desc, ok := blockingPrimitive(cs); ok {
				pass.Report(cs.Pos, "%s while holding %s; copy state under the lock, release, then block (or waive with //lint:allow heldcall)",
					desc, held[0].Class.Key)
				continue
			}
			for _, t := range cs.Targets {
				if r := prog.ReachVia("heldcall", t, blockingPrimitive); r != nil {
					pass.Report(cs.Pos, "%s reached while holding %s (via %s); copy state under the lock, release, then block (or waive with //lint:allow heldcall)",
						r.Desc, held[0].Class.Key, strings.Join(r.Path[:len(r.Path)-1], " -> "))
					break
				}
			}
		}
	}
}

// blockingPrimitive classifies a call site as a blocking operation.
func blockingPrimitive(cs *analysis.CallSite) (string, bool) {
	if cs.Kind == analysis.CallSend && cs.SendUnbuffered {
		return "send on unbuffered channel", true
	}
	if cs.Callee == nil {
		return "", false
	}
	sig, ok := cs.Callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	pkgPath := named.Obj().Pkg().Path()
	switch {
	case pkgPath == "os" && named.Obj().Name() == "File" && cs.Callee.Name() == "Sync":
		return "fsync ((*os.File).Sync)", true
	case named.Obj().Name() == "Client" && isUnder(pkgPath, "internal", "serve") && cs.Callee.Exported():
		return "network round-trip (serve.Client." + cs.Callee.Name() + ")", true
	}
	return "", false
}
