package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// PanicGate is the AST-aware replacement for the old `grep "panic("`
// CI gate. The library's failure contract is sentinel errors plus
// context cancellation: a panic that escapes a worker tears down a
// whole serving process, so panics are reserved for tests. Because the
// check resolves the `panic` identifier through go/types it is immune
// to the grep gate's false positives (comments, string literals,
// methods named Panic) and false negatives (spacing, aliasing).
//
// The gate also covers the other "crash a prod process from a distance"
// hazard the grep version special-cased: importing net/http/pprof,
// which silently registers debug handlers on http.DefaultServeMux.
// Sanctioned sites (remedyctl's opt-in -pprof server) carry a
// //lint:allow panicgate directive instead of a grep exclusion.
var PanicGate = &analysis.Analyzer{
	Name: "panicgate",
	Doc: "forbids panic() calls and net/http/pprof imports in non-test library, " +
		"command, and example code; the failure contract is sentinel errors and " +
		"context cancellation",
	AppliesTo: func(path string) bool {
		return isUnder(path, "internal") || isUnder(path, "cmd") || isUnder(path, "examples")
	},
	Run: runPanicGate,
}

func runPanicGate(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "net/http/pprof" {
				pass.Report(imp.Pos(),
					"import of net/http/pprof registers debug handlers on the default mux; sanctioned sites need //lint:allow panicgate")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Pkg.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Report(call.Pos(),
					"panic call in non-test code; return a sentinel error (and let workers recover into core.WorkerPanicError)")
			}
			return true
		})
	}
}
