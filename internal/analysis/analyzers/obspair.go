package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// ObsPair enforces the span-balancing contract of the observability
// layer: every span begun with obs.StartSpan is ended on all return
// paths, otherwise traces report phantom unfinished work and the
// per-span timing data the experiment harness relies on goes missing.
//
// The check is a source-order approximation of the full control-flow
// question (computable without SSA): within one function body,
//
//   - a span discarded at the call site (`ctx, _ := obs.StartSpan`)
//     can never be ended and is always flagged;
//   - a span with a `defer sp.End()` (directly, or via a deferred
//     closure that ends it) is always fine;
//   - otherwise every `return` after the StartSpan must be preceded —
//     between the start and the return — by an End of that span,
//     either directly or by calling a local closure that ends it (the
//     loop-scoped `endLevel()` pattern in core/identify);
//   - passing the span to another function (`defer finishSpan(sp, …)`)
//     counts as an End when that same-package callee ends the
//     corresponding parameter; callees the analyzer cannot see into
//     (other packages, interface methods) are assumed to take over
//     responsibility;
//   - a span that escapes the function — stored into a struct field or
//     element, placed in a composite literal, returned, or sent on a
//     channel — is an ownership handoff, not a leak: whoever drains
//     the carrier ends it (the steal-result span-graft pattern, where
//     a worker's spans ride a result struct back to the origin node's
//     tracer).
//
// Function literals are separate scopes: spans started inside a
// closure must be balanced inside it. Deliberate exceptions (a span
// handed off to another goroutine for ending) carry
// //lint:allow obspair with a justification.
var ObsPair = &analysis.Analyzer{
	Name: "obspair",
	Doc:  "every obs.StartSpan span is ended on all return paths (defer, direct End, or an ending closure)",
	Run:  runObsPair,
}

func runObsPair(pass *analysis.Pass) {
	// Index this package's function declarations so span handoffs to
	// same-package helpers can be followed one level deep.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.Pkg.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkSpanBalance(pass, n.Body, decls)
				}
			case *ast.FuncLit:
				checkSpanBalance(pass, n.Body, decls)
			}
			return true
		})
	}
}

type spanStart struct {
	obj types.Object
	pos token.Pos
}

// checkSpanBalance analyzes one function body. Nested function
// literals are skipped (each gets its own invocation) except where
// they define local closures whose bodies may end spans on behalf of
// the enclosing function.
func checkSpanBalance(pass *analysis.Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl) {
	var starts []spanStart

	// Pass 1: find StartSpan assignments and local closure
	// definitions at this nesting level.
	closures := make(map[types.Object]*ast.FuncLit)
	walkSkipFuncLit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		if len(as.Rhs) == 1 {
			if lit, ok := as.Rhs[0].(*ast.FuncLit); ok && len(as.Lhs) == 1 {
				if obj := objectFor(pass, as.Lhs[0]); obj != nil {
					closures[obj] = lit
				}
				return
			}
		}
		if len(as.Rhs) != 1 || len(as.Lhs) != 2 || !isStartSpanCall(pass, as.Rhs[0]) {
			return
		}
		spanIdent, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return
		}
		if spanIdent.Name == "_" {
			pass.Report(as.Pos(), "span from obs.StartSpan discarded; keep it and End it on every return path")
			return
		}
		if obj := objectFor(pass, spanIdent); obj != nil {
			starts = append(starts, spanStart{obj: obj, pos: as.Pos()})
		}
	})
	if len(starts) == 0 {
		return
	}

	// Pass 1.5: spans that escape this function hand ownership to
	// whoever holds the escaped reference — ending them here would be a
	// double-End. Escapes are: assignment into a field or element,
	// appearance in a composite literal, being returned, or a channel
	// send.
	escaped := make(map[types.Object]bool)
	walkSkipFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return // multi-value call form: RHS is a call, nothing escapes
			}
			for i, rhs := range n.Rhs {
				obj := objectFor(pass, rhs)
				if obj == nil {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escaped[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if obj := objectFor(pass, r); obj != nil {
					escaped[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := objectFor(pass, n.Value); obj != nil {
				escaped[obj] = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := objectFor(pass, e); obj != nil {
					escaped[obj] = true
				}
			}
		}
	})

	// endsSpan reports whether the statement-level node ends obj:
	// obj.End(), a call to a local closure whose body ends obj, or a
	// function literal (deferred) containing obj.End().
	endsSpan := func(n ast.Node, obj types.Object) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isEndCallOn(pass, n, obj) {
				return true
			}
			if callee := objectForExpr(pass, n.Fun); callee != nil {
				if lit, ok := closures[callee]; ok && containsEndOf(pass, lit.Body, obj) {
					return true
				}
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok { // defer func(){...}()
				return containsEndOf(pass, lit.Body, obj)
			}
			// Span handed to another function as an argument.
			for i, arg := range n.Args {
				if objectFor(pass, arg) == obj {
					return calleeEndsParam(pass, decls, n, i)
				}
			}
		}
		return false
	}

	for _, st := range starts {
		if escaped[st.obj] {
			continue
		}
		deferred := false
		var endPositions []token.Pos
		walkSkipFuncLit(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if endsSpan(n.Call, st.obj) {
					deferred = true
				}
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && endsSpan(call, st.obj) {
					endPositions = append(endPositions, n.Pos())
				}
			}
		})
		if deferred {
			continue
		}
		if len(endPositions) == 0 {
			pass.Report(st.pos, "span %s is never ended; add defer %s.End()", st.obj.Name(), st.obj.Name())
			continue
		}
		// Every return after the start needs an End between them.
		walkSkipFuncLit(body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() <= st.pos {
				return
			}
			for _, ep := range endPositions {
				if ep > st.pos && ep < ret.Pos() {
					return
				}
			}
			pass.Report(ret.Pos(),
				"return without ending span %s started at line %d; prefer defer %s.End()",
				st.obj.Name(), pass.Pkg.Fset.Position(st.pos).Line, st.obj.Name())
		})
	}
}

// calleeEndsParam reports whether the function called by call ends the
// parameter receiving argument argIdx. Callees outside the package (or
// otherwise invisible) are assumed to take over End responsibility.
func calleeEndsParam(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr, argIdx int) bool {
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = pass.Pkg.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		callee = pass.Pkg.TypesInfo.Uses[fun.Sel]
	}
	decl, ok := decls[callee]
	if !ok || decl.Body == nil {
		return true // invisible callee: treat as a deliberate handoff
	}
	var params []types.Object
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			params = append(params, nil) // unnamed: cannot be ended
			continue
		}
		for _, name := range field.Names {
			params = append(params, pass.Pkg.TypesInfo.Defs[name])
		}
	}
	if len(params) == 0 {
		return true
	}
	// Variadic tail: arguments beyond the last parameter map onto it.
	if argIdx >= len(params) {
		argIdx = len(params) - 1
	}
	pobj := params[argIdx]
	return pobj != nil && containsEndOf(pass, decl.Body, pobj)
}

// walkSkipFuncLit walks the statements of body without descending
// into nested function literals (which are independent span scopes).
func walkSkipFuncLit(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isStartSpanCall reports whether e is a call to
// <module>/internal/obs.StartSpan.
func isStartSpanCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	return ok && isUnder(pn.Imported().Path(), "internal", "obs")
}

// isEndCallOn reports whether call is obj.End().
func isEndCallOn(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	return objectForExpr(pass, sel.X) == obj
}

// containsEndOf reports whether any node under root calls obj.End().
func containsEndOf(pass *analysis.Pass, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCallOn(pass, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// objectFor resolves an identifier expression to its object, covering
// both definitions (`:=`) and plain assignments (`=`).
func objectFor(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Pkg.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.TypesInfo.Uses[id]
}

// objectForExpr resolves a plain identifier expression (not
// selectors) to its object.
func objectForExpr(pass *analysis.Pass, e ast.Expr) types.Object {
	return objectFor(pass, e)
}
