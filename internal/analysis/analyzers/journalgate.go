package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Journalgate encodes the PR 5 durability contract the way obspair
// encodes span pairing: in internal/serve and internal/cluster, every
// job state transition must reach a durable journal append before the
// transition becomes observable (the HTTP response, the job's done
// channel, a steal acknowledgment). A transition acknowledged before
// it is journaled is exactly the crash window PR 5 exists to close: a
// restart would re-run (or silently drop) work whose submitter was
// already answered.
//
// Recognized transitions:
//
//   - calls to a method named finishLocked (the single choke point
//     serve routes terminal transitions through), and
//   - direct assignments to a `state` field of any struct that also
//     declares finishLocked (the in-flight transitions: queued ->
//     stolen, queued -> running).
//
// A journal event is any synchronous call that — directly or down the
// call graph — reaches a method named Append or AppendReplicated on a
// type in internal/durable.
//
// The check is a source-order approximation of the per-return-path
// question: every transition needs a journal event earlier in the same
// function body. finishLocked itself is exempt (it is the mechanism,
// not a policy decision), and replay/recovery paths that reconstruct
// state FROM the journal waive with //lint:allow journalgate and a
// justification.
var Journalgate = &analysis.Analyzer{
	Name: "journalgate",
	Doc: "every job state transition in serve/cluster must reach a durable " +
		"journal append earlier in the same function (journal before acknowledge)",
	AppliesTo: func(path string) bool {
		return isUnder(path, "internal", "serve") ||
			isUnder(path, "internal", "cluster") ||
			isUnder(path, "src", "journalgate")
	},
	NeedsProgram: true,
	Run:          runJournalgate,
}

func runJournalgate(pass *analysis.Pass) {
	prog := pass.Prog
	for _, fn := range prog.Nodes {
		if fn.Pkg != pass.Pkg || fn.Obj.Name() == "finishLocked" {
			continue
		}
		// Journal-event positions, in source order.
		var journaled []token.Pos
		for _, cs := range fn.Calls {
			if cs.Async {
				continue
			}
			if _, ok := journalPrimitive(cs); ok {
				journaled = append(journaled, cs.Pos)
				continue
			}
			for _, t := range cs.Targets {
				if prog.ReachVia("journalgate", t, journalPrimitive) != nil {
					journaled = append(journaled, cs.Pos)
					break
				}
			}
		}
		journaledBefore := func(n ast.Node) bool {
			for _, j := range journaled {
				if j < n.Pos() {
					return true
				}
			}
			return false
		}
		// Transition 1: finishLocked calls.
		for _, cs := range fn.Calls {
			if cs.Async || cs.Callee == nil || cs.Callee.Name() != "finishLocked" {
				continue
			}
			if !journaledBefore(cs.Call) {
				pass.Report(cs.Pos, "state transition (finishLocked) with no durable journal append earlier in this function; journal before acknowledging (PR 5 contract) or waive with //lint:allow journalgate")
			}
		}
		// Transition 2: direct `x.state = v` assignments on
		// finishLocked-bearing structs.
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "state" {
					continue
				}
				tv, ok := fn.Pkg.TypesInfo.Types[sel.X]
				if !ok || !hasFinishLocked(tv.Type, fn.Pkg) {
					continue
				}
				if !journaledBefore(as) {
					pass.Report(as.Pos(), "direct state transition (.state assignment) with no durable journal append earlier in this function; journal before acknowledging (PR 5 contract) or waive with //lint:allow journalgate")
				}
			}
			return true
		})
	}
}

// journalPrimitive matches the durable journal's append entry points.
func journalPrimitive(cs *analysis.CallSite) (string, bool) {
	if cs.Callee == nil {
		return "", false
	}
	name := cs.Callee.Name()
	if name != "Append" && name != "AppendReplicated" {
		return "", false
	}
	sig, ok := cs.Callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if isUnder(named.Obj().Pkg().Path(), "internal", "durable") {
		return "durable journal append (" + named.Obj().Name() + "." + name + ")", true
	}
	return "", false
}

// hasFinishLocked reports whether t (or *t) declares a finishLocked
// method.
func hasFinishLocked(t types.Type, pkg *analysis.Package) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.(*types.Named); !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pkg.Types, "finishLocked")
	_, ok := obj.(*types.Func)
	return ok
}
