package analyzers

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// WriteGraph dumps the interprocedural view the NeedsProgram analyzers
// share — a call-graph summary, every interned lock class, and the
// observed lock-order edges — in deterministic order. It backs
// remedylint's -graph flag: the debugging surface for "why did
// lockorder (or heldcall) think that", showing the evidence without
// having to re-derive it from findings.
func WriteGraph(w io.Writer, prog *analysis.Program) error {
	var calls, async, deferred, iface, dynamic, sends, gos int
	for _, fn := range prog.Nodes {
		gos += len(fn.Gos)
		for _, cs := range fn.Calls {
			calls++
			if cs.Async {
				async++
			}
			if cs.Deferred {
				deferred++
			}
			switch cs.Kind {
			case analysis.CallInterface:
				iface++
			case analysis.CallDynamic:
				dynamic++
			case analysis.CallSend:
				sends++
			}
		}
	}
	if _, err := fmt.Fprintf(w,
		"callgraph: %d functions, %d call sites (%d async, %d deferred, %d interface, %d dynamic, %d unbuffered-send), %d go statements\n",
		len(prog.Nodes), calls, async, deferred, iface, dynamic, sends, gos); err != nil {
		return err
	}

	// Lock classes: every mutex the lock-set layer saw acquired, with
	// how many functions hold it somewhere.
	holders := map[*analysis.LockClass]map[*analysis.FuncNode]bool{}
	for _, fn := range prog.Nodes {
		for _, r := range prog.LockRegions(fn) {
			if holders[r.Class] == nil {
				holders[r.Class] = map[*analysis.FuncNode]bool{}
			}
			holders[r.Class][fn] = true
		}
	}
	classes := make([]*analysis.LockClass, 0, len(holders))
	for c := range holders {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Key < classes[j].Key })
	if _, err := fmt.Fprintf(w, "lock classes: %d\n", len(classes)); err != nil {
		return err
	}
	for _, c := range classes {
		kind := "sync.Mutex"
		if c.RW {
			kind = "sync.RWMutex"
		}
		if _, err := fmt.Fprintf(w, "  %-40s %-12s held in %d function(s)\n",
			c.Key, kind, len(holders[c])); err != nil {
			return err
		}
	}

	// Lock-order edges, from the same cached computation lockorder
	// reports from, each with its witness site.
	v := prog.Cache("lockorder.result", func() any { return computeLockorder(prog) })
	res, ok := v.(*lockorderResult)
	if !ok || res == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "lock-order edges: %d\n", len(res.keys)); err != nil {
		return err
	}
	for _, k := range res.keys {
		e := res.edges[k]
		p := e.fn.Pkg.Fset.Position(e.pos)
		marker := ""
		if e.readerPair {
			marker = " (reader pair)"
		}
		if _, err := fmt.Fprintf(w, "  %s -> %s%s at %s:%d (%s)\n",
			k[0].Key, k[1].Key, marker, filepath.Base(p.Filename), p.Line, e.fn.Name()); err != nil {
			return err
		}
	}
	return nil
}
