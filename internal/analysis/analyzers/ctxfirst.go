package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CtxFirst enforces the context-threading contract from the
// cancellation PR: cancellation flows through explicit
// context.Context parameters, always in first position (the `*Ctx`
// naming convention marks the cancellable variants), and never hides
// in struct fields where its lifetime detaches from the call tree.
// Three rules:
//
//   - any function, method, or interface method with a context.Context
//     parameter takes it first;
//   - an exported function or method named `...Ctx` must actually take
//     a context.Context (first);
//   - no struct field may have type context.Context.
var CtxFirst = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters come first, exported *Ctx functions take " +
		"one, and contexts are never stored in struct fields",
	Run: runCtxFirst,
}

func runCtxFirst(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Name.Name, n.Type, n.Name.IsExported())
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok || len(m.Names) == 0 {
						continue
					}
					checkSignature(pass, m.Names[0].Name, ft, m.Names[0].IsExported())
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isContextType(typeOf(pass, field.Type)) {
						pass.Report(field.Pos(),
							"context.Context stored in a struct field detaches cancellation from the call tree; thread it through parameters instead")
					}
				}
			}
			return true
		})
	}
}

// typeOf is a tiny convenience over TypesInfo.
func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Pkg.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func checkSignature(pass *analysis.Pass, name string, ft *ast.FuncType, exported bool) {
	idx := 0
	ctxIdx := -1
	var ctxField *ast.Field
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if ctxIdx < 0 && isContextType(typeOf(pass, field.Type)) {
				ctxIdx = idx
				ctxField = field
			}
			idx += n
		}
	}
	if ctxIdx > 0 {
		pass.Report(ctxField.Pos(),
			"context.Context must be the first parameter of %s (found at position %d)", name, ctxIdx+1)
	}
	if exported && strings.HasSuffix(name, "Ctx") && ctxIdx != 0 {
		pass.Report(ft.Pos(),
			"exported %s is named *Ctx but does not take context.Context as its first parameter", name)
	}
}

// isContextType reports whether t is exactly the named type
// context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
