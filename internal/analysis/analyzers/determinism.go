package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Determinism encodes the paper-level reproducibility requirement: the
// identify/remedy pipeline must regenerate bit-identically from a
// seed, so library packages may not reach for ambient entropy. Three
// things are flagged in library (internal/) code:
//
//   - importing math/rand (or v2): random sources are constructed only
//     by internal/stats.NewRNG and threaded through explicitly.
//     Packages that merely consume an injected *rand.Rand waive the
//     import with //lint:allow determinism and a justification.
//   - package-level math/rand functions and time.Now: ambient
//     process-global entropy and wall-clock reads.
//   - emitting output while ranging over a map: Go map iteration order
//     is deliberately randomized, so any print/write inside such a
//     loop produces run-dependent output; sort the keys first.
//
// internal/stats (the sanctioned RNG home) and internal/obs (the
// observability layer, whose entire job is reading the wall clock) are
// exempt by construction.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbids math/rand, time.Now, and map-iteration-ordered output in " +
		"library packages outside internal/stats and internal/obs; sampling " +
		"goes through seeded RNGs from internal/stats",
	AppliesTo: func(path string) bool {
		return isUnder(path, "internal") &&
			!isUnder(path, "internal", "stats") &&
			!isUnder(path, "internal", "obs")
	},
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Report(imp.Pos(),
					"import of "+p+" in deterministic library code; construct RNGs with internal/stats.NewRNG (type-only consumers waive with //lint:allow)")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				pkgPath := obj.Pkg().Path()
				// Package-scope functions/variables only: methods on an
				// injected *rand.Rand are the sanctioned pattern, and
				// naming the types rand.Rand / rand.Source in a
				// signature is how injection is spelled.
				if obj.Parent() != obj.Pkg().Scope() {
					return true
				}
				switch obj.(type) {
				case *types.Func, *types.Var:
				default:
					return true
				}
				switch pkgPath {
				case "math/rand", "math/rand/v2":
					pass.Report(n.Pos(),
						"use of package-level "+pkgPath+"."+obj.Name()+" draws from ambient process entropy; thread a seeded *rand.Rand from internal/stats")
				case "time":
					if obj.Name() == "Now" {
						pass.Report(n.Pos(),
							"call to time.Now in deterministic library code; wall-clock reads belong in internal/obs or behind //lint:allow")
					}
				}
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
}

// checkMapRangeOutput flags print/write calls whose output order is
// dictated by map iteration.
func checkMapRangeOutput(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := outputCallName(pass, call); ok {
			pass.Report(call.Pos(),
				"call to "+name+" inside range over map emits output in nondeterministic order; collect and sort the keys first")
		}
		return true
	})
}

// outputCallName reports whether call emits ordered output: the fmt
// print family, or a Write/WriteString/WriteByte/WriteRune/Print*
// method on any receiver.
func outputCallName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// fmt.Print / fmt.Fprintf / ...
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	// Writer-ish methods on any value.
	if pass.Pkg.TypesInfo.Selections[sel] == nil {
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		return "(method) " + sel.Sel.Name, true
	}
	return "", false
}
