package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// ErrDiscard enforces the checked-error half of the failure contract:
// library code neither discards error returns with a blank identifier
// nor drops them on the floor as bare call statements. Two shapes are
// flagged in internal/ packages:
//
//   - `_ = f()` / `v, _ := f()` where the blank slot holds an error;
//   - `f()`, `defer f()`, `go f()` where f returns an error nobody
//     reads.
//
// Writes that cannot meaningfully fail are exempt, since forcing
// checks there produces ritual, not safety: methods on *bytes.Buffer
// and *strings.Builder and writes to hash.Hash are documented to never
// return an error, and *tabwriter.Writer buffers everything until the
// (checked) Flush. fmt.Fprint* into any of these is likewise exempt.
// Intentional discards (best-effort writes to an already-doomed HTTP
// client, say) carry //lint:allow errdiscard with a justification.
var ErrDiscard = &analysis.Analyzer{
	Name: "errdiscard",
	Doc: "forbids `_ =` discards of error returns and unchecked error results " +
		"in library code; best-effort sites waive with //lint:allow",
	AppliesTo: func(path string) bool { return isUnder(path, "internal") },
	Run:       runErrDiscard,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrDiscard(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.ExprStmt:
				checkDroppedCall(pass, n.X, "")
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, "goroutine ")
			}
			return true
		})
	}
}

// checkBlankAssign flags blank identifiers absorbing error values.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(as.Rhs) == len(as.Lhs):
			t = typeOf(pass, as.Rhs[i])
		case len(as.Rhs) == 1:
			// Multi-value call (or comma-ok, whose second component is
			// bool, not error, and so never flags).
			if tuple, ok := typeOf(pass, as.Rhs[0]).(*types.Tuple); ok && i < tuple.Len() {
				t = tuple.At(i).Type()
			}
		}
		if t != nil && types.Identical(t, errorType) && !isExemptCall(pass, as.Rhs[min(i, len(as.Rhs)-1)]) {
			pass.Report(id.Pos(), "error result discarded via blank identifier; handle it or waive with //lint:allow errdiscard")
		}
	}
}

// checkDroppedCall flags statement-position calls whose error results
// vanish.
func checkDroppedCall(pass *analysis.Pass, e ast.Expr, kind string) {
	call, ok := e.(*ast.CallExpr)
	if !ok || !resultsContainError(pass, call) || isExemptCall(pass, call) {
		return
	}
	pass.Report(call.Pos(), "unchecked error result from %scall to %s", kind, types.ExprString(call.Fun))
}

func resultsContainError(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch t := typeOf(pass, call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
	case types.Type:
		return types.Identical(t, errorType)
	}
	return false
}

// isExemptCall recognizes the never-fails writers: methods on
// *bytes.Buffer / *strings.Builder / *tabwriter.Writer / hash.Hash,
// and fmt.Fprint* whose destination is one of those.
func isExemptCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s := pass.Pkg.TypesInfo.Selections[sel]; s != nil {
		return isInfallibleWriter(s.Recv())
	}
	// Package-qualified call: fmt.Fprint* into an infallible writer.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) > 0 {
					return isInfallibleWriter(typeOf(pass, call.Args[0]))
				}
			}
		}
	}
	return false
}

func isInfallibleWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	case "hash.Hash": // Write is documented to never return an error
		return true
	case "text/tabwriter.Writer": // buffers until the (checked) Flush
		return true
	}
	return false
}
