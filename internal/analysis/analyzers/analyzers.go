// Package analyzers holds the remedylint analyzer suite: the
// machine-checked form of this repository's correctness contracts.
// Each analyzer is a small, self-contained check over one type-checked
// package; the framework in internal/analysis handles loading,
// //lint:allow suppression, baselines, and reporting.
package analyzers

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// All returns the full suite in stable name order.
func All() []*analysis.Analyzer {
	suite := []*analysis.Analyzer{
		CtxFirst,
		Determinism,
		ErrDiscard,
		Goroleak,
		Heldcall,
		Journalgate,
		Lockorder,
		ObsPair,
		PanicGate,
	}
	sort.Slice(suite, func(i, j int) bool { return suite[i].Name < suite[j].Name })
	return suite
}

// Select resolves a comma-separated analyzer list ("panicgate,ctxfirst"
// or "all") against the suite.
func Select(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" || spec == "all" {
		return All(), nil
	}
	byName := make(map[string]*analysis.Analyzer)
	var names []string
	for _, a := range All() {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (available: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// isUnder reports whether the consecutive path elements elems appear
// somewhere in the slash-separated import path. isUnder("repro/internal/stats",
// "internal", "stats") is true; matching is element-bounded, so
// "internal/statsx" does not match ("internal", "stats").
func isUnder(path string, elems ...string) bool {
	parts := strings.Split(path, "/")
	if len(elems) == 0 || len(elems) > len(parts) {
		return false
	}
outer:
	for i := 0; i+len(elems) <= len(parts); i++ {
		for j, e := range elems {
			if parts[i+j] != e {
				continue outer
			}
		}
		return true
	}
	return false
}
