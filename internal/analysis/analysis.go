// Package analysis is a from-scratch static-analysis framework built
// entirely on the Go standard library (go/parser, go/ast, go/types,
// go/importer — no golang.org/x/tools). It exists to machine-check the
// correctness contracts this repository's reproducibility story rests
// on: panic-free library code, seeded-RNG-only randomness, context
// threading, checked errors, and balanced observability spans.
//
// The moving parts:
//
//   - Loader parses and type-checks every package in the module,
//     resolving module-local imports itself and standard-library
//     imports through the source importer.
//   - An Analyzer inspects one type-checked Package at a time and
//     reports Diagnostics through a Pass.
//   - //lint:allow <analyzer> <justification> comments suppress a
//     finding on the same or the following line.
//   - A Baseline file grandfathers pre-existing findings so the gate
//     only fails on new ones.
//   - Reporters render surviving findings as text or JSON.
//
// The cmd/remedylint binary wires these together as the CI gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Severity classifies a finding. Every contract analyzer in this
// repository reports SeverityError; SeverityWarning is reserved for
// advisory checks (for example a //lint:allow with no justification).
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding: where, which analyzer, what, how bad.
type Diagnostic struct {
	// Pos locates the finding. File is as reported by the loader
	// (absolute or loader-relative); reporters rewrite it relative to
	// the module root.
	Pos      token.Position
	Analyzer string
	Message  string
	Severity Severity
}

// String renders the canonical single-line form used by the text
// reporter and by tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed and type-checked package of the module under
// analysis. Test files (_test.go) are excluded: the repository's
// contracts govern library and command code, and tests are explicitly
// free to panic, sleep, and read the clock.
type Package struct {
	// Path is the package's import path (module path + directory),
	// e.g. "repro/internal/remedy".
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types and TypesInfo carry the go/types results. Types is non-nil
	// even when type-checking reported errors (partial information).
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects soft type-checking errors. Analyzers run
	// over partially-checked packages; the driver surfaces these
	// separately so a broken tree does not silently pass the gate.
	TypeErrors []error
}

// Pass is the per-(analyzer, package) reporting context handed to an
// Analyzer's Run function.
type Pass struct {
	Pkg *Package
	// Prog is the module-wide call graph and lock-set view, shared by
	// every pass of one run. Non-nil only when at least one selected
	// analyzer sets NeedsProgram; analyzers that set it may assume it.
	Prog     *Program
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Report files a finding at pos with the analyzer's default severity.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Severity: SeverityError,
	})
}

// Analyzer is one named check. Run inspects pass.Pkg and calls
// pass.Report for each finding. Analyzers must be stateless across
// packages: the driver may run them in any order.
type Analyzer struct {
	// Name is the identifier used by -analyzers, //lint:allow and the
	// baseline file. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo means every package.
	AppliesTo func(pkgPath string) bool
	// NeedsProgram requests the module-wide interprocedural view: when
	// set, the driver builds one Program over all loaded packages and
	// hands it to every pass as Pass.Prog.
	NeedsProgram bool
	// Run performs the check.
	Run func(*Pass)
}
