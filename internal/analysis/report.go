package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders the result in the conventional compiler-style
// file:line:col format, findings first, then warnings, then a one-line
// summary. It is the human-facing reporter.
func WriteText(w io.Writer, res *Result) error {
	for _, f := range res.Findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	for _, f := range res.Warnings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s (warning): %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message); err != nil {
			return err
		}
	}
	for _, e := range res.TypeErrors {
		if _, err := fmt.Fprintf(w, "typecheck: %s\n", e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "remedylint: %d finding(s), %d warning(s), %d suppressed, %d baselined\n",
		len(res.Findings), len(res.Warnings), res.Suppressed, res.Baselined)
	return err
}

// jsonReport is the versioned machine-readable artifact format. Future
// tooling (dashboards, ratchets, PR annotations) consumes this rather
// than scraping the text output.
type jsonReport struct {
	Version int `json:"version"`
	*Result
}

// WriteJSON renders the result as the versioned JSON artifact.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Version: 1, Result: res})
}
