package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module under t.TempDir: files
// maps module-relative paths to contents, and a go.mod naming the
// module "scratch" is added unless files provides one. The test
// modules import nothing so no standard-library type-checking runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module scratch\n\ngo 1.22\n"
	}
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
	return dir
}

func TestNewLoaderNoModule(t *testing.T) {
	// A bare directory tree with no go.mod anywhere above it. TempDir
	// lives under the system temp root, which has none.
	dir := t.TempDir()
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "no go.mod found") {
		t.Fatalf("NewLoader on module-less dir: err = %v, want no-go.mod error", err)
	}
}

func TestNewLoaderNoModuleDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "// a go.mod with no module line\ngo 1.22\n",
	})
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "no module directive") {
		t.Fatalf("NewLoader: err = %v, want missing-module-directive error", err)
	}
}

func TestLoadUnparseableFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/ok.go":     "package p\n\nfunc OK() {}\n",
		"p/broken.go": "package p\n\nfunc Broken() { this is not go\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = l.Load(filepath.Join(dir, "p"))
	if err == nil || !strings.Contains(err.Error(), "analysis: parse:") {
		t.Fatalf("Load with syntax error: err = %v, want hard parse error", err)
	}
}

// A type error mid-package is soft: the package still loads (with
// partial type information) and the failures land in TypeErrors, so
// analyzers can run on the healthy files.
func TestLoadTypeErrorIsSoft(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/ok.go":  "package p\n\nfunc OK() int { return 1 }\n",
		"p/bad.go": "package p\n\nfunc Bad() int { return undefinedName }\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join(dir, "p"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("TypeErrors empty; the undefined reference should be recorded")
	}
	if pkg.Types == nil {
		t.Fatal("Types nil; Check should return the partial package on soft errors")
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("Files = %d, want both files parsed", len(pkg.Files))
	}
	var found bool
	for _, te := range pkg.TypeErrors {
		if strings.Contains(te.Error(), "undefinedName") {
			found = true
		}
	}
	if !found {
		t.Fatalf("TypeErrors %v do not mention undefinedName", pkg.TypeErrors)
	}
}

func TestLoadNoBuildableFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/only_test.go": "package p\n",
		"p/notes.txt":    "not go\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = l.Load(filepath.Join(dir, "p"))
	if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
		t.Fatalf("Load on test-only dir: err = %v, want no-buildable-files error", err)
	}
}

// An import cycle is detected by the in-progress marker and surfaces
// as a soft type error on the package whose import closes the loop —
// the loader itself must not recurse forever or crash.
func TestLoadImportCycle(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport _ \"scratch/b\"\n",
		"b/b.go": "package b\n\nimport _ \"scratch/a\"\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var cycle bool
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			if strings.Contains(te.Error(), "import cycle") {
				cycle = true
			}
		}
	}
	if !cycle {
		t.Fatalf("no package recorded the import cycle; packages: %v", pkgs)
	}
}

// The recursive pattern walks every package directory but skips
// testdata, vendor, hidden and underscore directories.
func TestLoadRecursiveSkipsNonPackageDirs(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/p.go":               "package p\n",
		"p/q/q.go":             "package q\n",
		"p/testdata/t.go":      "package broken ???\n",
		"p/vendor/v.go":        "package v\n",
		"p/.hidden/h.go":       "package h\n",
		"p/_underscore/u.go":   "package u\n",
		"p/empty/.placeholder": "",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join(dir, "p") + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, pkg := range pkgs {
		paths = append(paths, pkg.Path)
	}
	want := []string{"scratch/p", "scratch/p/q"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("recursive load found %v, want %v", paths, want)
	}
}
