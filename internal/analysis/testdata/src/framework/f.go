// Package framework exercises the analysis driver itself: inline
// suppression, justification and staleness warnings, and baseline
// matching. The tests run a stub analyzer that flags every function
// whose name starts with Flag.
package framework

func FlagMe() int { return 1 }

//lint:allow stub waived with a justification
func FlagWaived() int { return 2 }

func FlagInline() int { return 3 } //lint:allow stub

//lint:allow stub nothing on the next line triggers, so this is stale
func Quiet() int { return 4 }

//lint:allow
func Malformed() int { return 5 }

//lint:allow otherstub directives for analyzers outside the run are ignored
func FlagOther() int { return 6 }
