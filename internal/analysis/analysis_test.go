package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stub flags every function whose name starts with Flag; the fixture
// package in testdata/src/framework exercises the driver around it.
var stub = &Analyzer{
	Name: "stub",
	Doc:  "flags functions whose names start with Flag",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
					pass.Report(fd.Pos(), "function %s is flagged", fd.Name.Name)
				}
			}
		}
	},
}

// loadFramework loads the driver fixture package.
func loadFramework(t *testing.T) ([]*Package, *Loader) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "framework"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("fixture type error: %v", e)
		}
	}
	return pkgs, loader
}

func TestDriverSuppressionAndWarnings(t *testing.T) {
	pkgs, loader := loadFramework(t)
	res := Run(pkgs, []*Analyzer{stub}, nil, loader.ModuleDir)

	var msgs []string
	for _, f := range res.Findings {
		msgs = append(msgs, f.Message)
	}
	want := []string{"function FlagMe is flagged", "function FlagOther is flagged"}
	if len(msgs) != len(want) || msgs[0] != want[0] || msgs[1] != want[1] {
		t.Errorf("findings = %v, want %v", msgs, want)
	}
	if res.Suppressed != 2 {
		t.Errorf("Suppressed = %d, want 2 (justified + inline directives)", res.Suppressed)
	}
	if res.Baselined != 0 {
		t.Errorf("Baselined = %d, want 0", res.Baselined)
	}

	wantWarn := []string{
		"//lint:allow stub has no justification",
		"unused //lint:allow stub",
		"malformed //lint:allow: missing analyzer name",
	}
	if len(res.Warnings) != len(wantWarn) {
		t.Fatalf("Warnings = %v, want %d warnings", res.Warnings, len(wantWarn))
	}
	for _, sub := range wantWarn {
		found := false
		for _, w := range res.Warnings {
			found = found || strings.Contains(w.Message, sub)
		}
		if !found {
			t.Errorf("no warning containing %q in %v", sub, res.Warnings)
		}
	}
}

func TestBaselineSelective(t *testing.T) {
	pkgs, loader := loadFramework(t)
	clean := Run(pkgs, []*Analyzer{stub}, nil, loader.ModuleDir)
	if len(clean.Findings) != 2 {
		t.Fatalf("precondition: %d findings, want 2", len(clean.Findings))
	}

	// Grandfather only the first finding; the second must survive.
	b := &Baseline{Version: 1, Findings: []BaselineEntry{{
		Analyzer: clean.Findings[0].Analyzer,
		File:     clean.Findings[0].File,
		Message:  clean.Findings[0].Message,
		Count:    1,
	}}}
	res := Run(pkgs, []*Analyzer{stub}, b, loader.ModuleDir)
	if res.Baselined != 1 || len(res.Findings) != 1 {
		t.Fatalf("Baselined = %d, Findings = %v; want 1 baselined and 1 live", res.Baselined, res.Findings)
	}
	if res.Findings[0].Message != clean.Findings[1].Message {
		t.Errorf("surviving finding = %q, want %q", res.Findings[0].Message, clean.Findings[1].Message)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	pkgs, loader := loadFramework(t)
	clean := Run(pkgs, []*Analyzer{stub}, nil, loader.ModuleDir)

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(clean.Findings).WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	res := Run(pkgs, []*Analyzer{stub}, b, loader.ModuleDir)
	if len(res.Findings) != 0 || res.Baselined != len(clean.Findings) {
		t.Errorf("after round-trip: Findings = %v, Baselined = %d; want none and %d",
			res.Findings, res.Baselined, len(clean.Findings))
	}
}

func TestBaselineCountSemantics(t *testing.T) {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "a", File: "f.go", Message: "m", Count: 2},
	}}
	match := b.matcher()
	if !match("a", "f.go", "m") || !match("a", "f.go", "m") {
		t.Fatal("first two occurrences must be absorbed by Count: 2")
	}
	if match("a", "f.go", "m") {
		t.Fatal("third occurrence must escape the exhausted baseline entry")
	}
	if match("a", "other.go", "m") {
		t.Fatal("baseline entries must not match across files")
	}
}

func TestNewBaselineMergesDuplicates(t *testing.T) {
	b := NewBaseline([]Finding{
		{File: "f.go", Line: 10, Analyzer: "a", Message: "m"},
		{File: "f.go", Line: 20, Analyzer: "a", Message: "m"},
		{File: "e.go", Line: 5, Analyzer: "a", Message: "m"},
	})
	if len(b.Findings) != 2 {
		t.Fatalf("entries = %d, want 2 (same file+message merged)", len(b.Findings))
	}
	// Sorted by file, so e.go first. A single occurrence leaves Count
	// at its zero value, which the matcher reads as 1.
	if b.Findings[0].File != "e.go" || b.Findings[0].Count != 0 {
		t.Errorf("entry 0 = %+v, want e.go with default count", b.Findings[0])
	}
	if b.Findings[1].File != "f.go" || b.Findings[1].Count != 2 {
		t.Errorf("entry 1 = %+v, want f.go count 2 (line numbers ignored)", b.Findings[1])
	}
}

func TestReadBaselineMissing(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline must read as empty, got error: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("missing baseline must have no findings, got %v", b.Findings)
	}
}

func TestLoadOutsideModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(os.TempDir()); err == nil {
		t.Fatal("loading a directory outside the module must fail")
	}
}

func TestReporters(t *testing.T) {
	res := &Result{
		Findings: []Finding{{
			File: "internal/x/x.go", Line: 3, Col: 2,
			Analyzer: "stub", Severity: SeverityError, Message: "function FlagMe is flagged",
		}},
		Suppressed: 1,
		Analyzers:  []string{"stub"},
	}

	var text bytes.Buffer
	if err := WriteText(&text, res); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"internal/x/x.go:3:2: stub: function FlagMe is flagged", "1 finding(s)"} {
		if !strings.Contains(text.String(), sub) {
			t.Errorf("text report missing %q:\n%s", sub, text.String())
		}
	}

	var raw bytes.Buffer
	if err := WriteJSON(&raw, res); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Version  int       `json:"version"`
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(raw.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if decoded.Version != 1 || len(decoded.Findings) != 1 || decoded.Findings[0] != res.Findings[0] {
		t.Errorf("JSON round-trip = %+v, want version 1 with the original finding", decoded)
	}
}
