package analysis

import (
	"go/token"
	"strings"
)

// AllowDirective is one parsed //lint:allow comment.
//
// Syntax:
//
//	//lint:allow <analyzer> <one-line justification>
//
// The directive suppresses findings of the named analyzer on the same
// line (trailing comment) or on the line directly below (preceding
// comment). The justification is required by convention; a directive
// without one still suppresses but is surfaced as a warning so empty
// waivers do not accumulate silently.
type AllowDirective struct {
	Pos           token.Position
	Analyzer      string
	Justification string
	// used is set by the driver when the directive suppressed at least
	// one finding; unused directives are reported as warnings so stale
	// waivers are cleaned up rather than rotting.
	used bool
}

const allowPrefix = "//lint:allow"

// collectAllows scans every comment of the packages for //lint:allow
// directives.
func collectAllows(pkgs []*Package) []*AllowDirective {
	var out []*AllowDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					d := &AllowDirective{Pos: pkg.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						d.Analyzer = fields[0]
						d.Justification = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// allowIndex answers "is this finding waived?" in O(1) per lookup.
type allowIndex map[string]map[int][]*AllowDirective // file -> line -> directives

func buildAllowIndex(allows []*AllowDirective) allowIndex {
	idx := make(allowIndex)
	for _, d := range allows {
		byLine := idx[d.Pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]*AllowDirective)
			idx[d.Pos.Filename] = byLine
		}
		byLine[d.Pos.Line] = append(byLine[d.Pos.Line], d)
	}
	return idx
}

// suppresses reports whether a directive waives a finding by analyzer
// name at file:line, checking the finding's own line and the line
// above. Matching directives are marked used.
func (idx allowIndex) suppresses(analyzer, file string, line int) bool {
	byLine := idx[file]
	if byLine == nil {
		return false
	}
	hit := false
	for _, candLine := range [2]int{line, line - 1} {
		for _, d := range byLine[candLine] {
			if d.Analyzer == analyzer {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}
