package analysis

// callgraph.go builds the module-wide call graph that upgrades the
// framework from per-function AST walking to interprocedural analysis.
// The graph is deliberately conservative and cheap:
//
//   - Static calls (package functions, concrete methods) resolve to
//     exactly the declared body.
//   - Interface method calls resolve to every module-local concrete
//     type whose method set satisfies the interface (method-set
//     dispatch; the usual sound over-approximation).
//   - Calls through function-typed variables, fields, and parameters
//     are recorded as dynamic and not traversed — a documented
//     soundness gap (e.g. the durable.Journal replication sink), kept
//     because chasing function values without SSA yields more noise
//     than signal.
//   - Function literals are not independent nodes: calls inside a
//     literal are attributed to the enclosing declared function, since
//     that is where they lexically execute. The two exceptions are
//     `go func(){…}` bodies (excluded from the enclosing function's
//     synchronous call list and recorded as GoSites instead) and
//     deferred literals (included, flagged Deferred).
//
// Lock-set analysis (lockset.go) and the interprocedural analyzers
// (lockorder, heldcall, goroleak, journalgate) are all built on this.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallKind classifies how a call site resolves.
type CallKind int

const (
	// CallStatic is a direct call to a declared function or concrete
	// method.
	CallStatic CallKind = iota
	// CallInterface is a method call through an interface value;
	// Targets holds every module-local implementation.
	CallInterface
	// CallDynamic is a call through a function value (variable, field,
	// parameter, closure). Not traversed.
	CallDynamic
	// CallSend is a pseudo-site for a channel send statement on a
	// channel locally provable unbuffered. Call and Callee are nil.
	CallSend
)

// CallSite is one call (or unbuffered-send pseudo-call) inside a
// declared function, in source order.
type CallSite struct {
	Caller *FuncNode
	// Call is the AST call expression; nil for CallSend.
	Call *ast.CallExpr
	Pos  token.Pos
	// Callee is the resolved function object when the callee is known
	// (static and interface calls), even when its body is outside the
	// analyzed packages. Nil for dynamic calls and sends.
	Callee *types.Func
	// Recv is the receiver expression for method calls (sel.X), used by
	// the lock-set layer to identify which mutex a Lock call is on.
	Recv ast.Expr
	// Targets are the module-local bodies this call may enter.
	Targets []*FuncNode
	Kind    CallKind
	// Async marks sites lexically inside a `go` statement launched by
	// this function: they do not run on the caller's stack and are
	// skipped by synchronous dataflow (lock regions, Reach).
	Async bool
	// Deferred marks sites inside a defer statement (directly or in a
	// deferred literal); they run at function exit.
	Deferred bool
	// SendUnbuffered is set on CallSend sites (the only sends recorded).
	SendUnbuffered bool
}

// GoSite is one `go` statement in a declared function.
type GoSite struct {
	Stmt *ast.GoStmt
	// Lit is the spawned closure for `go func(){…}()`; nil when the go
	// statement calls a named function or method.
	Lit *ast.FuncLit
	// Targets are the module-local bodies the spawned call may enter
	// (for `go fn()` / `go x.m()` forms). Empty with Lit == nil means
	// the spawn target is dynamic and cannot be inspected.
	Targets []*FuncNode
}

// FuncNode is a declared function or method with its outgoing edges.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists synchronous-and-deferred call sites plus unbuffered
	// send pseudo-sites, in source order. Sites inside `go` closures
	// carry Async and are excluded from synchronous traversals.
	Calls []*CallSite
	// Gos lists the function's `go` statements.
	Gos []*GoSite

	locks *funcLocks // computed lazily by lockset.go
}

// Name renders a stable display name: "pkg.Func" or "pkg.Type.Method".
func (n *FuncNode) Name() string {
	pkg := ""
	if p := n.Obj.Pkg(); p != nil {
		pkg = p.Name() + "."
	}
	if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return pkg + named.Obj().Name() + "." + n.Obj.Name()
		}
	}
	return pkg + n.Obj.Name()
}

// Program is the module-wide interprocedural view over one analysis
// run's packages. It is built once per run (when any selected analyzer
// sets NeedsProgram) and shared read-only by every pass; the driver is
// single-threaded, so lazy memoization needs no locking.
type Program struct {
	Pkgs []*Package
	// Nodes holds every declared function with a body, sorted by
	// position for deterministic iteration.
	Nodes []*FuncNode

	funcs map[*types.Func]*FuncNode
	named []*types.Named // module-local named types, for interface dispatch
	impls map[implKey][]*FuncNode
	reach map[string]map[*FuncNode]*Reach
	cache map[string]any
}

type implKey struct {
	iface  *types.Interface
	method string
}

// FuncFor returns the node for a resolved function object, or nil when
// the function has no analyzed body (stdlib, interface methods).
func (p *Program) FuncFor(obj *types.Func) *FuncNode { return p.funcs[obj] }

// Cache memoizes an analyzer-computed, program-wide result under key.
// Analyzers use it so whole-program answers (the lock-order graph, the
// goroutine-termination summary) are computed once, not once per pass.
func (p *Program) Cache(key string, build func() any) any {
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := build()
	p.cache[key] = v
	return v
}

// BuildProgram constructs the call graph over pkgs.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:  pkgs,
		funcs: make(map[*types.Func]*FuncNode),
		impls: make(map[implKey][]*FuncNode),
		reach: make(map[string]map[*FuncNode]*Reach),
		cache: make(map[string]any),
	}
	// Pass 1: a node per declared function with a body, plus the named
	// types needed for interface dispatch.
	for _, pkg := range pkgs {
		if pkg.Types != nil {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
					if named, ok := tn.Type().(*types.Named); ok {
						p.named = append(p.named, named)
					}
				}
			}
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				p.funcs[obj] = node
				p.Nodes = append(p.Nodes, node)
			}
		}
	}
	sort.Slice(p.named, func(i, j int) bool { return p.named[i].Obj().Pos() < p.named[j].Obj().Pos() })
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].Obj.Pos() < p.Nodes[j].Obj.Pos() })
	// Pass 2: walk bodies and resolve call sites.
	for _, node := range p.Nodes {
		w := &walker{p: p, node: node, unbuffered: unbufferedChans(node)}
		w.walkStmts(node.Decl.Body.List, false, false)
	}
	return p
}

// unbufferedChans collects local variables provably bound to unbuffered
// channels (`ch := make(chan T)` or cap 0) within one function body.
func unbufferedChans(node *FuncNode) map[types.Object]bool {
	out := map[types.Object]bool{}
	info := node.Pkg.TypesInfo
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "make" || len(call.Args) == 0 {
				continue
			}
			if _, ok := info.Types[call.Args[0]].Type.Underlying().(*types.Chan); !ok {
				continue
			}
			unbuf := len(call.Args) == 1
			if len(call.Args) == 2 {
				if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
					unbuf = true
				}
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && unbuf {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// walker attributes the calls in one declared function's body (and its
// non-go function literals) to that function's node.
type walker struct {
	p          *Program
	node       *FuncNode
	unbuffered map[types.Object]bool
}

func (w *walker) walkStmts(stmts []ast.Stmt, async, deferred bool) {
	for _, s := range stmts {
		w.walkNode(s, async, deferred)
	}
}

// walkNode descends n, recording call sites. GoStmt subtrees are
// re-walked with async set; DeferStmt subtrees with deferred set.
func (w *walker) walkNode(n ast.Node, async, deferred bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		site := &GoSite{Stmt: n}
		if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
			site.Lit = lit
		} else if callee := w.calleeOf(n.Call); callee != nil {
			site.Targets = w.targetsOf(n.Call, callee)
		}
		w.node.Gos = append(w.node.Gos, site)
		// The spawned call itself and everything inside the spawned
		// closure is asynchronous relative to this function.
		w.walkNode(n.Call, true, deferred)
		return
	case *ast.DeferStmt:
		w.walkNode(n.Call, async, true)
		return
	case *ast.FuncLit:
		// A literal reached here was neither immediately invoked nor
		// deferred nor go'd: it escapes (stored in a variable or field,
		// passed as a callback, returned) and runs at some later time
		// on some other stack. Its sites are recorded Async so the
		// synchronous analyses (lock regions, Reach) skip them — the
		// registry release-closure and expvar callback patterns.
		w.walkStmts(n.Body.List, true, deferred)
		return
	case *ast.SendStmt:
		w.walkNode(n.Chan, async, deferred)
		w.walkNode(n.Value, async, deferred)
		if id, ok := unparen(n.Chan).(*ast.Ident); ok {
			obj := w.node.Pkg.TypesInfo.Uses[id]
			if obj == nil {
				obj = w.node.Pkg.TypesInfo.Defs[id]
			}
			if obj != nil && w.unbuffered[obj] {
				w.node.Calls = append(w.node.Calls, &CallSite{
					Caller: w.node, Pos: n.Pos(), Kind: CallSend,
					Async: async, Deferred: deferred, SendUnbuffered: true,
				})
			}
		}
		return
	case *ast.CallExpr:
		w.recordCall(n, async, deferred)
		// An immediately-invoked literal runs inline on this stack.
		if lit, ok := unparen(n.Fun).(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, async, deferred)
		} else {
			w.walkNode(n.Fun, async, deferred)
		}
		// Arguments may contain calls and (escaping) literals.
		for _, a := range n.Args {
			w.walkNode(a, async, deferred)
		}
		return
	}
	// Generic descent for every other node kind.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			children = append(children, c)
		}
		return false
	})
	for _, c := range children {
		w.walkNode(c, async, deferred)
	}
}

// calleeOf resolves the called function object, or nil for dynamic
// calls, conversions, and builtins.
func (w *walker) calleeOf(call *ast.CallExpr) *types.Func {
	info := w.node.Pkg.TypesInfo
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil // func-typed field
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // qualified pkg.Func
		}
	case *ast.IndexExpr: // generic instantiation f[T](…)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// targetsOf resolves the module-local bodies a call to callee may
// enter: the declared body for static calls, every satisfying concrete
// method for interface calls.
func (w *walker) targetsOf(call *ast.CallExpr, callee *types.Func) []*FuncNode {
	sig, ok := callee.Type().(*types.Signature)
	if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return w.p.implementers(iface, callee)
		}
	}
	if n := w.p.funcs[callee]; n != nil {
		return []*FuncNode{n}
	}
	return nil
}

func (w *walker) recordCall(call *ast.CallExpr, async, deferred bool) {
	info := w.node.Pkg.TypesInfo
	// Skip type conversions outright.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	site := &CallSite{Caller: w.node, Call: call, Pos: call.Pos(), Async: async, Deferred: deferred}
	fun := unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		site.Recv = sel.X
	}
	callee := w.calleeOf(call)
	if callee == nil {
		switch f := fun.(type) {
		case *ast.FuncLit:
			// Immediately-invoked literal: its body is walked inline;
			// no separate site needed.
			return
		case *ast.Ident:
			if _, ok := info.Uses[f].(*types.Builtin); ok {
				return
			}
		}
		site.Kind = CallDynamic
		w.node.Calls = append(w.node.Calls, site)
		return
	}
	site.Callee = callee
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		site.Kind = CallInterface
	} else {
		site.Kind = CallStatic
	}
	site.Targets = w.targetsOf(call, callee)
	w.node.Calls = append(w.node.Calls, site)
}

// implementers returns the analyzed bodies of method m on every
// module-local named type whose method set satisfies iface.
func (p *Program) implementers(iface *types.Interface, m *types.Func) []*FuncNode {
	key := implKey{iface: iface, method: m.Name()}
	if out, ok := p.impls[key]; ok {
		return out
	}
	var out []*FuncNode
	for _, named := range p.named {
		if types.IsInterface(named.Underlying()) || named.TypeParams().Len() > 0 {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if f, ok := obj.(*types.Func); ok {
			if node := p.funcs[f]; node != nil {
				out = append(out, node)
			}
		}
	}
	p.impls[key] = out
	return out
}

// Reach is the memoized answer to "does fn, on its own stack, reach a
// call site matching some primitive predicate?"
type Reach struct {
	// Pos is the first-step witness inside the queried function: the
	// call site (or send) through which the primitive is reached.
	Pos token.Pos
	// Desc describes the primitive reached.
	Desc string
	// Path is the call chain, queried function first.
	Path []string
}

// ReachVia computes, memoized under key, whether fn transitively
// reaches a call site satisfying primitive, traversing only
// synchronous module-local edges (Async sites are skipped; dynamic
// sites cannot be traversed and match only via the predicate itself).
// Recursion is cut conservatively: a cycle contributes nothing.
func (p *Program) ReachVia(key string, fn *FuncNode, primitive func(*CallSite) (string, bool)) *Reach {
	memo := p.reach[key]
	if memo == nil {
		memo = make(map[*FuncNode]*Reach)
		p.reach[key] = memo
	}
	var visit func(n *FuncNode, visiting map[*FuncNode]bool) *Reach
	visit = func(n *FuncNode, visiting map[*FuncNode]bool) *Reach {
		if r, ok := memo[n]; ok {
			return r
		}
		if visiting[n] {
			return nil
		}
		visiting[n] = true
		defer delete(visiting, n)
		var result *Reach
		for _, cs := range n.Calls {
			if cs.Async {
				continue
			}
			if desc, ok := primitive(cs); ok {
				result = &Reach{Pos: cs.Pos, Desc: desc, Path: []string{n.Name(), desc}}
				break
			}
			for _, t := range cs.Targets {
				if r := visit(t, visiting); r != nil {
					result = &Reach{Pos: cs.Pos, Desc: r.Desc, Path: append([]string{n.Name()}, r.Path...)}
					break
				}
			}
			if result != nil {
				break
			}
		}
		// Only memoize fully-explored results: a nil found while n is on
		// the recursion stack elsewhere could be a cycle artifact.
		if len(visiting) == 1 || result != nil {
			memo[n] = result
		}
		return result
	}
	return visit(fn, map[*FuncNode]bool{})
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// PkgDisplay renders a package qualifier for diagnostics ("cluster",
// "serve") from an import path.
func PkgDisplay(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
