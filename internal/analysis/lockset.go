package analysis

// lockset.go is the lock-set dataflow layer over the call graph: it
// identifies mutex lock classes (which field or variable a Lock call
// is on), derives per-function lock regions by source-order pairing,
// and summarizes which classes a function transitively acquires on its
// own stack. lockorder and heldcall are built on these answers.
//
// The region model is a deliberate under-approximation, computable
// without a CFG: an acquisition opens a region that closes at the next
// non-deferred Unlock of the same class in source order, or at the end
// of the body when the release is deferred (or missing). Branchy code
// that unlocks early on one path therefore yields the shortest
// consistent region — the conservative direction for avoiding false
// positives, at the cost of missing holds that only long branches
// perform.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockClass identifies one mutex across the module: a struct field
// (`cluster.Node.mu`), a package-level variable, or a local. Identity
// is the field/variable's types.Object, so the same field locked from
// different packages is one class.
type LockClass struct {
	Obj types.Object
	// Key is the stable display name: "pkg.Type.field", "pkg.var", or
	// "pkg.Type(embedded)" for promoted sync.Mutex embeds.
	Key string
	// RW marks sync.RWMutex classes.
	RW bool
}

// LockOp classifies a mutex method call.
type LockOp int

const (
	LockOpNone LockOp = iota
	LockOpLock
	LockOpRLock
	LockOpUnlock
	LockOpRUnlock
)

// LockRegion is one source-order span of a function body during which
// a lock class is held.
type LockRegion struct {
	Class  *LockClass
	Reader bool
	// Acquire is the position of the Lock/RLock call.
	Acquire token.Pos
	// End is the position of the pairing non-deferred Unlock, or the
	// end of the function body when released by defer (or never).
	End token.Pos
	// DeferRelease marks regions released by a deferred Unlock.
	DeferRelease bool
}

type funcLocks struct {
	regions []*LockRegion
}

// LockCall classifies a call site as a mutex operation, returning the
// lock class and operation (LockOpNone when cs is not a mutex method
// call or the mutex cannot be identified).
func (p *Program) LockCall(cs *CallSite) (*LockClass, LockOp) {
	if cs.Callee == nil || cs.Callee.Pkg() == nil || cs.Callee.Pkg().Path() != "sync" {
		return nil, LockOpNone
	}
	var op LockOp
	switch cs.Callee.Name() {
	case "Lock":
		op = LockOpLock
	case "RLock":
		op = LockOpRLock
	case "Unlock":
		op = LockOpUnlock
	case "RUnlock":
		op = LockOpRUnlock
	default:
		return nil, LockOpNone
	}
	sig, ok := cs.Callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, LockOpNone
	}
	recvNamed := namedOf(sig.Recv().Type())
	if recvNamed == nil {
		return nil, LockOpNone
	}
	name := recvNamed.Obj().Name()
	if name != "Mutex" && name != "RWMutex" {
		return nil, LockOpNone
	}
	class := p.classFor(cs, name == "RWMutex")
	if class == nil {
		return nil, LockOpNone
	}
	return class, op
}

// classFor identifies the lock class of a mutex method call from its
// receiver expression.
func (p *Program) classFor(cs *CallSite, rw bool) *LockClass {
	if cs.Recv == nil || cs.Caller == nil {
		return nil
	}
	info := cs.Caller.Pkg.TypesInfo
	pkgName := ""
	if tp := cs.Caller.Pkg.Types; tp != nil {
		pkgName = tp.Name()
	}
	recv := unparen(cs.Recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			obj := sel.Obj()
			key := obj.Name()
			if owner := namedOf(sel.Recv()); owner != nil {
				q := pkgName
				if op := owner.Obj().Pkg(); op != nil {
					q = op.Name()
				}
				key = q + "." + owner.Obj().Name() + "." + obj.Name()
			}
			return p.internClass(obj, key, rw)
		}
		// Qualified package-level var: pkg.mu.Lock().
		if obj := info.Uses[e.Sel]; obj != nil {
			q := pkgName
			if op := obj.Pkg(); op != nil {
				q = op.Name()
			}
			return p.internClass(obj, q+"."+obj.Name(), rw)
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		// A promoted embedded mutex (`type T struct{ sync.Mutex }`;
		// `t.Lock()`): class per embedding type, not per variable.
		if named := namedOf(obj.Type()); named != nil && named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex" {
			q := pkgName
			if op := named.Obj().Pkg(); op != nil {
				q = op.Name()
			}
			return p.internClass(named.Obj(), q+"."+named.Obj().Name()+"(embedded)", rw)
		}
		q := pkgName
		if obj.Pkg() != nil {
			q = obj.Pkg().Name()
		}
		return p.internClass(obj, q+"."+obj.Name(), rw)
	}
	return nil
}

func (p *Program) internClass(obj types.Object, key string, rw bool) *LockClass {
	v := p.Cache("lockset.classes", func() any { return map[types.Object]*LockClass{} })
	classes, ok := v.(map[types.Object]*LockClass)
	if !ok {
		return nil
	}
	if c, ok := classes[obj]; ok {
		return c
	}
	c := &LockClass{Obj: obj, Key: key, RW: rw}
	classes[obj] = c
	return c
}

// LockRegions returns fn's lock regions, computed lazily.
func (p *Program) LockRegions(fn *FuncNode) []*LockRegion {
	if fn.locks != nil {
		return fn.locks.regions
	}
	fl := &funcLocks{}
	fn.locks = fl
	bodyEnd := fn.Decl.Body.End()
	open := map[*LockClass][]*LockRegion{}
	for _, cs := range fn.Calls {
		if cs.Async {
			continue
		}
		class, op := p.LockCall(cs)
		if class == nil {
			continue
		}
		switch op {
		case LockOpLock, LockOpRLock:
			if cs.Deferred {
				continue // a deferred re-acquire contributes no region
			}
			r := &LockRegion{Class: class, Reader: op == LockOpRLock, Acquire: cs.Pos, End: bodyEnd}
			fl.regions = append(fl.regions, r)
			open[class] = append(open[class], r)
		case LockOpUnlock, LockOpRUnlock:
			stack := open[class]
			if len(stack) == 0 {
				continue // unlock in a "caller holds" helper
			}
			if cs.Deferred {
				stack[len(stack)-1].DeferRelease = true
				continue // held to function end
			}
			stack[len(stack)-1].End = cs.Pos
			open[class] = stack[:len(stack)-1]
		}
	}
	return fl.regions
}

// HeldAt returns the regions of fn covering pos (exclusive of the
// acquiring call itself).
func (p *Program) HeldAt(fn *FuncNode, pos token.Pos) []*LockRegion {
	var held []*LockRegion
	for _, r := range p.LockRegions(fn) {
		if r.Acquire < pos && pos < r.End {
			held = append(held, r)
		}
	}
	return held
}

// AcqWitness explains one transitively-acquired lock class: the call
// chain from the summarized function down to the acquiring Lock call.
type AcqWitness struct {
	// Pos is the first-step site inside the summarized function.
	Pos token.Pos
	// Path is the call chain; the last element names the acquisition.
	Path []string
}

// Acquired summarizes every lock class fn acquires on its own stack —
// directly or through synchronous module-local callees. Deferred and
// asynchronous acquisitions are excluded. Cycles are cut
// conservatively.
func (p *Program) Acquired(fn *FuncNode) map[*LockClass]*AcqWitness {
	v := p.Cache("lockset.acquired", func() any { return map[*FuncNode]map[*LockClass]*AcqWitness{} })
	memo, ok := v.(map[*FuncNode]map[*LockClass]*AcqWitness)
	if !ok {
		return nil
	}
	var visit func(n *FuncNode, visiting map[*FuncNode]bool) map[*LockClass]*AcqWitness
	visit = func(n *FuncNode, visiting map[*FuncNode]bool) map[*LockClass]*AcqWitness {
		if out, ok := memo[n]; ok {
			return out
		}
		if visiting[n] {
			return nil
		}
		visiting[n] = true
		defer delete(visiting, n)
		out := map[*LockClass]*AcqWitness{}
		for _, cs := range n.Calls {
			if cs.Async || cs.Deferred {
				continue
			}
			if class, op := p.LockCall(cs); class != nil && (op == LockOpLock || op == LockOpRLock) {
				if _, ok := out[class]; !ok {
					out[class] = &AcqWitness{Pos: cs.Pos, Path: []string{n.Name() + " locks " + class.Key}}
				}
				continue
			}
			for _, t := range cs.Targets {
				for class, w := range visit(t, visiting) {
					if _, ok := out[class]; !ok {
						out[class] = &AcqWitness{Pos: cs.Pos, Path: append([]string{n.Name()}, w.Path...)}
					}
				}
			}
		}
		if len(visiting) == 1 {
			memo[n] = out
		}
		return out
	}
	return visit(fn, map[*FuncNode]bool{})
}
