package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry identifies one grandfathered finding. Line numbers are
// deliberately absent: baselines must survive unrelated edits shifting
// code up and down, so a finding matches on (analyzer, file, message).
// Multiple identical findings in one file are matched multiset-style
// via Count.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // slash-separated, relative to module root
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"` // defaults to 1
}

// Baseline is the committed inventory of grandfathered findings. The
// gate fails only on findings not covered here, so the file shrinks
// monotonically as debt is paid down and never has to grow except by
// deliberate regeneration.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error, so fresh checkouts and scratch trees work
// without ceremony.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// matcher returns a consuming matcher over the baseline: each call to
// match decrements the remaining budget for that key so N baselined
// findings waive at most N occurrences.
func (b *Baseline) matcher() func(analyzer, file, message string) bool {
	budget := make(map[[3]string]int)
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[[3]string{e.Analyzer, e.File, e.Message}] += n
	}
	return func(analyzer, file, message string) bool {
		k := [3]string{analyzer, file, message}
		if budget[k] > 0 {
			budget[k]--
			return true
		}
		return false
	}
}

// NewBaseline builds a baseline covering the given findings (as
// rel-file diagnostics), merging duplicates into counts and sorting
// for a stable committed representation.
func NewBaseline(findings []Finding) *Baseline {
	counts := make(map[[3]string]int)
	for _, f := range findings {
		counts[[3]string{f.Analyzer, f.File, f.Message}]++
	}
	b := &Baseline{Version: 1}
	for k, n := range counts {
		e := BaselineEntry{Analyzer: k[0], File: k[1], Message: k[2]}
		if n > 1 {
			e.Count = n
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
