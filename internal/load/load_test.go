package load

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
)

// startServer boots a fresh in-process remedyd with the 3:1 tenant
// split the load mix below targets.
func startServer(t *testing.T) (*serve.Server, string) {
	t.Helper()
	srv := serve.New(serve.Config{
		Workers: 2, QueueDepth: 64,
		Tenants: map[string]serve.TenantConfig{
			"alpha": {Weight: 3},
			"beta":  {Weight: 1},
		},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	})
	return srv, hs.URL
}

// gateUntilBacklog holds every worker pickup until all expected
// submissions have been accepted, so the DRR fairness measurement sees
// a full backlog from the first dispatch instead of start-up noise.
func gateUntilBacklog(t *testing.T, srv *serve.Server, expect int64) {
	t.Helper()
	released := make(chan struct{})
	var once sync.Once
	faults.Set(faults.ServeJob, func(any) error {
		<-released
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				once.Do(func() { close(released) }) // unblock workers on teardown
				return
			case <-tick.C:
				if srv.Metrics().Counter("serve.jobs_submitted").Value() >= expect {
					once.Do(func() { close(released) })
					return
				}
			}
		}
	}()
}

func loadMix() []Tenant {
	return []Tenant{
		{Name: "alpha", Weight: 3, Clients: 2, Jobs: 15},
		{Name: "beta", Weight: 1, Clients: 2, Jobs: 8},
	}
}

func runOnce(t *testing.T, seed int64) (*Report, []byte, *serve.Server) {
	t.Helper()
	srv, url := startServer(t)
	mix := loadMix()
	var total int64
	for _, m := range mix {
		total += int64(m.Clients * m.Jobs)
	}
	gateUntilBacklog(t, srv, total)
	rep, err := Run(context.Background(), Config{
		BaseURL: url, Seed: seed, Rows: 300,
		Tenants:         mix,
		RepeatIdentical: true,
		PollInterval:    5 * time.Millisecond,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("load.Run: %v", err)
	}
	b, err := rep.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	return rep, b, srv
}

// TestLoadDeterministic is the load-check acceptance test: two
// same-seed runs against fresh servers produce byte-identical
// deterministic sections, no job is lost or duplicated, the observed
// per-tenant throughput shares track the 3:1 weights within 20%, and
// the verbatim resubmission is served from the response cache.
func TestLoadDeterministic(t *testing.T) {
	rep1, b1, srv1 := runOnce(t, 42)
	faults.Clear(faults.ServeJob) // re-arm cleanly for the second run
	rep2, b2, _ := runOnce(t, 42)

	if rep2.Deterministic.Seed != 42 {
		t.Fatalf("second run seed = %d", rep2.Deterministic.Seed)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed runs differ:\nrun1: %.600s\nrun2: %.600s", b1, b2)
	}
	det := rep1.Deterministic
	if det.Lost != 0 || det.Duplicated != 0 {
		t.Fatalf("lost=%d duplicated=%d, want 0/0", det.Lost, det.Duplicated)
	}
	if want := 2*15 + 2*8; len(det.Outcomes) != want {
		t.Fatalf("outcomes = %d, want %d", len(det.Outcomes), want)
	}
	for _, o := range det.Outcomes {
		if o.State != "done" || o.ResultSHA == "" {
			t.Fatalf("outcome %s/%d/%d: state %q sha %q", o.Tenant, o.Client, o.Job, o.State, o.ResultSHA)
		}
	}
	if !det.CacheRepeatHit {
		t.Fatal("verbatim resubmission was not served from cache")
	}
	if got := srv1.Metrics().Counter("serve.cache_hits").Value(); got < 1 {
		t.Fatalf("server cache_hits = %d, want >= 1", got)
	}
	if dev := rep1.Observed.MaxFairnessDeviation; dev > 0.20 {
		t.Fatalf("fairness deviation %.3f exceeds 0.20: %+v", dev, rep1.Observed.Tenants)
	}
	if rep1.Observed.ThroughputJPS <= 0 {
		t.Fatalf("throughput = %v, want > 0", rep1.Observed.ThroughputJPS)
	}
	var tbl bytes.Buffer
	if err := rep1.Table().Render(&tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 {
		t.Fatal("empty human table")
	}
}

// TestLoadDefaults checks the zero-value config is serviceable: one
// default tenant, 4 clients × 4 jobs, all completing.
func TestLoadDefaults(t *testing.T) {
	_, url := startServer(t)
	rep, err := Run(context.Background(), Config{BaseURL: url, Seed: 7, Rows: 200,
		PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deterministic.Outcomes) != 16 {
		t.Fatalf("outcomes = %d, want 16", len(rep.Deterministic.Outcomes))
	}
	for _, o := range rep.Deterministic.Outcomes {
		if o.State != "done" {
			t.Fatalf("outcome %+v not done", o)
		}
	}
	if rep.Observed.MaxFairnessDeviation != 0 {
		t.Fatalf("single-tenant run should skip the fairness measure, got %v",
			rep.Observed.MaxFairnessDeviation)
	}
}

// TestLoadDuplicateTenant pins the config validation.
func TestLoadDuplicateTenant(t *testing.T) {
	_, err := Run(context.Background(), Config{
		BaseURL: "http://127.0.0.1:0",
		Tenants: []Tenant{{Name: "a", Clients: 1, Jobs: 1}, {Name: "a", Clients: 1, Jobs: 1}},
	})
	if err == nil {
		t.Fatal("duplicate tenant names must be rejected")
	}
}
