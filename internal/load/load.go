// Package load is the deterministic load harness behind cmd/remedyload:
// it synthesizes a dataset, fans out hundreds of virtual clients across
// a configured tenant mix, drives a running remedyd through the
// retrying serve.Client, and folds the outcomes into a report split
// into a Deterministic section — byte-identical across same-seed runs
// against an equivalent server — and an Observed section of wall-clock
// latencies, throughput, and error rates.
//
// Everything the virtual clients do is pre-drawn from seeded RNG
// streams before the first request leaves: the tenant mix, each
// client's job parameters, the retry jitter, and the idempotency keys.
// The only nondeterminism left is the scheduler's, which the report
// quarantines in the Observed section.
package load

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Tenant describes one tenant's slice of the generated load.
type Tenant struct {
	Name string `json:"name"`
	// Weight mirrors the server's fair-share weight for this tenant;
	// the fairness check compares observed throughput shares against it.
	Weight int `json:"weight"`
	// Clients is the number of concurrent virtual clients and Jobs the
	// number of jobs each submits.
	Clients int `json:"clients"`
	Jobs    int `json:"jobs"`
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the remedyd under test.
	BaseURL string
	// Seed drives every random draw in the run: the synthetic dataset,
	// each client's job schedule, and each client's retry jitter.
	Seed int64
	// Tenants is the load mix (default: one "default" tenant, 4 clients
	// × 4 jobs). Names must be unique.
	Tenants []Tenant
	// Rows is the synthetic COMPAS dataset size (default 400).
	Rows int
	// Kind is the job kind every client submits (default "identify").
	Kind string
	// RepeatIdentical, when set, resubmits the first client's first
	// request verbatim after the storm completes and verifies the server
	// answers it from the response cache with byte-identical results.
	RepeatIdentical bool
	// PollInterval is the job-completion polling cadence (default 25ms).
	PollInterval time.Duration
	// RetryAttempts caps each client's attempts per request (default 4).
	RetryAttempts int
	// Metrics receives the per-tenant latency histograms and the
	// client-side retry counters (nil: a private registry is used).
	Metrics *obs.Registry
	// Logger, when non-nil, receives progress lines.
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 400
	}
	if c.Kind == "" {
		c.Kind = "identify"
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 4
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []Tenant{{Name: serve.DefaultTenant, Weight: 1, Clients: 4, Jobs: 4}}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Outcome is the deterministic record of one scheduled job, ordered by
// (tenant, client, job) in the report. Wall-clock fields live in the
// Observed section instead, so two same-seed runs produce identical
// Outcome lists.
type Outcome struct {
	Tenant string `json:"tenant"`
	Client int    `json:"client"`
	Job    int    `json:"job"`
	// State is the job's terminal state, or "submit_error" /
	// "wait_error" / "result_error" when the client never got one.
	State string `json:"state"`
	// Status is the HTTP status a failed call carried (0 for transport
	// errors).
	Status int `json:"status,omitempty"`
	// CacheHit marks a job the server answered from its response cache
	// (done without ever starting).
	CacheHit bool `json:"cache_hit,omitempty"`
	// ResultSHA is the truncated SHA-256 of the raw result bytes; the
	// pipeline is deterministic, so it is stable across runs.
	ResultSHA string `json:"result_sha,omitempty"`
}

// Deterministic is the report half that must be byte-identical across
// same-seed runs against an equivalently configured server.
type Deterministic struct {
	Seed      int64    `json:"seed"`
	Kind      string   `json:"kind"`
	Rows      int      `json:"rows"`
	DatasetID string   `json:"dataset_id"` // content-addressed, so seed-stable
	Tenants   []Tenant `json:"tenants"`
	// Lost counts accepted jobs that never reached a terminal state and
	// Duplicated accepted jobs sharing an ID; both must be zero.
	Lost       int       `json:"lost"`
	Duplicated int       `json:"duplicated"`
	Outcomes   []Outcome `json:"outcomes"`
	// CacheRepeatHit reports the RepeatIdentical probe: true means the
	// verbatim resubmission was answered from cache, byte-identical.
	CacheRepeatHit bool `json:"cache_repeat_hit,omitempty"`
}

// TenantStats is one tenant's observed aggregate.
type TenantStats struct {
	Name        string  `json:"name"`
	Weight      int     `json:"weight"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	CacheHits   int     `json:"cache_hits"`
	Rejected429 int     `json:"rejected_429"`
	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP99MS float64 `json:"submit_p99_ms"`
	E2EP50MS    float64 `json:"e2e_p50_ms"`
	E2EP99MS    float64 `json:"e2e_p99_ms"`
	// StartedInWindow counts jobs this tenant started inside the
	// contention window (while every tenant still had backlog); Share is
	// its fraction of all such starts, WeightShare the fraction its
	// weight predicts, and Deviation |Share−WeightShare|/WeightShare.
	StartedInWindow int     `json:"started_in_window"`
	Share           float64 `json:"share"`
	WeightShare     float64 `json:"weight_share"`
	Deviation       float64 `json:"deviation"`
}

// Observed is the wall-clock half of the report: latencies, rates, and
// the fairness measurement. Nothing here participates in the
// byte-identity check.
type Observed struct {
	DurationMS    float64       `json:"duration_ms"`
	ThroughputJPS float64       `json:"throughput_jobs_per_sec"`
	Tenants       []TenantStats `json:"tenants"`
	// MaxFairnessDeviation is the worst per-tenant Deviation; the
	// acceptance bar is 0.2 when more than one weighted tenant saturates
	// the queue.
	MaxFairnessDeviation float64 `json:"max_fairness_deviation"`
	ClientRetries        int64   `json:"client_retries"`
	BreakerOpens         int64   `json:"breaker_opens"`
	RetryGiveUps         int64   `json:"retry_give_ups"`
	// Errors is the failure taxonomy: HTTP status (or "transport") →
	// count of jobs that ultimately failed with it.
	Errors map[string]int `json:"errors,omitempty"`
}

// Report is one load run's full result.
type Report struct {
	Deterministic Deterministic `json:"deterministic"`
	Observed      Observed      `json:"observed"`
}

// DeterministicBytes renders the Deterministic section alone; two
// same-seed runs must produce identical bytes.
func (r *Report) DeterministicBytes() ([]byte, error) {
	return json.MarshalIndent(r.Deterministic, "", "  ")
}

// Table renders the per-tenant observed aggregates for humans.
func (r *Report) Table() *experiments.Table {
	t := &experiments.Table{
		Title: fmt.Sprintf("remedyload: %d jobs in %.0fms (%.1f jobs/s, %d retries)",
			len(r.Deterministic.Outcomes), r.Observed.DurationMS,
			r.Observed.ThroughputJPS, r.Observed.ClientRetries),
		Columns: []string{"tenant", "weight", "done", "failed", "429", "cache",
			"submit p50/p99 ms", "e2e p50/p99 ms", "share", "dev"},
	}
	for _, ts := range r.Observed.Tenants {
		t.Rows = append(t.Rows, []string{
			ts.Name, fmt.Sprintf("%d", ts.Weight),
			fmt.Sprintf("%d", ts.Done), fmt.Sprintf("%d", ts.Failed),
			fmt.Sprintf("%d", ts.Rejected429), fmt.Sprintf("%d", ts.CacheHits),
			fmt.Sprintf("%.1f/%.1f", ts.SubmitP50MS, ts.SubmitP99MS),
			fmt.Sprintf("%.1f/%.1f", ts.E2EP50MS, ts.E2EP99MS),
			fmt.Sprintf("%.2f", ts.Share), fmt.Sprintf("%.2f", ts.Deviation),
		})
	}
	return t
}

// result carries one job's Outcome plus its observed-only fields.
type result struct {
	Outcome
	id      string
	started *time.Time
	e2eMS   float64
}

// clientPlan is one virtual client's pre-drawn schedule.
type clientPlan struct {
	tenant Tenant
	ci     int
	seed   int64
	reqs   []serve.JobRequest
}

// Run executes one load run against the server at cfg.BaseURL.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	seen := map[string]bool{}
	for _, t := range cfg.Tenants {
		if seen[t.Name] {
			return nil, fmt.Errorf("load: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
	}

	// Synthesize and upload the shared dataset. Uploading is idempotent
	// and the ID is content-addressed, so it is seed-stable.
	ds := synth.CompasN(cfg.Rows, cfg.Seed)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		return nil, err
	}
	base := serve.NewClient(cfg.BaseURL)
	info, err := base.UploadDataset(ctx, &buf, "load-compas", "two_year_recid",
		[]string{"age", "race", "sex"})
	if err != nil {
		return nil, fmt.Errorf("load: upload dataset: %w", err)
	}
	cfg.Logger.Info("load: dataset ready", "id", info.ID, "rows", cfg.Rows)

	// Pre-draw every client's schedule before the first request leaves.
	// Each client owns an RNG stream keyed by (tenant index, client
	// index), so adding a tenant never perturbs another tenant's draws.
	var plans []*clientPlan
	for ti, t := range cfg.Tenants {
		for ci := 0; ci < t.Clients; ci++ {
			seed := cfg.Seed + int64(ti)*7919 + int64(ci)*104729 + 1
			rng := stats.NewRNG(seed)
			p := &clientPlan{tenant: t, ci: ci, seed: seed}
			for ji := 0; ji < t.Jobs; ji++ {
				p.reqs = append(p.reqs, serve.JobRequest{
					Kind:      cfg.Kind,
					DatasetID: info.ID,
					TauC:      0.05 + 0.01*float64(rng.Intn(6)),
					MinSize:   20 + 5*rng.Intn(4),
					Seed:      1 + rng.Int63n(1<<30),
				})
			}
			plans = append(plans, p)
		}
	}

	start := time.Now() //lint:allow determinism wall-clock load measurement is the Observed half's job
	results := make([][]result, len(plans))
	var wg sync.WaitGroup
	for pi, p := range plans {
		wg.Add(1)
		go func(pi int, p *clientPlan) {
			defer wg.Done()
			results[pi] = runClient(ctx, cfg, p)
		}(pi, p)
	}
	wg.Wait()
	durMS := float64(time.Since(start).Microseconds()) / 1000

	// The cache probe runs after the storm so the original is certainly
	// terminal: a verbatim resubmission must come back already done,
	// never started, with byte-identical result bytes.
	repeatHit := false
	if cfg.RepeatIdentical && len(plans) > 0 && len(results[0]) > 0 &&
		results[0][0].State == string(serve.StateDone) {
		repeatHit, err = probeCache(ctx, cfg, plans[0], results[0][0])
		if err != nil {
			return nil, err
		}
	}

	return assemble(cfg, info.ID, results, durMS, repeatHit), nil
}

// runClient plays one pre-drawn schedule: submit every job open-loop,
// then wait each one out and fetch its result hash.
func runClient(ctx context.Context, cfg Config, p *clientPlan) []result {
	cl := serve.NewRetryingClient(cfg.BaseURL, serve.RetryPolicy{
		Seed:        p.seed,
		MaxAttempts: cfg.RetryAttempts,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
	})
	cl.Tenant = p.tenant.Name
	cl.Obs = cfg.Metrics
	submitHist := cfg.Metrics.Histogram(
		obs.WithLabel("load.submit_ms", "tenant", p.tenant.Name), obs.DefaultDurationBucketsMS)
	e2eHist := cfg.Metrics.Histogram(
		obs.WithLabel("load.e2e_ms", "tenant", p.tenant.Name), obs.DefaultDurationBucketsMS)

	out := make([]result, len(p.reqs))
	var live []int
	for ji, req := range p.reqs {
		r := &out[ji]
		r.Tenant, r.Client, r.Job = p.tenant.Name, p.ci, ji
		t0 := time.Now() //lint:allow determinism latency measurement
		st, err := cl.SubmitJob(ctx, req)
		ms := float64(time.Since(t0).Microseconds()) / 1000
		submitHist.Observe(ms)
		if err != nil {
			r.State = "submit_error"
			r.Status = serve.StatusOf(err)
			continue
		}
		r.id = st.ID
		live = append(live, ji)
	}
	for _, ji := range live {
		r := &out[ji]
		st, err := cl.Wait(ctx, r.id, cfg.PollInterval)
		if err != nil {
			r.State = "wait_error"
			r.Status = serve.StatusOf(err)
			continue
		}
		r.State = string(st.State)
		r.started = st.StartedAt
		r.CacheHit = st.State == serve.StateDone && st.StartedAt == nil
		if st.FinishedAt != nil {
			r.e2eMS = float64(st.FinishedAt.Sub(st.EnqueuedAt).Microseconds()) / 1000
			e2eHist.Observe(r.e2eMS)
		}
		if st.State != serve.StateDone {
			continue
		}
		var raw json.RawMessage
		if err := cl.Result(ctx, r.id, &raw); err != nil {
			r.State = "result_error"
			r.Status = serve.StatusOf(err)
			continue
		}
		sum := sha256.Sum256(raw)
		r.ResultSHA = fmt.Sprintf("%x", sum[:8])
	}
	return out
}

// probeCache resubmits the first client's first request verbatim and
// checks the server answers it from the response cache: immediately
// done, never started, byte-identical result.
func probeCache(ctx context.Context, cfg Config, p *clientPlan, orig result) (bool, error) {
	cl := serve.NewRetryingClient(cfg.BaseURL, serve.RetryPolicy{Seed: p.seed + 1})
	cl.Tenant = p.tenant.Name
	cl.Obs = cfg.Metrics
	st, err := cl.SubmitJob(ctx, p.reqs[0])
	if err != nil {
		return false, fmt.Errorf("load: cache probe submit: %w", err)
	}
	if st.State != serve.StateDone || st.StartedAt != nil {
		cfg.Logger.Warn("load: cache probe missed", "state", st.State)
		return false, nil
	}
	var raw json.RawMessage
	if err := cl.Result(ctx, st.ID, &raw); err != nil {
		return false, fmt.Errorf("load: cache probe result: %w", err)
	}
	sum := sha256.Sum256(raw)
	if got := fmt.Sprintf("%x", sum[:8]); got != orig.ResultSHA {
		return false, fmt.Errorf("load: cache probe replay differs: %s vs %s", got, orig.ResultSHA)
	}
	cfg.Metrics.Counter("load.cache_repeat_hit").Inc()
	return true, nil
}

// assemble folds the per-client results into the two-part report.
func assemble(cfg Config, datasetID string, results [][]result, durMS float64, repeatHit bool) *Report {
	var all []result
	for _, rs := range results {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Job < b.Job
	})

	det := Deterministic{
		Seed: cfg.Seed, Kind: cfg.Kind, Rows: cfg.Rows,
		DatasetID: datasetID, Tenants: cfg.Tenants,
		CacheRepeatHit: repeatHit,
	}
	ids := map[string]bool{}
	errs := map[string]int{}
	byTenant := map[string]*TenantStats{}
	for _, t := range cfg.Tenants {
		byTenant[t.Name] = &TenantStats{Name: t.Name, Weight: t.Weight}
	}
	terminal := map[string]bool{
		string(serve.StateDone): true, string(serve.StateFailed): true,
		string(serve.StateCancelled): true,
	}
	doneTotal := 0
	for _, r := range all {
		det.Outcomes = append(det.Outcomes, r.Outcome)
		ts := byTenant[r.Tenant]
		switch {
		case r.State == string(serve.StateDone):
			ts.Done++
			doneTotal++
			if r.CacheHit {
				ts.CacheHits++
			}
		case terminal[r.State]:
			ts.Failed++
		default:
			ts.Failed++
			if r.Status == 429 {
				ts.Rejected429++
			}
			key := "transport"
			if r.Status != 0 {
				key = fmt.Sprintf("%d", r.Status)
			}
			errs[key]++
			if r.State == "wait_error" {
				det.Lost++ // accepted but never seen terminal
			}
		}
		if r.id != "" {
			if ids[r.id] {
				det.Duplicated++
			}
			ids[r.id] = true
		}
	}

	snap := cfg.Metrics.Snapshot()
	for name, ts := range byTenant {
		sh := snap.Histograms[obs.WithLabel("load.submit_ms", "tenant", name)]
		eh := snap.Histograms[obs.WithLabel("load.e2e_ms", "tenant", name)]
		ts.SubmitP50MS, ts.SubmitP99MS = sh.Quantile(0.50), sh.Quantile(0.99)
		ts.E2EP50MS, ts.E2EP99MS = eh.Quantile(0.50), eh.Quantile(0.99)
	}
	fairness(all, byTenant)

	obsv := Observed{
		DurationMS:    durMS,
		ClientRetries: snap.Counters["client.retries"],
		BreakerOpens:  snap.Counters["client.breaker_open"],
		RetryGiveUps:  snap.Counters["client.retry_give_up"],
	}
	if durMS > 0 {
		obsv.ThroughputJPS = float64(doneTotal) / (durMS / 1000)
	}
	if len(errs) > 0 {
		obsv.Errors = errs
	}
	for _, t := range cfg.Tenants { // config order keeps the table stable
		ts := byTenant[t.Name]
		obsv.Tenants = append(obsv.Tenants, *ts)
		if ts.Deviation > obsv.MaxFairnessDeviation {
			obsv.MaxFairnessDeviation = ts.Deviation
		}
	}
	return &Report{Deterministic: det, Observed: obsv}
}

// fairness measures per-tenant throughput shares inside the contention
// window — up to the earliest moment some tenant ran out of backlog
// (its last job start). While every tenant still has queued work, DRR
// shares must track the configured weights; after a tenant drains, the
// survivors legitimately absorb its slots, so later starts are noise.
func fairness(all []result, byTenant map[string]*TenantStats) {
	type startRec struct {
		tenant string
		at     time.Time
	}
	var starts []startRec
	last := map[string]time.Time{}
	for _, r := range all {
		if r.started == nil {
			continue
		}
		starts = append(starts, startRec{r.Tenant, *r.started})
		if r.started.After(last[r.Tenant]) {
			last[r.Tenant] = *r.started
		}
	}
	if len(last) < 2 {
		return // one busy tenant: nothing to share
	}
	var cutoff time.Time
	first := true
	for _, t := range last {
		if first || t.Before(cutoff) {
			cutoff = t
			first = false
		}
	}
	total, weightTotal := 0, 0
	for _, s := range starts {
		if !s.at.After(cutoff) {
			byTenant[s.tenant].StartedInWindow++
			total++
		}
	}
	for name := range last {
		weightTotal += byTenant[name].Weight
	}
	if total == 0 || weightTotal == 0 {
		return
	}
	for name := range last {
		ts := byTenant[name]
		ts.Share = float64(ts.StartedInWindow) / float64(total)
		ts.WeightShare = float64(ts.Weight) / float64(weightTotal)
		if ts.WeightShare > 0 {
			ts.Deviation = abs(ts.Share-ts.WeightShare) / ts.WeightShare
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
