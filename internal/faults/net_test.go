package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
)

// netHarness is one receiver node: an httptest server counting the
// requests that actually arrived.
type netHarness struct {
	srv  *httptest.Server
	hits atomic.Int64
}

func newNetHarness(t *testing.T) *netHarness {
	t.Helper()
	h := &netHarness{}
	h.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.hits.Add(1)
		body, _ := io.ReadAll(r.Body) //lint:allow errdiscard test handler echoes best-effort
		_, _ = w.Write(body)          //lint:allow errdiscard test handler echoes best-effort
	}))
	t.Cleanup(h.srv.Close)
	return h
}

func (h *netHarness) host(t *testing.T) string {
	t.Helper()
	u, err := url.Parse(h.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestNetFaultsPassThroughWithoutRules(t *testing.T) {
	b := newNetHarness(t)
	nf := NewNetFaults(stats.NewRNG(1))
	client := nf.Client("node-a", map[string]string{b.host(t): "node-b"}, nil)

	resp, err := client.Post(b.srv.URL+"/x", "text/plain", strings.NewReader("ping"))
	if err != nil {
		t.Fatalf("fault-free request failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body) //lint:allow errdiscard test read
	resp.Body.Close()                //lint:allow errdiscard test close
	if string(body) != "ping" || b.hits.Load() != 1 {
		t.Fatalf("got body %q hits %d, want ping/1", body, b.hits.Load())
	}
}

func TestNetFaultsPartitionAndHeal(t *testing.T) {
	b := newNetHarness(t)
	nf := NewNetFaults(stats.NewRNG(1))
	client := nf.Client("node-a", map[string]string{b.host(t): "node-b"}, nil)

	nf.Partition("node-a", "node-b")
	_, err := client.Get(b.srv.URL + "/x")
	if err == nil || !errors.Is(errors.Unwrap(urlErr(t, err)), ErrNetDropped) && !strings.Contains(err.Error(), ErrNetDropped.Error()) {
		t.Fatalf("partitioned request error = %v, want ErrNetDropped", err)
	}
	if b.hits.Load() != 0 {
		t.Fatalf("partitioned request reached the receiver (%d hits)", b.hits.Load())
	}
	if c := nf.CountsFor("node-a", "node-b"); c.Dropped != 1 {
		t.Fatalf("dropped count = %d, want 1", c.Dropped)
	}

	nf.Heal("node-a", "node-b")
	resp, err := client.Get(b.srv.URL + "/x")
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	resp.Body.Close() //lint:allow errdiscard test close
	if b.hits.Load() != 1 {
		t.Fatalf("healed request did not arrive (%d hits)", b.hits.Load())
	}
}

// urlErr unwraps the *url.Error the http client wraps transport errors
// in.
func urlErr(t *testing.T, err error) error {
	t.Helper()
	var ue *url.Error
	if errors.As(err, &ue) {
		return ue
	}
	return err
}

func TestNetFaultsPartitionOneWayIsAsymmetric(t *testing.T) {
	a, b := newNetHarness(t), newNetHarness(t)
	nf := NewNetFaults(stats.NewRNG(1))
	hosts := map[string]string{a.host(t): "node-a", b.host(t): "node-b"}
	fromA := nf.Client("node-a", hosts, nil)
	fromB := nf.Client("node-b", hosts, nil)

	nf.PartitionOneWay("node-a", "node-b")
	if _, err := fromA.Get(b.srv.URL + "/x"); err == nil {
		t.Fatal("a→b should be blackholed")
	}
	resp, err := fromB.Get(a.srv.URL + "/x")
	if err != nil {
		t.Fatalf("b→a should pass: %v", err)
	}
	resp.Body.Close() //lint:allow errdiscard test close
	if a.hits.Load() != 1 || b.hits.Load() != 0 {
		t.Fatalf("hits a=%d b=%d, want 1/0", a.hits.Load(), b.hits.Load())
	}
}

func TestNetFaultsDropScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		b := newNetHarness(t)
		nf := NewNetFaults(stats.NewRNG(seed))
		nf.SetRule("node-a", "node-b", Rule{Drop: 0.5})
		client := nf.Client("node-a", map[string]string{b.host(t): "node-b"}, nil)
		var outcomes []bool
		for i := 0; i < 32; i++ {
			resp, err := client.Get(b.srv.URL + "/x")
			if err == nil {
				resp.Body.Close() //lint:allow errdiscard test close
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	first, second := run(7), run(7)
	delivered := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: seed 7 gave different outcomes across runs", i)
		}
		if first[i] {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(first) {
		t.Fatalf("drop 0.5 delivered %d/%d; schedule is not mixing", delivered, len(first))
	}
}

func TestNetFaultsDuplicateDeliversTwice(t *testing.T) {
	b := newNetHarness(t)
	nf := NewNetFaults(stats.NewRNG(1))
	nf.SetRule("node-a", "node-b", Rule{Dup: 1})
	client := nf.Client("node-a", map[string]string{b.host(t): "node-b"}, nil)

	resp, err := client.Post(b.srv.URL+"/x", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatalf("duplicated request failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body) //lint:allow errdiscard test read
	resp.Body.Close()                //lint:allow errdiscard test close
	if string(body) != "payload" {
		t.Fatalf("kept response body = %q, want the echo", body)
	}
	if b.hits.Load() != 2 {
		t.Fatalf("receiver saw %d deliveries, want 2", b.hits.Load())
	}
	if c := nf.CountsFor("node-a", "node-b"); c.Duplicate != 1 {
		t.Fatalf("duplicate count = %d, want 1", c.Duplicate)
	}
}

func TestNetFaultsDelayDelivers(t *testing.T) {
	b := newNetHarness(t)
	nf := NewNetFaults(stats.NewRNG(1))
	nf.SetRule("node-a", "node-b", Rule{Delay: 1, DelayFor: time.Millisecond})
	client := nf.Client("node-a", map[string]string{b.host(t): "node-b"}, nil)

	resp, err := client.Get(b.srv.URL + "/x")
	if err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	resp.Body.Close() //lint:allow errdiscard test close
	if b.hits.Load() != 1 {
		t.Fatalf("delayed request did not arrive (%d hits)", b.hits.Load())
	}
	if c := nf.CountsFor("node-a", "node-b"); c.Delayed != 1 {
		t.Fatalf("delayed count = %d, want 1", c.Delayed)
	}
}

func TestNetFaultsUnmappedHostPassesThrough(t *testing.T) {
	b := newNetHarness(t)
	nf := NewNetFaults(stats.NewRNG(1))
	nf.Partition("node-a", "node-b") // irrelevant: b's host is not mapped
	client := nf.Client("node-a", map[string]string{}, nil)

	resp, err := client.Get(b.srv.URL + "/x")
	if err != nil {
		t.Fatalf("unmapped-host request failed: %v", err)
	}
	resp.Body.Close() //lint:allow errdiscard test close
	if b.hits.Load() != 1 {
		t.Fatalf("unmapped-host request did not arrive (%d hits)", b.hits.Load())
	}
}
