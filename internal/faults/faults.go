// Package faults is a deterministic fault-injection harness for the
// pipeline's robustness tests. Production code fires named injection
// points at the boundaries where real deployments fail — worker
// goroutines, CSV decoding, the remedy loop — and tests install hooks
// that force the failure they want to observe: a panic inside a
// parallel identify worker, a read error mid-CSV, a context
// cancellation between remedy nodes.
//
// The harness is test-only in effect but lives in the library so the
// injection points compile into the real code paths: what the tests
// exercise is exactly what production runs. When no hook is installed
// (the production state) a fired point costs a single atomic load.
package faults

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Point names one injection site.
type Point string

const (
	// IdentifyWorker fires at the start of every parallel identify
	// worker's node scan. The argument is the node's uint32 mask. A
	// panicking hook simulates a worker crash; the identify layer must
	// convert it into an error.
	IdentifyWorker Point = "core.identify.worker"
	// PreloadWorker fires at the start of every hierarchy preload
	// counting shard. The argument is the node's uint32 mask.
	PreloadWorker Point = "core.preload.worker"
	// CSVRecord fires once per decoded CSV record. The argument is the
	// 1-based line number (int). A non-nil error aborts the load as a
	// read error would.
	CSVRecord Point = "dataset.csv.record"
	// RemedyNode fires before each remedy node is processed. The
	// argument is the node's uint32 mask. Hooks typically cancel a
	// context here to test mid-remedy cancellation, or return an error
	// to simulate a failing dependency.
	RemedyNode Point = "remedy.node"
	// TrainEpoch fires once per training epoch/tree of the context-aware
	// learners. The argument is the epoch or tree index (int).
	TrainEpoch Point = "ml.train.epoch"
	// ServeJob fires when a remedyd worker picks a job up, before any
	// pipeline work. The argument is the job ID (string). Hooks block
	// here to hold worker slots (queue-backpressure tests), return an
	// error to fail the job at the server layer, or panic to simulate a
	// worker crash the engine must absorb.
	ServeJob Point = "serve.job.start"
	// JournalAppend fires before every durable journal append, with the
	// record about to be written as the argument. An error hook
	// simulates a write failure (full disk, dead volume); a hook that
	// fails every append from some record onward freezes the journal at
	// a prefix — exactly the on-disk image an abrupt process death
	// leaves behind, which is how the crash-restart chaos tests build
	// their crash images. Hooks may panic only where the host code path
	// documents recovery (checkpoint appends run under the job
	// engine's panic absorber; lifecycle appends do not).
	JournalAppend Point = "durable.journal.append"
	// RecoverRecord fires once per decoded journal record during
	// replay, with the record as the argument. An error hook aborts the
	// recovery as an unreadable journal would.
	RecoverRecord Point = "durable.recover.record"
	// ClientDo fires before every HTTP attempt of serve.Client
	// (including each retry), with "METHOD path" as the argument. An
	// error hook simulates a transport failure, which the client's
	// retry policy must absorb within its attempt budget.
	ClientDo Point = "serve.client.do"
	// ClusterReplicate fires before a cluster leader sends one
	// replication batch (or heartbeat) to one follower. The argument is
	// "leaderID→peerID" (string). An error hook drops the send — the
	// chaos tests' network partition: followers stop hearing from the
	// leader and begin counting missed lease ticks.
	ClusterReplicate Point = "cluster.replicate.send"
	// ClusterLease fires once per leader tick before the lease renewal
	// (the heartbeat fan-out) begins. The argument is the leader's node
	// ID (string). An error hook makes the leader skip the whole tick's
	// sends, simulating a stalled leader that still holds local state.
	ClusterLease Point = "cluster.lease.renew"
	// ClusterSteal fires before a follower attempts to steal queued
	// work from its leader. The argument is the stealing node's ID
	// (string). An error hook suppresses the attempt.
	ClusterSteal Point = "cluster.steal"
)

// Hook is an injected behavior. Returning a non-nil error makes the
// host code path fail as if a real dependency had failed; a hook may
// also panic (only meaningful at points documented to recover) or
// block/sleep to simulate slowness.
type Hook func(arg any) error

var (
	active atomic.Int32 // number of installed hooks; 0 = fast path
	mu     sync.RWMutex
	hooks  = map[Point]Hook{}
)

// Active reports whether any hook is installed. Call sites use it to
// skip the map lookup on the hot path.
func Active() bool { return active.Load() > 0 }

// Set installs the hook for p, replacing any previous hook. Tests must
// pair it with Clear (or Reset) — typically via t.Cleanup.
func Set(p Point, h Hook) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := hooks[p]; !dup {
		active.Add(1)
	}
	hooks[p] = h
}

// Clear removes the hook for p, if any.
func Clear(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[p]; ok {
		delete(hooks, p)
		active.Add(-1)
	}
}

// Reset removes every installed hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = map[Point]Hook{}
	active.Store(0)
}

// Fire invokes the hook installed at p with arg and returns its error.
// With no hook installed it returns nil. Panics propagate to the
// caller by design: that is how worker-crash injection works.
func Fire(p Point, arg any) error {
	if !Active() {
		return nil
	}
	mu.RLock()
	h := hooks[p]
	mu.RUnlock()
	if h == nil {
		return nil
	}
	return h(arg)
}

// FireCtx is Fire for call sites that carry a context: when a hook is
// installed and a trace span is active, the injection is recorded as a
// "fault.injected" event on the span before the hook runs — before,
// because the hook may panic, and a crash injection must still leave
// its trace. Without a hook (the production state) it costs the same
// single atomic load as Fire.
func FireCtx(ctx context.Context, p Point, arg any) error {
	if !Active() {
		return nil
	}
	mu.RLock()
	h := hooks[p]
	mu.RUnlock()
	if h == nil {
		return nil
	}
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.Event("fault.injected", fmt.Sprintf("%s arg=%v", p, arg))
	}
	return h(arg)
}
