package faults

import (
	"errors"
	"testing"
)

func TestFireWithoutHook(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("no hooks installed but Active() = true")
	}
	if err := Fire(CSVRecord, 1); err != nil {
		t.Fatalf("unhooked Fire returned %v", err)
	}
}

func TestSetFireClear(t *testing.T) {
	t.Cleanup(Reset)
	want := errors.New("boom")
	Set(CSVRecord, func(arg any) error {
		if arg.(int) != 7 {
			t.Fatalf("arg = %v", arg)
		}
		return want
	})
	if !Active() {
		t.Fatal("hook installed but Active() = false")
	}
	if err := Fire(CSVRecord, 7); !errors.Is(err, want) {
		t.Fatalf("Fire = %v, want %v", err, want)
	}
	// Other points stay unhooked.
	if err := Fire(RemedyNode, uint32(3)); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	Clear(CSVRecord)
	if Active() {
		t.Fatal("Clear left Active() = true")
	}
	if err := Fire(CSVRecord, 7); err != nil {
		t.Fatalf("cleared hook still fires: %v", err)
	}
}

func TestSetReplacesWithoutLeakingActiveCount(t *testing.T) {
	t.Cleanup(Reset)
	Set(RemedyNode, func(any) error { return nil })
	Set(RemedyNode, func(any) error { return errors.New("second") })
	if err := Fire(RemedyNode, uint32(0)); err == nil {
		t.Fatal("replacement hook not installed")
	}
	Clear(RemedyNode)
	if Active() {
		t.Fatal("double Set / single Clear leaked the active count")
	}
}

func TestHookPanicPropagates(t *testing.T) {
	t.Cleanup(Reset)
	Set(IdentifyWorker, func(any) error { panic("injected crash") })
	defer func() {
		if recover() == nil {
			t.Fatal("hook panic did not propagate")
		}
	}()
	_ = Fire(IdentifyWorker, uint32(1))
}
