package faults

// This file is the network half of the fault harness: a deterministic
// lossy network for inter-node HTTP traffic. Where faults.Point hooks
// fire inside one process, NetFaults sits between processes (or, in
// tests, between httptest servers standing in for them) as an
// http.RoundTripper that drops, delays, duplicates, or partitions
// requests per directed node pair. Chaos tests drive it to prove the
// cluster's claims — partition → heal → byte-identical logs, a
// deposed node rejoining through a flaky link — without ever touching
// a real socket option.
//
// Determinism is the point. Every probabilistic decision draws from
// one injected *rand.Rand (the repo's stats.NewRNG), so a seed
// reproduces a failure schedule exactly; there is no wall clock and
// no ambient entropy anywhere in the layer.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand" //lint:allow determinism NetFaults draws from an injected seeded source (stats.NewRNG); no ambient entropy
	"net/http"
	"sync"
	"time"
)

// ErrNetDropped is the error a dropped or partitioned request surfaces
// to the sender — indistinguishable from a dead link, which is the
// model: the bytes never arrived, and the sender cannot know whether
// the receiver processed anything.
var ErrNetDropped = errors.New("faults: request dropped by injected network fault")

// Rule is one directed link's fault schedule. Probabilities are in
// [0, 1] and are evaluated per attempt against the injected RNG.
type Rule struct {
	// Partition blackholes the link entirely: every request errors
	// with ErrNetDropped before any bytes move.
	Partition bool
	// Drop is the probability a request vanishes in flight. Like a
	// real lost datagram it is dropped before delivery, so the
	// receiver never sees it.
	Drop float64
	// Dup is the probability a request is delivered twice — the
	// retransmission race every idempotent handler must survive. The
	// duplicate is delivered first; its response is discarded.
	Dup float64
	// Delay is the probability a request is delayed in flight, by
	// DelayFor, before delivery.
	Delay    float64
	DelayFor time.Duration
}

// NetFaults is a deterministic lossy network between named nodes. The
// zero value is unusable; construct with NewNetFaults. All methods are
// safe for concurrent use — requests race against rule changes by
// design, exactly like packets race a partition healing.
type NetFaults struct {
	mu sync.Mutex
	// rng is the single injected entropy source; guarded by mu because
	// rand.Rand is not concurrency-safe.
	rng *rand.Rand
	// rules maps directed "from→to" links to their schedules.
	rules map[string]Rule
	// counts tallies injected events per directed link for test
	// assertions: dropped, duplicated, delayed requests.
	counts map[string]*Counts
}

// Counts tallies one directed link's injected events.
type Counts struct {
	Dropped   int
	Duplicate int
	Delayed   int
}

// NewNetFaults builds a fault-free network over the given RNG (use
// stats.NewRNG for a seeded deterministic source). Until rules are
// installed every request passes through untouched.
func NewNetFaults(rng *rand.Rand) *NetFaults {
	return &NetFaults{
		rng:    rng,
		rules:  make(map[string]Rule),
		counts: make(map[string]*Counts),
	}
}

func linkKey(from, to string) string { return from + "→" + to }

// SetRule installs the fault schedule for the directed link from→to,
// replacing any previous one.
func (nf *NetFaults) SetRule(from, to string, r Rule) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.rules[linkKey(from, to)] = r
}

// Partition blackholes both directions between a and b.
func (nf *NetFaults) Partition(a, b string) {
	nf.PartitionOneWay(a, b)
	nf.PartitionOneWay(b, a)
}

// PartitionOneWay blackholes the directed link from→to only — the
// asymmetric failure (a half-broken switch port) that breaks naive
// "if I can reach them they can reach me" assumptions.
func (nf *NetFaults) PartitionOneWay(from, to string) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	r := nf.rules[linkKey(from, to)]
	r.Partition = true
	nf.rules[linkKey(from, to)] = r
}

// Heal clears the partition bit in both directions between a and b,
// leaving any probabilistic faults (drop/dup/delay) in place — a link
// can come back flaky, which is how links actually come back.
func (nf *NetFaults) Heal(a, b string) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	for _, k := range []string{linkKey(a, b), linkKey(b, a)} {
		r := nf.rules[k]
		r.Partition = false
		nf.rules[k] = r
	}
}

// HealAll removes every rule: the network is perfect again.
func (nf *NetFaults) HealAll() {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.rules = make(map[string]Rule)
}

// CountsFor returns a copy of the event tally for the directed link.
func (nf *NetFaults) CountsFor(from, to string) Counts {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	if c := nf.counts[linkKey(from, to)]; c != nil {
		return *c
	}
	return Counts{}
}

// decide rolls the link's schedule for one request and tallies what it
// injects. It returns whether to drop, whether to deliver a duplicate
// first, and how long to delay delivery.
func (nf *NetFaults) decide(from, to string) (drop, dup bool, delay time.Duration) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	r, ok := nf.rules[linkKey(from, to)]
	if !ok {
		return false, false, 0
	}
	c := nf.counts[linkKey(from, to)]
	if c == nil {
		c = &Counts{}
		nf.counts[linkKey(from, to)] = c
	}
	if r.Partition {
		c.Dropped++
		return true, false, 0
	}
	if r.Drop > 0 && nf.rng.Float64() < r.Drop {
		c.Dropped++
		return true, false, 0
	}
	if r.Dup > 0 && nf.rng.Float64() < r.Dup {
		c.Duplicate = c.Duplicate + 1
		dup = true
	}
	if r.Delay > 0 && nf.rng.Float64() < r.Delay {
		c.Delayed++
		delay = r.DelayFor
	}
	return false, dup, delay
}

// netTransport is the injectable RoundTripper: it resolves the target
// node from the request URL's host, rolls the link's schedule, and
// forwards (or refuses) accordingly.
type netTransport struct {
	nf   *NetFaults
	from string
	// hosts maps request URL hosts ("127.0.0.1:43817") to node IDs.
	hosts map[string]string
	// next performs the real delivery; nil means
	// http.DefaultTransport.
	next http.RoundTripper
}

// Transport returns an http.RoundTripper that subjects every request
// from the named node to the network's fault schedules. hosts maps
// request URL hosts to receiver node IDs (for httptest servers, the
// listener's host:port); requests to unmapped hosts pass through
// untouched. next is the real transport (nil = http.DefaultTransport).
func (nf *NetFaults) Transport(from string, hosts map[string]string, next http.RoundTripper) http.RoundTripper {
	h := make(map[string]string, len(hosts))
	for host, id := range hosts {
		h[host] = id
	}
	return &netTransport{nf: nf, from: from, hosts: h, next: next}
}

// Client wraps Transport in an *http.Client, the form the cluster's
// Config.HTTP field takes.
func (nf *NetFaults) Client(from string, hosts map[string]string, next http.RoundTripper) *http.Client {
	return &http.Client{Transport: nf.Transport(from, hosts, next)}
}

func (t *netTransport) real() http.RoundTripper {
	if t.next != nil {
		return t.next
	}
	return http.DefaultTransport
}

// RoundTrip applies the link's schedule to one request. A duplicated
// request is delivered twice sequentially — duplicate first, its
// response discarded — modelling a retransmission the receiver must
// deduplicate. Delays happen before delivery, like queueing in a
// congested link.
func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	to, ok := t.hosts[req.URL.Host]
	if !ok {
		return t.real().RoundTrip(req)
	}
	drop, dup, delay := t.nf.decide(t.from, to)
	if drop {
		return nil, fmt.Errorf("%w: %s→%s %s %s", ErrNetDropped, t.from, to, req.Method, req.URL.Path)
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	if !dup || req.Body == nil {
		if dup {
			// A bodiless request duplicates by simply sending twice.
			if resp, err := t.real().RoundTrip(cloneRequest(req, nil)); err == nil {
				drain(resp)
			}
		}
		return t.real().RoundTrip(req)
	}
	// Duplicating a request with a body needs the bytes twice.
	body, err := io.ReadAll(req.Body)
	if err != nil {
		return nil, err
	}
	if err := req.Body.Close(); err != nil {
		return nil, err
	}
	if resp, err := t.real().RoundTrip(cloneRequest(req, body)); err == nil {
		drain(resp)
	}
	return t.real().RoundTrip(cloneRequest(req, body))
}

// cloneRequest copies req with the given body (nil for bodiless).
func cloneRequest(req *http.Request, body []byte) *http.Request {
	c := req.Clone(req.Context())
	if body != nil {
		c.Body = io.NopCloser(bytes.NewReader(body))
		c.ContentLength = int64(len(body))
	}
	return c
}

// drain discards a duplicate delivery's response so the underlying
// connection is reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body) //lint:allow errdiscard duplicate delivery's response is discarded by design
	_ = resp.Body.Close()                 //lint:allow errdiscard duplicate delivery's response is discarded by design
}
