// Package remedy implements the paper's dataset remedy (Algorithm 2,
// §IV): it walks the hierarchy node by node, re-identifies the biased
// regions of each node against the evolving dataset, computes the
// number of positive/negative instances to update from Equation (1),
// and applies one of the four pre-processing techniques —
// oversampling, undersampling, preferential sampling, or data
// massaging (§IV-A) — so that each region's imbalance score approaches
// that of its neighboring region.
package remedy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/index"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// remedyCounters resolves the remedy metric names once per run so the
// per-region loop only does atomic adds. All fields may be nil (no
// registry in ctx); the instruments no-op then.
type remedyCounters struct {
	added, removed, flipped, regions, skipped *obs.Counter
}

func newRemedyCounters(ctx context.Context) remedyCounters {
	m := obs.MetricsFrom(ctx)
	if m == nil {
		return remedyCounters{}
	}
	return remedyCounters{
		added:   m.Counter("remedy.samples_added"),
		removed: m.Counter("remedy.samples_removed"),
		flipped: m.Counter("remedy.samples_flipped"),
		regions: m.Counter("remedy.regions"),
		skipped: m.Counter("remedy.regions_skipped"),
	}
}

// record folds one region action into the counters and stamps the
// region's span.
func (rc remedyCounters) record(sp *obs.Span, act Action) {
	rc.regions.Inc()
	rc.added.Add(int64(act.Added))
	rc.removed.Add(int64(act.Removed))
	rc.flipped.Add(int64(act.Flipped))
	if act.Skipped != "" {
		rc.skipped.Inc()
	}
	if sp != nil {
		sp.SetInt("added", int64(act.Added))
		sp.SetInt("removed", int64(act.Removed))
		sp.SetInt("flipped", int64(act.Flipped))
		if act.Skipped != "" {
			sp.SetStr("skipped", act.Skipped)
		}
	}
}

// Technique selects the pre-processing technique of §IV-A.
type Technique string

const (
	// Oversampling duplicates minority-class instances ("DP" in the
	// paper's figures).
	Oversampling Technique = "DP"
	// Undersampling removes majority-class instances ("US").
	Undersampling Technique = "US"
	// PreferentialSampling removes borderline majority instances and
	// duplicates borderline minority instances, ranked by a Naïve
	// Bayes model ("PS").
	PreferentialSampling Technique = "PS"
	// Massaging relabels borderline majority instances ("Massaging").
	Massaging Technique = "MS"
)

// Techniques lists all four in the paper's presentation order.
var Techniques = []Technique{Oversampling, Undersampling, PreferentialSampling, Massaging}

// ParseTechnique resolves a technique from its short code (PS, US, DP,
// MS, case-insensitive) or its long name.
func ParseTechnique(s string) (Technique, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	for _, t := range Techniques {
		if up == string(t) || strings.EqualFold(s, t.Name()) {
			return t, nil
		}
	}
	return "", fmt.Errorf("remedy: unknown technique %q (PS, US, DP, MS)", s)
}

// Name returns the long name used in prose.
func (t Technique) Name() string {
	switch t {
	case Oversampling:
		return "Oversampling"
	case Undersampling:
		return "Undersampling"
	case PreferentialSampling:
		return "Preferential Sampling"
	case Massaging:
		return "Data Massaging"
	}
	return string(t)
}

// Options configures a remedy run.
type Options struct {
	// Identify carries the IBS parameters (τ_c, T, k, scope).
	Identify core.Config
	// Technique selects the pre-processing technique; empty means
	// preferential sampling, the paper's best performer.
	Technique Technique
	// Seed drives the uniform selection of instances to duplicate or
	// remove.
	Seed int64
	// MaxAdded caps the total number of duplicated instances; when the
	// cap is exceeded Apply aborts with ErrResourceLimit. It models the
	// memory resource limit the paper reports oversampling hitting in
	// the scalability study (§V-B5). Zero means no cap.
	MaxAdded int
	// Recount is an ablation of the incremental count maintenance: when
	// set, the hierarchy's node tables are fully invalidated and
	// recounted after every node with updates (the straightforward
	// implementation) instead of being adjusted row-by-row as instances
	// are duplicated, removed, or relabeled. Results are identical; the
	// scalability benches quantify the difference.
	Recount bool
	// OneShot is an ablation of Algorithm 2's iterative structure: the
	// whole IBS is identified once against the original dataset and all
	// regions are updated from that single snapshot, instead of
	// re-identifying per node as updates shift neighboring scores. The
	// paper's per-node recount exists precisely because "adjusting one
	// region may impact others" (§VI Limitations); the ablation lets
	// the experiments quantify that choice.
	OneShot bool
}

// mutation records one physical dataset change so the hierarchy's
// cached counts can be maintained incrementally.
type mutation struct {
	kind     mutKind
	row      []int32
	positive bool // label of the added/removed row, or the NEW label of a flip
}

type mutKind uint8

const (
	mutAdd mutKind = iota
	mutRemove
	mutFlip
)

// ErrResourceLimit is returned by Apply when MaxAdded is exceeded.
// Like every mid-run failure of Apply, it comes with a nil dataset and
// a non-nil partial *Report; see Apply for the contract.
var ErrResourceLimit = errors.New("remedy: added-instance budget exceeded")

// Action records the update applied to one biased region.
type Action struct {
	Pattern pattern.Pattern
	// Ratio and NeighborRatio are the scores before the update.
	Ratio, NeighborRatio float64
	// Added, Removed, Flipped count instances duplicated, deleted, and
	// relabeled.
	Added, Removed, Flipped int
	// Skipped is set when the region could not be remedied (e.g. an
	// undefined neighborhood ratio), with the reason.
	Skipped string
}

// Report summarizes a remedy run.
type Report struct {
	Technique Technique
	Actions   []Action
	// BiasedRegions is the total number of biased regions encountered
	// across all nodes (a region adjusted at one node may reappear at
	// another as scores shift).
	BiasedRegions int
	// Added, Removed, Flipped aggregate the per-action counts.
	Added, Removed, Flipped int
}

// Apply runs Algorithm 2 on a copy of d and returns the remedied
// dataset. d itself is not modified.
//
// Error contract: when Apply (or ApplyCtx) fails after remediation has
// started — the MaxAdded budget trips (ErrResourceLimit), the context
// is cancelled, or an injected fault fires — the returned dataset is
// nil and the returned *Report is non-nil and partial: Actions lists
// every region processed before the failure, and the Added, Removed,
// Flipped, and BiasedRegions counters are accurate for exactly those
// actions. Configuration errors detected before any work return a nil
// report.
func Apply(d *dataset.Dataset, opts Options) (*dataset.Dataset, *Report, error) {
	return ApplyCtx(context.Background(), d, opts)
}

// ApplyCtx is Apply under a context. The remedy loop checks ctx
// between hierarchy nodes and between regions within a node; on
// cancellation it stops promptly and returns the partial Report
// alongside ctx.Err(), per the contract documented on Apply.
func ApplyCtx(ctx context.Context, d *dataset.Dataset, opts Options) (*dataset.Dataset, *Report, error) {
	if opts.Technique == "" {
		opts.Technique = PreferentialSampling
	}
	switch opts.Technique {
	case Oversampling, Undersampling, PreferentialSampling, Massaging:
	default:
		return nil, nil, fmt.Errorf("remedy: unknown technique %q", opts.Technique)
	}
	cur := d.Clone()
	h, err := core.NewHierarchy(cur)
	if err != nil {
		return nil, nil, err
	}
	if err := checkConfig(opts.Identify); err != nil {
		return nil, nil, err
	}
	rng := stats.NewRNG(opts.Seed)
	rep := &Report{Technique: opts.Technique}

	ctx, sp := obs.StartSpan(ctx, "remedy.apply")
	sp.SetStr("technique", string(opts.Technique))
	defer sp.End()
	defer func() {
		if sp == nil {
			return
		}
		sp.SetInt("biased_regions", int64(rep.BiasedRegions))
		sp.SetInt("added", int64(rep.Added))
		sp.SetInt("removed", int64(rep.Removed))
		sp.SetInt("flipped", int64(rep.Flipped))
	}()
	counters := newRemedyCounters(ctx)
	lg := obs.LoggerFrom(ctx).Scope("remedy")

	needRanker := opts.Technique == PreferentialSampling || opts.Technique == Massaging
	if opts.OneShot {
		return applyOneShot(ctx, cur, h, opts, rng, rep, needRanker)
	}
	// Region row sets come from a bitmap index over the current
	// snapshot. Within a node the regions are disjoint, so appends and
	// label flips cannot perturb a sibling's row set — only removals
	// (which re-index the dataset) invalidate the index mid-node; then
	// we fall back to scans until the node boundary rebuild.
	var ix *index.Index
	ixStale := true
	for _, mask := range h.MasksForScope(opts.Identify.Scope) {
		if err := ctx.Err(); err != nil {
			return nil, rep, err
		}
		if faults.Active() {
			if err := faults.FireCtx(ctx, faults.RemedyNode, mask); err != nil {
				return nil, rep, fmt.Errorf("remedy: node %#x: %w", mask, err)
			}
		}
		regions, err := h.BiasedRegionsInNodeCtx(ctx, mask, opts.Identify)
		if err != nil {
			return nil, rep, err
		}
		if len(regions) == 0 {
			continue
		}
		rep.BiasedRegions += len(regions)
		if lg.On(obs.LevelDebug) {
			lg.Debug("node", "mask", fmt.Sprintf("%#x", mask), "biased_regions", len(regions))
		}
		// The ranker scores borderline instances against the current
		// dataset state (labels may have been flipped by earlier nodes).
		var scores []float64
		if needRanker {
			var nb ml.NaiveBayes
			if err := nb.FitDataset(cur); err != nil {
				return nil, rep, err
			}
			scores = nb.ProbaDataset(cur)
		}
		if ixStale {
			ix = index.Build(cur)
			ixStale = false
		}
		changed := false
		var muts []mutation
		for _, r := range regions {
			if err := ctx.Err(); err != nil {
				return nil, rep, err
			}
			var rows []int
			if ixStale {
				rows = h.Space.RowsIn(cur, r.Pattern)
			} else {
				rows = ix.RowsIn(h.Space, r.Pattern)
			}
			// Each region gets its own action span with the outcome
			// stamped on it; the pattern string is only rendered when a
			// tracer is actually recording.
			_, rsp := obs.StartSpan(ctx, "remedy.region")
			if rsp != nil {
				rsp.SetStr("pattern", h.Space.String(r.Pattern))
			}
			muts = muts[:0]
			act := applyRegion(cur, r, rows, opts.Technique, scores, &muts, rng)
			counters.record(rsp, act)
			rsp.End()
			rep.Actions = append(rep.Actions, act)
			rep.Added += act.Added
			rep.Removed += act.Removed
			rep.Flipped += act.Flipped
			if !opts.Recount {
				// Incremental count maintenance: fold each physical
				// change into the hierarchy's cached tables so the next
				// node's identification (Algorithm 2's re-identification
				// per node) sees the updated scores without recounting.
				applyMutations(h, muts)
			}
			if opts.MaxAdded > 0 && rep.Added > opts.MaxAdded {
				return nil, rep, ErrResourceLimit
			}
			if act.Removed > 0 {
				ixStale = true
			}
			if act.Added+act.Removed+act.Flipped > 0 {
				changed = true
			}
		}
		if changed {
			if opts.Recount {
				// Ablation: discard and recount every node table, as a
				// straightforward implementation of Algorithm 2 would.
				h.SetData(cur)
			}
			ixStale = true
		}
	}
	return cur, rep, nil
}

// applyMutations folds recorded dataset changes into the hierarchy's
// cached count tables.
func applyMutations(h *core.Hierarchy, muts []mutation) {
	for _, m := range muts {
		switch m.kind {
		case mutAdd:
			h.AddRow(m.row, m.positive)
		case mutRemove:
			h.RemoveRow(m.row, m.positive)
		case mutFlip:
			h.FlipRow(m.row, m.positive)
		}
	}
}

// applyOneShot is the OneShot ablation: one identification pass over
// the whole hierarchy, then all updates from that snapshot with no
// recounting between nodes.
func applyOneShot(ctx context.Context, cur *dataset.Dataset, h *core.Hierarchy, opts Options, rng interface {
	Intn(int) int
	Shuffle(int, func(int, int))
}, rep *Report, needRanker bool) (*dataset.Dataset, *Report, error) {
	res, err := h.IdentifyOptimizedCtx(ctx, opts.Identify)
	if err != nil {
		return nil, rep, err
	}
	rep.BiasedRegions = len(res.Regions)
	counters := newRemedyCounters(ctx)
	var scores []float64
	if needRanker && len(res.Regions) > 0 {
		var nb ml.NaiveBayes
		if err := nb.FitDataset(cur); err != nil {
			return nil, rep, err
		}
		scores = nb.ProbaDataset(cur)
	}
	// One-shot regions span different nodes and may overlap (a region
	// can dominate another), so the bitmap index is only trusted while
	// the dataset is untouched; any mutation switches row lookup to
	// scans.
	ix := index.Build(cur)
	for _, r := range res.Regions {
		if err := ctx.Err(); err != nil {
			return nil, rep, err
		}
		// Removals re-index the dataset, so the ranker scores must be
		// refreshed once the first destructive action lands; keeping a
		// single snapshot is exactly the ablated behaviour, but stale
		// *indices* would be a bug rather than an ablation. Rebuild the
		// score vector cheaply when lengths diverge.
		if needRanker && len(scores) != cur.Len() {
			var nb ml.NaiveBayes
			if err := nb.FitDataset(cur); err != nil {
				return nil, rep, err
			}
			scores = nb.ProbaDataset(cur)
		}
		var rows []int
		if ix != nil {
			rows = ix.RowsIn(h.Space, r.Pattern)
		} else {
			rows = h.Space.RowsIn(cur, r.Pattern)
		}
		_, rsp := obs.StartSpan(ctx, "remedy.region")
		if rsp != nil {
			rsp.SetStr("pattern", h.Space.String(r.Pattern))
		}
		var muts []mutation
		act := applyRegion(cur, r, rows, opts.Technique, scores, &muts, rng)
		counters.record(rsp, act)
		rsp.End()
		if act.Added+act.Removed > 0 {
			// Label flips leave row membership intact; only appends and
			// removals change which rows a later (possibly overlapping)
			// region matches.
			ix = nil
		}
		rep.Actions = append(rep.Actions, act)
		rep.Added += act.Added
		rep.Removed += act.Removed
		rep.Flipped += act.Flipped
		if opts.MaxAdded > 0 && rep.Added > opts.MaxAdded {
			return nil, rep, ErrResourceLimit
		}
	}
	return cur, rep, nil
}

func checkConfig(cfg core.Config) error {
	if cfg.TauC < 0 || cfg.T < 1 {
		return fmt.Errorf("remedy: invalid identification config (τ_c=%v, T=%d)", cfg.TauC, cfg.T)
	}
	return nil
}

// applyRegion remedies one biased region in place (on cur) and returns
// the action taken. rows are the indices of cur's instances in the
// region (from the bitmap index or a scan); scores is the ranker's
// P(y=1|x) per instance, only present for the ranker-based techniques.
func applyRegion(cur *dataset.Dataset, r core.Region, rows []int, tech Technique, scores []float64, muts *[]mutation, rng interface {
	Intn(int) int
	Shuffle(int, func(int, int))
}) Action {
	act := Action{Pattern: r.Pattern.Clone(), Ratio: r.Ratio, NeighborRatio: r.NeighborRatio}
	rho := r.NeighborRatio
	if rho < 0 {
		// The neighboring region has no negatives: Equation (1) has no
		// finite target. The paper's remedy skips such regions.
		act.Skipped = "undefined neighborhood ratio"
		return act
	}
	var posIdx, negIdx []int
	for _, i := range rows {
		if cur.Labels[i] == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	P, N := float64(len(posIdx)), float64(len(negIdx))
	ratioHigh := r.Ratio < 0 || r.Ratio > rho // sentinel −1 means "no negatives": excess positives

	switch tech {
	case Oversampling:
		if ratioHigh {
			// Add negatives: P/(N+n_r) = ρ  →  n_r = P/ρ − N.
			if rho == 0 || len(negIdx) == 0 {
				act.Skipped = "no negative instances to duplicate"
				return act
			}
			n := int(math.Round(P/rho - N))
			act.Added = duplicate(cur, negIdx, n, muts, rng)
		} else {
			// Add positives: (P+p_r)/N = ρ  →  p_r = ρN − P.
			if len(posIdx) == 0 {
				act.Skipped = "no positive instances to duplicate"
				return act
			}
			n := int(math.Round(rho*N - P))
			act.Added = duplicate(cur, posIdx, n, muts, rng)
		}
	case Undersampling:
		if ratioHigh {
			// Remove positives: (P+p_r)/N = ρ with p_r < 0.
			n := int(math.Round(P - rho*N))
			act.Removed = remove(cur, posIdx, n, muts, rng)
		} else {
			// Remove negatives: P/(N+n_r) = ρ with n_r < 0.
			if rho == 0 {
				act.Skipped = "neighborhood ratio is zero; cannot undersample negatives"
				return act
			}
			n := int(math.Round(N - P/rho))
			act.Removed = remove(cur, negIdx, n, muts, rng)
		}
	case PreferentialSampling:
		// (P−k)/(N+k) = ρ  →  k = (P − ρN)/(1+ρ), symmetric for the
		// opposite direction.
		if ratioHigh {
			k := int(math.Round((P - rho*N) / (1 + rho)))
			if len(negIdx) == 0 {
				act.Skipped = "no negative instances to duplicate"
				return act
			}
			// Remove the k positives most likely negative, duplicate
			// the k negatives most likely positive.
			borderPos := rankAscending(posIdx, scores)  // lowest P(y=1) first
			borderNeg := rankDescending(negIdx, scores) // highest P(y=1) first
			act.Added = duplicateRanked(cur, borderNeg, k, muts)
			act.Removed = remove(cur, borderPos, min(k, len(borderPos)), muts, nil)
		} else {
			k := int(math.Round((rho*N - P) / (1 + rho)))
			if len(posIdx) == 0 {
				act.Skipped = "no positive instances to duplicate"
				return act
			}
			borderNeg := rankAscending(negIdx, invert(scores)) // lowest P(y=0) first
			borderPos := rankDescending(posIdx, invert(scores))
			act.Added = duplicateRanked(cur, borderPos, k, muts)
			act.Removed = remove(cur, borderNeg, min(k, len(borderNeg)), muts, nil)
		}
	case Massaging:
		// Flip k borderline majority labels: same k as preferential
		// sampling, (P−k)/(N+k) = ρ.
		if ratioHigh {
			k := int(math.Round((P - rho*N) / (1 + rho)))
			border := rankAscending(posIdx, scores) // positives most likely negative
			act.Flipped = flip(cur, border, k, muts)
		} else {
			k := int(math.Round((rho*N - P) / (1 + rho)))
			border := rankDescending(negIdx, scores) // negatives most likely positive
			act.Flipped = flip(cur, border, k, muts)
		}
	}
	return act
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func invert(scores []float64) []float64 {
	if scores == nil {
		return nil
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = 1 - s
	}
	return out
}

// rankAscending orders idx by score ascending (stable on index).
func rankAscending(idx []int, scores []float64) []int {
	out := append([]int(nil), idx...)
	sort.SliceStable(out, func(a, b int) bool { return scores[out[a]] < scores[out[b]] })
	return out
}

// rankDescending orders idx by score descending (stable on index).
func rankDescending(idx []int, scores []float64) []int {
	out := append([]int(nil), idx...)
	sort.SliceStable(out, func(a, b int) bool { return scores[out[a]] > scores[out[b]] })
	return out
}

// duplicate appends n copies drawn uniformly (with replacement beyond
// the pool size) from the pool of instance indices. Returns the number
// added.
func duplicate(d *dataset.Dataset, pool []int, n int, muts *[]mutation, rng interface{ Intn(int) int }) int {
	if n <= 0 || len(pool) == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		j := pool[rng.Intn(len(pool))]
		row := append([]int32(nil), d.Rows[j]...)
		d.Append(row, d.Labels[j]) //lint:allow errdiscard row cloned from the same dataset, so the width invariant holds
		*muts = append(*muts, mutation{kind: mutAdd, row: row, positive: d.Labels[j] == 1})
	}
	return n
}

// duplicateRanked appends copies of the first k ranked indices,
// cycling if k exceeds the pool. Returns the number added.
func duplicateRanked(d *dataset.Dataset, ranked []int, k int, muts *[]mutation) int {
	if k <= 0 || len(ranked) == 0 {
		return 0
	}
	for i := 0; i < k; i++ {
		j := ranked[i%len(ranked)]
		row := append([]int32(nil), d.Rows[j]...)
		d.Append(row, d.Labels[j]) //lint:allow errdiscard row cloned from the same dataset, so the width invariant holds
		*muts = append(*muts, mutation{kind: mutAdd, row: row, positive: d.Labels[j] == 1})
	}
	return k
}

// remove deletes up to n instances from the pool. With an RNG the
// victims are drawn uniformly; with nil the pool's order (the ranker's
// order) is used. Returns the number removed. The dataset is rebuilt
// in place.
func remove(d *dataset.Dataset, pool []int, n int, muts *[]mutation, rng interface{ Shuffle(int, func(int, int)) }) int {
	if n <= 0 || len(pool) == 0 {
		return 0
	}
	victims := append([]int(nil), pool...)
	if rng != nil {
		rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	}
	if n > len(victims) {
		n = len(victims)
	}
	for _, v := range victims[:n] {
		*muts = append(*muts, mutation{kind: mutRemove, row: d.Rows[v], positive: d.Labels[v] == 1})
	}
	*d = *d.Remove(victims[:n])
	return n
}

// flip relabels the first k ranked instances. Returns the number
// flipped.
func flip(d *dataset.Dataset, ranked []int, k int, muts *[]mutation) int {
	if k > len(ranked) {
		k = len(ranked)
	}
	for i := 0; i < k; i++ {
		d.Labels[ranked[i]] = 1 - d.Labels[ranked[i]]
		*muts = append(*muts, mutation{kind: mutFlip, row: d.Rows[ranked[i]], positive: d.Labels[ranked[i]] == 1})
	}
	if k < 0 {
		return 0
	}
	return k
}
