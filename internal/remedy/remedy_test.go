package remedy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/synth"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "a", Values: []string{"0", "1", "2"}, Protected: true},
			{Name: "b", Values: []string{"0", "1", "2"}, Protected: true},
		},
	}
}

// singleBias builds a dataset where only region (a=1, b=2) is skewed
// (≈70% positive) against an otherwise 40%-positive background.
func singleBias(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New(testSchema())
	r := stats.NewRNG(3)
	for i := 0; i < 6000; i++ {
		row := []int32{int32(r.Intn(3)), int32(r.Intn(3))}
		rate := 0.4
		if row[0] == 1 && row[1] == 2 {
			rate = 0.7
		}
		var label int8
		if r.Float64() < rate {
			label = 1
		}
		d.Append(row, label)
	}
	return d
}

func leafOpts(tech Technique) Options {
	return Options{
		Identify:  core.Config{TauC: 0.3, T: 1, Scope: core.Leaf},
		Technique: tech,
		Seed:      7,
	}
}

func regionCounts(t *testing.T, d *dataset.Dataset, pairs ...string) pattern.Counts {
	t.Helper()
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sp.Parse(pairs...)
	if err != nil {
		t.Fatal(err)
	}
	return sp.CountPattern(d, p)
}

func TestApplyRejectsBadInput(t *testing.T) {
	d := singleBias(t)
	if _, _, err := Apply(d, Options{Identify: core.Config{TauC: 0.1, T: 1}, Technique: "bogus"}); err == nil {
		t.Fatal("unknown technique must error")
	}
	if _, _, err := Apply(d, Options{Identify: core.Config{TauC: -1, T: 1}}); err == nil {
		t.Fatal("invalid config must error")
	}
	noProt := dataset.New(&dataset.Schema{Target: "y",
		Attrs: []dataset.Attr{{Name: "a", Values: []string{"0"}}}})
	noProt.Append([]int32{0}, 1)
	if _, _, err := Apply(noProt, leafOpts(Massaging)); err == nil {
		t.Fatal("no protected attributes must error")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	d := singleBias(t)
	before := d.Len()
	pos := d.PositiveCount()
	if _, _, err := Apply(d, leafOpts(Massaging)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != before || d.PositiveCount() != pos {
		t.Fatal("Apply mutated the input dataset")
	}
}

// TestTechniquesHitTargetRatio verifies Equation (1): with a single
// biased leaf region, each technique moves the region's imbalance score
// to its (snapshot) neighborhood ratio within rounding tolerance.
func TestTechniquesHitTargetRatio(t *testing.T) {
	d := singleBias(t)
	// Snapshot evidence for the biased region.
	res, err := core.IdentifyOptimized(d, core.Config{TauC: 0.3, T: 1, Scope: core.Leaf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("expected exactly 1 biased leaf region, got %d", len(res.Regions))
	}
	rho := res.Regions[0].NeighborRatio
	for _, tech := range Techniques {
		out, rep, err := Apply(d, leafOpts(tech))
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if rep.BiasedRegions == 0 {
			t.Fatalf("%s: no biased regions reported", tech)
		}
		got := regionCounts(t, out, "a", "1", "b", "2").Ratio()
		if math.Abs(got-rho) > 0.02 {
			t.Fatalf("%s: post-remedy ratio %v, want ≈ %v", tech, got, rho)
		}
	}
}

func TestOversamplingOnlyAdds(t *testing.T) {
	d := singleBias(t)
	out, rep, err := Apply(d, leafOpts(Oversampling))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 0 || rep.Flipped != 0 {
		t.Fatalf("oversampling removed %d / flipped %d", rep.Removed, rep.Flipped)
	}
	if rep.Added == 0 || out.Len() != d.Len()+rep.Added {
		t.Fatalf("added %d, sizes %d -> %d", rep.Added, d.Len(), out.Len())
	}
	// The biased region had excess positives, so negatives are added.
	before := regionCounts(t, d, "a", "1", "b", "2")
	after := regionCounts(t, out, "a", "1", "b", "2")
	if after.Pos != before.Pos || after.Neg() <= before.Neg() {
		t.Fatalf("counts before %+v after %+v", before, after)
	}
}

func TestUndersamplingOnlyRemoves(t *testing.T) {
	d := singleBias(t)
	out, rep, err := Apply(d, leafOpts(Undersampling))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 0 || rep.Flipped != 0 {
		t.Fatalf("undersampling added %d / flipped %d", rep.Added, rep.Flipped)
	}
	if rep.Removed == 0 || out.Len() != d.Len()-rep.Removed {
		t.Fatalf("removed %d, sizes %d -> %d", rep.Removed, d.Len(), out.Len())
	}
	before := regionCounts(t, d, "a", "1", "b", "2")
	after := regionCounts(t, out, "a", "1", "b", "2")
	if after.Neg() != before.Neg() || after.Pos >= before.Pos {
		t.Fatalf("counts before %+v after %+v", before, after)
	}
}

func TestMassagingPreservesSize(t *testing.T) {
	d := singleBias(t)
	out, rep, err := Apply(d, leafOpts(Massaging))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != d.Len() {
		t.Fatalf("massaging changed the dataset size: %d -> %d", d.Len(), out.Len())
	}
	if rep.Flipped == 0 || rep.Added != 0 || rep.Removed != 0 {
		t.Fatalf("report %+v", rep)
	}
	// Total flips must equal the change in positive count.
	if d.PositiveCount()-out.PositiveCount() != rep.Flipped {
		t.Fatalf("flip accounting: %d positives removed vs %d flips",
			d.PositiveCount()-out.PositiveCount(), rep.Flipped)
	}
}

func TestPreferentialSamplingBalancesAddsAndRemoves(t *testing.T) {
	d := singleBias(t)
	out, rep, err := Apply(d, leafOpts(PreferentialSampling))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added == 0 || rep.Removed == 0 {
		t.Fatalf("PS should both add and remove, got %+v", rep)
	}
	if rep.Added != rep.Removed {
		t.Fatalf("PS adds (%d) must equal removes (%d) when pools suffice", rep.Added, rep.Removed)
	}
	if out.Len() != d.Len() {
		t.Fatalf("PS size changed: %d -> %d", d.Len(), out.Len())
	}
}

func TestPreferentialSamplingPicksBorderline(t *testing.T) {
	// Region (a=1,b=2) is positive-skewed; PS must remove positives the
	// Naïve Bayes ranker scores closest to the negative class. The
	// remaining positives should therefore have higher mean score than
	// the removed ones. We check indirectly: the region keeps its most
	// confidently positive instances — its post-remedy positive set is a
	// subset biased toward the original high scorers. Since all rows in
	// one region are identical feature-wise here (only two attributes),
	// the stronger check is that the count matches Equation (1), which
	// TestTechniquesHitTargetRatio covers; here we just assert the
	// region-level direction of change.
	d := singleBias(t)
	out, _, err := Apply(d, leafOpts(PreferentialSampling))
	if err != nil {
		t.Fatal(err)
	}
	before := regionCounts(t, d, "a", "1", "b", "2")
	after := regionCounts(t, out, "a", "1", "b", "2")
	if after.Pos >= before.Pos || after.Neg() <= before.Neg() {
		t.Fatalf("PS direction wrong: before %+v after %+v", before, after)
	}
}

func TestLatticeRemedyReducesIBS(t *testing.T) {
	d := synth.Compas(1)
	cfg := core.Config{TauC: 0.1, T: 1}
	before, err := core.IdentifyOptimized(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := Apply(d, Options{Identify: cfg, Technique: PreferentialSampling, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.IdentifyOptimized(out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Regions) >= len(before.Regions) {
		t.Fatalf("remedy did not shrink the IBS: %d -> %d (report %+v)",
			len(before.Regions), len(after.Regions), rep)
	}
}

func TestScopesTouchDifferentAmounts(t *testing.T) {
	d := synth.Compas(2)
	cfg := core.Config{TauC: 0.1, T: 1}
	touched := func(scope core.Scope) int {
		opts := Options{Identify: cfg, Technique: Massaging, Seed: 1}
		opts.Identify.Scope = scope
		_, rep, err := Apply(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Flipped
	}
	lattice := touched(core.Lattice)
	leaf := touched(core.Leaf)
	if lattice <= leaf {
		t.Fatalf("lattice should update more instances than leaf: %d vs %d", lattice, leaf)
	}
}

func TestEquationOneProperty(t *testing.T) {
	// k = (P − ρN)/(1+ρ) must satisfy (P−k)/(N+k) ≈ ρ for any feasible
	// inputs — the preferential-sampling / massaging update count.
	f := func(pRaw, nRaw uint16, rhoRaw uint8) bool {
		P := float64(pRaw%5000) + 1
		N := float64(nRaw%5000) + 1
		rho := float64(rhoRaw%200)/100 + 0.01 // (0.01, 2.01)
		if P/N <= rho {
			return true // not the ratio-high case
		}
		k := (P - rho*N) / (1 + rho)
		got := (P - k) / (N + k)
		return math.Abs(got-rho) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelNeighborhoodSkipped(t *testing.T) {
	// Neighborhood with zero negatives → ratio −1 → region skipped.
	d := dataset.New(testSchema())
	r := stats.NewRNG(5)
	for i := 0; i < 3000; i++ {
		row := []int32{int32(r.Intn(3)), int32(r.Intn(3))}
		label := int8(1) // everything positive…
		if row[0] == 0 && row[1] == 0 && r.Float64() < 0.5 {
			label = 0 // …except half of one region
		}
		d.Append(row, label)
	}
	_, rep, err := Apply(d, leafOpts(Oversampling))
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, a := range rep.Actions {
		if a.Skipped != "" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("expected skipped regions for undefined neighborhood ratios")
	}
}

func TestTechniqueNames(t *testing.T) {
	if Oversampling.Name() != "Oversampling" ||
		Undersampling.Name() != "Undersampling" ||
		PreferentialSampling.Name() != "Preferential Sampling" ||
		Massaging.Name() != "Data Massaging" {
		t.Fatal("technique names")
	}
	if Technique("x").Name() != "x" {
		t.Fatal("unknown technique name should echo")
	}
}

func TestDefaultTechniqueIsPS(t *testing.T) {
	d := singleBias(t)
	_, rep, err := Apply(d, Options{Identify: core.Config{TauC: 0.3, T: 1, Scope: core.Leaf}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Technique != PreferentialSampling {
		t.Fatalf("default technique = %s", rep.Technique)
	}
}

func TestDeterminism(t *testing.T) {
	d := synth.CompasN(1500, 3)
	run := func() (*dataset.Dataset, *Report) {
		out, rep, err := Apply(d, Options{
			Identify:  core.Config{TauC: 0.1, T: 1},
			Technique: Undersampling,
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, rep
	}
	a, ra := run()
	b, rb := run()
	if a.Len() != b.Len() || ra.Removed != rb.Removed {
		t.Fatal("remedy is not deterministic for a fixed seed")
	}
	for i := range a.Rows {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ between identical runs")
		}
	}
}

func TestParseTechnique(t *testing.T) {
	cases := map[string]Technique{
		"PS": PreferentialSampling, "ps": PreferentialSampling,
		"US": Undersampling, "DP": Oversampling, "ms": Massaging,
		"Preferential Sampling": PreferentialSampling,
		"data massaging":        Massaging,
		" us ":                  Undersampling,
	}
	for in, want := range cases {
		got, err := ParseTechnique(in)
		if err != nil || got != want {
			t.Fatalf("ParseTechnique(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTechnique("smote"); err == nil {
		t.Fatal("unknown technique must error")
	}
}
