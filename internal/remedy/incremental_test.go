package remedy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// TestIncrementalEqualsRecount verifies the incremental count
// maintenance against the full-recount ablation: for every technique
// the two paths must produce byte-identical remedied datasets and
// reports, because they differ only in how the hierarchy's tables are
// kept consistent.
func TestIncrementalEqualsRecount(t *testing.T) {
	d := synth.CompasN(3000, 11)
	for _, tech := range Techniques {
		run := func(recount bool) (*Report, []int8, int) {
			out, rep, err := Apply(d, Options{
				Identify:  core.Config{TauC: 0.1, T: 1},
				Technique: tech,
				Seed:      4,
				Recount:   recount,
			})
			if err != nil {
				t.Fatalf("%s recount=%v: %v", tech, recount, err)
			}
			return rep, out.Labels, out.Len()
		}
		repInc, labInc, nInc := run(false)
		repRec, labRec, nRec := run(true)
		if nInc != nRec {
			t.Fatalf("%s: sizes differ: %d vs %d", tech, nInc, nRec)
		}
		if repInc.Added != repRec.Added || repInc.Removed != repRec.Removed ||
			repInc.Flipped != repRec.Flipped || repInc.BiasedRegions != repRec.BiasedRegions {
			t.Fatalf("%s: reports differ: %+v vs %+v", tech, repInc, repRec)
		}
		for i := range labInc {
			if labInc[i] != labRec[i] {
				t.Fatalf("%s: label %d differs", tech, i)
			}
		}
	}
}

// TestHierarchyIncrementalOps verifies AddRow/RemoveRow/FlipRow against
// a recount of the mutated dataset.
func TestHierarchyIncrementalOps(t *testing.T) {
	d := synth.CompasN(800, 13)
	h, err := core.NewHierarchy(d)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize every node table so every cache entry must be kept
	// consistent.
	for _, mask := range h.MasksForScope(core.Lattice) {
		h.Node(mask)
	}
	// Mutate: append a copy of row 0, remove row 1 (logically), flip
	// row 2 — applying the same changes to both the dataset and the
	// hierarchy's caches.
	r0 := append([]int32(nil), d.Rows[0]...)
	d.Append(r0, d.Labels[0])
	h.AddRow(r0, d.Labels[0] == 1)

	h.RemoveRow(d.Rows[1], d.Labels[1] == 1)
	removed := d.Remove([]int{1})

	// The flip targets the removed-dataset's view; find row 2's new
	// position (indices shifted by one).
	h.FlipRow(removed.Rows[1], removed.Labels[1] != 1)
	removed.Labels[1] = 1 - removed.Labels[1]

	// Recount from scratch and compare every node table.
	fresh, err := core.NewHierarchy(removed)
	if err != nil {
		t.Fatal(err)
	}
	if h.Totals() != fresh.Totals() {
		t.Fatalf("totals: incremental %+v vs recount %+v", h.Totals(), fresh.Totals())
	}
	for _, mask := range fresh.MasksForScope(core.Lattice) {
		want := fresh.Node(mask)
		got := h.Node(mask)
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("mask %b key %d: incremental %+v vs recount %+v", mask, k, got[k], c)
			}
		}
		// Entries the incremental path decremented to zero may remain
		// with zero counts; they must not carry residual instances.
		for k, c := range got {
			if c.N != 0 && want[k] != c {
				t.Fatalf("mask %b key %d: stale incremental entry %+v", mask, k, c)
			}
		}
	}
}

func BenchmarkRemedyIncremental(b *testing.B) {
	d := synth.AdultN(8000, 1)
	for _, recount := range []struct {
		name string
		v    bool
	}{{"incremental", false}, {"recount", true}} {
		b.Run(recount.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Apply(d, Options{
					Identify:  core.Config{TauC: 0.5, T: 1},
					Technique: Massaging,
					Seed:      1,
					Recount:   recount.v,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
