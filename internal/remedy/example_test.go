package remedy_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/remedy"
)

// exampleData reproduces Example 8's region: 882 positives and 397
// negatives in (age=25-45, priors=>3) against a 0.64-ratio
// neighborhood.
func exampleData() *dataset.Dataset {
	s := &dataset.Schema{
		Target: "recid",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{">45", "25-45", "<25"}, Protected: true, Ordered: true},
			{Name: "priors", Values: []string{"0", "1-3", ">3"}, Protected: true, Ordered: true},
		},
	}
	d := dataset.New(s)
	add := func(age, priors int32, pos, neg int) {
		for i := 0; i < pos; i++ {
			d.Append([]int32{age, priors}, 1)
		}
		for i := 0; i < neg; i++ {
			d.Append([]int32{age, priors}, 0)
		}
	}
	add(1, 2, 882, 397)
	add(1, 0, 160, 250)
	add(1, 1, 160, 250)
	add(0, 2, 160, 250)
	add(2, 2, 160, 250)
	add(0, 0, 100, 100)
	add(0, 1, 100, 100)
	add(2, 0, 100, 100)
	add(2, 1, 100, 100)
	return d
}

// ExampleApply reproduces Example 8 for data massaging: flipping ~384
// borderline positives drives the region's imbalance score from 2.22 to
// the neighborhood's 0.64. With the neighborhood ratio exactly 640/1000
// the nearest-integer solution of Equation (1) is k = 383
// ((882−383)/(397+383) = 0.6397); the paper's 384 comes from its
// real-data neighborhood ratio of ≈ 0.6376.
func ExampleApply() {
	d := exampleData()
	out, rep, err := remedy.Apply(d, remedy.Options{
		Identify:  core.Config{TauC: 0.3, T: 1, Scope: core.Leaf},
		Technique: remedy.Massaging,
		Seed:      1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// All biased leaf regions are massaged; the running example's region
	// accounts for the 384 flips of Example 8.
	fmt.Printf("dataset size unchanged: %v\n", out.Len() == d.Len())
	for _, act := range rep.Actions {
		if act.Ratio > 2 { // the Example 4 region
			fmt.Printf("flipped %d labels in the 2.22-ratio region\n", act.Flipped)
		}
	}
	// Output:
	// dataset size unchanged: true
	// flipped 383 labels in the 2.22-ratio region
}
