package remedy

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/synth"
)

// TestResourceLimitPartialReport trips the MaxAdded budget mid-run and
// verifies the documented contract: nil dataset, non-nil partial
// report whose aggregate counters match its recorded actions exactly.
func TestResourceLimitPartialReport(t *testing.T) {
	d := synth.CompasN(3000, 21)
	ds, rep, err := Apply(d, Options{
		Identify:  core.Config{TauC: 0.05, T: 1},
		Technique: Oversampling,
		Seed:      1,
		MaxAdded:  3,
	})
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("err = %v, want ErrResourceLimit", err)
	}
	if ds != nil {
		t.Fatal("dataset must be nil on resource-limit failure")
	}
	if rep == nil {
		t.Fatal("partial report must be non-nil")
	}
	if len(rep.Actions) == 0 {
		t.Fatal("partial report must list the actions taken before the trip")
	}
	var added, removed, flipped int
	for _, a := range rep.Actions {
		added += a.Added
		removed += a.Removed
		flipped += a.Flipped
	}
	if added != rep.Added || removed != rep.Removed || flipped != rep.Flipped {
		t.Fatalf("counters %d/%d/%d do not match actions %d/%d/%d",
			rep.Added, rep.Removed, rep.Flipped, added, removed, flipped)
	}
	if rep.Added <= 3 {
		t.Fatalf("budget of 3 reported tripped at Added=%d", rep.Added)
	}
}

func TestApplyPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, rep, err := ApplyCtx(ctx, synth.CompasN(1000, 23), Options{
		Identify: core.Config{TauC: 0.1, T: 1},
		Seed:     1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ds != nil {
		t.Fatal("dataset must be nil on cancellation")
	}
	if rep == nil {
		t.Fatal("partial report must be non-nil")
	}
}

// TestApplyCancelBoundedTime slows every node down through the fault
// hook, cancels mid-remedy, and asserts ApplyCtx returns within 100ms
// with context.Canceled and a coherent partial report.
func TestApplyCancelBoundedTime(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	faults.Set(faults.RemedyNode, func(arg any) error {
		time.Sleep(15 * time.Millisecond)
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, rep, err := ApplyCtx(ctx, synth.CompasN(3000, 25), Options{
			Identify:  core.Config{TauC: 0.05, T: 1},
			Technique: Oversampling,
			Seed:      1,
		})
		done <- outcome{rep, err}
	}()
	time.Sleep(25 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case o := <-done:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("returned %v after cancel, want < 100ms", elapsed)
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
		if o.rep == nil {
			t.Fatal("partial report must be non-nil")
		}
		var added, removed, flipped int
		for _, a := range o.rep.Actions {
			added += a.Added
			removed += a.Removed
			flipped += a.Flipped
		}
		if added != o.rep.Added || removed != o.rep.Removed || flipped != o.rep.Flipped {
			t.Fatalf("partial counters %d/%d/%d do not match actions %d/%d/%d",
				o.rep.Added, o.rep.Removed, o.rep.Flipped, added, removed, flipped)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ApplyCtx did not return after cancellation")
	}
	assertNoGoroutineLeak(t, base)
}

func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestApplyInjectedNodeFault injects a hard error at the second
// hierarchy node and verifies the mid-run failure contract.
func TestApplyInjectedNodeFault(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("node storage failed")
	nodes := 0
	faults.Set(faults.RemedyNode, func(arg any) error {
		nodes++
		if nodes == 2 {
			return boom
		}
		return nil
	})
	ds, rep, err := Apply(synth.CompasN(2000, 27), Options{
		Identify:  core.Config{TauC: 0.1, T: 1},
		Technique: Massaging,
		Seed:      1,
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped injected fault", err)
	}
	if ds != nil {
		t.Fatal("dataset must be nil on mid-run fault")
	}
	if rep == nil {
		t.Fatal("partial report must be non-nil")
	}
}
