package remedy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// TestOneShotAblation quantifies the value of Algorithm 2's per-node
// re-identification: the iterative remedy must leave no more residual
// biased regions than the one-shot ablation (updating one region shifts
// its neighbors' scores, which only the iterative variant observes).
func TestOneShotAblation(t *testing.T) {
	d := synth.Compas(3)
	cfg := core.Config{TauC: 0.1, T: 1}
	residual := func(oneShot bool) int {
		out, rep, err := Apply(d, Options{
			Identify:  cfg,
			Technique: Massaging,
			Seed:      5,
			OneShot:   oneShot,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.BiasedRegions == 0 {
			t.Fatal("no biased regions found")
		}
		after, err := core.IdentifyOptimized(out, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return len(after.Regions)
	}
	iterative := residual(false)
	oneShot := residual(true)
	before, err := core.IdentifyOptimized(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must shrink the IBS…
	if iterative >= len(before.Regions) || oneShot >= len(before.Regions) {
		t.Fatalf("remedy did not shrink IBS: %d -> iterative %d / one-shot %d",
			len(before.Regions), iterative, oneShot)
	}
	// …and the iterative variant must not be worse than the ablation.
	if iterative > oneShot {
		t.Fatalf("iterative residual %d > one-shot %d", iterative, oneShot)
	}
}

func TestOneShotStillHitsTargets(t *testing.T) {
	d := singleBias(t)
	opts := leafOpts(Massaging)
	opts.OneShot = true
	out, rep, err := Apply(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flipped == 0 {
		t.Fatal("one-shot massaging flipped nothing")
	}
	// With one isolated biased region the ablation coincides with the
	// full algorithm.
	got := regionCounts(t, out, "a", "1", "b", "2").Ratio()
	res, err := core.IdentifyOptimized(d, core.Config{TauC: 0.3, T: 1, Scope: core.Leaf})
	if err != nil {
		t.Fatal(err)
	}
	rho := res.Regions[0].NeighborRatio
	if diff := got - rho; diff > 0.02 || diff < -0.02 {
		t.Fatalf("one-shot ratio %v, want ≈ %v", got, rho)
	}
}

func TestOneShotWithRemovalsKeepsIndicesFresh(t *testing.T) {
	// Undersampling removes rows, shifting indices; preferential
	// sampling then ranks by score. The one-shot path must not panic or
	// mis-rank after removals across many regions.
	d := synth.CompasN(3000, 9)
	for _, tech := range []Technique{Undersampling, PreferentialSampling} {
		if _, _, err := Apply(d, Options{
			Identify:  core.Config{TauC: 0.1, T: 1},
			Technique: tech,
			Seed:      2,
			OneShot:   true,
		}); err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
	}
}
