package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/synth"
)

// assertNoGoroutineLeak waits for the goroutine count to drop back to
// (roughly) the baseline captured before the test body ran.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWorkerPanicSurfacesAsError(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	faults.Set(faults.IdentifyWorker, func(arg any) error {
		panic("injected worker panic")
	})
	res, err := IdentifyOptimizedCtx(context.Background(), synth.CompasN(2000, 5),
		Config{TauC: 0.1, T: 1, Workers: 4})
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wp.Value != "injected worker panic" {
		t.Fatalf("panic value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("worker stack not captured")
	}
	if !strings.Contains(wp.Error(), "node") {
		t.Fatalf("error text %q does not name the node", wp.Error())
	}
	if res == nil {
		t.Fatal("partial result must be non-nil")
	}
	assertNoGoroutineLeak(t, base)
}

func TestWorkerFaultErrorCancelsSiblings(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	boom := errors.New("disk on fire")
	var target uint32
	h, err := NewHierarchy(synth.CompasN(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	masks := h.MasksForScope(Lattice)
	target = masks[len(masks)/2]
	faults.Set(faults.IdentifyWorker, func(arg any) error {
		if arg.(uint32) == target {
			return boom
		}
		return nil
	})
	res, err := h.IdentifyOptimizedCtx(context.Background(), Config{TauC: 0.1, T: 1, Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped injected fault", err)
	}
	if res == nil {
		t.Fatal("partial result must be non-nil")
	}
	assertNoGoroutineLeak(t, base)
}

func TestPreloadWorkerPanicRecovered(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	faults.Set(faults.PreloadWorker, func(arg any) error {
		panic("preload boom")
	})
	h, err := NewHierarchy(synth.CompasN(1000, 9))
	if err != nil {
		t.Fatal(err)
	}
	var wp *WorkerPanicError
	if err := h.Preload(4); !errors.As(err, &wp) {
		t.Fatalf("Preload err = %v, want *WorkerPanicError", err)
	}
	assertNoGoroutineLeak(t, base)
}

func TestIdentifyPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := synth.CompasN(2000, 11)
	for _, workers := range []int{0, 4} {
		res, err := IdentifyOptimizedCtx(ctx, d, Config{TauC: 0.1, T: 1, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: partial result must be non-nil", workers)
		}
	}
	if _, err := IdentifyNaiveCtx(ctx, d, Config{TauC: 0.1, T: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("naive err = %v, want context.Canceled", err)
	}
}

// TestIdentifyCancelBoundedTime slows every parallel worker down
// through the fault hook, cancels mid-run, and asserts the call
// returns well inside the 100ms budget with context.Canceled.
func TestIdentifyCancelBoundedTime(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	faults.Set(faults.IdentifyWorker, func(arg any) error {
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := IdentifyOptimizedCtx(ctx, synth.CompasN(2000, 13),
			Config{TauC: 0.1, T: 1, Workers: 2})
		done <- outcome{err}
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case o := <-done:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("returned %v after cancel, want < 100ms", elapsed)
		}
		if o.err != nil && !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", o.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("identify did not return after cancellation")
	}
	assertNoGoroutineLeak(t, base)
}
