// Package core implements the paper's primary contribution: the
// Implicit Biased Set (IBS). It defines the imbalance score of a region
// (Def. 3), the neighboring region under a distance threshold T
// (Def. 4), the IBS membership test (Def. 5), and Algorithm 1 — the
// bottom-up traversal of the region hierarchy that identifies every
// biased region — in both the naïve form (§III-A) and the optimized
// form (§III-B) that derives neighborhood counts from dominating
// regions with an over-counting correction.
package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pattern"
)

// Scope selects which hierarchy levels the identification (and remedy)
// traverses, matching the paper's Lattice / Leaf / Top comparison
// (§V-B2).
type Scope int

const (
	// Lattice traverses every node from the leaf level up to level 1 —
	// the paper's full method.
	Lattice Scope = iota
	// Leaf considers only the leaf level (fully deterministic
	// patterns — the finest intersections).
	Leaf
	// Top considers only level 1 (one protected attribute at a time —
	// classic single-attribute group fairness).
	Top
)

func (s Scope) String() string {
	switch s {
	case Lattice:
		return "Lattice"
	case Leaf:
		return "Leaf"
	case Top:
		return "Top"
	}
	return fmt.Sprintf("Scope(%d)", int(s))
}

// Config carries the IBS identification parameters.
type Config struct {
	// TauC is the imbalance threshold τ_c of Def. 5.
	TauC float64
	// T is the distance threshold of the neighboring region (Def. 4).
	// The basic unit-distance setting is used: a neighbor differs from
	// the region in at least 1 and at most T deterministic coordinates.
	// T is clamped per-region to the region's level d.
	T int
	// MinSize is the significance threshold k: regions with |r| <= k
	// are skipped (Problem 1). Zero means the paper's default of 30.
	MinSize int
	// Scope restricts the traversal; the zero value is Lattice.
	Scope Scope
	// OrderedDistance enables the refined per-attribute distance for
	// ordered domains discussed under Def. 4 (only meaningful with
	// T=1, and only supported by the naïve algorithm).
	OrderedDistance bool
	// Workers, when above 1, parallelizes the optimized identification:
	// the hierarchy is preloaded with one sharded counting pass and the
	// per-node scans are fanned out across that many goroutines. The
	// result is identical to the sequential run.
	Workers int
	// EuclideanT, when positive, selects the fully general Def. 4
	// metric: the neighboring region is the Euclidean ball of this
	// radius under the refined per-attribute distances (natural spacing
	// for ordered attributes, unit otherwise). It overrides T and
	// OrderedDistance, and is supported by the traversal of the naïve
	// algorithm (IdentifyOptimized falls back automatically, as the
	// dominating-region identity assumes unit distances).
	EuclideanT float64
	// OnLevel, when set, is called after each hierarchy level of the
	// optimized traversal completes, with a snapshot of that level's
	// regions and work counters — the checkpoint hook long-running
	// identifications persist through so a crash resumes from the last
	// completed level. A non-nil error aborts the traversal and is
	// returned with the partial Result. Setting OnLevel forces the
	// sequential optimized path (the parallel fan-out has no level
	// barrier to checkpoint at) and is rejected alongside
	// OrderedDistance or EuclideanT, whose naïve traversal does not
	// checkpoint. Never marshaled (func); resumable state lives in the
	// snapshots it is handed.
	OnLevel func(ctx context.Context, snap LevelSnapshot) error `json:"-"`
	// Resume seeds the traversal with previously checkpointed levels:
	// their regions and counters are folded into the Result and their
	// masks are skipped, so an interrupted identification re-run with
	// the same Config and data produces a Result identical to an
	// uninterrupted run. Honored by both the sequential and parallel
	// optimized traversals; snapshots for levels outside the Scope are
	// ignored. Duplicate levels keep the last snapshot (recovery
	// journals are last-wins).
	Resume []LevelSnapshot `json:"-"`
}

// LevelSnapshot is one completed hierarchy level of an optimized
// identification: the checkpoint unit. Regions holds the IBS members
// found at that level; the counters are that level's deltas, so
// summing snapshots of all levels reproduces the full Result's
// counters.
type LevelSnapshot struct {
	Level       int      `json:"level"`
	Regions     []Region `json:"regions,omitempty"`
	Explored    int      `json:"explored"`
	NeighborOps int      `json:"neighbor_ops"`
	Pruned      int      `json:"pruned"`
}

// DefaultMinSize is the paper's rule-of-thumb region size threshold k.
const DefaultMinSize = 30

func (c Config) minSize() int {
	if c.MinSize <= 0 {
		return DefaultMinSize
	}
	return c.MinSize
}

func (c Config) validate(sp *pattern.Space) error {
	if c.TauC < 0 {
		return fmt.Errorf("core: negative imbalance threshold %v", c.TauC)
	}
	if c.T < 1 {
		return fmt.Errorf("core: distance threshold T must be >= 1, got %d", c.T)
	}
	if c.OrderedDistance && c.T != 1 {
		return fmt.Errorf("core: OrderedDistance requires T = 1")
	}
	if c.EuclideanT < 0 {
		return fmt.Errorf("core: negative Euclidean radius %v", c.EuclideanT)
	}
	if (c.OnLevel != nil || len(c.Resume) > 0) && (c.OrderedDistance || c.EuclideanT > 0) {
		return fmt.Errorf("core: level checkpoints require the optimized unit-distance traversal")
	}
	for _, snap := range c.Resume {
		if snap.Level < 1 {
			return fmt.Errorf("core: resume snapshot for invalid level %d", snap.Level)
		}
	}
	_ = sp
	return nil
}

// resumeByLevel indexes the Resume snapshots by level, last-wins.
func (c Config) resumeByLevel() map[int]LevelSnapshot {
	if len(c.Resume) == 0 {
		return nil
	}
	m := make(map[int]LevelSnapshot, len(c.Resume))
	for _, snap := range c.Resume {
		m[snap.Level] = snap
	}
	return m
}

// Region is one member of the IBS: a biased region together with the
// evidence for its membership.
type Region struct {
	Pattern pattern.Pattern
	// Counts are |r|, |r+| (and |r-| via Neg).
	Counts pattern.Counts
	// Ratio is ratio_r, the region's imbalance score.
	Ratio float64
	// NeighborCounts aggregates the neighboring region r_n.
	NeighborCounts pattern.Counts
	// NeighborRatio is ratio_rn.
	NeighborRatio float64
}

// Gap returns |ratio_r - ratio_rn|, the quantity compared against τ_c.
func (r Region) Gap() float64 { return math.Abs(r.Ratio - r.NeighborRatio) }

// Result is the Implicit Biased Set I with its identification context.
type Result struct {
	Space   *pattern.Space
	Config  Config
	Regions []Region
	// Explored is the number of candidate regions examined (size > k),
	// and NeighborOps the number of neighbor/dominating-region count
	// aggregations performed — the cost the optimized algorithm reduces.
	Explored    int
	NeighborOps int
	// Pruned counts the regions skipped by the significance filter
	// (|r| <= k) — the traversal work the size threshold saves.
	Pruned int
}

// Contains reports whether the exact pattern p is in the IBS.
func (res *Result) Contains(p pattern.Pattern) bool {
	k := res.Space.Key(p)
	for i := range res.Regions {
		if res.Space.Key(res.Regions[i].Pattern) == k {
			return true
		}
	}
	return false
}

// Region returns the IBS entry for the exact pattern p, if present.
func (res *Result) Region(p pattern.Pattern) (Region, bool) {
	k := res.Space.Key(p)
	for i := range res.Regions {
		if res.Space.Key(res.Regions[i].Pattern) == k {
			return res.Regions[i], true
		}
	}
	return Region{}, false
}

// DominatesSignificant reports whether subgroup pattern g strictly
// dominates at least one IBS region (the blue marking of Fig. 3).
func (res *Result) DominatesSignificant(g pattern.Pattern) bool {
	for i := range res.Regions {
		r := res.Regions[i].Pattern
		if !g.Equal(r) && pattern.Dominates(g, r) {
			return true
		}
	}
	return false
}

// Hierarchy is the traversal structure of Fig. 1: the space of regions
// grouped into nodes by deterministic-attribute mask, with memoized
// per-node count tables so that dominating-region counts are computed
// once and shared across all regions of a node (§III-B).
type Hierarchy struct {
	Space  *pattern.Space
	Data   *dataset.Dataset
	tables map[uint32]pattern.Table
	totals pattern.Counts
}

// NewHierarchy constructs the hierarchy over the protected attributes
// of d's schema.
func NewHierarchy(d *dataset.Dataset) (*Hierarchy, error) {
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		Space:  sp,
		Data:   d,
		tables: make(map[uint32]pattern.Table),
		totals: pattern.Totals(d),
	}, nil
}

// Preload materializes every node's count table so subsequent Node
// calls (including concurrent ones) only read. Each node's group-by is
// independent, so the masks are fanned out across workers directly —
// cheaper than merging one dense lattice table. workers <= 0 selects
// GOMAXPROCS. A non-nil error means the preload did not complete (a
// counting worker panicked); the hierarchy remains usable and missing
// tables are computed lazily.
func (h *Hierarchy) Preload(workers int) error {
	return h.PreloadCtx(context.Background(), workers)
}

// PreloadCtx is Preload under a context: remaining counting shards are
// skipped once ctx is cancelled and ctx.Err() is returned. Tables that
// finished counting are retained either way, and a panic inside a
// counting worker is recovered into a *WorkerPanicError. All workers
// are joined before returning.
func (h *Hierarchy) PreloadCtx(ctx context.Context, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	masks := h.Space.Masks()
	ctx, psp := obs.StartSpan(ctx, "core.preload")
	psp.SetInt("nodes", int64(len(masks)))
	psp.SetInt("workers", int64(workers))
	defer psp.End()
	tables := make([]pattern.Table, len(masks))
	errs := make([]error, len(masks))
	sem := make(chan struct{}, workers)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
dispatch:
	for i, m := range masks {
		if h.tables[m] != nil {
			tables[i] = h.tables[m]
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(i int, m uint32) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &WorkerPanicError{Mask: m, Value: r, Stack: debug.Stack()}
					cancel()
				}
			}()
			if ctx.Err() != nil {
				return
			}
			if faults.Active() {
				if err := faults.FireCtx(ctx, faults.PreloadWorker, m); err != nil {
					errs[i] = fmt.Errorf("core: preload node %#x: %w", m, err)
					cancel()
					return
				}
			}
			tables[i] = h.Space.CountNode(h.Data, m)
		}(i, m)
	}
	wg.Wait()
	for i, m := range masks {
		if tables[i] != nil {
			h.tables[m] = tables[i]
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Node returns the count table of the node identified by mask,
// computing and caching it on first use.
func (h *Hierarchy) Node(mask uint32) pattern.Table {
	if t, ok := h.tables[mask]; ok {
		return t
	}
	t := h.Space.CountNode(h.Data, mask)
	h.tables[mask] = t
	return t
}

// Totals returns the level-0 counts of the dataset.
func (h *Hierarchy) Totals() pattern.Counts { return h.totals }

// Invalidate drops all memoized tables; the remedy loop calls it after
// mutating the dataset.
func (h *Hierarchy) Invalidate() {
	h.tables = make(map[uint32]pattern.Table)
	h.totals = pattern.Totals(h.Data)
}

// SetData swaps the underlying dataset (after a remedy step) and
// invalidates the caches.
func (h *Hierarchy) SetData(d *dataset.Dataset) {
	h.Data = d
	h.Invalidate()
}

// AddRow incrementally credits one appended instance to every cached
// node table and the totals, so the remedy loop can keep the hierarchy
// consistent without recounting (the tables for masks not yet
// materialized are computed lazily from the already-updated dataset,
// which keeps the two sources consistent).
func (h *Hierarchy) AddRow(row []int32, positive bool) {
	h.adjust(row, positive, +1)
}

// RemoveRow incrementally debits one removed instance.
func (h *Hierarchy) RemoveRow(row []int32, positive bool) {
	h.adjust(row, positive, -1)
}

// FlipRow incrementally moves one instance across classes
// (nowPositive reports the label after the flip).
func (h *Hierarchy) FlipRow(row []int32, nowPositive bool) {
	delta := 1
	if !nowPositive {
		delta = -1
	}
	h.totals.Pos += delta
	for mask, table := range h.tables {
		k := h.rowKey(row, mask)
		c := table[k]
		c.Pos += delta
		table[k] = c
	}
}

func (h *Hierarchy) adjust(row []int32, positive bool, delta int) {
	h.totals.N += delta
	if positive {
		h.totals.Pos += delta
	}
	for mask, table := range h.tables {
		k := h.rowKey(row, mask)
		c := table[k]
		c.N += delta
		if positive {
			c.Pos += delta
		}
		table[k] = c
	}
}

// rowKey computes the masked projection key of a row.
func (h *Hierarchy) rowKey(row []int32, mask uint32) uint64 {
	var k uint64
	for s := 0; s < h.Space.Dim(); s++ {
		if mask&(1<<uint(s)) != 0 {
			k |= uint64(row[h.Space.AttrIdx[s]]+1) << uint(5*s)
		}
	}
	return k
}

// masksForScope returns the node masks to traverse, in bottom-up
// (leaf-to-level-1) order as prescribed by §III.
func (h *Hierarchy) masksForScope(s Scope) []uint32 {
	dim := h.Space.Dim()
	full := uint32(1<<uint(dim)) - 1
	switch s {
	case Leaf:
		return []uint32{full}
	case Top:
		ms := make([]uint32, 0, dim)
		for i := 0; i < dim; i++ {
			ms = append(ms, 1<<uint(i))
		}
		return ms
	}
	all := h.Space.Masks() // level order, ascending; skip level 0
	out := make([]uint32, 0, len(all)-1)
	for i := len(all) - 1; i >= 1; i-- {
		out = append(out, all[i])
	}
	return out
}

// sortRegions orders the IBS deterministically: by level descending
// (leaf first, matching the traversal), then by key.
func (h *Hierarchy) sortRegions(rs []Region) {
	sp := h.Space
	sort.Slice(rs, func(i, j int) bool {
		li, lj := rs[i].Pattern.Level(), rs[j].Pattern.Level()
		if li != lj {
			return li > lj
		}
		return sp.Key(rs[i].Pattern) < sp.Key(rs[j].Pattern)
	})
}

// levelOf returns the popcount of a mask (the hierarchy level).
func levelOf(mask uint32) int { return bits.OnesCount32(mask) }
