package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// buildExampleData constructs a tiny dataset that reproduces the
// paper's running example exactly: region (age=25-45, priors=>3) holds
// 882 positive and 397 negative instances (ratio 2.22, Example 4) while
// its distance-1 neighbors hold a 0.64 ratio (Example 5).
func buildExampleData() *dataset.Dataset {
	s := &dataset.Schema{
		Target: "recid",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{">45", "25-45", "<25"}, Protected: true, Ordered: true},
			{Name: "priors", Values: []string{"0", "1-3", ">3"}, Protected: true, Ordered: true},
		},
	}
	d := dataset.New(s)
	add := func(age, priors int32, pos, neg int) {
		for i := 0; i < pos; i++ {
			d.Append([]int32{age, priors}, 1)
		}
		for i := 0; i < neg; i++ {
			d.Append([]int32{age, priors}, 0)
		}
	}
	add(1, 2, 882, 397) // the biased region of Example 4
	// Its four distance-1 neighbors share ratio 0.64 (Example 5).
	add(1, 0, 160, 250)
	add(1, 1, 160, 250)
	add(0, 2, 160, 250)
	add(2, 2, 160, 250)
	// The remaining cells stay balanced.
	add(0, 0, 100, 100)
	add(0, 1, 100, 100)
	add(2, 0, 100, 100)
	add(2, 1, 100, 100)
	return d
}

// ExampleIdentifyOptimized reproduces Examples 4-6 of the paper: the
// region (age=25-45, priors=>3) has imbalance score 2.22 against a
// neighborhood at 0.64, so it joins the IBS at τ_c = 0.3.
func ExampleIdentifyOptimized() {
	res, err := core.IdentifyOptimized(buildExampleData(), core.Config{TauC: 0.3, T: 1, Scope: core.Leaf})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The flooded region's neighbors also diverge from *their*
	// neighborhoods (which contain it), so the IBS holds several
	// regions; the running example's region carries the signature
	// scores of Examples 4-6.
	p, _ := res.Space.Parse("age", "25-45", "priors", ">3")
	r, ok := res.Region(p)
	fmt.Printf("in IBS: %v\n", ok)
	fmt.Printf("%s ratio_r=%.2f ratio_rn=%.2f\n",
		res.Space.String(r.Pattern), r.Ratio, r.NeighborRatio)
	// Output:
	// in IBS: true
	// (age=25-45, priors=>3) ratio_r=2.22 ratio_rn=0.64
}
