package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// identicalResults asserts two identifications agree on regions and
// work counters.
func identicalResults(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("got %d regions, want %d", len(got.Regions), len(want.Regions))
	}
	for i := range want.Regions {
		g, w := got.Regions[i], want.Regions[i]
		if !g.Pattern.Equal(w.Pattern) || g.Counts != w.Counts || g.NeighborCounts != w.NeighborCounts {
			t.Fatalf("region %d: got %+v want %+v", i, g, w)
		}
	}
	if got.Explored != want.Explored || got.NeighborOps != want.NeighborOps || got.Pruned != want.Pruned {
		t.Fatalf("counters: got %d/%d/%d want %d/%d/%d",
			got.Explored, got.NeighborOps, got.Pruned,
			want.Explored, want.NeighborOps, want.Pruned)
	}
}

func TestOnLevelSnapshotsSumToResult(t *testing.T) {
	d := biasedData(t)
	base := Config{TauC: 0.2, T: 1}
	full := mustIdentify(t, IdentifyOptimized, d, base)

	var snaps []LevelSnapshot
	cfg := base
	cfg.OnLevel = func(_ context.Context, snap LevelSnapshot) error {
		snaps = append(snaps, snap)
		return nil
	}
	chk := mustIdentify(t, IdentifyOptimized, d, cfg)
	identicalResults(t, chk, full)

	// Lattice scope over 3 attributes: levels 3, 2, 1 in that order.
	if len(snaps) != 3 {
		t.Fatalf("got %d level snapshots, want 3", len(snaps))
	}
	sum := &Result{Space: full.Space}
	for i, snap := range snaps {
		if want := 3 - i; snap.Level != want {
			t.Errorf("snapshot %d is level %d, want %d", i, snap.Level, want)
		}
		sum.Regions = append(sum.Regions, snap.Regions...)
		sum.Explored += snap.Explored
		sum.NeighborOps += snap.NeighborOps
		sum.Pruned += snap.Pruned
	}
	h, err := NewHierarchy(d)
	if err != nil {
		t.Fatal(err)
	}
	h.sortRegions(sum.Regions)
	identicalResults(t, sum, full)
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	d := biasedData(t)
	base := Config{TauC: 0.2, T: 1, MinSize: 20}
	full := mustIdentify(t, IdentifyOptimized, d, base)

	var snaps []LevelSnapshot
	cfg := base
	cfg.OnLevel = func(_ context.Context, snap LevelSnapshot) error {
		snaps = append(snaps, snap)
		return nil
	}
	mustIdentify(t, IdentifyOptimized, d, cfg)

	for k := 0; k <= len(snaps); k++ {
		rcfg := base
		rcfg.Resume = snaps[:k]
		res := mustIdentify(t, IdentifyOptimized, d, rcfg)
		identicalResults(t, res, full)

		// The parallel traversal honors the same snapshots.
		pcfg := rcfg
		pcfg.Workers = 4
		pres := mustIdentify(t, IdentifyOptimized, d, pcfg)
		identicalResults(t, pres, full)
	}
}

func TestResumeRoundTripsThroughJSON(t *testing.T) {
	// Checkpoints are persisted as JSON by the serving layer; a decoded
	// snapshot must resume as well as a live one.
	d := biasedData(t)
	base := Config{TauC: 0.2, T: 1}
	full := mustIdentify(t, IdentifyOptimized, d, base)

	var snaps []LevelSnapshot
	cfg := base
	cfg.OnLevel = func(_ context.Context, snap LevelSnapshot) error {
		snaps = append(snaps, snap)
		return nil
	}
	mustIdentify(t, IdentifyOptimized, d, cfg)

	decoded := make([]LevelSnapshot, 0, len(snaps))
	for _, snap := range snaps[:2] {
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var back LevelSnapshot
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, back)
	}
	rcfg := base
	rcfg.Resume = decoded
	identicalResults(t, mustIdentify(t, IdentifyOptimized, d, rcfg), full)
}

func TestOnLevelErrorAbortsTraversal(t *testing.T) {
	d := biasedData(t)
	boom := errors.New("journal full")
	calls := 0
	cfg := Config{TauC: 0.2, T: 1, OnLevel: func(context.Context, LevelSnapshot) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}}
	_, err := IdentifyOptimized(d, cfg)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the OnLevel error", err)
	}
	if calls != 2 {
		t.Fatalf("OnLevel called %d times, want 2 (abort after the failing level)", calls)
	}
}

func TestOnLevelForcesSequentialPath(t *testing.T) {
	d := biasedData(t)
	var snaps []LevelSnapshot
	cfg := Config{TauC: 0.2, T: 1, Workers: 4, OnLevel: func(_ context.Context, snap LevelSnapshot) error {
		snaps = append(snaps, snap)
		return nil
	}}
	res := mustIdentify(t, IdentifyOptimized, d, cfg)
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots with Workers=4, want 3 (sequential fallback)", len(snaps))
	}
	full := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1})
	identicalResults(t, res, full)
}

func TestCheckpointConfigValidation(t *testing.T) {
	d := randomData(t, 100, 1)
	hook := func(context.Context, LevelSnapshot) error { return nil }
	for _, cfg := range []Config{
		{TauC: 0.2, T: 1, OrderedDistance: true, OnLevel: hook},
		{TauC: 0.2, T: 1, EuclideanT: 1.5, OnLevel: hook},
		{TauC: 0.2, T: 1, Resume: []LevelSnapshot{{Level: 1}}, EuclideanT: 1.5},
		{TauC: 0.2, T: 1, Resume: []LevelSnapshot{{Level: 0}}},
		{TauC: 0.2, T: 1, Resume: []LevelSnapshot{{Level: -3}}},
	} {
		if _, err := IdentifyOptimized(d, cfg); err == nil {
			t.Errorf("config %+v accepted, want validation error", cfg)
		}
	}
}

func TestResumeScopeAndDuplicates(t *testing.T) {
	d := biasedData(t)
	base := Config{TauC: 0.2, T: 1, Scope: Top}
	full := mustIdentify(t, IdentifyOptimized, d, base)

	var snaps []LevelSnapshot
	cfg := base
	cfg.OnLevel = func(_ context.Context, snap LevelSnapshot) error {
		snaps = append(snaps, snap)
		return nil
	}
	mustIdentify(t, IdentifyOptimized, d, cfg)
	if len(snaps) != 1 || snaps[0].Level != 1 {
		t.Fatalf("Top scope snapshots = %+v, want one level-1 snapshot", snaps)
	}

	rcfg := base
	rcfg.Resume = []LevelSnapshot{
		// A stale duplicate for level 1: the later snapshot must win.
		{Level: 1, Explored: 9999},
		snaps[0],
		// A snapshot outside the Top scope: ignored.
		{Level: 3, Explored: 7777},
	}
	identicalResults(t, mustIdentify(t, IdentifyOptimized, d, rcfg), full)
}
