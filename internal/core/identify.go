package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pattern"
)

// recordIdentifyMetrics folds one finished identification's work
// counters into the context's metrics registry (a no-op without one):
// identify.nodes_visited / nodes_pruned are the regions examined and
// size-filtered, regions_flagged the IBS members found, neighbor_ops
// the aggregation count the optimized algorithm reduces.
func recordIdentifyMetrics(ctx context.Context, res *Result) {
	m := obs.MetricsFrom(ctx)
	if m == nil {
		return
	}
	m.Counter("identify.nodes_visited").Add(int64(res.Explored))
	m.Counter("identify.nodes_pruned").Add(int64(res.Pruned))
	m.Counter("identify.regions_flagged").Add(int64(len(res.Regions)))
	m.Counter("identify.neighbor_ops").Add(int64(res.NeighborOps))
}

// finishIdentifySpan stamps the result attributes on an identification
// span and ends it.
func finishIdentifySpan(sp *obs.Span, res *Result) {
	if sp == nil {
		return
	}
	sp.SetInt("explored", int64(res.Explored))
	sp.SetInt("pruned", int64(res.Pruned))
	sp.SetInt("regions", int64(len(res.Regions)))
	sp.End()
}

// ctxCheckStride bounds how many regions a traversal examines between
// cooperative cancellation checks. Small enough that a cancelled scan
// returns promptly (well under the 100ms budget the tests assert) and
// large enough that ctx.Err polling stays off the per-region profile.
const ctxCheckStride = 256

// canceler amortizes ctx.Err polling across a traversal: the first
// cancelled() call polls ctx (so an already-cancelled context aborts
// before any work, however small the space), then once per stride of
// calls; after a poll reports cancellation the traversal unwinds and
// the recorded error propagates. The context is threaded into each
// cancelled(ctx) call rather than stored, keeping cancellation
// attached to the call tree (ctxfirst contract).
type canceler struct {
	count int
	err   error
}

func (c *canceler) cancelled(ctx context.Context) bool {
	if c.err != nil {
		return true
	}
	if c.count%ctxCheckStride != 0 {
		c.count++
		return false
	}
	c.count++
	c.err = ctx.Err()
	return c.err != nil
}

// WorkerPanicError reports a panic recovered inside a parallel
// identification worker: the offending hierarchy node, the panic value,
// and the worker's stack. IdentifyOptimizedCtx returns it instead of
// letting the panic take down the process.
type WorkerPanicError struct {
	Mask  uint32 // deterministic-slot mask of the node being scanned
	Value any    // recovered panic value
	Stack []byte // worker stack at the point of the panic
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("core: identify worker panicked on node %#x: %v", e.Mask, e.Value)
}

// IdentifyNaive runs the naïve IBS identification of §III-A: for every
// candidate region it enumerates all neighbors within distance T —
// (c-1)·d·T regions — and computes each neighbor's counts separately by
// scanning the dataset, with no result reuse across regions. This is
// the repeated work the optimized algorithm eliminates (§III-B): the
// hierarchy construction and size filter (Algorithm 1 lines 1-2) are
// shared, but neighbor aggregates are recomputed per region.
func IdentifyNaive(d *dataset.Dataset, cfg Config) (*Result, error) {
	return IdentifyNaiveCtx(context.Background(), d, cfg)
}

// IdentifyNaiveCtx is IdentifyNaive under a context: the traversal
// checks ctx cooperatively between regions and returns the partial
// Result accumulated so far alongside ctx.Err() when cancelled.
func IdentifyNaiveCtx(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	h, err := NewHierarchy(d)
	if err != nil {
		return nil, err
	}
	return h.IdentifyNaiveCtx(ctx, cfg)
}

// IdentifyNaive is the method form operating on an existing hierarchy,
// reusing its memoized node tables.
func (h *Hierarchy) IdentifyNaive(cfg Config) (*Result, error) {
	return h.IdentifyNaiveCtx(context.Background(), cfg)
}

// IdentifyNaiveCtx is the context-aware method form. On cancellation it
// returns the regions identified so far together with ctx.Err().
func (h *Hierarchy) IdentifyNaiveCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(h.Space); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "core.identify.naive")
	sp.SetStr("scope", cfg.Scope.String())
	res := &Result{Space: h.Space, Config: cfg}
	defer finishIdentifySpan(sp, res)
	defer recordIdentifyMetrics(ctx, res)
	k := cfg.minSize()
	c := &canceler{}
	for _, mask := range h.masksForScope(cfg.Scope) {
		node := h.Node(mask)
		h.Space.EnumerateNodeUntil(mask, func(p pattern.Pattern) bool {
			if c.cancelled(ctx) {
				return false
			}
			rc := node[h.Space.Key(p)]
			if rc.N <= k {
				res.Pruned++
				return true
			}
			res.Explored++
			var nc pattern.Counts
			visit := func(q pattern.Pattern) {
				// Count the neighbor from scratch — the naïve
				// algorithm's separate, repeated computation.
				cnt := h.Space.CountPattern(h.Data, q)
				nc.N += cnt.N
				nc.Pos += cnt.Pos
				res.NeighborOps++
			}
			switch {
			case cfg.EuclideanT > 0:
				h.Space.NeighborsEuclidean(p, cfg.EuclideanT, visit)
			case cfg.OrderedDistance:
				h.Space.NeighborsOrdered(p, visit)
			default:
				h.Space.Neighbors(p, cfg.T, visit)
			}
			appendIfBiased(res, p, rc, nc, cfg.TauC)
			return true
		})
		if c.err != nil {
			break
		}
	}
	h.sortRegions(res.Regions)
	return res, c.err
}

// IdentifyOptimized runs Algorithm 1 (§III-B): neighborhood counts are
// derived from the d·T dominating regions T levels up, whose counts are
// computed once per node and shared across the node's regions. It is
// exact for T = 1 (the identity Σ_{R_d} counts − |R_d|·counts(r) equals
// the direct neighbor sum) and for T ≥ d (where the neighboring region
// is all siblings: dataset totals minus the region). For intermediate T
// the paper's formula weights nearer neighbors more heavily; the paper
// evaluates only T = 1 and T = |X|.
func IdentifyOptimized(d *dataset.Dataset, cfg Config) (*Result, error) {
	return IdentifyOptimizedCtx(context.Background(), d, cfg)
}

// IdentifyOptimizedCtx is IdentifyOptimized under a context. The
// traversal (sequential or parallel) checks ctx cooperatively; on
// cancellation the partial Result identified so far is returned
// alongside ctx.Err(). A panic inside a parallel worker is recovered
// and surfaces as a *WorkerPanicError instead of crashing the process.
func IdentifyOptimizedCtx(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	h, err := NewHierarchy(d)
	if err != nil {
		return nil, err
	}
	return h.IdentifyOptimizedCtx(ctx, cfg)
}

// IdentifyOptimized is the method form operating on an existing
// hierarchy.
func (h *Hierarchy) IdentifyOptimized(cfg Config) (*Result, error) {
	return h.IdentifyOptimizedCtx(context.Background(), cfg)
}

// IdentifyOptimizedCtx is the context-aware method form; see
// IdentifyOptimizedCtx (package form) for the cancellation and
// panic-recovery contract.
func (h *Hierarchy) IdentifyOptimizedCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(h.Space); err != nil {
		return nil, err
	}
	if cfg.OrderedDistance || cfg.EuclideanT > 0 {
		// The dominating-region identity assumes the basic
		// unit-distance setting; fall back to the naïve traversal.
		return h.IdentifyNaiveCtx(ctx, cfg)
	}
	if cfg.Workers > 1 && cfg.OnLevel == nil {
		// OnLevel forces the sequential path: checkpoints are cut at
		// level barriers, which the parallel fan-out does not have.
		return h.identifyOptimizedParallel(ctx, cfg)
	}
	ctx, sp := obs.StartSpan(ctx, "core.identify.optimized")
	sp.SetStr("scope", cfg.Scope.String())
	sp.SetInt("T", int64(cfg.T))
	res := &Result{Space: h.Space, Config: cfg}
	defer finishIdentifySpan(sp, res)
	defer recordIdentifyMetrics(ctx, res)
	c := &canceler{}
	levelHist := obs.MetricsFrom(ctx).Histogram("identify.level_ms", obs.DefaultDurationBucketsMS)
	resume := cfg.resumeByLevel()
	applied := make(map[int]bool, len(resume))
	var (
		lvlSpan  *obs.Span
		curLevel = -1
		lvlStart time.Time
		// Counter values at the current level's start, so the level's
		// checkpoint carries deltas.
		lvlRegs, lvlExp, lvlNbr, lvlPrn int
	)
	// endLevel closes the open level's span; when the level ran to
	// completion it also cuts the checkpoint, whose error aborts the
	// traversal.
	endLevel := func(completed bool) error {
		if curLevel < 0 {
			return nil
		}
		lvlSpan.End()
		levelHist.Observe(float64(time.Since(lvlStart).Microseconds()) / 1000)
		lv := curLevel
		curLevel = -1
		if !completed || cfg.OnLevel == nil {
			return nil
		}
		return cfg.OnLevel(ctx, LevelSnapshot{
			Level:       lv,
			Regions:     append([]Region(nil), res.Regions[lvlRegs:]...),
			Explored:    res.Explored - lvlExp,
			NeighborOps: res.NeighborOps - lvlNbr,
			Pruned:      res.Pruned - lvlPrn,
		})
	}
	for _, mask := range h.masksForScope(cfg.Scope) {
		// The bottom-up traversal visits the lattice level by level;
		// each level gets its own timing span so the trace shows where
		// the walk spends its time (the leaf level dominates).
		lv := levelOf(mask)
		if snap, ok := resume[lv]; ok {
			// Checkpointed by a previous attempt: fold the snapshot in
			// once and skip the level's masks entirely.
			if !applied[lv] {
				if err := endLevel(true); err != nil {
					h.sortRegions(res.Regions)
					return res, err
				}
				res.Regions = append(res.Regions, snap.Regions...)
				res.Explored += snap.Explored
				res.NeighborOps += snap.NeighborOps
				res.Pruned += snap.Pruned
				applied[lv] = true
			}
			continue
		}
		if lv != curLevel {
			if err := endLevel(true); err != nil {
				h.sortRegions(res.Regions)
				return res, err
			}
			//lint:allow obspair lvlSpan is ended by the endLevel closure on every path, but the closure is always invoked in if-init position (`if err := endLevel(...)`) which the source-order scan cannot credit as an End
			_, lvlSpan = obs.StartSpan(ctx, "core.identify.level")
			lvlSpan.SetInt("level", int64(lv))
			curLevel = lv
			lvlRegs, lvlExp, lvlNbr, lvlPrn = len(res.Regions), res.Explored, res.NeighborOps, res.Pruned
			//lint:allow determinism level timing feeds the trace histogram only; pipeline output is unaffected
			lvlStart = time.Now()
		}
		h.scanNodeOptimized(ctx, mask, cfg, res, c)
		if c.err != nil {
			break
		}
	}
	if err := endLevel(c.err == nil); err != nil {
		h.sortRegions(res.Regions)
		return res, err
	}
	if lg := obs.LoggerFrom(ctx); lg.On(obs.LevelDebug) {
		lg.Scope("core").Debug("identify done",
			"explored", res.Explored, "pruned", res.Pruned, "regions", len(res.Regions))
	}
	h.sortRegions(res.Regions)
	return res, c.err
}

// identifyOptimizedParallel preloads every node table with a sharded
// counting pass and scans the nodes concurrently. After Preload the
// tables are read-only, so the per-node scans share them without
// synchronization; each goroutine accumulates into a private Result and
// the shards merge deterministically.
//
// Failure handling: a panic inside a worker is recovered into a
// *WorkerPanicError carrying the node mask, and the first failure —
// panic, injected fault, or cancellation of ctx — cancels the remaining
// shards. All workers are joined before returning, so no goroutines
// outlive the call; completed shards still merge into the returned
// (partial) Result.
func (h *Hierarchy) identifyOptimizedParallel(ctx context.Context, cfg Config) (*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ctx, sp := obs.StartSpan(ctx, "core.identify.parallel")
	sp.SetStr("scope", cfg.Scope.String())
	sp.SetInt("workers", int64(cfg.Workers))
	if err := h.PreloadCtx(ctx, cfg.Workers); err != nil {
		sp.End()
		return &Result{Space: h.Space, Config: cfg}, err
	}
	masks := h.masksForScope(cfg.Scope)
	// Resumed levels are folded in from their snapshots at the merge and
	// their masks dropped from the fan-out.
	resume := cfg.resumeByLevel()
	if resume != nil {
		kept := make([]uint32, 0, len(masks))
		for _, m := range masks {
			if _, ok := resume[levelOf(m)]; !ok {
				kept = append(kept, m)
			}
		}
		masks = kept
	}
	shards := make([]*Result, len(masks))
	errs := make([]error, len(masks))
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
dispatch:
	for i, mask := range masks {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(i int, mask uint32) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &WorkerPanicError{Mask: mask, Value: r, Stack: debug.Stack()}
					cancel() // first failure stops the remaining shards
				}
			}()
			if ctx.Err() != nil {
				return
			}
			// Each worker shard gets its own span under the parallel
			// parent, so the trace shows the fan-out and any straggler
			// nodes. The deferred End runs during panic unwinding, ahead
			// of the recover above, so crashed shards stay visible.
			wctx, ssp := obs.StartSpan(ctx, "core.identify.shard")
			ssp.SetInt("node", int64(mask))
			defer ssp.End()
			if faults.Active() {
				if err := faults.FireCtx(wctx, faults.IdentifyWorker, mask); err != nil {
					errs[i] = fmt.Errorf("core: identify node %#x: %w", mask, err)
					cancel()
					return
				}
			}
			shard := &Result{Space: h.Space, Config: cfg}
			h.scanNodeOptimized(wctx, mask, cfg, shard, &canceler{})
			ssp.SetInt("regions", int64(len(shard.Regions)))
			shards[i] = shard
		}(i, mask)
	}
	wg.Wait()
	res := &Result{Space: h.Space, Config: cfg}
	for _, shard := range shards {
		if shard == nil {
			continue
		}
		res.Regions = append(res.Regions, shard.Regions...)
		res.Explored += shard.Explored
		res.NeighborOps += shard.NeighborOps
		res.Pruned += shard.Pruned
	}
	if resume != nil {
		inScope := make(map[int]bool)
		for _, m := range h.masksForScope(cfg.Scope) {
			inScope[levelOf(m)] = true
		}
		lvls := make([]int, 0, len(resume))
		for lv := range resume {
			if inScope[lv] {
				lvls = append(lvls, lv)
			}
		}
		sort.Ints(lvls)
		for _, lv := range lvls {
			snap := resume[lv]
			res.Regions = append(res.Regions, snap.Regions...)
			res.Explored += snap.Explored
			res.NeighborOps += snap.NeighborOps
			res.Pruned += snap.Pruned
		}
	}
	finishIdentifySpan(sp, res)
	recordIdentifyMetrics(ctx, res)
	h.sortRegions(res.Regions)
	// Worker failures outrank plain cancellation: a panic or injected
	// fault also cancels ctx, and reporting the cause beats reporting
	// the symptom.
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, ctx.Err()
}

// scanNodeOptimized runs the optimized per-node identification (lines
// 4-12 of Algorithm 1) for one hierarchy node, appending biased regions
// to res. The scan aborts early once c reports cancellation.
func (h *Hierarchy) scanNodeOptimized(ctx context.Context, mask uint32, cfg Config, res *Result, c *canceler) {
	node := h.Node(mask)
	k := cfg.minSize()
	d := levelOf(mask)
	T := cfg.T
	if T > d {
		T = d
	}
	h.Space.EnumerateNodeUntil(mask, func(p pattern.Pattern) bool {
		if c.cancelled(ctx) {
			return false
		}
		rc := node[h.Space.Key(p)]
		if rc.N <= k {
			res.Pruned++
			return true
		}
		res.Explored++
		nc := h.neighborViaDominating(p, rc, T, res)
		appendIfBiased(res, p, rc, nc, cfg.TauC)
		return true
	})
}

// BiasedRegionsInNode identifies the biased regions of a single
// hierarchy node with the optimized algorithm — the GETBIASEDREGIONS
// step of Algorithm 2, which the remedy loop re-runs per node against
// the evolving dataset.
func (h *Hierarchy) BiasedRegionsInNode(mask uint32, cfg Config) ([]Region, error) {
	return h.BiasedRegionsInNodeCtx(context.Background(), mask, cfg)
}

// BiasedRegionsInNodeCtx is BiasedRegionsInNode under a context; on
// cancellation the regions found so far return alongside ctx.Err().
func (h *Hierarchy) BiasedRegionsInNodeCtx(ctx context.Context, mask uint32, cfg Config) ([]Region, error) {
	if err := cfg.validate(h.Space); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "core.identify.node")
	sp.SetInt("node", int64(mask))
	res := &Result{Space: h.Space, Config: cfg}
	defer finishIdentifySpan(sp, res)
	defer recordIdentifyMetrics(ctx, res)
	c := &canceler{}
	h.scanNodeOptimized(ctx, mask, cfg, res, c)
	h.sortRegions(res.Regions)
	return res.Regions, c.err
}

// MasksForScope exposes the bottom-up node traversal order of the
// given scope for callers (the remedy driver) that walk the hierarchy
// themselves.
func (h *Hierarchy) MasksForScope(s Scope) []uint32 { return h.masksForScope(s) }

// neighborViaDominating computes the neighboring-region counts of p via
// the set R_d of dominating regions T levels up (line 9-10 of
// Algorithm 1): remove T deterministic elements in every possible way,
// sum the ancestors' counts, and subtract the |R_d|-fold over-count of
// the region itself.
func (h *Hierarchy) neighborViaDominating(p pattern.Pattern, rc pattern.Counts, T int, res *Result) pattern.Counts {
	d := p.Level()
	if T >= d {
		// R_d = {level-0 root}: the neighboring region is every sibling,
		// i.e. the dataset totals minus the region.
		res.NeighborOps++
		tot := h.Totals()
		return pattern.Counts{N: tot.N - rc.N, Pos: tot.Pos - rc.Pos}
	}
	var sum pattern.Counts
	size := 0
	h.ancestorsTLevelsUp(p, T, func(q pattern.Pattern) {
		c := h.Node(q.Mask())[h.Space.Key(q)]
		sum.N += c.N
		sum.Pos += c.Pos
		size++
		res.NeighborOps++
	})
	return pattern.Counts{N: sum.N - size*rc.N, Pos: sum.Pos - size*rc.Pos}
}

// ancestorsTLevelsUp calls f for each pattern obtained from p by
// removing exactly T deterministic elements. For T = 1 this is
// Space.Parents.
func (h *Hierarchy) ancestorsTLevelsUp(p pattern.Pattern, T int, f func(pattern.Pattern)) {
	if T == 1 {
		h.Space.Parents(p, f)
		return
	}
	slots := make([]int, 0, len(p))
	for i, v := range p {
		if v != pattern.Wildcard {
			slots = append(slots, i)
		}
	}
	q := p.Clone()
	var choose func(start, remaining int)
	choose = func(start, remaining int) {
		if remaining == 0 {
			f(q)
			return
		}
		for k := start; k <= len(slots)-remaining; k++ {
			s := slots[k]
			q[s] = pattern.Wildcard
			choose(k+1, remaining-1)
			q[s] = p[s]
		}
	}
	choose(0, T)
}

// appendIfBiased applies Def. 5: the region joins the IBS when
// |ratio_r − ratio_rn| > τ_c. The −1 sentinel of Def. 3 (no negative
// instances) participates numerically, as in the paper: an all-positive
// region next to a balanced neighborhood is maximally suspicious.
func appendIfBiased(res *Result, p pattern.Pattern, rc, nc pattern.Counts, tauC float64) {
	ratio := rc.Ratio()
	nratio := nc.Ratio()
	if math.Abs(ratio-nratio) > tauC {
		res.Regions = append(res.Regions, Region{
			Pattern:        p.Clone(),
			Counts:         rc,
			Ratio:          ratio,
			NeighborCounts: nc,
			NeighborRatio:  nratio,
		})
	}
}
