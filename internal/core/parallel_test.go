package core

import (
	"testing"

	"repro/internal/synth"
)

func TestParallelIdentifyMatchesSequential(t *testing.T) {
	d := synth.CompasN(4000, 17)
	for _, workers := range []int{2, 4, 8} {
		seq := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 1})
		par := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 1, Workers: workers})
		assertSameRegions(t, seq, par)
		if seq.Explored != par.Explored || seq.NeighborOps != par.NeighborOps {
			t.Fatalf("workers=%d: work counters differ (%d/%d vs %d/%d)",
				workers, seq.Explored, seq.NeighborOps, par.Explored, par.NeighborOps)
		}
	}
}

func TestParallelIdentifyScopes(t *testing.T) {
	d := synth.CompasN(3000, 19)
	for _, scope := range []Scope{Lattice, Leaf, Top} {
		seq := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 1, Scope: scope})
		par := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 1, Scope: scope, Workers: 4})
		assertSameRegions(t, seq, par)
	}
}

func TestPreloadMatchesLazyTables(t *testing.T) {
	d := synth.CompasN(2000, 23)
	lazy, err := NewHierarchy(d)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := NewHierarchy(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.Preload(4); err != nil {
		t.Fatal(err)
	}
	for _, mask := range lazy.MasksForScope(Lattice) {
		a := lazy.Node(mask)
		b := eager.Node(mask)
		if len(a) != len(b) {
			t.Fatalf("mask %b: %d vs %d entries", mask, len(a), len(b))
		}
		for k, c := range a {
			if b[k] != c {
				t.Fatalf("mask %b key %d: %+v vs %+v", mask, k, c, b[k])
			}
		}
	}
	if lazy.Totals() != eager.Totals() {
		t.Fatal("totals differ")
	}
}
