package core

import "testing"

func TestEuclideanConfig(t *testing.T) {
	d := biasedData(t)
	// Negative radius is invalid.
	if _, err := IdentifyNaive(d, Config{TauC: 0.2, T: 1, EuclideanT: -1}); err == nil {
		t.Fatal("negative Euclidean radius must error")
	}
	// Radius 1 under the refined metric still finds the injected
	// region (its priors/age neighbors are adjacent buckets).
	res := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.25, T: 1, EuclideanT: 1})
	want, _ := res.Space.Parse("age", "25-45", "priors", ">3")
	if !res.Contains(want) {
		t.Fatal("Euclidean radius-1 identification missed the injected region")
	}
	// The optimized entry point must transparently fall back.
	viaOpt := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.25, T: 1, EuclideanT: 1})
	assertSameRegions(t, res, viaOpt)
}

func TestEuclideanLargerRadiusSeesMore(t *testing.T) {
	d := biasedData(t)
	small := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.25, T: 1, EuclideanT: 1})
	large := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.25, T: 1, EuclideanT: 3})
	// A larger ball aggregates more neighbors per region.
	if large.NeighborOps <= small.NeighborOps {
		t.Fatalf("radius 3 ops %d <= radius 1 ops %d", large.NeighborOps, small.NeighborOps)
	}
}
