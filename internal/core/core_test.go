package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/synth"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{"<25", "25-45", ">45"}, Protected: true, Ordered: true},
			{Name: "priors", Values: []string{"0", "1-3", ">3"}, Protected: true, Ordered: true},
			{Name: "race", Values: []string{"Cauc", "Afr-Am", "Hisp"}, Protected: true},
		},
	}
}

func randomData(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	d := dataset.New(testSchema())
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		d.Append([]int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(3))}, int8(r.Intn(2)))
	}
	return d
}

// biasedData builds a dataset where exactly one region — (age=25-45,
// priors=>3) — is flooded with positives while everything else is
// balanced, the textbook IBS of Examples 4-6.
func biasedData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New(testSchema())
	r := stats.NewRNG(11)
	for i := 0; i < 4000; i++ {
		row := []int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(3))}
		var label int8
		if row[0] == 1 && row[1] == 2 {
			// ~69% positive: ratio ≈ 2.2 like Example 4.
			if r.Float64() < 0.69 {
				label = 1
			}
		} else {
			// ~39% positive: ratio ≈ 0.64 like Example 5.
			if r.Float64() < 0.39 {
				label = 1
			}
		}
		d.Append(row, label)
	}
	return d
}

func mustIdentify(t *testing.T, f func(*dataset.Dataset, Config) (*Result, error), d *dataset.Dataset, cfg Config) *Result {
	t.Helper()
	res, err := f(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	d := randomData(t, 100, 1)
	if _, err := IdentifyOptimized(d, Config{TauC: -1, T: 1}); err == nil {
		t.Fatal("negative TauC must error")
	}
	if _, err := IdentifyOptimized(d, Config{TauC: 0.1, T: 0}); err == nil {
		t.Fatal("T=0 must error")
	}
	if _, err := IdentifyNaive(d, Config{TauC: 0.1, T: 2, OrderedDistance: true}); err == nil {
		t.Fatal("OrderedDistance with T!=1 must error")
	}
}

func TestScopeString(t *testing.T) {
	if Lattice.String() != "Lattice" || Leaf.String() != "Leaf" || Top.String() != "Top" {
		t.Fatal("scope names")
	}
	if Scope(9).String() == "" {
		t.Fatal("unknown scope should still print")
	}
}

func TestIdentifyFindsInjectedIBS(t *testing.T) {
	d := biasedData(t)
	cfg := Config{TauC: 0.3, T: 1}
	res := mustIdentify(t, IdentifyOptimized, d, cfg)
	sp := res.Space
	want, err := sp.Parse("age", "25-45", "priors", ">3")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(want) {
		for _, r := range res.Regions {
			t.Logf("found %s ratio=%.2f nratio=%.2f", sp.String(r.Pattern), r.Ratio, r.NeighborRatio)
		}
		t.Fatal("the injected biased region was not identified")
	}
	// Its evidence should resemble the running example.
	for _, r := range res.Regions {
		if sp.Key(r.Pattern) == sp.Key(want) {
			if r.Ratio < 1.6 || r.NeighborRatio > 1.0 {
				t.Fatalf("ratios off: %v vs %v", r.Ratio, r.NeighborRatio)
			}
			if r.Gap() <= cfg.TauC {
				t.Fatal("gap must exceed τ_c")
			}
		}
	}
}

func TestIdentifyBalancedDataHasNoIBS(t *testing.T) {
	// With a generous τ_c, uniform random data has no biased regions.
	d := randomData(t, 5000, 3)
	res := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.9, T: 1})
	if len(res.Regions) != 0 {
		t.Fatalf("expected empty IBS, got %d regions", len(res.Regions))
	}
}

func TestNaiveOptimizedEquivalenceT1(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := randomData(t, 800, seed)
		for _, tau := range []float64{0.05, 0.2, 0.5} {
			a := mustIdentify(t, IdentifyNaive, d, Config{TauC: tau, T: 1, MinSize: 10})
			b := mustIdentify(t, IdentifyOptimized, d, Config{TauC: tau, T: 1, MinSize: 10})
			assertSameRegions(t, a, b)
		}
	}
}

func TestNaiveOptimizedEquivalenceTMax(t *testing.T) {
	d := randomData(t, 800, 5)
	// T = |X| = 3: both must agree (all-siblings neighborhood).
	a := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.1, T: 3, MinSize: 10})
	b := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 3, MinSize: 10})
	assertSameRegions(t, a, b)
}

func assertSameRegions(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Regions) != len(b.Regions) {
		t.Fatalf("naive found %d regions, optimized %d", len(a.Regions), len(b.Regions))
	}
	for i := range a.Regions {
		ra, rb := a.Regions[i], b.Regions[i]
		if !ra.Pattern.Equal(rb.Pattern) {
			t.Fatalf("region %d: %v vs %v", i, ra.Pattern, rb.Pattern)
		}
		if ra.Counts != rb.Counts || ra.NeighborCounts != rb.NeighborCounts {
			t.Fatalf("region %d counts differ: %+v vs %+v", i, ra, rb)
		}
		if math.Abs(ra.NeighborRatio-rb.NeighborRatio) > 1e-12 {
			t.Fatalf("region %d neighbor ratio differs", i)
		}
	}
}

func TestOptimizedDoesLessNeighborWork(t *testing.T) {
	d := randomData(t, 3000, 9)
	a := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.1, T: 1, MinSize: 5})
	b := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 1, MinSize: 5})
	if a.Explored != b.Explored {
		t.Fatalf("explored counts differ: %d vs %d", a.Explored, b.Explored)
	}
	// Naive: (c-1)·d per region = 2d; optimized: d per region.
	if b.NeighborOps*2 > a.NeighborOps+1 {
		t.Fatalf("optimized neighbor ops %d not < half of naive %d", b.NeighborOps, a.NeighborOps)
	}
}

func TestScopes(t *testing.T) {
	d := biasedData(t)
	leaf := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1, Scope: Leaf, MinSize: 20})
	for _, r := range leaf.Regions {
		if r.Pattern.Level() != 3 {
			t.Fatalf("Leaf scope produced level-%d region", r.Pattern.Level())
		}
	}
	top := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.05, T: 1, Scope: Top, MinSize: 20})
	for _, r := range top.Regions {
		if r.Pattern.Level() != 1 {
			t.Fatalf("Top scope produced level-%d region", r.Pattern.Level())
		}
	}
	lattice := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1, MinSize: 20})
	if len(lattice.Regions) < len(leaf.Regions) {
		t.Fatal("lattice must cover at least the leaf regions")
	}
}

func TestMinSizeFilter(t *testing.T) {
	d := biasedData(t)
	res := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1, MinSize: 100000})
	if res.Explored != 0 || len(res.Regions) != 0 {
		t.Fatal("nothing should pass an absurd size threshold")
	}
	// Default k=30 is applied when MinSize is zero.
	res2 := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1})
	for _, r := range res2.Regions {
		if r.Counts.N <= DefaultMinSize {
			t.Fatalf("region of size %d should have been filtered", r.Counts.N)
		}
	}
}

func TestContainsAndDominates(t *testing.T) {
	d := biasedData(t)
	res := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.3, T: 1})
	sp := res.Space
	inIBS, _ := sp.Parse("age", "25-45", "priors", ">3")
	if !res.Contains(inIBS) {
		t.Skip("injected region not found; covered by TestIdentifyFindsInjectedIBS")
	}
	parent, _ := sp.Parse("age", "25-45")
	if !res.DominatesSignificant(parent) {
		t.Fatal("(age=25-45) dominates the biased region")
	}
	if res.DominatesSignificant(inIBS) && !dominatesOther(res, inIBS) {
		t.Fatal("a region should not dominate itself")
	}
	other, _ := sp.Parse("race", "Hisp")
	if res.Contains(other) {
		t.Fatal("unexpected IBS membership")
	}
}

func dominatesOther(res *Result, p pattern.Pattern) bool {
	for _, r := range res.Regions {
		if !r.Pattern.Equal(p) && pattern.Dominates(p, r.Pattern) {
			return true
		}
	}
	return false
}

func TestHierarchyCachingAndInvalidate(t *testing.T) {
	d := randomData(t, 500, 21)
	h, err := NewHierarchy(d)
	if err != nil {
		t.Fatal(err)
	}
	t1 := h.Node(0b011)
	t2 := h.Node(0b011)
	if &t1 == nil || len(t1) != len(t2) {
		t.Fatal("cache broken")
	}
	tot := h.Totals()
	if tot.N != 500 {
		t.Fatalf("totals %+v", tot)
	}
	// Mutate data: drop half; Invalidate must refresh.
	h.SetData(d.Subset([]int{0, 1, 2, 3, 4}))
	if h.Totals().N != 5 {
		t.Fatalf("totals after SetData = %+v", h.Totals())
	}
	if n := h.Node(0b011); len(n) > len(t1) {
		t.Fatal("node table not recomputed")
	}
}

func TestOrderedDistanceNarrowsNeighborhood(t *testing.T) {
	d := biasedData(t)
	basic := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.25, T: 1})
	ordered := mustIdentify(t, IdentifyNaive, d, Config{TauC: 0.25, T: 1, OrderedDistance: true})
	// Both find the injected region; neighbor aggregates differ in size.
	if basic.NeighborOps <= ordered.NeighborOps {
		t.Fatalf("ordered distance should visit fewer neighbors: %d vs %d",
			ordered.NeighborOps, basic.NeighborOps)
	}
	// Optimized must silently fall back to naive for ordered distance.
	viaOpt := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.25, T: 1, OrderedDistance: true})
	assertSameRegions(t, ordered, viaOpt)
}

func TestRegionGapAndSentinel(t *testing.T) {
	r := Region{Ratio: 2.2, NeighborRatio: 0.64}
	if g := r.Gap(); math.Abs(g-1.56) > 1e-9 {
		t.Fatalf("Gap = %v", g)
	}
	// All-positive region: ratio −1 participates numerically (Def. 3).
	r2 := Region{Ratio: -1, NeighborRatio: 0.5}
	if r2.Gap() != 1.5 {
		t.Fatalf("sentinel gap = %v", r2.Gap())
	}
}

func TestAllPositiveRegionUsesSentinel(t *testing.T) {
	d := dataset.New(testSchema())
	r := stats.NewRNG(2)
	for i := 0; i < 2000; i++ {
		row := []int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(3))}
		label := int8(r.Intn(2))
		if row[0] == 0 && row[1] == 0 {
			label = 1 // region with zero negatives
		}
		d.Append(row, label)
	}
	res := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.5, T: 1})
	p, _ := res.Space.Parse("age", "<25", "priors", "0")
	found := false
	for _, reg := range res.Regions {
		if res.Space.Key(reg.Pattern) == res.Space.Key(p) {
			found = true
			if reg.Ratio != -1 {
				t.Fatalf("expected sentinel ratio, got %v", reg.Ratio)
			}
		}
	}
	if !found {
		t.Fatal("all-positive region should be flagged against a balanced neighborhood")
	}
}

func TestIdentifyOnSyntheticCompas(t *testing.T) {
	d := synth.Compas(1)
	res := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.1, T: 1})
	if len(res.Regions) == 0 {
		t.Fatal("the synthetic COMPAS dataset must contain IBS regions")
	}
	// The injected (race=Afr-Am, sex=Male) skew lives in the protected
	// space {age, race, sex}; some region over race/sex must be flagged.
	sp := res.Space
	found := false
	for _, r := range res.Regions {
		if sp.String(r.Pattern) == "(race=Afr-Am, sex=Male)" {
			found = true
			if r.Ratio <= r.NeighborRatio {
				t.Fatal("Afr-Am males must be positive-skewed")
			}
		}
	}
	if !found {
		t.Fatal("(race=Afr-Am, sex=Male) should be in the IBS")
	}
}

func TestAncestorsTLevelsUp(t *testing.T) {
	d := randomData(t, 100, 31)
	h, err := NewHierarchy(d)
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.Pattern{0, 1, 2}
	var got []pattern.Pattern
	h.ancestorsTLevelsUp(p, 2, func(q pattern.Pattern) { got = append(got, q.Clone()) })
	// C(3,2) = 3 ancestors two levels up.
	if len(got) != 3 {
		t.Fatalf("ancestors = %d, want 3", len(got))
	}
	for _, q := range got {
		if q.Level() != 1 || !pattern.Dominates(q, p) {
			t.Fatalf("bad ancestor %v", q)
		}
	}
}

func TestDeterministicRegionOrder(t *testing.T) {
	d := biasedData(t)
	a := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1})
	b := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1})
	if len(a.Regions) != len(b.Regions) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a.Regions {
		if !a.Regions[i].Pattern.Equal(b.Regions[i].Pattern) {
			t.Fatal("non-deterministic region order")
		}
	}
	// Leaf-first ordering.
	for i := 1; i < len(a.Regions); i++ {
		if a.Regions[i].Pattern.Level() > a.Regions[i-1].Pattern.Level() {
			t.Fatal("regions not ordered by descending level")
		}
	}
}

func TestResultNodesAndTree(t *testing.T) {
	d := biasedData(t)
	res := mustIdentify(t, IdentifyOptimized, d, Config{TauC: 0.2, T: 1})
	nodes := res.Nodes()
	if len(nodes) == 0 {
		t.Fatal("no nodes")
	}
	total := 0
	for i, n := range nodes {
		total += len(n.Biased)
		if len(n.Attrs) != n.Level {
			t.Fatalf("node %d: %d attrs for level %d", i, len(n.Attrs), n.Level)
		}
		if i > 0 && n.Level > nodes[i-1].Level {
			t.Fatal("nodes not ordered leaf-first")
		}
		for _, r := range n.Biased {
			if r.Pattern.Mask() != n.Mask {
				t.Fatal("region filed under wrong node")
			}
		}
	}
	if total != len(res.Regions) {
		t.Fatalf("nodes cover %d of %d regions", total, len(res.Regions))
	}
	byLevel := res.BiasedByLevel()
	sum := 0
	for _, c := range byLevel {
		sum += c
	}
	if sum != len(res.Regions) {
		t.Fatal("BiasedByLevel accounting")
	}
	var buf strings.Builder
	if err := res.RenderTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Implicit Biased Set") || !strings.Contains(out, "ratio_r") {
		t.Fatalf("tree render:\n%s", out)
	}
}
