package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders identification results for human consumption: a
// Fig. 1-style view of the hierarchy grouping the biased regions by
// node (deterministic-attribute set), plus per-level summaries.

// NodeSummary aggregates the biased regions of one hierarchy node.
type NodeSummary struct {
	Mask   uint32
	Attrs  []string // deterministic attribute names of the node
	Level  int
	Biased []Region
}

// Nodes groups the result's regions by hierarchy node, ordered leaf
// level first (matching the bottom-up traversal) and by mask within a
// level.
func (res *Result) Nodes() []NodeSummary {
	byMask := map[uint32]*NodeSummary{}
	for _, r := range res.Regions {
		mask := r.Pattern.Mask()
		ns := byMask[mask]
		if ns == nil {
			ns = &NodeSummary{Mask: mask, Level: r.Pattern.Level()}
			for i, name := range res.Space.Names {
				if mask&(1<<uint(i)) != 0 {
					ns.Attrs = append(ns.Attrs, name)
				}
			}
			byMask[mask] = ns
		}
		ns.Biased = append(ns.Biased, r)
	}
	out := make([]NodeSummary, 0, len(byMask))
	for _, ns := range byMask {
		out = append(out, *ns)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level > out[j].Level
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// BiasedByLevel counts the biased regions per hierarchy level.
func (res *Result) BiasedByLevel() map[int]int {
	out := map[int]int{}
	for _, r := range res.Regions {
		out[r.Pattern.Level()]++
	}
	return out
}

// RenderTree writes the hierarchy view: one block per node with its
// biased regions and their imbalance evidence.
func (res *Result) RenderTree(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Implicit Biased Set over {%s}: %d regions (τ_c=%v, T=%d, scope=%s)\n",
		strings.Join(res.Space.Names, ", "), len(res.Regions),
		res.Config.TauC, res.Config.T, res.Config.Scope); err != nil {
		return err
	}
	byLevel := res.BiasedByLevel()
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	for _, l := range levels {
		if _, err := fmt.Fprintf(w, "  level %d: %d biased regions\n", l, byLevel[l]); err != nil {
			return err
		}
	}
	for _, node := range res.Nodes() {
		if _, err := fmt.Fprintf(w, "\n{%s} — level %d, %d biased\n",
			strings.Join(node.Attrs, ", "), node.Level, len(node.Biased)); err != nil {
			return err
		}
		for i, r := range node.Biased {
			branch := "├─"
			if i == len(node.Biased)-1 {
				branch = "└─"
			}
			if _, err := fmt.Fprintf(w, "  %s %-48s |r|=%d  ratio_r=%.3f  ratio_rn=%.3f  gap=%.3f\n",
				branch, res.Space.String(r.Pattern), r.Counts.N, r.Ratio, r.NeighborRatio, r.Gap()); err != nil {
				return err
			}
		}
	}
	return nil
}
