package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/faults"
)

// WriteCSV writes the dataset with a header row; attribute values are
// written as their domain strings and the label as 0/1 under the
// schema's target name.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.Schema.Attrs)+1)
	for _, a := range d.Schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, d.Schema.Target)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range d.Rows {
		for j, v := range row {
			rec[j] = d.Schema.Attrs[j].Values[v]
		}
		rec[len(rec)-1] = strconv.Itoa(int(d.Labels[i]))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to the named file.
func (d *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errdiscard error-path cleanup; the success path checks the explicit Close below
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ErrTooLarge is returned by ReadCSVLimit when the input exceeds its
// row or byte budget. Wrapped errors carry the specific limit; callers
// test with errors.Is(err, ErrTooLarge).
var ErrTooLarge = errors.New("dataset: input exceeds size limit")

// ReadCSV reads a dataset written by WriteCSV (or any categorical CSV
// with a header). The last column named target carries the 0/1 label;
// every other column becomes a categorical attribute whose domain is
// the set of distinct strings in column order of first appearance.
// protected lists attribute names to mark as protected.
func ReadCSV(r io.Reader, target string, protected []string) (*Dataset, error) {
	return ReadCSVLimit(r, target, protected, 0, 0)
}

// limitedReader fails with ErrTooLarge once more than its budget has
// been consumed (unlike io.LimitReader's silent EOF, which would make
// a truncated upload look like a complete dataset). It is constructed
// with one byte of slack so an input of exactly the budget still
// parses: the error fires only when the source provably exceeds it.
type limitedReader struct {
	r io.Reader
	n int64 // remaining allowance, budget+1 at construction
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, fmt.Errorf("%w: byte budget exhausted", ErrTooLarge)
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// ReadCSVLimit is ReadCSV with streaming resource caps, the entry
// point for untrusted input (the remedyd upload path). maxRows bounds
// the number of data rows and maxBytes the bytes consumed from r;
// exceeding either aborts the parse with an error satisfying
// errors.Is(err, ErrTooLarge). A zero (or negative) limit means
// unlimited. The input is never buffered whole: the byte cap is
// enforced on the stream, so an over-budget body costs at most
// maxBytes of reading.
func ReadCSVLimit(r io.Reader, target string, protected []string, maxRows int, maxBytes int64) (*Dataset, error) {
	if maxBytes > 0 {
		r = &limitedReader{r: r, n: maxBytes + 1}
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	targetCol := -1
	for i, h := range header {
		if h == target {
			targetCol = i
		}
	}
	if targetCol < 0 {
		return nil, fmt.Errorf("dataset: target column %q not found", target)
	}
	isProt := make(map[string]bool, len(protected))
	for _, p := range protected {
		isProt[p] = true
	}
	schema := &Schema{Target: target}
	colToAttr := make([]int, len(header)) // column -> attr index, -1 for target
	for i, h := range header {
		if i == targetCol {
			colToAttr[i] = -1
			continue
		}
		colToAttr[i] = len(schema.Attrs)
		schema.Attrs = append(schema.Attrs, Attr{Name: h, Protected: isProt[h]})
	}
	// Domains are discovered on the fly.
	codes := make([]map[string]int32, len(schema.Attrs))
	for i := range codes {
		codes[i] = map[string]int32{}
	}
	d := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err == nil && faults.Active() {
			err = faults.Fire(faults.CSVRecord, line)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if maxRows > 0 && d.Len() >= maxRows {
			return nil, fmt.Errorf("%w: more than %d data rows", ErrTooLarge, maxRows)
		}
		row := make([]int32, len(schema.Attrs))
		var label int8
		for i, field := range rec {
			ai := colToAttr[i]
			if ai < 0 {
				v, err := strconv.Atoi(field)
				if err != nil || (v != 0 && v != 1) {
					return nil, fmt.Errorf("dataset: line %d: label %q is not 0/1", line, field)
				}
				label = int8(v)
				continue
			}
			c, ok := codes[ai][field]
			if !ok {
				c = int32(len(schema.Attrs[ai].Values))
				codes[ai][field] = c
				schema.Attrs[ai].Values = append(schema.Attrs[ai].Values, field)
			}
			row[ai] = c
		}
		if err := d.Append(row, label); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadCSVFile reads a dataset from the named file.
func ReadCSVFile(path, target string, protected []string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //lint:allow errdiscard read-only close carries no information
	return ReadCSV(f, target, protected)
}
