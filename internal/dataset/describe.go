package dataset

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// AttrSummary is the per-attribute profile produced by Describe.
type AttrSummary struct {
	Name      string
	Protected bool
	Ordered   bool
	// Counts holds the instance count per domain value; PosRate the
	// positive-label fraction per value.
	Counts  []int
	PosRate []float64
}

// Describe profiles every attribute: value distributions and per-value
// positive rates — the first thing an analyst inspects for
// representation bias.
func (d *Dataset) Describe() []AttrSummary {
	out := make([]AttrSummary, len(d.Schema.Attrs))
	for a := range d.Schema.Attrs {
		attr := &d.Schema.Attrs[a]
		out[a] = AttrSummary{
			Name:      attr.Name,
			Protected: attr.Protected,
			Ordered:   attr.Ordered,
			Counts:    make([]int, attr.Cardinality()),
			PosRate:   make([]float64, attr.Cardinality()),
		}
	}
	for i, row := range d.Rows {
		for a, v := range row {
			out[a].Counts[v]++
			if d.Labels[i] == 1 {
				out[a].PosRate[v]++
			}
		}
	}
	for a := range out {
		for v := range out[a].PosRate {
			if out[a].Counts[v] > 0 {
				out[a].PosRate[v] /= float64(out[a].Counts[v])
			}
		}
	}
	return out
}

// WriteDescription renders Describe as an aligned report.
func (d *Dataset) WriteDescription(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n\n", d); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "attribute\tflags\tvalue\tcount\tshare\tpositive rate")
	n := float64(d.Len())
	for a, s := range d.Describe() {
		var flags []string
		if s.Protected {
			flags = append(flags, "protected")
		}
		if s.Ordered {
			flags = append(flags, "ordered")
		}
		flagStr := strings.Join(flags, ",")
		if flagStr == "" {
			flagStr = "-"
		}
		for v, c := range s.Counts {
			name := s.Name
			ff := flagStr
			if v > 0 {
				name, ff = "", ""
			}
			share := 0.0
			if n > 0 {
				share = float64(c) / n
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.1f%%\t%.3f\n",
				name, ff, d.Schema.Attrs[a].Values[v], c, 100*share, s.PosRate[v])
		}
	}
	return tw.Flush()
}
