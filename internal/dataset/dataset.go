// Package dataset implements the tabular data engine the rest of the
// repository builds on: categorical schemas, encoded rows, binary
// labels, per-instance sample weights, CSV input/output, train/test
// splitting, and feature encoding for the classifiers.
//
// The paper works exclusively with categorical (or bucketized)
// attributes, so every attribute value is stored as a small integer code
// into the attribute's domain. Continuous source columns are bucketized
// at load time (see Bucketize / csv.go).
package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrRowWidth is returned by Append and AppendWeighted when a row's
// width does not match the schema.
var ErrRowWidth = errors.New("dataset: row width mismatch")

// Attr describes one categorical attribute.
type Attr struct {
	Name      string
	Values    []string // domain; an attribute value is an index into this slice
	Protected bool     // participates in the intersectional space X
	Ordered   bool     // values have a natural order (age buckets, income buckets)
}

// Cardinality returns the size of the attribute's domain.
func (a *Attr) Cardinality() int { return len(a.Values) }

// ValueIndex returns the code of value v, or -1 if v is not in the
// domain.
func (a *Attr) ValueIndex(v string) int {
	for i, s := range a.Values {
		if s == v {
			return i
		}
	}
	return -1
}

// Schema is an ordered collection of attributes plus the name of the
// binary prediction target.
type Schema struct {
	Attrs  []Attr
	Target string // label column name, e.g. "two_year_recid"
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i := range s.Attrs {
		if s.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// ProtectedIdx returns the indices of the protected attributes in
// schema order. This defines the intersectional space X.
func (s *Schema) ProtectedIdx() []int {
	var idx []int
	for i := range s.Attrs {
		if s.Attrs[i].Protected {
			idx = append(idx, i)
		}
	}
	return idx
}

// SetProtected marks exactly the named attributes as protected. It
// returns an error if a name is unknown. Experiments use it to vary
// |X| (Fig. 9).
func (s *Schema) SetProtected(names ...string) error {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if s.AttrIndex(n) < 0 {
			return fmt.Errorf("dataset: unknown attribute %q", n)
		}
		want[n] = true
	}
	for i := range s.Attrs {
		s.Attrs[i].Protected = want[s.Attrs[i].Name]
	}
	return nil
}

// Clone deep-copies the schema so experiments can toggle protected
// flags without aliasing.
func (s *Schema) Clone() *Schema {
	c := &Schema{Target: s.Target, Attrs: make([]Attr, len(s.Attrs))}
	for i, a := range s.Attrs {
		c.Attrs[i] = Attr{
			Name:      a.Name,
			Values:    append([]string(nil), a.Values...),
			Protected: a.Protected,
			Ordered:   a.Ordered,
		}
	}
	return c
}

// Dataset is a labeled categorical table. Weights is optional; nil
// means all instances weigh 1. Rows[i][j] is the code of attribute j in
// instance i.
type Dataset struct {
	Schema  *Schema
	Rows    [][]int32
	Labels  []int8 // 0 or 1
	Weights []float64
}

// New returns an empty dataset over the given schema.
func New(s *Schema) *Dataset { return &Dataset{Schema: s} }

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Rows) }

// Weight returns the sample weight of instance i (1 when unweighted).
func (d *Dataset) Weight(i int) float64 {
	if d.Weights == nil {
		return 1
	}
	return d.Weights[i]
}

// EnsureWeights materializes the weight vector (all ones) so callers can
// mutate individual weights.
func (d *Dataset) EnsureWeights() {
	if d.Weights == nil {
		d.Weights = make([]float64, d.Len())
		for i := range d.Weights {
			d.Weights[i] = 1
		}
	}
}

// Append adds one instance. The row slice is retained, not copied. A
// row whose width does not match the schema is rejected with
// ErrRowWidth and the dataset is left unchanged; callers that build
// rows directly from the schema (the generators, the remedy
// techniques) may discard the error.
func (d *Dataset) Append(row []int32, label int8) error {
	if len(row) != len(d.Schema.Attrs) {
		return fmt.Errorf("%w: row width %d != schema width %d", ErrRowWidth, len(row), len(d.Schema.Attrs))
	}
	d.Rows = append(d.Rows, row)
	d.Labels = append(d.Labels, label)
	if d.Weights != nil {
		d.Weights = append(d.Weights, 1)
	}
	return nil
}

// AppendWeighted adds one instance with an explicit weight. It shares
// Append's ErrRowWidth contract.
func (d *Dataset) AppendWeighted(row []int32, label int8, w float64) error {
	d.EnsureWeights()
	if err := d.Append(row, label); err != nil {
		return err
	}
	d.Weights[len(d.Weights)-1] = w
	return nil
}

// Clone deep-copies the dataset (sharing the schema).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Schema: d.Schema,
		Rows:   make([][]int32, len(d.Rows)),
		Labels: append([]int8(nil), d.Labels...),
	}
	for i, r := range d.Rows {
		c.Rows[i] = append([]int32(nil), r...)
	}
	if d.Weights != nil {
		c.Weights = append([]float64(nil), d.Weights...)
	}
	return c
}

// Subset returns a new dataset containing the given instance indices
// (rows are shared, not copied — callers that mutate rows must Clone).
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		Schema: d.Schema,
		Rows:   make([][]int32, len(idx)),
		Labels: make([]int8, len(idx)),
	}
	if d.Weights != nil {
		s.Weights = make([]float64, len(idx))
	}
	for i, j := range idx {
		s.Rows[i] = d.Rows[j]
		s.Labels[i] = d.Labels[j]
		if d.Weights != nil {
			s.Weights[i] = d.Weights[j]
		}
	}
	return s
}

// Remove returns a new dataset without the given instance indices.
func (d *Dataset) Remove(idx []int) *Dataset {
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	keep := make([]int, 0, d.Len()-len(drop))
	for i := 0; i < d.Len(); i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	return d.Subset(keep)
}

// PositiveCount returns the number of instances with label 1.
func (d *Dataset) PositiveCount() int {
	var n int
	for _, y := range d.Labels {
		if y == 1 {
			n++
		}
	}
	return n
}

// BaseRate returns the fraction of positive labels.
func (d *Dataset) BaseRate() float64 {
	if d.Len() == 0 {
		return 0
	}
	return float64(d.PositiveCount()) / float64(d.Len())
}

// Match reports whether instance i matches the given (attribute, value)
// assignments. A value of -1 acts as a wildcard.
func (d *Dataset) Match(i int, attrIdx []int, values []int32) bool {
	row := d.Rows[i]
	for k, a := range attrIdx {
		if values[k] >= 0 && row[a] != values[k] {
			return false
		}
	}
	return true
}

// String summarizes the dataset for logs and examples.
func (d *Dataset) String() string {
	var prot []string
	for _, a := range d.Schema.Attrs {
		if a.Protected {
			prot = append(prot, a.Name)
		}
	}
	return fmt.Sprintf("Dataset{rows: %d, attrs: %d, protected: [%s], positives: %d (%.1f%%)}",
		d.Len(), len(d.Schema.Attrs), strings.Join(prot, ", "),
		d.PositiveCount(), 100*d.BaseRate())
}

// Validate checks internal consistency: row widths, code ranges, label
// values and weight vector length. It is used by tests and by the CSV
// loader.
func (d *Dataset) Validate() error {
	w := len(d.Schema.Attrs)
	if len(d.Labels) != len(d.Rows) {
		return fmt.Errorf("dataset: %d rows but %d labels", len(d.Rows), len(d.Labels))
	}
	if d.Weights != nil && len(d.Weights) != len(d.Rows) {
		return fmt.Errorf("dataset: %d rows but %d weights", len(d.Rows), len(d.Weights))
	}
	for i, r := range d.Rows {
		if len(r) != w {
			return fmt.Errorf("dataset: row %d width %d != %d", i, len(r), w)
		}
		for j, v := range r {
			if v < 0 || int(v) >= d.Schema.Attrs[j].Cardinality() {
				return fmt.Errorf("dataset: row %d attr %s code %d out of domain [0,%d)",
					i, d.Schema.Attrs[j].Name, v, d.Schema.Attrs[j].Cardinality())
			}
		}
		if d.Labels[i] != 0 && d.Labels[i] != 1 {
			return fmt.Errorf("dataset: row %d label %d not binary", i, d.Labels[i])
		}
	}
	return nil
}

// Bucketize maps a float to a bucket code given ascending cut points:
// value <= cuts[0] is bucket 0, (cuts[0], cuts[1]] is bucket 1, …, and
// anything above the last cut is bucket len(cuts).
func Bucketize(v float64, cuts []float64) int32 {
	i := sort.SearchFloat64s(cuts, v)
	// SearchFloat64s finds the first cut >= v, which is exactly the
	// bucket index for half-open (lo, hi] buckets except at equality,
	// where v == cuts[i] must still land in bucket i.
	return int32(i)
}
