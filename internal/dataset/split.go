package dataset

import (
	"math/rand" //lint:allow determinism consumes injected *rand.Rand; construction only via stats.NewRNG

	"repro/internal/stats"
)

// Split randomly partitions the dataset into a training set with the
// given fraction of instances and a test set with the remainder, as in
// the paper's 70/30 protocol. The split is deterministic for a given
// seed.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	r := stats.NewRNG(seed)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	stats.Shuffle(r, idx)
	cut := int(float64(d.Len()) * trainFrac)
	if cut < 0 {
		cut = 0
	}
	if cut > d.Len() {
		cut = d.Len()
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// StratifiedSplit partitions like Split but preserves the label base
// rate in both partitions, which keeps small datasets' test metrics
// stable across seeds.
func (d *Dataset) StratifiedSplit(trainFrac float64, seed int64) (train, test *Dataset) {
	r := stats.NewRNG(seed)
	var pos, neg []int
	for i, y := range d.Labels {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	stats.Shuffle(r, pos)
	stats.Shuffle(r, neg)
	cutP := int(float64(len(pos)) * trainFrac)
	cutN := int(float64(len(neg)) * trainFrac)
	trainIdx := append(append([]int(nil), pos[:cutP]...), neg[:cutN]...)
	testIdx := append(append([]int(nil), pos[cutP:]...), neg[cutN:]...)
	stats.Shuffle(r, trainIdx)
	stats.Shuffle(r, testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// KFold returns k (train, test) index pairs for cross-validation. Folds
// are contiguous slices of a seeded shuffle, so they are disjoint and
// cover every instance exactly once.
func (d *Dataset) KFold(k int, seed int64) [][2][]int {
	if k < 2 {
		k = 2
	}
	r := stats.NewRNG(seed)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	stats.Shuffle(r, idx)
	folds := make([][2][]int, 0, k)
	for f := 0; f < k; f++ {
		lo := f * d.Len() / k
		hi := (f + 1) * d.Len() / k
		test := append([]int(nil), idx[lo:hi]...)
		train := make([]int, 0, d.Len()-(hi-lo))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds = append(folds, [2][]int{train, test})
	}
	return folds
}

// SampleFraction returns a uniform random sample of about frac of the
// dataset, used by the scalability experiments to vary data size.
func (d *Dataset) SampleFraction(frac float64, seed int64) *Dataset {
	if frac >= 1 {
		return d.Subset(allIndices(d.Len()))
	}
	r := stats.NewRNG(seed)
	k := int(float64(d.Len()) * frac)
	return d.Subset(stats.SampleWithoutReplacement(r, d.Len(), k))
}

// Bootstrap returns a bootstrap resample of size n drawn with the given
// RNG (used by the random forest).
func (d *Dataset) Bootstrap(r *rand.Rand, n int) *Dataset {
	return d.Subset(stats.SampleWithReplacement(r, d.Len(), n))
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
