package dataset

import (
	"errors"
	"strings"
	"testing"
)

// limitCSV builds a small CSV with n data rows.
func limitCSV(n int) string {
	var b strings.Builder
	b.WriteString("race,sex,label\n")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.WriteString("a,m,1\n")
		} else {
			b.WriteString("b,f,0\n")
		}
	}
	return b.String()
}

func TestReadCSVLimitUnlimited(t *testing.T) {
	d, err := ReadCSVLimit(strings.NewReader(limitCSV(10)), "label", []string{"race"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("rows = %d, want 10", d.Len())
	}
}

func TestReadCSVLimitRowCap(t *testing.T) {
	_, err := ReadCSVLimit(strings.NewReader(limitCSV(11)), "label", []string{"race"}, 10, 0)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// Exactly at the cap parses.
	d, err := ReadCSVLimit(strings.NewReader(limitCSV(10)), "label", []string{"race"}, 10, 0)
	if err != nil || d.Len() != 10 {
		t.Fatalf("at-cap parse = %v, %v", d, err)
	}
}

func TestReadCSVLimitByteCap(t *testing.T) {
	body := limitCSV(50)
	_, err := ReadCSVLimit(strings.NewReader(body), "label", []string{"race"}, 0, int64(len(body)-1))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// An input of exactly the budget still parses (the cap means "no
	// more than", not "strictly less").
	d, err := ReadCSVLimit(strings.NewReader(body), "label", []string{"race"}, 0, int64(len(body)))
	if err != nil || d.Len() != 50 {
		t.Fatalf("at-cap parse = %v, %v", d, err)
	}
}

func TestReadCSVLimitByteCapTinyHeader(t *testing.T) {
	// The cap applies to the header read too: a budget smaller than
	// the header must fail with ErrTooLarge, not a bare read error.
	_, err := ReadCSVLimit(strings.NewReader(limitCSV(5)), "label", []string{"race"}, 0, 4)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestReadCSVIsUnlimitedAlias(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(limitCSV(3)), "label", []string{"sex"})
	if err != nil || d.Len() != 3 {
		t.Fatalf("ReadCSV = %v, %v", d, err)
	}
}
