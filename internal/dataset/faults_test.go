package dataset

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestReadCSVInjectedRecordFault injects a read error at a specific
// record and asserts ReadCSV surfaces it with the line number.
func TestReadCSVInjectedRecordFault(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("io timeout")
	faults.Set(faults.CSVRecord, func(arg any) error {
		if arg.(int) == 3 {
			return boom
		}
		return nil
	})
	csv := "a,label\nx,1\ny,0\nz,1\n"
	_, err := ReadCSV(strings.NewReader(csv), "label", nil)
	if !errors.Is(err, boom) {
		t.Fatalf("ReadCSV = %v, want injected fault", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not carry the line number", err)
	}

	// With the hook cleared the same input loads fine.
	faults.Reset()
	d, err := ReadCSV(strings.NewReader(csv), "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("rows = %d", d.Len())
	}
}
