package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func testSchema() *Schema {
	return &Schema{
		Target: "label",
		Attrs: []Attr{
			{Name: "age", Values: []string{"<25", "25-45", ">45"}, Protected: true, Ordered: true},
			{Name: "race", Values: []string{"white", "black", "other"}, Protected: true},
			{Name: "sex", Values: []string{"male", "female"}, Protected: true},
			{Name: "priors", Values: []string{"0", "1-3", ">3"}, Ordered: true},
		},
	}
}

func testData(t *testing.T, n int, seed int64) *Dataset {
	t.Helper()
	s := testSchema()
	d := New(s)
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		row := []int32{
			int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(2)), int32(r.Intn(3)),
		}
		d.Append(row, int8(r.Intn(2)))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttrAndSchemaLookups(t *testing.T) {
	s := testSchema()
	if got := s.AttrIndex("race"); got != 1 {
		t.Fatalf("AttrIndex(race) = %d", got)
	}
	if got := s.AttrIndex("nope"); got != -1 {
		t.Fatalf("AttrIndex(nope) = %d", got)
	}
	if got := s.Attrs[0].ValueIndex("25-45"); got != 1 {
		t.Fatalf("ValueIndex = %d", got)
	}
	if got := s.Attrs[0].ValueIndex("zzz"); got != -1 {
		t.Fatalf("ValueIndex(zzz) = %d", got)
	}
	prot := s.ProtectedIdx()
	if len(prot) != 3 || prot[0] != 0 || prot[2] != 2 {
		t.Fatalf("ProtectedIdx = %v", prot)
	}
}

func TestSetProtected(t *testing.T) {
	s := testSchema()
	if err := s.SetProtected("race", "priors"); err != nil {
		t.Fatal(err)
	}
	prot := s.ProtectedIdx()
	if len(prot) != 2 || prot[0] != 1 || prot[1] != 3 {
		t.Fatalf("ProtectedIdx = %v", prot)
	}
	if err := s.SetProtected("bogus"); err == nil {
		t.Fatal("expected error for unknown attribute")
	}
}

func TestSchemaCloneIsDeep(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Attrs[0].Protected = false
	c.Attrs[0].Values[0] = "changed"
	if !s.Attrs[0].Protected || s.Attrs[0].Values[0] != "<25" {
		t.Fatal("Clone aliased the original schema")
	}
}

func TestAppendValidateAndCounts(t *testing.T) {
	d := New(testSchema())
	d.Append([]int32{0, 1, 0, 2}, 1)
	d.Append([]int32{2, 0, 1, 0}, 0)
	if d.Len() != 2 || d.PositiveCount() != 1 {
		t.Fatalf("Len=%d Pos=%d", d.Len(), d.PositiveCount())
	}
	if br := d.BaseRate(); br != 0.5 {
		t.Fatalf("BaseRate = %v", br)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-of-domain code must fail validation.
	d.Rows[0][1] = 99
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-domain code")
	}
}

func TestAppendRejectsBadWidth(t *testing.T) {
	d := New(testSchema())
	if err := d.Append([]int32{0, 1}, 0); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("Append = %v, want ErrRowWidth", err)
	}
	if err := d.AppendWeighted([]int32{0, 1}, 0, 2); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("AppendWeighted = %v, want ErrRowWidth", err)
	}
	if d.Len() != 0 {
		t.Fatalf("rejected rows must not be retained, len = %d", d.Len())
	}
}

func TestWeights(t *testing.T) {
	d := New(testSchema())
	d.Append([]int32{0, 0, 0, 0}, 0)
	if d.Weight(0) != 1 {
		t.Fatalf("default weight = %v", d.Weight(0))
	}
	d.AppendWeighted([]int32{1, 1, 1, 1}, 1, 2.5)
	if d.Weight(0) != 1 || d.Weight(1) != 2.5 {
		t.Fatalf("weights = %v", d.Weights)
	}
	// Appending after weights exist keeps the vector aligned.
	d.Append([]int32{2, 2, 1, 2}, 0)
	if len(d.Weights) != 3 || d.Weight(2) != 1 {
		t.Fatalf("weights = %v", d.Weights)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneSubsetRemove(t *testing.T) {
	d := testData(t, 50, 7)
	c := d.Clone()
	c.Rows[0][0] = (c.Rows[0][0] + 1) % 3
	if d.Rows[0][0] == c.Rows[0][0] {
		t.Fatal("Clone aliased rows")
	}
	sub := d.Subset([]int{3, 5, 7})
	if sub.Len() != 3 || sub.Labels[1] != d.Labels[5] {
		t.Fatal("Subset mismatch")
	}
	rem := d.Remove([]int{0, 1, 2})
	if rem.Len() != 47 || rem.Labels[0] != d.Labels[3] {
		t.Fatal("Remove mismatch")
	}
}

func TestMatch(t *testing.T) {
	d := New(testSchema())
	d.Append([]int32{1, 2, 0, 1}, 1)
	if !d.Match(0, []int{0, 1}, []int32{1, 2}) {
		t.Fatal("expected match")
	}
	if d.Match(0, []int{0, 1}, []int32{1, 0}) {
		t.Fatal("unexpected match")
	}
	// Wildcards match anything.
	if !d.Match(0, []int{0, 1, 2}, []int32{-1, -1, 0}) {
		t.Fatal("wildcard should match")
	}
}

func TestSplitPartitions(t *testing.T) {
	d := testData(t, 200, 11)
	train, test := d.Split(0.7, 1)
	if train.Len() != 140 || test.Len() != 60 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Same seed, same split.
	tr2, _ := d.Split(0.7, 1)
	for i := range train.Rows {
		if train.Labels[i] != tr2.Labels[i] {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestStratifiedSplitPreservesBaseRate(t *testing.T) {
	d := New(testSchema())
	r := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		lbl := int8(0)
		if i < 300 {
			lbl = 1
		}
		d.Append([]int32{int32(r.Intn(3)), int32(r.Intn(3)), int32(r.Intn(2)), int32(r.Intn(3))}, lbl)
	}
	train, test := d.StratifiedSplit(0.7, 9)
	if br := train.BaseRate(); br < 0.29 || br > 0.31 {
		t.Fatalf("train base rate %v", br)
	}
	if br := test.BaseRate(); br < 0.29 || br > 0.31 {
		t.Fatalf("test base rate %v", br)
	}
	if train.Len()+test.Len() != 1000 {
		t.Fatalf("sizes %d + %d", train.Len(), test.Len())
	}
}

func TestKFoldCoversAll(t *testing.T) {
	d := testData(t, 103, 13)
	folds := d.KFold(5, 3)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make([]int, d.Len())
	for _, f := range folds {
		if len(f[0])+len(f[1]) != d.Len() {
			t.Fatalf("fold sizes %d + %d", len(f[0]), len(f[1]))
		}
		for _, i := range f[1] {
			seen[i]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d appears in %d test folds", i, n)
		}
	}
}

func TestSampleFraction(t *testing.T) {
	d := testData(t, 100, 17)
	s := d.SampleFraction(0.25, 4)
	if s.Len() != 25 {
		t.Fatalf("sample len = %d", s.Len())
	}
	full := d.SampleFraction(1.5, 4)
	if full.Len() != 100 {
		t.Fatalf("full len = %d", full.Len())
	}
}

func TestBootstrap(t *testing.T) {
	d := testData(t, 40, 19)
	b := d.Bootstrap(stats.NewRNG(8), 40)
	if b.Len() != 40 {
		t.Fatalf("bootstrap len = %d", b.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testData(t, 60, 23)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "label", []string{"age", "race", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("rows %d != %d", got.Len(), d.Len())
	}
	prot := got.Schema.ProtectedIdx()
	if len(prot) != 3 {
		t.Fatalf("protected = %v", prot)
	}
	for i := range d.Rows {
		if got.Labels[i] != d.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range d.Rows[i] {
			want := d.Schema.Attrs[j].Values[d.Rows[i][j]]
			have := got.Schema.Attrs[j].Values[got.Rows[i][j]]
			if want != have {
				t.Fatalf("row %d attr %d: %q != %q", i, j, have, want)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n"), "label", nil); err == nil {
		t.Fatal("expected missing-target error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,label\nx,5\n"), "label", nil); err == nil {
		t.Fatal("expected non-binary label error")
	}
}

func TestBucketize(t *testing.T) {
	cuts := []float64{25, 45}
	cases := []struct {
		v    float64
		want int32
	}{{18, 0}, {25, 0}, {26, 1}, {45, 1}, {46, 2}, {99, 2}}
	for _, c := range cases {
		if got := Bucketize(c.v, cuts); got != c.want {
			t.Fatalf("Bucketize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketizeMonotone(t *testing.T) {
	cuts := []float64{-1, 0, 2.5, 10}
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return Bucketize(a, cuts) <= Bucketize(b, cuts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingLayout(t *testing.T) {
	s := testSchema()
	e := NewEncoding(s)
	// age ordered (1) + race one-hot (3) + sex binary (1) + priors ordered (1) = 6.
	if e.Width() != 6 {
		t.Fatalf("Width = %d, want 6", e.Width())
	}
	v := e.EncodeRow([]int32{2, 1, 1, 0}, nil)
	want := []float64{1, 0, 1, 0, 1, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("EncodeRow = %v, want %v", v, want)
		}
	}
	// Reusing dst clears previous content.
	v2 := e.EncodeRow([]int32{0, 0, 0, 0}, v)
	want2 := []float64{0, 1, 0, 0, 0, 0}
	for i := range want2 {
		if v2[i] != want2[i] {
			t.Fatalf("EncodeRow reuse = %v, want %v", v2, want2)
		}
	}
}

func TestEncodeMatrix(t *testing.T) {
	d := testData(t, 30, 29)
	e := NewEncoding(d.Schema)
	x, y, w := e.Encode(d)
	if len(x) != 30 || len(y) != 30 || len(w) != 30 {
		t.Fatal("encode sizes")
	}
	for i := range x {
		if len(x[i]) != e.Width() {
			t.Fatalf("row %d width %d", i, len(x[i]))
		}
		if y[i] != float64(d.Labels[i]) || w[i] != 1 {
			t.Fatalf("labels/weights mismatch at %d", i)
		}
	}
}

func TestDatasetString(t *testing.T) {
	d := testData(t, 10, 31)
	s := d.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String = %q", s)
	}
}

func TestDescribe(t *testing.T) {
	d := New(testSchema())
	d.Append([]int32{0, 1, 0, 2}, 1)
	d.Append([]int32{0, 0, 1, 0}, 0)
	d.Append([]int32{1, 1, 0, 2}, 1)
	sums := d.Describe()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	age := sums[0]
	if age.Name != "age" || !age.Protected || !age.Ordered {
		t.Fatalf("age summary %+v", age)
	}
	if age.Counts[0] != 2 || age.Counts[1] != 1 || age.Counts[2] != 0 {
		t.Fatalf("age counts %v", age.Counts)
	}
	if age.PosRate[0] != 0.5 || age.PosRate[1] != 1 || age.PosRate[2] != 0 {
		t.Fatalf("age pos rates %v", age.PosRate)
	}
	var buf bytes.Buffer
	if err := d.WriteDescription(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"age", "protected,ordered", "positive rate", "<25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("description missing %q:\n%s", want, out)
		}
	}
}
