package dataset

// Encoding maps categorical rows into the float feature vectors the
// classifiers consume. Ordered attributes are encoded as a single
// scaled ordinal feature; unordered attributes are one-hot encoded.
// This mirrors the standard preprocessing in the paper's scikit-learn
// pipeline.
type Encoding struct {
	schema  *Schema
	width   int
	offsets []int // per attribute, start column in the feature vector
	onehot  []bool
}

// NewEncoding builds the feature layout for a schema.
func NewEncoding(s *Schema) *Encoding {
	e := &Encoding{
		schema:  s,
		offsets: make([]int, len(s.Attrs)),
		onehot:  make([]bool, len(s.Attrs)),
	}
	col := 0
	for i := range s.Attrs {
		e.offsets[i] = col
		if s.Attrs[i].Ordered || s.Attrs[i].Cardinality() <= 2 {
			// Ordinal or binary: one column suffices.
			col++
		} else {
			e.onehot[i] = true
			col += s.Attrs[i].Cardinality()
		}
	}
	e.width = col
	return e
}

// Width returns the number of feature columns.
func (e *Encoding) Width() int { return e.width }

// ColumnNames returns a human-readable name per feature column:
// "attr" for ordinal/binary columns and "attr=value" for one-hot
// columns. Used to label feature-importance reports.
func (e *Encoding) ColumnNames() []string {
	names := make([]string, e.width)
	for i := range e.schema.Attrs {
		a := &e.schema.Attrs[i]
		if e.onehot[i] {
			for v, val := range a.Values {
				names[e.offsets[i]+v] = a.Name + "=" + val
			}
		} else {
			names[e.offsets[i]] = a.Name
		}
	}
	return names
}

// EncodeRow writes the feature vector of row into dst (len = Width) and
// returns dst. If dst is nil, a new slice is allocated.
func (e *Encoding) EncodeRow(row []int32, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, e.width)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for i, v := range row {
		if e.onehot[i] {
			dst[e.offsets[i]+int(v)] = 1
			continue
		}
		card := e.schema.Attrs[i].Cardinality()
		if card > 1 {
			dst[e.offsets[i]] = float64(v) / float64(card-1)
		}
	}
	return dst
}

// Encode materializes the full feature matrix and label/weight vectors
// of d. Labels are float 0/1 for the numeric learners.
func (e *Encoding) Encode(d *Dataset) (x [][]float64, y []float64, w []float64) {
	x = make([][]float64, d.Len())
	y = make([]float64, d.Len())
	w = make([]float64, d.Len())
	for i := range d.Rows {
		x[i] = e.EncodeRow(d.Rows[i], nil)
		y[i] = float64(d.Labels[i])
		w[i] = d.Weight(i)
	}
	return x, y, w
}
