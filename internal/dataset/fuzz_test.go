package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics and that every
// successfully loaded dataset passes validation, whatever the input
// bytes.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b,label\nx,y,1\nz,w,0\n"), "label")
	f.Add([]byte("label\n1\n0\n"), "label")
	f.Add([]byte(""), "label")
	f.Add([]byte("a,label\n\"unterminated,1\n"), "label")
	f.Add([]byte("a,label\nx,7\n"), "label")
	f.Add([]byte("a,label\nx\n"), "label")
	f.Fuzz(func(t *testing.T, raw []byte, target string) {
		d, err := ReadCSV(bytes.NewReader(raw), target, []string{"a"})
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("loaded dataset fails validation: %v", err)
		}
		// Round-trip: anything we can load we can write and reload.
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
	})
}

// FuzzBucketize asserts bucket indices stay in range for any input.
func FuzzBucketize(f *testing.F) {
	f.Add(3.7, 1.0, 2.0, 5.0)
	f.Add(-1e300, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, v, c1, c2, c3 float64) {
		cuts := []float64{c1, c2, c3}
		// Bucketize requires sorted cuts; sort defensively as callers do.
		for i := 0; i < len(cuts); i++ {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		b := Bucketize(v, cuts)
		if b < 0 || int(b) > len(cuts) {
			t.Fatalf("bucket %d out of range", b)
		}
	})
}
