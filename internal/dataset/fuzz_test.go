package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics and that every
// successfully loaded dataset passes validation, whatever the input
// bytes.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b,label\nx,y,1\nz,w,0\n"), "label")
	f.Add([]byte("label\n1\n0\n"), "label")
	f.Add([]byte(""), "label")
	f.Add([]byte("a,label\n\"unterminated,1\n"), "label")
	f.Add([]byte("a,label\nx,7\n"), "label")
	f.Add([]byte("a,label\nx\n"), "label")
	f.Fuzz(func(t *testing.T, raw []byte, target string) {
		d, err := ReadCSV(bytes.NewReader(raw), target, []string{"a"})
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("loaded dataset fails validation: %v", err)
		}
		// Round-trip: anything we can load we can write, reload, and get
		// the same dataset back (modulo the target column moving last,
		// which WriteCSV canonicalizes).
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		d2, err := ReadCSV(bytes.NewReader(buf.Bytes()), target, []string{"a"})
		if err != nil {
			t.Fatalf("reload failed: %v\ncsv:\n%s", err, buf.Bytes())
		}
		if d2.Len() != d.Len() {
			t.Fatalf("reload row count %d != %d", d2.Len(), d.Len())
		}
		if len(d2.Schema.Attrs) != len(d.Schema.Attrs) {
			t.Fatalf("reload attr count %d != %d", len(d2.Schema.Attrs), len(d.Schema.Attrs))
		}
		for j, a := range d.Schema.Attrs {
			a2 := d2.Schema.Attrs[j]
			if a2.Name != a.Name || a2.Protected != a.Protected {
				t.Fatalf("attr %d mismatch: %+v vs %+v", j, a2, a)
			}
		}
		for i := range d.Rows {
			if d2.Labels[i] != d.Labels[i] {
				t.Fatalf("row %d label %d != %d", i, d2.Labels[i], d.Labels[i])
			}
			for j, v := range d.Rows[i] {
				got := d2.Schema.Attrs[j].Values[d2.Rows[i][j]]
				want := d.Schema.Attrs[j].Values[v]
				if got != want {
					t.Fatalf("row %d attr %d value %q != %q", i, j, got, want)
				}
			}
		}
	})
}

// FuzzBucketize asserts bucket indices stay in range for any input.
func FuzzBucketize(f *testing.F) {
	f.Add(3.7, 1.0, 2.0, 5.0)
	f.Add(-1e300, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, v, c1, c2, c3 float64) {
		cuts := []float64{c1, c2, c3}
		// Bucketize requires sorted cuts; sort defensively as callers do.
		for i := 0; i < len(cuts); i++ {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		b := Bucketize(v, cuts)
		if b < 0 || int(b) > len(cuts) {
			t.Fatalf("bucket %d out of range", b)
		}
	})
}
