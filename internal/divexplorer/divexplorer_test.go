package divexplorer

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/synth"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "race", Values: []string{"A", "B"}, Protected: true},
			{Name: "sex", Values: []string{"M", "F"}, Protected: true},
			{Name: "other", Values: []string{"x", "y"}},
		},
	}
}

// unfairPredictions builds a dataset and prediction vector where the
// classifier falsely flags negatives of subgroup (race=B, sex=M) at a
// much higher rate than everyone else.
func unfairPredictions(t *testing.T) (*dataset.Dataset, []int) {
	t.Helper()
	d := dataset.New(testSchema())
	r := stats.NewRNG(5)
	var preds []int
	for i := 0; i < 4000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(2))}
		label := int8(r.Intn(2))
		pred := int(label) // mostly perfect predictions…
		if label == 0 {
			fprate := 0.05
			if row[0] == 1 && row[1] == 0 {
				fprate = 0.6 // …except (race=B, sex=M) negatives
			}
			if r.Float64() < fprate {
				pred = 1
			}
		}
		d.Append(row, label)
		preds = append(preds, pred)
	}
	return d, preds
}

func TestExploreFindsUnfairSubgroup(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall < 0.1 || rep.Overall > 0.35 {
		t.Fatalf("overall FPR = %v", rep.Overall)
	}
	if len(rep.Subgroups) == 0 {
		t.Fatal("no subgroups mined")
	}
	// The top-ranked subgroup must be the injected one.
	top := rep.Subgroups[0]
	if got := rep.Space.String(top.Pattern); got != "(race=B, sex=M)" {
		t.Fatalf("top subgroup = %s (div %v)", got, top.Divergence)
	}
	if !top.Significant || top.Divergence < 0.2 {
		t.Fatalf("top subgroup evidence: %+v", top)
	}
	// Ranking must be by divergence descending.
	for i := 1; i < len(rep.Subgroups); i++ {
		if rep.Subgroups[i].Divergence > rep.Subgroups[i-1].Divergence {
			t.Fatal("subgroups not ranked by divergence")
		}
	}
}

func TestExploreSubgroupValuesMatchBruteForce(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Subgroups {
		var c ml.Confusion
		for i := range d.Rows {
			if rep.Space.MatchRow(g.Pattern, d.Rows[i]) {
				c.Observe(int(d.Labels[i]), preds[i], 1)
			}
		}
		if math.Abs(c.FPR()-g.Value) > 1e-12 {
			t.Fatalf("%s: FPR %v != %v", rep.Space.String(g.Pattern), g.Value, c.FPR())
		}
		if int(c.TP+c.FP+c.TN+c.FN) != g.N {
			t.Fatalf("%s: N mismatch", rep.Space.String(g.Pattern))
		}
	}
}

func TestExploreSupportFilter(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Subgroups {
		if g.Support < 0.3 {
			t.Fatalf("subgroup with support %v passed the filter", g.Support)
		}
	}
}

func TestExploreMaxLevel(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Subgroups) != 4 { // race: 2 values, sex: 2 values
		t.Fatalf("level-1 subgroups = %d, want 4", len(rep.Subgroups))
	}
	for _, g := range rep.Subgroups {
		if g.Pattern.Level() != 1 {
			t.Fatal("MaxLevel violated")
		}
	}
}

// TestIndependentFairnessHidesIntersection reproduces Example 1's
// phenomenon: each single attribute looks fair, the intersection does
// not.
func TestIndependentFairnessHidesIntersection(t *testing.T) {
	d := dataset.New(testSchema())
	r := stats.NewRNG(9)
	var preds []int
	for i := 0; i < 8000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(2))}
		label := int8(r.Intn(2))
		pred := int(label)
		if label == 0 {
			// (B,M) and (A,F) get high FPR; (A,M) and (B,F) get low, so
			// both marginals even out.
			fprate := 0.05
			if (row[0] == 1) == (row[1] == 0) {
				fprate = 0.35
			}
			if r.Float64() < fprate {
				pred = 1
			}
		}
		d.Append(row, label)
		preds = append(preds, pred)
	}
	top, err := Explore(d, preds, fairness.FPR, Options{MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range top.Subgroups {
		if g.Divergence > 0.05 {
			t.Fatalf("marginal subgroup %s diverges by %v", top.Space.String(g.Pattern), g.Divergence)
		}
	}
	full, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Subgroups[0].Divergence < 0.1 {
		t.Fatal("intersectional divergence should be exposed")
	}
	if full.Subgroups[0].Pattern.Level() != 2 {
		t.Fatal("the most divergent subgroup should be an intersection")
	}
}

func TestFNRStatistic(t *testing.T) {
	d := dataset.New(testSchema())
	r := stats.NewRNG(11)
	var preds []int
	for i := 0; i < 3000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(2))}
		label := int8(r.Intn(2))
		pred := int(label)
		if label == 1 && row[0] == 0 && r.Float64() < 0.5 {
			pred = 0 // misses positives of race=A
		}
		d.Append(row, label)
		preds = append(preds, pred)
	}
	rep, err := Explore(d, preds, fairness.FNR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Divergence is absolute, so both (race=A) with FNR ≈ 0.5 and its
	// complement (race=B) with FNR ≈ 0 diverge from the overall ≈ 0.25.
	// All race-determined subgroups must be significant; the sex
	// marginals must not be.
	for _, g := range rep.Subgroups {
		name := rep.Space.String(g.Pattern)
		switch name {
		case "(race=A)":
			if g.Value < 0.4 || !g.Significant {
				t.Fatalf("(race=A): %+v", g)
			}
		case "(sex=M)", "(sex=F)":
			if g.Significant {
				t.Fatalf("%s should not be significant: %+v", name, g)
			}
		}
	}
	if rep.Subgroups[0].Pattern[0] == -1 {
		t.Fatal("the top FNR subgroup must be race-determined")
	}
}

func TestUnfairThreshold(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfair := rep.Unfair(0.3)
	for _, g := range unfair {
		if g.Divergence <= 0.3 {
			t.Fatal("Unfair returned a fair subgroup")
		}
	}
	// Only the injected (race=B, sex=M) diverges by more than 0.3.
	if len(unfair) == 0 || len(unfair) >= len(rep.Subgroups) {
		t.Fatalf("unfair count %d of %d looks wrong", len(unfair), len(rep.Subgroups))
	}
}

func TestFairnessIndexAndViolation(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := rep.FairnessIndex(0.1)
	if idx <= 0 {
		t.Fatalf("index = %v, want positive for unfair predictions", idx)
	}
	v := rep.Violation()
	if v <= 0 || v > 1 {
		t.Fatalf("violation = %v", v)
	}
	// Perfect predictions give a zero index and violation.
	perfect := make([]int, d.Len())
	for i := range perfect {
		perfect[i] = int(d.Labels[i])
	}
	rep2, err := Explore(d, perfect, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FairnessIndex(0.1) != 0 || rep2.Violation() != 0 {
		t.Fatal("perfect predictions must score zero")
	}
}

func TestExploreErrors(t *testing.T) {
	d, _ := unfairPredictions(t)
	if _, err := Explore(d, []int{1}, fairness.FPR, Options{}); err == nil {
		t.Fatal("prediction length mismatch must error")
	}
	empty := dataset.New(testSchema())
	if _, err := Explore(empty, nil, fairness.FPR, Options{}); err == nil {
		t.Fatal("empty dataset must error")
	}
	noProt := dataset.New(&dataset.Schema{Target: "y",
		Attrs: []dataset.Attr{{Name: "a", Values: []string{"0"}}}})
	noProt.Append([]int32{0}, 0)
	if _, err := Explore(noProt, []int{0}, fairness.FPR, Options{}); err == nil {
		t.Fatal("no protected attributes must error")
	}
}

func TestExploreOnSyntheticCompas(t *testing.T) {
	// End-to-end: train a decision tree on synthetic COMPAS, audit FPR
	// on the held-out split; the injected bias must surface as unfair
	// subgroups, echoing Example 1.
	d := synth.Compas(1)
	train, test := d.StratifiedSplit(0.7, 1)
	m, err := ml.TrainKind(train, ml.DT, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(test, m.Predict(test), fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfair := rep.Unfair(0.1)
	if len(unfair) == 0 {
		t.Fatal("synthetic COMPAS should produce unfair subgroups under a DT")
	}
	if rep.FairnessIndex(0.1) <= 0 {
		t.Fatal("fairness index should be positive before remedy")
	}
}
