// Package divexplorer re-implements the subgroup auditing tool the
// paper uses for evaluation (Pastor et al., "Looking for trouble:
// Analyzing classifier behavior via pattern divergence", SIGMOD 2021):
// it mines every intersectional subgroup of the protected attributes
// with sufficient support, computes the subgroup's model statistic and
// its divergence from the overall value, tests significance with
// Welch's t-test, and ranks the unfair subgroups — the machinery behind
// Fig. 3 and the Fairness Index of §V-A.d.
package divexplorer

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Subgroup is one audited subgroup with its divergence evidence.
type Subgroup struct {
	Pattern pattern.Pattern
	// N is the subgroup size; Support is N over the dataset size.
	N       int
	Support float64
	// Conf is the subgroup's confusion matrix.
	Conf ml.Confusion
	// Value is γ_g, Divergence is Δγ_g = |γ_g − γ_d|.
	Value      float64
	Divergence float64
	// T and P report Welch's t-test of the subgroup's indicator sample
	// against its complement; Significant applies the auditor's α.
	T, P        float64
	Significant bool
}

// Report is the full audit of one prediction vector under one
// statistic.
type Report struct {
	Space   *pattern.Space
	Stat    fairness.Statistic
	Alpha   float64
	Overall float64 // γ_d
	// OverallConf is the dataset-level confusion matrix.
	OverallConf ml.Confusion
	// Subgroups holds every mined subgroup, ranked by divergence
	// descending (ties by pattern key for determinism).
	Subgroups []Subgroup
}

// Options configures the audit.
type Options struct {
	// MinSupport drops subgroups below this support fraction; 0 means
	// 0.01.
	MinSupport float64
	// Alpha is the significance level of the t-test; 0 means 0.05.
	Alpha float64
	// MaxLevel caps the pattern level (0 = no cap): level 1 audits
	// single attributes only, matching independent group fairness.
	MaxLevel int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.01
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	return o
}

// confCell accumulates integer confusion counts per region.
type confCell struct {
	tp, fp, tn, fn int32
}

func (c confCell) conf() ml.Confusion {
	return ml.Confusion{TP: float64(c.tp), FP: float64(c.fp), TN: float64(c.tn), FN: float64(c.fn)}
}

// Explore audits predictions preds over the (test) dataset d, mining
// every subgroup of the protected-attribute lattice with support at
// least opts.MinSupport.
func Explore(d *dataset.Dataset, preds []int, stat fairness.Statistic, opts Options) (*Report, error) {
	return ExploreCtx(context.Background(), d, preds, stat, opts)
}

// exploreCheckStride bounds how many rows (counting pass) or cells
// (ranking pass) are processed between ctx polls.
const exploreCheckStride = 1024

// ExploreCtx is Explore under a context: the counting pass checks ctx
// every exploreCheckStride rows and the ranking pass every
// exploreCheckStride subgroups, returning ctx.Err() and no report once
// cancelled.
func ExploreCtx(ctx context.Context, d *dataset.Dataset, preds []int, stat fairness.Statistic, opts Options) (*Report, error) {
	if err := stat.Validate(); err != nil {
		return nil, err
	}
	if len(preds) != d.Len() {
		return nil, fmt.Errorf("divexplorer: %d predictions for %d instances", len(preds), d.Len())
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("divexplorer: empty dataset")
	}
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	ctx, span := obs.StartSpan(ctx, "divexplorer.explore")
	span.SetStr("stat", string(stat))
	defer span.End()

	// One pass: accumulate confusion cells for all 2^dim projections of
	// every row, exactly like pattern.CountAll.
	dim := sp.Dim()
	nMasks := 1 << uint(dim)
	cells := make(map[uint64]confCell, 1024)
	contrib := make([]uint64, dim)
	for i, row := range d.Rows {
		if i%exploreCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for s := 0; s < dim; s++ {
			contrib[s] = uint64(row[sp.AttrIdx[s]]+1) << uint(5*s)
		}
		y, p := int(d.Labels[i]), preds[i]
		for m := 0; m < nMasks; m++ {
			var k uint64
			mm := m
			for mm != 0 {
				s := bits.TrailingZeros(uint(mm))
				k |= contrib[s]
				mm &^= 1 << uint(s)
			}
			c := cells[k]
			switch {
			case y == 1 && p == 1:
				c.tp++
			case y == 0 && p == 1:
				c.fp++
			case y == 0 && p == 0:
				c.tn++
			default:
				c.fn++
			}
			cells[k] = c
		}
	}

	rootKey := sp.Key(pattern.NewPattern(dim))
	overall := cells[rootKey].conf()
	rep := &Report{
		Space:       sp,
		Stat:        stat,
		Alpha:       opts.Alpha,
		Overall:     stat.Of(overall),
		OverallConf: overall,
	}
	totalBaseN, totalBaseK := stat.BaseCount(overall)

	minN := int(opts.MinSupport * float64(d.Len()))
	scanned := 0
	for k, cell := range cells {
		scanned++
		if scanned%exploreCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if k == rootKey {
			continue
		}
		conf := cell.conf()
		n := int(cell.tp + cell.fp + cell.tn + cell.fn)
		if n < minN {
			continue
		}
		p := sp.DecodeKey(k)
		if opts.MaxLevel > 0 && p.Level() > opts.MaxLevel {
			continue
		}
		value := stat.Of(conf)
		baseN, baseK := stat.BaseCount(conf)
		sg := Subgroup{
			Pattern:    p,
			N:          n,
			Support:    float64(n) / float64(d.Len()),
			Conf:       conf,
			Value:      value,
			Divergence: fairness.Divergence(value, rep.Overall),
		}
		// Welch t-test: subgroup indicator sample vs its complement.
		restN, restK := totalBaseN-baseN, totalBaseK-baseK
		if res, err := stats.WelchT(
			stats.BernoulliSummary(baseN, baseK),
			stats.BernoulliSummary(restN, restK),
		); err == nil {
			sg.T, sg.P = res.T, res.P
			sg.Significant = res.P < opts.Alpha
		}
		rep.Subgroups = append(rep.Subgroups, sg)
	}
	sort.Slice(rep.Subgroups, func(i, j int) bool {
		a, b := rep.Subgroups[i], rep.Subgroups[j]
		if a.Divergence != b.Divergence {
			return a.Divergence > b.Divergence
		}
		return sp.Key(a.Pattern) < sp.Key(b.Pattern)
	})
	if m := obs.MetricsFrom(ctx); m != nil {
		// itemsets counts the distinct populated cells the counting pass
		// generated (every candidate subgroup, before the support
		// filter); subgroups is what survived it.
		m.Counter("divexplorer.itemsets").Add(int64(len(cells)))
		m.Counter("divexplorer.subgroups").Add(int64(len(rep.Subgroups)))
	}
	span.SetInt("itemsets", int64(len(cells)))
	span.SetInt("subgroups", int64(len(rep.Subgroups)))
	return rep, nil
}

// Unfair returns the subgroups violating Def. 1 at threshold τ_d,
// preserving the divergence ranking.
func (r *Report) Unfair(tauD float64) []Subgroup {
	var out []Subgroup
	for _, g := range r.Subgroups {
		if g.Divergence > tauD {
			out = append(out, g)
		}
	}
	return out
}

// Outcomes converts the mined subgroups into the aggregate-metric
// input of package fairness.
func (r *Report) Outcomes() []fairness.GroupOutcome {
	out := make([]fairness.GroupOutcome, len(r.Subgroups))
	for i, g := range r.Subgroups {
		baseN, _ := r.Stat.BaseCount(g.Conf)
		out[i] = fairness.GroupOutcome{
			Support:     g.Support,
			Divergence:  g.Divergence,
			Significant: g.Significant,
			BaseN:       baseN,
		}
	}
	return out
}

// FairnessIndex computes the paper's Fairness Index from this audit:
// the sum of divergences over subgroups with support above minSupport
// (use 0.1 as in §V-A.d) and a significant t-test.
func (r *Report) FairnessIndex(minSupport float64) float64 {
	return fairness.FairnessIndex(r.Outcomes(), minSupport)
}

// Violation computes the GerryFair-style fairness violation from this
// audit (maximum divergence weighted by violated-population share).
func (r *Report) Violation() float64 {
	totalBase, _ := r.Stat.BaseCount(r.OverallConf)
	return fairness.Violation(r.Outcomes(), totalBase)
}
