package divexplorer

import "repro/internal/pattern"

// This file adds the report post-processing DivExplorer offers on top
// of raw mining: redundancy pruning (a subgroup whose divergence is
// already explained by a more general subgroup carries no new
// information) and top-k selection for human consumption.

// TopK returns the k most divergent subgroups (fewer if the report is
// smaller), preserving the ranking.
func (r *Report) TopK(k int) []Subgroup {
	if k > len(r.Subgroups) {
		k = len(r.Subgroups)
	}
	if k < 0 {
		k = 0
	}
	return r.Subgroups[:k]
}

// PruneRedundant drops every subgroup some strictly more general mined
// subgroup already explains: g is redundant when an ancestor g' ≻ g has
// |Δγ_g − Δγ_g'| <= eps. The most general subgroups always survive, so
// the pruned report highlights where in the lattice divergence actually
// emerges.
func (r *Report) PruneRedundant(eps float64) []Subgroup {
	// Index mined subgroups by key for ancestor lookups.
	byKey := make(map[uint64]Subgroup, len(r.Subgroups))
	for _, g := range r.Subgroups {
		byKey[r.Space.Key(g.Pattern)] = g
	}
	var out []Subgroup
	for _, g := range r.Subgroups {
		if !r.ancestorExplains(g, byKey, eps) {
			out = append(out, g)
		}
	}
	return out
}

// ancestorExplains reports whether any mined strict ancestor of g has a
// divergence within eps of g's.
func (r *Report) ancestorExplains(g Subgroup, byKey map[uint64]Subgroup, eps float64) bool {
	// Walk all strict generalizations of g's pattern (wildcard any
	// non-empty subset of deterministic slots, excluding the root).
	slots := make([]int, 0, len(g.Pattern))
	for i, v := range g.Pattern {
		if v != pattern.Wildcard {
			slots = append(slots, i)
		}
	}
	if len(slots) <= 1 {
		return false // level-1 subgroups have no non-root ancestors
	}
	q := g.Pattern.Clone()
	found := false
	var walk func(k int, removed int)
	walk = func(k int, removed int) {
		if found {
			return
		}
		if k == len(slots) {
			if removed == 0 || removed == len(slots) {
				return // g itself or the root
			}
			if anc, ok := byKey[r.Space.Key(q)]; ok {
				diff := g.Divergence - anc.Divergence
				if diff < 0 {
					diff = -diff
				}
				if diff <= eps {
					found = true
				}
			}
			return
		}
		// Keep slot k.
		walk(k+1, removed)
		// Or wildcard it.
		s := slots[k]
		orig := q[s]
		q[s] = pattern.Wildcard
		walk(k+1, removed+1)
		q[s] = orig
	}
	walk(0, 0)
	return found
}
