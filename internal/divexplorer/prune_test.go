package divexplorer

import (
	"testing"

	"repro/internal/fairness"
	"repro/internal/pattern"
)

func TestTopK(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) = %d", len(top))
	}
	if top[0].Divergence < top[2].Divergence {
		t.Fatal("TopK not ranked")
	}
	if got := rep.TopK(1000); len(got) != len(rep.Subgroups) {
		t.Fatal("oversized k must clamp")
	}
	if got := rep.TopK(-1); len(got) != 0 {
		t.Fatal("negative k must clamp to zero")
	}
}

func TestPruneRedundantDropsExplainedChildren(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned := rep.PruneRedundant(0.05)
	if len(pruned) == 0 || len(pruned) >= len(rep.Subgroups) {
		t.Fatalf("pruned %d of %d — expected a strict reduction", len(pruned), len(rep.Subgroups))
	}
	// The injected source subgroup must survive: nothing more general
	// explains its divergence.
	foundInjected := false
	for _, g := range pruned {
		if rep.Space.String(g.Pattern) == "(race=B, sex=M)" {
			foundInjected = true
		}
	}
	if !foundInjected {
		t.Fatal("pruning removed the true source subgroup")
	}
	// Every surviving level-2+ subgroup must genuinely differ from all
	// its mined ancestors.
	byKey := map[uint64]Subgroup{}
	for _, g := range rep.Subgroups {
		byKey[rep.Space.Key(g.Pattern)] = g
	}
	for _, g := range pruned {
		if g.Pattern.Level() < 2 {
			continue
		}
		rep.Space.Parents(g.Pattern, func(q pattern.Pattern) {
			if anc, ok := byKey[rep.Space.Key(q)]; ok {
				diff := g.Divergence - anc.Divergence
				if diff < 0 {
					diff = -diff
				}
				if diff <= 0.05 {
					t.Fatalf("%s survived but parent %s explains it",
						rep.Space.String(g.Pattern), rep.Space.String(q))
				}
			}
		})
	}
}

func TestPruneRedundantKeepsLevelOne(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With an enormous epsilon everything with ancestors is pruned;
	// level-1 subgroups must all remain.
	pruned := rep.PruneRedundant(1e9)
	for _, g := range pruned {
		if g.Pattern.Level() != 1 {
			t.Fatalf("level-%d subgroup survived infinite epsilon", g.Pattern.Level())
		}
	}
	level1 := 0
	for _, g := range rep.Subgroups {
		if g.Pattern.Level() == 1 {
			level1++
		}
	}
	if len(pruned) != level1 {
		t.Fatalf("pruned to %d, want all %d level-1 subgroups", len(pruned), level1)
	}
}
