package divexplorer

import (
	"fmt"
	"math/bits"

	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/pattern"
)

// This file implements DivExplorer's item attribution: the Shapley
// value of each deterministic element (item) of an unfair subgroup's
// pattern with respect to the subgroup's divergence. The characteristic
// function v(S) is the divergence of the sub-pattern formed by the item
// subset S, so φ_i quantifies how much "being female" vs "being
// African-American" vs "being under 25" each contribute to the
// intersection's unfairness. By Shapley efficiency Σ_i φ_i equals the
// full pattern's divergence (v(∅) = 0 because the empty pattern is the
// whole dataset).

// ItemContribution is one item's attribution.
type ItemContribution struct {
	Slot int    // protected-attribute slot of the item
	Item string // rendered "attr=value"
	Phi  float64
}

// ShapleyAttribution computes the per-item Shapley values of subgroup
// g's divergence, re-evaluating every sub-pattern of g's items on the
// given dataset and predictions (the same inputs Explore audited).
func (r *Report) ShapleyAttribution(d *dataset.Dataset, preds []int, g Subgroup) ([]ItemContribution, error) {
	if len(preds) != d.Len() {
		return nil, fmt.Errorf("divexplorer: %d predictions for %d instances", len(preds), d.Len())
	}
	slots := make([]int, 0, len(g.Pattern))
	for i, v := range g.Pattern {
		if v != pattern.Wildcard {
			slots = append(slots, i)
		}
	}
	nItems := len(slots)
	if nItems == 0 {
		return nil, fmt.Errorf("divexplorer: the whole-dataset subgroup has no items")
	}
	if nItems > 16 {
		return nil, fmt.Errorf("divexplorer: %d items exceed the exact-Shapley limit", nItems)
	}

	// One pass: each row contributes its confusion cell to every item
	// subset it fully matches.
	nSub := 1 << uint(nItems)
	cells := make([]confCell, nSub)
	for i, row := range d.Rows {
		var matched int
		for bit, s := range slots {
			if row[r.Space.AttrIdx[s]] == int32(g.Pattern[s]) {
				matched |= 1 << uint(bit)
			}
		}
		y, p := int(d.Labels[i]), preds[i]
		// Enumerate subsets of the matched mask.
		for sub := matched; ; sub = (sub - 1) & matched {
			switch {
			case y == 1 && p == 1:
				cells[sub].tp++
			case y == 0 && p == 1:
				cells[sub].fp++
			case y == 0 && p == 0:
				cells[sub].tn++
			default:
				cells[sub].fn++
			}
			if sub == 0 {
				break
			}
		}
	}

	// v(S) = divergence of the sub-pattern; empty regions contribute 0.
	v := make([]float64, nSub)
	base := r.Stat.Of(cells[0].conf()) // S = ∅ is the whole dataset: γ_d
	for s := 0; s < nSub; s++ {
		c := cells[s].conf()
		if c.TP+c.FP+c.TN+c.FN == 0 {
			v[s] = 0
			continue
		}
		v[s] = fairness.Divergence(r.Stat.Of(c), base)
	}

	// Shapley weights w(|S|) = |S|! (n-|S|-1)! / n!.
	fact := make([]float64, nItems+1)
	fact[0] = 1
	for i := 1; i <= nItems; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	out := make([]ItemContribution, nItems)
	for bit, s := range slots {
		item := fmt.Sprintf("%s=%s", r.Space.Names[s],
			r.Space.Schema.Attrs[r.Space.AttrIdx[s]].Values[g.Pattern[s]])
		var phi float64
		for sub := 0; sub < nSub; sub++ {
			if sub&(1<<uint(bit)) != 0 {
				continue
			}
			size := bits.OnesCount(uint(sub))
			w := fact[size] * fact[nItems-size-1] / fact[nItems]
			phi += w * (v[sub|1<<uint(bit)] - v[sub])
		}
		out[bit] = ItemContribution{Slot: s, Item: item, Phi: phi}
	}
	return out, nil
}

// AttributeWorst audits a model on d and returns the Shapley
// attribution of its most divergent subgroup — the one-call form used
// by the examples.
func AttributeWorst(d *dataset.Dataset, m *ml.Model, stat fairness.Statistic) (Subgroup, []ItemContribution, error) {
	preds := m.Predict(d)
	rep, err := Explore(d, preds, stat, Options{})
	if err != nil {
		return Subgroup{}, nil, err
	}
	if len(rep.Subgroups) == 0 {
		return Subgroup{}, nil, fmt.Errorf("divexplorer: nothing mined")
	}
	worst := rep.Subgroups[0]
	contrib, err := rep.ShapleyAttribution(d, preds, worst)
	return worst, contrib, err
}
