package divexplorer

import (
	"math"
	"testing"

	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/synth"
)

func TestShapleyEfficiency(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// For every mined subgroup, the attributions must sum to the
	// subgroup's divergence (Shapley efficiency, v(∅)=0).
	for _, g := range rep.Subgroups {
		contribs, err := rep.ShapleyAttribution(d, preds, g)
		if err != nil {
			t.Fatal(err)
		}
		if len(contribs) != g.Pattern.Level() {
			t.Fatalf("%s: %d contributions for %d items",
				rep.Space.String(g.Pattern), len(contribs), g.Pattern.Level())
		}
		var sum float64
		for _, c := range contribs {
			sum += c.Phi
		}
		if math.Abs(sum-g.Divergence) > 1e-9 {
			t.Fatalf("%s: Σφ = %v, divergence = %v", rep.Space.String(g.Pattern), sum, g.Divergence)
		}
	}
}

func TestShapleySingleItemIsDivergence(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Subgroups {
		if g.Pattern.Level() != 1 {
			continue
		}
		contribs, err := rep.ShapleyAttribution(d, preds, g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(contribs[0].Phi-g.Divergence) > 1e-12 {
			t.Fatalf("single-item φ = %v, divergence = %v", contribs[0].Phi, g.Divergence)
		}
	}
}

func TestShapleyAttributesInteraction(t *testing.T) {
	// In unfairPredictions the FPR burst targets exactly (race=B,
	// sex=M): both items must carry positive contributions, and their
	// rendered names must match the schema.
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Subgroups[0] // (race=B, sex=M)
	contribs, err := rep.ShapleyAttribution(d, preds, top)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]float64{}
	for _, c := range contribs {
		names[c.Item] = c.Phi
	}
	if names["race=B"] <= 0 || names["sex=M"] <= 0 {
		t.Fatalf("both items should contribute positively: %v", names)
	}
}

func TestShapleyErrors(t *testing.T) {
	d, preds := unfairPredictions(t)
	rep, err := Explore(d, preds, fairness.FPR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.ShapleyAttribution(d, preds[:5], rep.Subgroups[0]); err == nil {
		t.Fatal("prediction length mismatch must error")
	}
	empty := rep.Subgroups[0]
	empty.Pattern = empty.Pattern.Clone()
	for i := range empty.Pattern {
		empty.Pattern[i] = -1
	}
	if _, err := rep.ShapleyAttribution(d, preds, empty); err == nil {
		t.Fatal("whole-dataset pattern must error")
	}
}

func TestAttributeWorst(t *testing.T) {
	d := synth.CompasN(3000, 31)
	train, test := d.StratifiedSplit(0.7, 1)
	m, err := ml.TrainKind(train, ml.DT, 1)
	if err != nil {
		t.Fatal(err)
	}
	worst, contribs, err := AttributeWorst(test, m, fairness.FPR)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Divergence <= 0 || len(contribs) == 0 {
		t.Fatalf("worst %+v contribs %v", worst, contribs)
	}
	var sum float64
	for _, c := range contribs {
		sum += c.Phi
	}
	if math.Abs(sum-worst.Divergence) > 1e-9 {
		t.Fatalf("efficiency broken on real pipeline: %v vs %v", sum, worst.Divergence)
	}
}
