package synth

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// contingency builds the count table of two attributes.
func contingency(d *dataset.Dataset, a, b string) [][]int {
	ai, bi := d.Schema.AttrIndex(a), d.Schema.AttrIndex(b)
	table := make([][]int, d.Schema.Attrs[ai].Cardinality())
	for i := range table {
		table[i] = make([]int, d.Schema.Attrs[bi].Cardinality())
	}
	for _, row := range d.Rows {
		table[row[ai]][row[bi]]++
	}
	return table
}

// labelContingency builds the attribute-vs-label count table.
func labelContingency(d *dataset.Dataset, a string) [][]int {
	ai := d.Schema.AttrIndex(a)
	table := make([][]int, d.Schema.Attrs[ai].Cardinality())
	for i := range table {
		table[i] = make([]int, 2)
	}
	for i, row := range d.Rows {
		table[row[ai]][d.Labels[i]]++
	}
	return table
}

func assertAssociated(t *testing.T, table [][]int, what string) {
	t.Helper()
	res, err := stats.ChiSquareIndependence(table)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if res.P > 0.001 {
		t.Fatalf("%s: not associated (p=%v, chi2=%v)", what, res.P, res.Chi2)
	}
}

// TestCompasCorrelationStructure confirms the documented dependencies
// of the COMPAS generator actually hold in the sampled data.
func TestCompasCorrelationStructure(t *testing.T) {
	d := Compas(5)
	assertAssociated(t, contingency(d, "age", "priors"), "age ↔ priors")
	assertAssociated(t, contingency(d, "race", "priors"), "race ↔ priors")
	assertAssociated(t, contingency(d, "age", "juv_count"), "age ↔ juvenile count")
	assertAssociated(t, labelContingency(d, "priors"), "priors ↔ recidivism")
	assertAssociated(t, labelContingency(d, "age"), "age ↔ recidivism")
}

// TestAdultCorrelationStructure does the same for Adult.
func TestAdultCorrelationStructure(t *testing.T) {
	d := Adult(5)
	assertAssociated(t, contingency(d, "age", "marital_status"), "age ↔ marital status")
	assertAssociated(t, contingency(d, "education", "occupation"), "education ↔ occupation")
	assertAssociated(t, contingency(d, "race", "country"), "race ↔ country")
	assertAssociated(t, labelContingency(d, "education"), "education ↔ income")
	assertAssociated(t, labelContingency(d, "marital_status"), "marital status ↔ income")
	assertAssociated(t, labelContingency(d, "capital_gain"), "capital gain ↔ income")
}

// TestLawSchoolCorrelationStructure does the same for Law School.
func TestLawSchoolCorrelationStructure(t *testing.T) {
	d := LawSchool(5)
	assertAssociated(t, contingency(d, "race", "family_income"), "race ↔ family income")
	assertAssociated(t, contingency(d, "family_income", "lsat"), "family income ↔ LSAT")
	assertAssociated(t, contingency(d, "lsat", "ugpa"), "LSAT ↔ UGPA")
	assertAssociated(t, labelContingency(d, "lsat"), "LSAT ↔ bar passage")
	assertAssociated(t, labelContingency(d, "decile1"), "first-year decile ↔ bar passage")
}

// TestUncorrelatedAttributesStayIndependent guards against accidental
// coupling: attributes the generators sample independently must not
// show a strong association (Cramér's V stays small even when n makes
// tiny effects "significant").
func TestUncorrelatedAttributesStayIndependent(t *testing.T) {
	d := Compas(5)
	res, err := stats.ChiSquareIndependence(contingency(d, "sex", "charge"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CramersV > 0.05 {
		t.Fatalf("sex ↔ charge coupled: V=%v", res.CramersV)
	}
}
