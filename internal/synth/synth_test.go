package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestCompasCharacteristics(t *testing.T) {
	d := Compas(1)
	if d.Len() != CompasSize {
		t.Fatalf("rows = %d, want %d", d.Len(), CompasSize)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Schema.Attrs); got != 6 {
		t.Fatalf("|A| = %d, want 6", got)
	}
	if got := len(d.Schema.ProtectedIdx()); got != 3 {
		t.Fatalf("|X| = %d, want 3", got)
	}
	if br := d.BaseRate(); br < 0.35 || br > 0.55 {
		t.Fatalf("base rate %v outside recidivism range", br)
	}
}

// countRegion tallies (n, positives) for a conjunction of named values.
func countRegion(d *dataset.Dataset, pairs ...string) (n, pos int) {
	var attrs []int
	var vals []int32
	for i := 0; i < len(pairs); i += 2 {
		ai := d.Schema.AttrIndex(pairs[i])
		vi := d.Schema.Attrs[ai].ValueIndex(pairs[i+1])
		attrs = append(attrs, ai)
		vals = append(vals, int32(vi))
	}
	for i := range d.Rows {
		if d.Match(i, attrs, vals) {
			n++
			if d.Labels[i] == 1 {
				pos++
			}
		}
	}
	return n, pos
}

func ratioOf(n, pos int) float64 {
	neg := n - pos
	if neg == 0 {
		return -1
	}
	return float64(pos) / float64(neg)
}

func TestCompasInjectedIBS(t *testing.T) {
	d := Compas(1)
	// The running example's region must be strongly positive-skewed…
	n, pos := countRegion(d, "age", "25-45", "priors", ">3")
	if n < 100 {
		t.Fatalf("region too small: %d", n)
	}
	rIn := ratioOf(n, pos)
	if rIn < 1.5 {
		t.Fatalf("ratio in (25-45, >3 priors) = %v, want > 1.5", rIn)
	}
	// …while its distance-1 neighbors are much less skewed.
	var nn, np int
	for _, nb := range [][]string{
		{"age", "25-45", "priors", "0"},
		{"age", "25-45", "priors", "1-3"},
		{"age", "<25", "priors", ">3"},
		{"age", ">45", "priors", ">3"},
	} {
		a, b := countRegion(d, nb...)
		nn += a
		np += b
	}
	rOut := ratioOf(nn, np)
	if rOut < 0 || rIn-rOut < 0.5 {
		t.Fatalf("neighbor ratio %v vs region %v: injected bias missing", rOut, rIn)
	}
	// Afr-Am males carry excess positives relative to the base rate.
	n2, pos2 := countRegion(d, "race", "Afr-Am", "sex", "Male")
	if float64(pos2)/float64(n2) < d.BaseRate()+0.05 {
		t.Fatalf("Afr-Am male positive rate %v not above base %v",
			float64(pos2)/float64(n2), d.BaseRate())
	}
}

func TestCompasDeterminism(t *testing.T) {
	a, b := Compas(7), Compas(7)
	for i := range a.Rows {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("same seed must give same rows")
			}
		}
	}
	c := Compas(8)
	diff := 0
	for i := range a.Rows {
		if a.Labels[i] != c.Labels[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestAdultCharacteristics(t *testing.T) {
	d := Adult(1)
	if d.Len() != AdultSize {
		t.Fatalf("rows = %d, want %d", d.Len(), AdultSize)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Schema.Attrs); got != 13 {
		t.Fatalf("|A| = %d, want 13", got)
	}
	if got := len(d.Schema.ProtectedIdx()); got != 6 {
		t.Fatalf("|X| = %d, want 6", got)
	}
	if br := d.BaseRate(); br < 0.18 || br > 0.32 {
		t.Fatalf("base rate %v outside census income range", br)
	}
}

func TestAdultCorrelations(t *testing.T) {
	d := Adult(2)
	// Married men must out-earn the base rate; Black women must fall
	// below it — the injected historical bias.
	n1, p1 := countRegion(d, "gender", "Male", "marital_status", "Married")
	n2, p2 := countRegion(d, "race", "Black", "gender", "Female")
	base := d.BaseRate()
	if float64(p1)/float64(n1) <= base {
		t.Fatalf("married males %v not above base %v", float64(p1)/float64(n1), base)
	}
	if float64(p2)/float64(n2) >= base {
		t.Fatalf("black females %v not below base %v", float64(p2)/float64(n2), base)
	}
	// Relationship/gender consistency: every Husband is male, every
	// Wife female.
	ri := d.Schema.AttrIndex("relationship")
	gi := d.Schema.AttrIndex("gender")
	for i := range d.Rows {
		if d.Rows[i][ri] == 0 && d.Rows[i][gi] != 0 {
			t.Fatal("female husband generated")
		}
		if d.Rows[i][ri] == 1 && d.Rows[i][gi] != 1 {
			t.Fatal("male wife generated")
		}
	}
}

func TestAdultScalabilityProtectedSet(t *testing.T) {
	d := Adult(3)
	s := d.Schema.Clone()
	if err := s.SetProtected(AdultScalabilityProtected...); err != nil {
		t.Fatal(err)
	}
	if got := len(s.ProtectedIdx()); got != 8 {
		t.Fatalf("|X| = %d, want 8", got)
	}
}

func TestLawSchoolCharacteristics(t *testing.T) {
	d := LawSchool(1)
	if d.Len() != LawSchoolSize {
		t.Fatalf("rows = %d, want %d", d.Len(), LawSchoolSize)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Schema.Attrs); got != 12 {
		t.Fatalf("|A| = %d, want 12", got)
	}
	if got := len(d.Schema.ProtectedIdx()); got != 4 {
		t.Fatalf("|X| = %d, want 4", got)
	}
	// The paper balances the label exactly.
	if br := d.BaseRate(); math.Abs(br-0.5) > 0.001 {
		t.Fatalf("base rate %v, want 0.5", br)
	}
}

func TestLawSchoolInjectedBias(t *testing.T) {
	d := LawSchool(2)
	n1, p1 := countRegion(d, "race", "Black", "family_income", "low")
	n2, p2 := countRegion(d, "race", "White", "family_income", "high")
	if n1 < 30 || n2 < 30 {
		t.Fatalf("regions too small: %d, %d", n1, n2)
	}
	if float64(p1)/float64(n1) >= 0.5 {
		t.Fatalf("low-income Black pass rate %v not below 0.5", float64(p1)/float64(n1))
	}
	if float64(p2)/float64(n2) <= 0.5 {
		t.Fatalf("high-income White pass rate %v not above 0.5", float64(p2)/float64(n2))
	}
}

func TestSmallN(t *testing.T) {
	for _, d := range []*dataset.Dataset{CompasN(500, 4), AdultN(500, 4), LawSchoolN(500, 4)} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Len() == 0 {
			t.Fatal("empty dataset")
		}
	}
	if got := LawSchoolN(500, 4).Len(); got != 500 {
		t.Fatalf("LawSchoolN(500) = %d rows", got)
	}
}

func TestBiasHelperPanics(t *testing.T) {
	s := CompasSchema()
	for _, c := range [][]string{
		{"nope", "x"},
		{"age", "nope"},
		{"age"},
	} {
		if _, err := bias(s, 1, c...); err == nil {
			t.Fatalf("expected error for %v", c)
		}
	}
}

func TestShippedBiasTables(t *testing.T) {
	staticBiasErrs.mu.Lock()
	staticBiasErrs.errs = nil
	staticBiasErrs.mu.Unlock()
	Adult(1)
	Compas(1)
	LawSchool(1)
	staticBiasErrs.mu.Lock()
	defer staticBiasErrs.mu.Unlock()
	if len(staticBiasErrs.errs) != 0 {
		t.Fatalf("shipped bias tables did not resolve cleanly: %v", staticBiasErrs.errs)
	}
}

func TestSigmoid(t *testing.T) {
	if got := sigmoid(0); got != 0.5 {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	if got := sigmoid(10); got < 0.999 {
		t.Fatalf("sigmoid(10) = %v", got)
	}
	if got := sigmoid(-10); got > 0.001 {
		t.Fatalf("sigmoid(-10) = %v", got)
	}
}
