package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func customSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "g", Values: []string{"a", "b"}, Protected: true},
			{Name: "h", Values: []string{"x", "y", "z"}, Protected: true},
		},
	}
}

func TestCustomGeneratesConfiguredBias(t *testing.T) {
	cfg := CustomConfig{
		Schema:    customSchema(),
		Rows:      8000,
		Marginals: [][]float64{{1, 1}, {1, 1, 1}},
		Intercept: 0,
		Biases: []RegionBias{
			{Conditions: []string{"g", "a", "h", "x"}, Offset: 2.5},
			{Conditions: []string{"g", "b"}, Offset: -1.0},
		},
	}
	d, err := Custom(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8000 {
		t.Fatalf("rows = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// (g=a, h=x) must be strongly positive; (g=b) below 50%.
	var n1, p1, n2, p2 int
	for i, row := range d.Rows {
		if row[0] == 0 && row[1] == 0 {
			n1++
			if d.Labels[i] == 1 {
				p1++
			}
		}
		if row[0] == 1 {
			n2++
			if d.Labels[i] == 1 {
				p2++
			}
		}
	}
	if r := float64(p1) / float64(n1); r < 0.85 {
		t.Fatalf("biased region positive rate %v, want high", r)
	}
	if r := float64(p2) / float64(n2); r > 0.40 {
		t.Fatalf("depressed region positive rate %v, want low", r)
	}
}

func TestCustomConditionals(t *testing.T) {
	cfg := CustomConfig{
		Schema:    customSchema(),
		Rows:      4000,
		Marginals: [][]float64{{1, 1}, nil},
		Conditionals: []func(row []int32) []float64{
			nil,
			func(row []int32) []float64 {
				if row[0] == 0 {
					return []float64{1, 0, 0} // g=a forces h=x
				}
				return []float64{0, 1, 1}
			},
		},
	}
	d, err := Custom(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row[0] == 0 && row[1] != 0 {
			t.Fatal("conditional sampling violated")
		}
		if row[0] == 1 && row[1] == 0 {
			t.Fatal("conditional sampling violated (b side)")
		}
	}
}

func TestCustomLabelWeights(t *testing.T) {
	cfg := CustomConfig{
		Schema:    customSchema(),
		Rows:      6000,
		Marginals: [][]float64{{1, 1}, {1, 1, 1}},
		Intercept: -1,
		Weights:   map[int][]float64{0: {2, -2}},
	}
	d, err := Custom(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var na, pa, nb, pb int
	for i, row := range d.Rows {
		if row[0] == 0 {
			na++
			pa += int(d.Labels[i])
		} else {
			nb++
			pb += int(d.Labels[i])
		}
	}
	// sigmoid(1) ≈ 0.73 vs sigmoid(-3) ≈ 0.047.
	if r := float64(pa) / float64(na); math.Abs(r-0.73) > 0.05 {
		t.Fatalf("g=a rate %v, want ~0.73", r)
	}
	if r := float64(pb) / float64(nb); r > 0.10 {
		t.Fatalf("g=b rate %v, want ~0.05", r)
	}
}

func TestCustomValidation(t *testing.T) {
	base := func() CustomConfig {
		return CustomConfig{
			Schema:    customSchema(),
			Rows:      10,
			Marginals: [][]float64{{1, 1}, {1, 1, 1}},
		}
	}
	cases := []struct {
		name   string
		break_ func(*CustomConfig)
	}{
		{"nil schema", func(c *CustomConfig) { c.Schema = nil }},
		{"zero rows", func(c *CustomConfig) { c.Rows = 0 }},
		{"marginal count", func(c *CustomConfig) { c.Marginals = c.Marginals[:1] }},
		{"marginal width", func(c *CustomConfig) { c.Marginals[1] = []float64{1} }},
		{"weights width", func(c *CustomConfig) { c.Weights = map[int][]float64{0: {1}} }},
		{"weights index", func(c *CustomConfig) { c.Weights = map[int][]float64{9: {1, 1}} }},
		{"bias attr", func(c *CustomConfig) {
			c.Biases = []RegionBias{{Conditions: []string{"zzz", "a"}, Offset: 1}}
		}},
		{"bias value", func(c *CustomConfig) {
			c.Biases = []RegionBias{{Conditions: []string{"g", "zzz"}, Offset: 1}}
		}},
		{"bias odd pairs", func(c *CustomConfig) {
			c.Biases = []RegionBias{{Conditions: []string{"g"}, Offset: 1}}
		}},
		{"conditional count", func(c *CustomConfig) {
			c.Conditionals = []func([]int32) []float64{nil}
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.break_(&cfg)
		if _, err := Custom(cfg, 1); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	// Bad conditional return width errors at generation time.
	cfg := base()
	cfg.Conditionals = []func([]int32) []float64{nil, func([]int32) []float64 { return []float64{1} }}
	if _, err := Custom(cfg, 1); err == nil {
		t.Fatal("bad conditional width must error")
	}
}

func TestCustomDeterminism(t *testing.T) {
	cfg := CustomConfig{
		Schema:    customSchema(),
		Rows:      500,
		Marginals: [][]float64{{1, 3}, {1, 1, 2}},
	}
	a, err := Custom(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Custom(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Labels[i] != b.Labels[i] || a.Rows[i][0] != b.Rows[i][0] || a.Rows[i][1] != b.Rows[i][1] {
			t.Fatal("same seed must reproduce")
		}
	}
}
