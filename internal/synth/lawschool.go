package synth

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// LawSchoolSize is the Law School dataset size reported in Table II
// (after the paper's uniform sampling to a balanced label).
const LawSchoolSize = 4590

// LawSchoolProtected is the paper's protected attribute set for Law
// School (Table II, |X| = 4).
var LawSchoolProtected = []string{"age", "gender", "race", "family_income"}

// LawSchoolSchema returns the 12-attribute schema of the synthetic LSAC
// Law School dataset.
func LawSchoolSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "pass_bar",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{"<22", "22-25", ">25"}, Protected: true, Ordered: true},
			{Name: "gender", Values: []string{"Male", "Female"}, Protected: true},
			{Name: "race", Values: []string{"White", "Black", "Hispanic", "Asian"}, Protected: true},
			{Name: "family_income", Values: []string{"low", "mid-low", "mid-high", "high"}, Protected: true, Ordered: true},
			{Name: "lsat", Values: []string{"Q1", "Q2", "Q3", "Q4"}, Ordered: true},
			{Name: "ugpa", Values: []string{"Q1", "Q2", "Q3", "Q4"}, Ordered: true},
			{Name: "school_tier", Values: []string{"T4", "T3", "T2", "T1"}, Ordered: true},
			{Name: "fulltime", Values: []string{"Yes", "No"}},
			{Name: "region", Values: []string{"Northeast", "South", "Midwest", "West"}},
			{Name: "work_experience", Values: []string{"None", "Some", "Much"}, Ordered: true},
			{Name: "decile1", Values: []string{"Q1", "Q2", "Q3", "Q4"}, Ordered: true},
			{Name: "parents_education", Values: []string{"HS", "College", "Graduate"}, Ordered: true},
		},
	}
}

// LawSchool generates the synthetic Law School dataset: 4,590 rows with
// a balanced (1:1) pass/fail label as in the paper's preprocessing.
func LawSchool(seed int64) *dataset.Dataset { return LawSchoolN(LawSchoolSize, seed) }

// LawSchoolN generates a balanced Law School dataset with n rows
// (n/2 positive, n/2 negative). Academic signals (LSAT, UGPA, first-year
// decile, school tier) dominate the bar-passage label; representation
// bias concentrates failures among low-income Black students and older
// women, and successes among high-income White students.
func LawSchoolN(n int, seed int64) *dataset.Dataset {
	s := LawSchoolSchema()
	r := stats.NewRNG(seed)
	raw := dataset.New(s)

	model := &labelModel{
		intercept: 0.15,
		weights: map[int][]float64{
			4:  {-1.05, -0.30, 0.35, 1.00}, // lsat
			5:  {-0.80, -0.25, 0.30, 0.80}, // ugpa
			6:  {-0.45, -0.10, 0.20, 0.50}, // school tier
			7:  {0.15, -0.30},              // fulltime
			10: {-0.90, -0.25, 0.30, 0.85}, // decile1
			11: {-0.15, 0.05, 0.20},        // parents' education
		},
		biases: []regionBias{
			staticBias(s, -1.05, "race", "Black", "family_income", "low"),
			staticBias(s, -0.55, "gender", "Female", "age", ">25"),
			staticBias(s, -0.45, "family_income", "low", "age", "<22"),
			staticBias(s, 0.85, "race", "White", "family_income", "high"),
			staticBias(s, 0.40, "race", "Asian", "family_income", "mid-high"),
		},
	}

	// Generate an unbalanced pool large enough that both classes exceed
	// n/2, then balance and trim — mirroring the paper's uniform
	// sampling of the extremely label-imbalanced original.
	pool := 4 * n
	for i := 0; i < pool; i++ {
		row := make([]int32, 12)
		row[0] = weightedPick(r, []float64{0.28, 0.52, 0.20}) // age
		row[1] = weightedPick(r, []float64{0.56, 0.44})       // gender
		row[2] = weightedPick(r, []float64{0.76, 0.09, 0.07, 0.08})
		// Family income skews by race in the collected cohort.
		fw := []float64{0.18, 0.30, 0.32, 0.20}
		switch row[2] {
		case 1, 2: // Black, Hispanic
			fw = []float64{0.38, 0.34, 0.20, 0.08}
		case 3: // Asian
			fw = []float64{0.15, 0.25, 0.33, 0.27}
		}
		row[3] = weightedPick(r, fw)
		// LSAT correlates with family income (prep resources) and
		// parents' education.
		lw := []float64{0.25, 0.25, 0.25, 0.25}
		switch row[3] {
		case 0:
			lw = []float64{0.38, 0.30, 0.20, 0.12}
		case 3:
			lw = []float64{0.14, 0.22, 0.30, 0.34}
		}
		row[4] = weightedPick(r, lw)
		// UGPA loosely tracks LSAT.
		uw := []float64{0.25, 0.25, 0.25, 0.25}
		if row[4] >= 2 {
			uw = []float64{0.15, 0.22, 0.30, 0.33}
		} else {
			uw = []float64{0.33, 0.30, 0.22, 0.15}
		}
		row[5] = weightedPick(r, uw)
		// Better scores reach better tiers.
		tw := []float64{0.25, 0.25, 0.25, 0.25}
		if row[4] == 3 || row[5] == 3 {
			tw = []float64{0.10, 0.20, 0.30, 0.40}
		}
		row[6] = weightedPick(r, tw)
		row[7] = weightedPick(r, []float64{0.88, 0.12}) // fulltime
		row[8] = weightedPick(r, []float64{0.27, 0.30, 0.22, 0.21})
		aw := []float64{0.55, 0.33, 0.12}
		if row[0] == 2 {
			aw = []float64{0.15, 0.40, 0.45}
		}
		row[9] = weightedPick(r, aw)
		// First-year decile tracks entry credentials.
		dw := []float64{0.25, 0.25, 0.25, 0.25}
		switch {
		case row[4] == 3:
			dw = []float64{0.10, 0.20, 0.32, 0.38}
		case row[4] == 0:
			dw = []float64{0.38, 0.32, 0.20, 0.10}
		}
		row[10] = weightedPick(r, dw)
		pe := []float64{0.35, 0.45, 0.20}
		if row[3] == 3 {
			pe = []float64{0.15, 0.45, 0.40}
		}
		row[11] = weightedPick(r, pe)
		raw.Append(row, bernoulli(r, model.prob(row))) //lint:allow errdiscard row built to schema width by this generator
	}
	bal := balance(raw, r)
	if bal.Len() > n {
		half := n / 2
		var pos, neg []int
		for i, y := range bal.Labels {
			if y == 1 {
				pos = append(pos, i)
			} else {
				neg = append(neg, i)
			}
		}
		idx := append(append([]int(nil), pos[:half]...), neg[:n-half]...)
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		bal = bal.Subset(idx)
	}
	return bal
}
