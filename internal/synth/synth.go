// Package synth generates the three evaluation datasets of the paper —
// AdultCensus, ProPublica/COMPAS, and Law School — as seeded synthetic
// stand-ins. The real CSVs are not redistributable/not available
// offline, so each generator reproduces the published characteristics
// (Table II: attribute sets, protected attributes, row counts), realistic
// marginals and attribute correlations, and injects *representation
// bias* into specific intersectional regions so that the causal chain
// the paper studies (biased collection → IBS → subgroup unfairness) is
// present in the data. See DESIGN.md §3 for the substitution rationale.
//
// All generators are deterministic for a given seed.
package synth

import (
	"fmt"
	"math"
	"math/rand" //lint:allow determinism consumes injected *rand.Rand; construction only via stats.NewRNG
	"sync"

	"repro/internal/dataset"
)

// sigmoid is the logistic link used by every label model.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// bernoulli draws a 0/1 label with success probability p.
func bernoulli(r *rand.Rand, p float64) int8 {
	if r.Float64() < p {
		return 1
	}
	return 0
}

// regionBias adds a logit offset to every row matching a conjunction of
// (attribute, value) assignments. These are the injected Implicit
// Biased Sets: a strongly positive offset concentrates positives in the
// region (ratio_r above its neighborhood), a negative offset
// concentrates negatives.
type regionBias struct {
	attrs  []int // schema attribute indices
	values []int32
	offset float64
}

func (b regionBias) matches(row []int32) bool {
	for k, a := range b.attrs {
		if row[a] != b.values[k] {
			return false
		}
	}
	return true
}

// bias is a convenience constructor resolving attribute and value names
// against a schema. Unknown names return an error; the zero regionBias
// returned alongside it is a harmless no-op (it matches every row with
// offset 0).
func bias(s *dataset.Schema, offset float64, pairs ...string) (regionBias, error) {
	if len(pairs)%2 != 0 || len(pairs) == 0 {
		return regionBias{}, fmt.Errorf("synth: bias needs name/value pairs, got %d names", len(pairs))
	}
	b := regionBias{offset: offset}
	for i := 0; i < len(pairs); i += 2 {
		ai := s.AttrIndex(pairs[i])
		if ai < 0 {
			return regionBias{}, fmt.Errorf("synth: unknown attribute %q", pairs[i])
		}
		vi := s.Attrs[ai].ValueIndex(pairs[i+1])
		if vi < 0 {
			return regionBias{}, fmt.Errorf("synth: unknown value %q for %s", pairs[i+1], pairs[i])
		}
		b.attrs = append(b.attrs, ai)
		b.values = append(b.values, int32(vi))
	}
	return b, nil
}

// staticBiasErrs collects resolution failures from the shipped
// generator tables. The tables are literals defined next to the schema
// they reference, so a failure is a typo introduced at development
// time; generation degrades to a no-op bias instead of failing, and
// TestShippedBiasTables fails loudly if this list is ever non-empty.
var staticBiasErrs struct {
	mu   sync.Mutex
	errs []string
}

// staticBias is bias for the shipped generator tables: resolution
// errors are recorded in staticBiasErrs and degrade to a no-op.
func staticBias(s *dataset.Schema, offset float64, pairs ...string) regionBias {
	b, err := bias(s, offset, pairs...)
	if err != nil {
		staticBiasErrs.mu.Lock()
		staticBiasErrs.errs = append(staticBiasErrs.errs, err.Error())
		staticBiasErrs.mu.Unlock()
		return regionBias{}
	}
	return b
}

// labelModel scores a row: intercept + per-(attribute,value) weights +
// region bias offsets, squashed through the logistic link.
type labelModel struct {
	intercept float64
	weights   map[int][]float64 // attr index -> per-value logit weight
	biases    []regionBias
}

func (m *labelModel) prob(row []int32) float64 {
	z := m.intercept
	for a, ws := range m.weights {
		z += ws[row[a]]
	}
	for _, b := range m.biases {
		if b.matches(row) {
			z += b.offset
		}
	}
	return sigmoid(z)
}

// weightedPick draws a domain code from an unnormalized weight vector.
func weightedPick(r *rand.Rand, weights []float64) int32 {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return int32(i)
		}
	}
	return int32(len(weights) - 1)
}

// balance downersamples the majority class to the minority class size,
// as the paper does for Law School, returning a dataset with an equal
// number of positive and negative records.
func balance(d *dataset.Dataset, r *rand.Rand) *dataset.Dataset {
	var pos, neg []int
	for i, y := range d.Labels {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	r.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	r.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	idx := append(append([]int(nil), pos[:n]...), neg[:n]...)
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return d.Subset(idx)
}
