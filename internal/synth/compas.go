package synth

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// CompasSize is the ProPublica dataset size reported in Table II.
const CompasSize = 6172

// CompasSchema returns the schema of the synthetic ProPublica/COMPAS
// dataset: 6 attributes after the paper's bucketization, of which
// {age, race, sex} are protected, and the two-year recidivism label.
func CompasSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "two_year_recid",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{"<25", "25-45", ">45"}, Protected: true, Ordered: true},
			{Name: "race", Values: []string{"Caucasian", "Afr-Am", "Hispanic"}, Protected: true},
			{Name: "sex", Values: []string{"Male", "Female"}, Protected: true},
			{Name: "priors", Values: []string{"0", "1-3", ">3"}, Ordered: true},
			{Name: "charge", Values: []string{"Misdemeanor", "Felony"}},
			{Name: "juv_count", Values: []string{"0", "1-2", ">2"}, Ordered: true},
		},
	}
}

// Compas generates the synthetic ProPublica dataset. The marginals
// follow the real data (≈51% African-American, ≈81% male, most
// defendants aged 25-45), priors and juvenile counts correlate with age,
// and the label model concentrates positives in the regions the paper
// reports as biased — most prominently (age=25-45, priors>3), whose
// imbalance ratio lands near the paper's 2.2 against a neighborhood
// near 0.6.
func Compas(seed int64) *dataset.Dataset {
	return CompasN(CompasSize, seed)
}

// CompasN generates n rows; experiments use smaller n for quick runs.
func CompasN(n int, seed int64) *dataset.Dataset {
	s := CompasSchema()
	r := stats.NewRNG(seed)
	d := dataset.New(s)

	model := &labelModel{
		intercept: -1.0,
		weights: map[int][]float64{
			0: {0.55, 0.10, -0.70}, // age: the young recidivate more
			1: {0.00, 0.15, 0.05},  // race: mild historical skew
			2: {0.10, -0.25},       // sex
			3: {-0.85, 0.25, 1.10}, // priors dominate
			4: {-0.10, 0.15},       // charge degree
			5: {-0.15, 0.35, 0.80}, // juvenile record
		},
		biases: []regionBias{
			// The running example's IBS: excess positives among
			// mid-aged defendants with many priors.
			staticBias(s, 1.6, "age", "25-45", "priors", ">3"),
			// Example 1's unfair subgroup: Afr-Am males.
			staticBias(s, 0.85, "race", "Afr-Am", "sex", "Male"),
			staticBias(s, 0.60, "age", "<25", "race", "Afr-Am"),
			// Excess negatives: older Caucasians and first-time women.
			staticBias(s, -0.70, "age", ">45", "race", "Caucasian"),
			staticBias(s, -0.55, "sex", "Female", "priors", "0"),
		},
	}

	for i := 0; i < n; i++ {
		row := make([]int32, 6)
		row[0] = weightedPick(r, []float64{0.22, 0.57, 0.21}) // age
		row[1] = weightedPick(r, []float64{0.34, 0.51, 0.15}) // race
		row[2] = weightedPick(r, []float64{0.81, 0.19})       // sex
		// Priors grow with age (more time to accumulate) but also skew
		// by race in the collected data, mirroring the historical bias
		// the paper attributes to the source.
		pw := []float64{0.40, 0.38, 0.22}
		switch row[0] {
		case 0: // <25
			pw = []float64{0.55, 0.35, 0.10}
		case 2: // >45
			pw = []float64{0.30, 0.38, 0.32}
		}
		if row[1] == 1 { // Afr-Am: shifted prior distribution in the source data
			pw = []float64{pw[0] * 0.7, pw[1], pw[2] * 1.6}
		}
		row[3] = weightedPick(r, pw)
		row[4] = weightedPick(r, []float64{0.36, 0.64}) // charge
		jw := []float64{0.78, 0.16, 0.06}
		if row[0] == 0 { // the young have recent juvenile records
			jw = []float64{0.55, 0.30, 0.15}
		}
		row[5] = weightedPick(r, jw)
		d.Append(row, bernoulli(r, model.prob(row))) //lint:allow errdiscard row built to schema width by this generator
	}
	return d
}
