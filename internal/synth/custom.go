package synth

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// This file exposes the generator machinery behind the three built-in
// datasets as a configurable public API, so downstream users (and the
// repository's own tests) can synthesize datasets with precisely
// controlled representation bias — the input condition the paper's
// method targets.

// CustomConfig describes a synthetic dataset: a schema, per-attribute
// sampling (optionally conditioned on earlier attributes), a logistic
// label model, and injected region biases.
type CustomConfig struct {
	// Schema defines the attributes; protected flags carry through.
	Schema *dataset.Schema
	// Rows is the number of instances to generate.
	Rows int
	// Marginals gives the unnormalized sampling weights per attribute
	// (indexed like Schema.Attrs). Attributes listed in Conditionals
	// may omit their marginal.
	Marginals [][]float64
	// Conditionals optionally overrides sampling of an attribute as a
	// function of the partially generated row (attributes are sampled
	// in schema order, so the function may read earlier attributes).
	// A nil entry falls back to the marginal.
	Conditionals []func(row []int32) []float64
	// Intercept is the label model's base logit.
	Intercept float64
	// Weights maps attribute index -> per-value logit contribution.
	Weights map[int][]float64
	// Biases lists region logit offsets: the injected Implicit Biased
	// Sets.
	Biases []RegionBias
}

// RegionBias is one injected bias: a conjunction of attribute=value
// names and the logit offset applied to matching rows.
type RegionBias struct {
	// Conditions alternates attribute name, value name.
	Conditions []string
	// Offset is added to the label logit of matching rows; positive
	// concentrates positives in the region.
	Offset float64
}

// Custom generates a dataset from the configuration. It validates the
// configuration eagerly so misconfigured generators fail fast rather
// than panic mid-sample.
func Custom(cfg CustomConfig, seed int64) (*dataset.Dataset, error) {
	if cfg.Schema == nil || len(cfg.Schema.Attrs) == 0 {
		return nil, fmt.Errorf("synth: missing schema")
	}
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("synth: non-positive row count %d", cfg.Rows)
	}
	na := len(cfg.Schema.Attrs)
	if len(cfg.Marginals) != na {
		return nil, fmt.Errorf("synth: %d marginals for %d attributes", len(cfg.Marginals), na)
	}
	if cfg.Conditionals != nil && len(cfg.Conditionals) != na {
		return nil, fmt.Errorf("synth: %d conditionals for %d attributes", len(cfg.Conditionals), na)
	}
	for a := 0; a < na; a++ {
		hasCond := cfg.Conditionals != nil && cfg.Conditionals[a] != nil
		if !hasCond && len(cfg.Marginals[a]) != cfg.Schema.Attrs[a].Cardinality() {
			return nil, fmt.Errorf("synth: attribute %s: %d weights for %d values",
				cfg.Schema.Attrs[a].Name, len(cfg.Marginals[a]), cfg.Schema.Attrs[a].Cardinality())
		}
	}
	for a, ws := range cfg.Weights {
		if a < 0 || a >= na {
			return nil, fmt.Errorf("synth: weight for unknown attribute %d", a)
		}
		if len(ws) != cfg.Schema.Attrs[a].Cardinality() {
			return nil, fmt.Errorf("synth: attribute %s: %d label weights for %d values",
				cfg.Schema.Attrs[a].Name, len(ws), cfg.Schema.Attrs[a].Cardinality())
		}
	}
	model := &labelModel{
		intercept: cfg.Intercept,
		weights:   cfg.Weights,
	}
	for _, b := range cfg.Biases {
		if len(b.Conditions)%2 != 0 || len(b.Conditions) == 0 {
			return nil, fmt.Errorf("synth: bias conditions must be name/value pairs")
		}
		for i := 0; i < len(b.Conditions); i += 2 {
			ai := cfg.Schema.AttrIndex(b.Conditions[i])
			if ai < 0 {
				return nil, fmt.Errorf("synth: bias on unknown attribute %q", b.Conditions[i])
			}
			if cfg.Schema.Attrs[ai].ValueIndex(b.Conditions[i+1]) < 0 {
				return nil, fmt.Errorf("synth: bias on unknown value %q of %s",
					b.Conditions[i+1], b.Conditions[i])
			}
		}
		rb, err := bias(cfg.Schema, b.Offset, b.Conditions...)
		if err != nil {
			return nil, err
		}
		model.biases = append(model.biases, rb)
	}

	r := stats.NewRNG(seed)
	d := dataset.New(cfg.Schema)
	for i := 0; i < cfg.Rows; i++ {
		row := make([]int32, na)
		for a := 0; a < na; a++ {
			w := cfg.Marginals[a]
			if cfg.Conditionals != nil && cfg.Conditionals[a] != nil {
				w = cfg.Conditionals[a](row)
				if len(w) != cfg.Schema.Attrs[a].Cardinality() {
					return nil, fmt.Errorf("synth: conditional for %s returned %d weights",
						cfg.Schema.Attrs[a].Name, len(w))
				}
			}
			row[a] = weightedPick(r, w)
		}
		d.Append(row, bernoulli(r, model.prob(row))) //lint:allow errdiscard row built to schema width by this generator
	}
	return d, nil
}
