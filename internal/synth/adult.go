package synth

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// AdultSize is the AdultCensus dataset size reported in Table II
// (records remaining after dropping missing values).
const AdultSize = 45222

// AdultProtected is the paper's protected attribute set for Adult
// (Table II, |X| = 6).
var AdultProtected = []string{"age", "race", "gender", "marital_status", "relationship", "country"}

// AdultScalabilityProtected extends the set with education and
// occupation as in the scalability study (§V-B5, |X| up to 8).
var AdultScalabilityProtected = append(append([]string(nil), AdultProtected...), "education", "occupation")

// AdultSchema returns the 13-attribute schema of the synthetic
// AdultCensus dataset with the paper's six protected attributes marked.
func AdultSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "income_gt_50k",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{"<25", "25-34", "35-44", "45-54", "55+"}, Protected: true, Ordered: true},
			{Name: "workclass", Values: []string{"Private", "Self-emp", "Gov", "Other"}},
			{Name: "education", Values: []string{"HS-or-less", "Some-college", "Bachelors", "Masters", "Doctorate"}, Ordered: true},
			{Name: "marital_status", Values: []string{"Never-married", "Married", "Divorced", "Widowed"}, Protected: true},
			{Name: "occupation", Values: []string{"Blue-collar", "Service", "Sales", "Admin", "Professional", "Exec-managerial"}},
			{Name: "relationship", Values: []string{"Husband", "Wife", "Own-child", "Not-in-family"}, Protected: true},
			{Name: "race", Values: []string{"White", "Black", "Asian-Pac", "Amer-Indian", "Other"}, Protected: true},
			{Name: "gender", Values: []string{"Male", "Female"}, Protected: true},
			{Name: "capital_gain", Values: []string{"none", "low", "high"}, Ordered: true},
			{Name: "capital_loss", Values: []string{"none", "low", "high"}, Ordered: true},
			{Name: "hours", Values: []string{"<40", "40", ">40"}, Ordered: true},
			{Name: "country", Values: []string{"US", "LatinAmerica", "Other"}, Protected: true},
			{Name: "industry", Values: []string{"Manufacturing", "Tech", "Finance", "Public", "Other"}},
		},
	}
}

// Adult generates the synthetic AdultCensus dataset (45,222 rows).
func Adult(seed int64) *dataset.Dataset { return AdultN(AdultSize, seed) }

// AdultN generates n rows of the Adult distribution. The label model
// reproduces the census income structure (education, hours, capital
// gains, and marriage drive income; base rate ≈ 25%) and injects
// representation bias into protected intersections: married men are
// over-collected as positives, Black women and young Latin-American
// immigrants as negatives — the historical employment biases the
// paper's introduction motivates.
func AdultN(n int, seed int64) *dataset.Dataset {
	s := AdultSchema()
	r := stats.NewRNG(seed)
	d := dataset.New(s)

	model := &labelModel{
		intercept: -2.45,
		weights: map[int][]float64{
			0:  {-1.30, -0.20, 0.35, 0.50, 0.25},        // age
			2:  {-0.75, -0.20, 0.55, 0.95, 1.35},        // education
			3:  {-0.85, 0.85, -0.25, -0.35},             // marital status
			4:  {-0.40, -0.55, 0.05, -0.05, 0.45, 0.80}, // occupation
			7:  {0.25, -0.45},                           // gender
			8:  {-0.10, 0.45, 1.60},                     // capital gain
			10: {-0.55, 0.00, 0.50},                     // hours
			12: {-0.10, 0.35, 0.45, 0.05, -0.05},        // industry
		},
		biases: []regionBias{
			staticBias(s, 0.95, "gender", "Male", "marital_status", "Married"),
			staticBias(s, 0.70, "age", "45-54", "gender", "Male", "marital_status", "Married"),
			staticBias(s, 0.55, "relationship", "Wife", "race", "White"),
			staticBias(s, -0.85, "race", "Black", "gender", "Female"),
			staticBias(s, -0.65, "country", "LatinAmerica", "gender", "Male"),
			staticBias(s, -0.50, "age", "<25", "country", "LatinAmerica"),
			staticBias(s, 0.60, "race", "Asian-Pac", "education", "Masters"),
		},
	}

	for i := 0; i < n; i++ {
		row := make([]int32, 13)
		row[0] = weightedPick(r, []float64{0.17, 0.27, 0.25, 0.18, 0.13}) // age
		row[1] = weightedPick(r, []float64{0.70, 0.11, 0.14, 0.05})       // workclass
		// Education skews with age (older cohorts hold fewer degrees).
		ew := []float64{0.42, 0.25, 0.20, 0.09, 0.04}
		if row[0] == 0 {
			ew = []float64{0.55, 0.30, 0.12, 0.025, 0.005}
		}
		row[2] = weightedPick(r, ew)
		// Marriage correlates with age.
		mw := []float64{0.30, 0.48, 0.17, 0.05}
		switch row[0] {
		case 0:
			mw = []float64{0.82, 0.14, 0.035, 0.005}
		case 4:
			mw = []float64{0.10, 0.58, 0.20, 0.12}
		}
		row[3] = weightedPick(r, mw)
		// Occupation correlates with education.
		ow := []float64{0.26, 0.18, 0.13, 0.15, 0.16, 0.12}
		if row[2] >= 2 { // Bachelors+
			ow = []float64{0.07, 0.07, 0.12, 0.12, 0.36, 0.26}
		}
		row[4] = weightedPick(r, ow)
		row[7] = weightedPick(r, []float64{0.675, 0.325}) // gender
		// Relationship is tied to marriage and gender.
		switch {
		case row[3] == 1 && row[7] == 0:
			row[5] = 0 // Husband
		case row[3] == 1 && row[7] == 1:
			row[5] = 1 // Wife
		case row[0] == 0:
			row[5] = weightedPick(r, []float64{0, 0, 0.62, 0.38})
		default:
			row[5] = weightedPick(r, []float64{0, 0, 0.12, 0.88})
		}
		row[6] = weightedPick(r, []float64{0.855, 0.093, 0.031, 0.010, 0.011}) // race
		row[8] = weightedPick(r, []float64{0.916, 0.042, 0.042})               // capital gain
		row[9] = weightedPick(r, []float64{0.953, 0.027, 0.020})               // capital loss
		// Hours: executives and professionals work longer.
		hw := []float64{0.22, 0.47, 0.31}
		if row[4] >= 4 {
			hw = []float64{0.10, 0.38, 0.52}
		}
		row[10] = weightedPick(r, hw)
		// Country correlates with race.
		cw := []float64{0.91, 0.045, 0.045}
		if row[6] == 2 { // Asian-Pac
			cw = []float64{0.55, 0.02, 0.43}
		}
		row[11] = weightedPick(r, cw)
		// Industry correlates with occupation.
		iw := []float64{0.25, 0.13, 0.12, 0.20, 0.30}
		if row[4] == 4 || row[4] == 5 {
			iw = []float64{0.12, 0.28, 0.24, 0.16, 0.20}
		}
		row[12] = weightedPick(r, iw)
		d.Append(row, bernoulli(r, model.prob(row))) //lint:allow errdiscard row built to schema width by this generator
	}
	return d
}
