package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/remedy"
	"repro/internal/synth"
)

// This file times the repository's engineering ablations (DESIGN.md
// §"Extensions"): incremental count maintenance vs full recount in the
// remedy loop, parallel vs sequential identification, and one-shot vs
// iterative remedy (which also reports residual IBS size, the
// effectiveness axis of that ablation).

// AblationRow is one (variant, metric) measurement.
type AblationRow struct {
	Variant string
	Seconds float64
	// ResidualIBS is filled by the one-shot ablation: biased regions
	// remaining after the remedy at the same τ_c.
	ResidualIBS int
}

// AblationResult groups the three studies.
type AblationResult struct {
	DatasetRows int
	Incremental []AblationRow
	Parallel    []AblationRow
	OneShot     []AblationRow
}

// Ablations runs all three studies on the Adult dataset.
func Ablations(seed int64, quick bool) (*AblationResult, error) {
	n := 20000
	if quick {
		n = 4000
	}
	d := synth.AdultN(n, seed)
	cfg := core.Config{TauC: 0.5, T: 1}
	res := &AblationResult{DatasetRows: n}

	// 1. Incremental vs recount (massaging keeps the dataset size
	// stable, isolating the counting cost).
	for _, v := range []struct {
		name    string
		recount bool
	}{{"incremental counts", false}, {"full recount", true}} {
		start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		if _, _, err := remedy.Apply(d, remedy.Options{
			Identify: cfg, Technique: remedy.Massaging, Seed: seed, Recount: v.recount,
		}); err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		res.Incremental = append(res.Incremental, AblationRow{Variant: v.name, Seconds: time.Since(start).Seconds()})
	}

	// 2. Sequential vs parallel identification, at the scalability
	// study's maximal |X| = 8 where the lattice is large enough for the
	// fan-out to pay for itself.
	wide, err := adultWithProtected(d, 8)
	if err != nil {
		return nil, err
	}
	for _, v := range []struct {
		name    string
		workers int
	}{{"sequential identify (|X|=8)", 0}, {"parallel identify (|X|=8, 4 workers)", 4}} {
		c := cfg
		c.Workers = v.workers
		start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		if _, err := core.IdentifyOptimized(wide, c); err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		res.Parallel = append(res.Parallel, AblationRow{Variant: v.name, Seconds: time.Since(start).Seconds()})
	}

	// 3. Iterative vs one-shot remedy: time plus residual biased
	// regions.
	for _, v := range []struct {
		name    string
		oneShot bool
	}{{"iterative remedy (Algorithm 2)", false}, {"one-shot remedy", true}} {
		start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		out, _, err := remedy.Apply(d, remedy.Options{
			Identify: cfg, Technique: remedy.Massaging, Seed: seed, OneShot: v.oneShot,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		elapsed := time.Since(start).Seconds()
		after, err := core.IdentifyOptimized(out, cfg)
		if err != nil {
			return nil, err
		}
		res.OneShot = append(res.OneShot, AblationRow{
			Variant: v.name, Seconds: elapsed, ResidualIBS: len(after.Regions),
		})
	}
	return res, nil
}

// Tables renders the three studies.
func (r *AblationResult) Tables() []*Table {
	mk := func(title string, rows []AblationRow, withResidual bool) *Table {
		t := &Table{Title: title, Columns: []string{"Variant", "Time (s)"}}
		if withResidual {
			t.Columns = append(t.Columns, "Residual IBS regions")
		}
		for _, row := range rows {
			cells := []string{row.Variant, fmt.Sprintf("%.3f", row.Seconds)}
			if withResidual {
				cells = append(cells, fmt.Sprint(row.ResidualIBS))
			}
			t.Rows = append(t.Rows, cells)
		}
		return t
	}
	prefix := fmt.Sprintf("Ablation (Adult, %d rows): ", r.DatasetRows)
	return []*Table{
		mk(prefix+"incremental count maintenance", r.Incremental, false),
		mk(prefix+"parallel identification", r.Parallel, false),
		mk(prefix+"one-shot vs iterative remedy", r.OneShot, true),
	}
}
