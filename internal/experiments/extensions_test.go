package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"text": FormatText, "": FormatText,
		"markdown": FormatMarkdown, "md": FormatMarkdown,
		"csv": FormatCSV, "CSV": FormatCSV,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}

func formatTable() *Table {
	return &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"a|b", "1"}, {"c", "2"}},
	}
}

func TestRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := formatTable().RenderAs(&buf, FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### demo", "| name | value |", "|---|---|", `a\|b`} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := formatTable().RenderAs(&buf, FormatCSV); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "name,value" || lines[1] != "a|b,1" {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestRenderAsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := formatTable().RenderAs(&buf, Format("xml")); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestRobustness(t *testing.T) {
	res, err := Robustness("propublica", []int64{1, 2, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 3 || len(res.Rows) != 2 {
		t.Fatalf("result shape %+v", res)
	}
	orig, rem := res.Rows[0], res.Rows[1]
	if orig.IndexFPR.N != 3 || rem.Accuracy.N != 3 {
		t.Fatal("per-seed sample counts wrong")
	}
	// Across seeds, the remedy must improve the mean FNR index (the
	// strongest, most stable effect on this dataset).
	if rem.IndexFNR.Mean >= orig.IndexFNR.Mean {
		t.Fatalf("mean FNR index: remedy %v >= original %v", rem.IndexFNR.Mean, orig.IndexFNR.Mean)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Fatal("table missing ± notation")
	}
}

func TestRobustnessDefaultsAndErrors(t *testing.T) {
	if _, err := Robustness("nope", []int64{1}, true); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestSeedStatsString(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("summarize = %+v", s)
	}
	if got := s.String(); !strings.HasPrefix(got, "2.000±1.000") {
		t.Fatalf("String = %q", got)
	}
}

func TestLimitations(t *testing.T) {
	res, err := Limitations("propublica", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The accuracy-optimized setting uses threshold 0.5 and must show
	// the paper's headline improvement.
	acc := res.Rows[0]
	if acc.Threshold != 0.5 {
		t.Fatalf("threshold = %v", acc.Threshold)
	}
	if acc.ImprovementFPR() <= 0 {
		t.Fatalf("accuracy-optimized improvement = %v, want positive", acc.ImprovementFPR())
	}
	// Cost-sensitive rows exist with shifted thresholds.
	if res.Rows[1].Threshold <= 0.5 || res.Rows[2].Threshold >= 0.5 {
		t.Fatalf("cost thresholds: %v / %v", res.Rows[1].Threshold, res.Rows[2].Threshold)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incremental) != 2 || len(res.Parallel) != 2 || len(res.OneShot) != 2 {
		t.Fatalf("result shape %+v", res)
	}
	// The iterative remedy must leave no more residual IBS than the
	// one-shot ablation.
	if res.OneShot[0].ResidualIBS > res.OneShot[1].ResidualIBS {
		t.Fatalf("iterative residual %d > one-shot %d",
			res.OneShot[0].ResidualIBS, res.OneShot[1].ResidualIBS)
	}
	for _, tab := range res.Tables() {
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParity(t *testing.T) {
	res, err := Parity(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The remedy must not worsen the parity index on average across the
	// three datasets (§VI argues it helps).
	var before, after float64
	for _, row := range res.Rows {
		before += row.IndexBefore
		after += row.IndexAfter
	}
	if after > before {
		t.Fatalf("mean parity index rose: %v -> %v", before/3, after/3)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}
