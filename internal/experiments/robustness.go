package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/remedy"
	"repro/internal/stats"
)

// This file extends the paper's evaluation with seed-robustness: the
// paper reports single-run numbers; here each headline comparison is
// replayed across several seeds (fresh data draw, split, and remedy
// randomness per seed) and summarized as mean ± sample standard
// deviation. DESIGN.md lists this as an extension, not a paper artifact.

// SeedStats summarizes a metric across seeds.
type SeedStats struct {
	Mean float64
	Std  float64
	N    int
}

func summarize(xs []float64) SeedStats {
	s := stats.Summarize(xs)
	return SeedStats{Mean: s.Mean, Std: stats.StdDev(xs), N: s.N}
}

func (s SeedStats) String() string {
	return fmt.Sprintf("%.3f±%.3f", s.Mean, s.Std)
}

// RobustnessRow aggregates one method's metrics across seeds.
type RobustnessRow struct {
	Method   string
	IndexFPR SeedStats
	IndexFNR SeedStats
	Accuracy SeedStats
}

// RobustnessResult is the multi-seed replay of the Original-vs-Lattice
// comparison for one dataset.
type RobustnessResult struct {
	Dataset string
	Model   ml.ModelKind
	Seeds   int
	Rows    []RobustnessRow
}

// Robustness replays the headline remedy comparison across seeds.
func Robustness(dsName string, seeds []int64, quick bool) (*RobustnessResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	type acc struct{ fpr, fnr, a []float64 }
	byMethod := map[string]*acc{}
	var datasetName string
	record := func(method string, ev EvalResult) {
		m := byMethod[method]
		if m == nil {
			m = &acc{}
			byMethod[method] = m
		}
		m.fpr = append(m.fpr, ev.IndexFPR)
		m.fnr = append(m.fnr, ev.IndexFNR)
		m.a = append(m.a, ev.Accuracy)
	}
	for _, seed := range seeds {
		spec, err := LoadDataset(dsName, seed, quick)
		if err != nil {
			return nil, err
		}
		datasetName = spec.Name
		train, test := spec.Data.StratifiedSplit(0.7, seed)
		base, err := Evaluate(train, test, ml.DT, seed)
		if err != nil {
			return nil, err
		}
		record("Original", base)
		remedied, _, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: spec.TauC, T: spec.T},
			Technique: remedy.PreferentialSampling,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		ev, err := Evaluate(remedied, test, ml.DT, seed)
		if err != nil {
			return nil, err
		}
		record("Remedy (Lattice, PS)", ev)
	}
	res := &RobustnessResult{Dataset: datasetName, Model: ml.DT, Seeds: len(seeds)}
	for _, method := range []string{"Original", "Remedy (Lattice, PS)"} {
		m := byMethod[method]
		res.Rows = append(res.Rows, RobustnessRow{
			Method:   method,
			IndexFPR: summarize(m.fpr),
			IndexFNR: summarize(m.fnr),
			Accuracy: summarize(m.a),
		})
	}
	return res, nil
}

// Table renders the summary.
func (r *RobustnessResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Robustness (extension) — %s, %s, %d seeds: mean±std",
			r.Dataset, r.Model, r.Seeds),
		Columns: []string{"Method", "Index(FPR)", "Index(FNR)", "Accuracy"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Method, row.IndexFPR.String(), row.IndexFNR.String(), row.Accuracy.String(),
		})
	}
	return t
}
