package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/pattern"
)

// Fig3Row is one unfair subgroup of Fig. 3 with its IBS markings: grey
// in the paper = the same pattern is itself in the IBS; blue = it
// strictly dominates a region in the IBS.
type Fig3Row struct {
	Pattern       pattern.Pattern
	Subgroup      string
	Models        []ml.ModelKind // classifiers whose predictions make it unfair
	MaxDivergence float64
	InIBS         bool
	DominatesIBS  bool
	// HighSide reports whether the subgroup's statistic lies above the
	// overall value; DirectionMatch whether the associated IBS region's
	// imbalance points the way the paper predicts (ratio_r > ratio_rn
	// for high-FPR subgroups, ratio_r < ratio_rn for high-FNR ones).
	HighSide       bool
	DirectionMatch bool
}

// Fig3Result is the validation experiment of §V-B1: the correlation
// between unfair subgroups and the IBS on ProPublica.
type Fig3Result struct {
	Stat    fairness.Statistic
	IBSSize int
	Rows    []Fig3Row
	// Covered counts rows that are in the IBS or dominate an IBS region
	// — the paper observes "nearly all".
	Covered int
	// DirectionChecked/DirectionMatched verify the paper's second
	// observation: among covered subgroups whose own region is in the
	// IBS and whose statistic is on the high side, regions with
	// ratio_r > ratio_rn associate with high FPR (and ratio_r <
	// ratio_rn with high FNR).
	DirectionChecked, DirectionMatched int
}

// Fig3 runs the validation for one statistic (the paper shows γ = FPR
// and discusses FNR): identify the IBS on the training data with
// τ_c = 0.1 and T = 1, collect the unfair subgroups of all four
// classifiers on the test data, and mark each against the IBS.
func Fig3(stat fairness.Statistic, seed int64, quick bool) (*Fig3Result, error) {
	spec, err := LoadDataset("propublica", seed, quick)
	if err != nil {
		return nil, err
	}
	train, test := spec.Data.StratifiedSplit(0.7, seed)
	ibs, err := core.IdentifyOptimized(train, core.Config{TauC: spec.TauC, T: spec.T})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Stat: stat, IBSSize: len(ibs.Regions)}

	type agg struct {
		models   []ml.ModelKind
		maxDiv   float64
		highSide bool // γ_g above the overall at the most divergent sighting
	}
	found := map[uint64]*agg{}
	var sp *pattern.Space
	for _, kind := range ml.AllModels {
		m, err := ml.TrainKind(train, kind, seed)
		if err != nil {
			return nil, err
		}
		rep, err := divexplorer.Explore(test, m.Predict(test), stat, divexplorer.Options{MinSupport: 0.05})
		if err != nil {
			return nil, err
		}
		sp = rep.Space
		for _, g := range rep.Unfair(0.1) {
			if !g.Significant {
				continue
			}
			k := sp.Key(g.Pattern)
			a := found[k]
			if a == nil {
				a = &agg{}
				found[k] = a
			}
			a.models = append(a.models, kind)
			if g.Divergence > a.maxDiv {
				a.maxDiv = g.Divergence
				a.highSide = g.Value > rep.Overall
			}
		}
	}
	keys := make([]uint64, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		p := sp.DecodeKey(k)
		row := Fig3Row{
			Pattern:       p,
			Subgroup:      sp.String(p),
			Models:        found[k].models,
			MaxDivergence: found[k].maxDiv,
			InIBS:         ibs.Contains(p),
			DominatesIBS:  ibs.DominatesSignificant(p),
			HighSide:      found[k].highSide,
		}
		if row.InIBS || row.DominatesIBS {
			res.Covered++
		}
		// The paper's directional observation: for high-FPR subgroups
		// the region is positive-heavy (ratio_r > ratio_rn); for
		// high-FNR subgroups negative-heavy. Checked where the subgroup
		// itself is an IBS region and sits on the high side.
		if reg, ok := ibs.Region(p); ok && row.HighSide {
			res.DirectionChecked++
			positiveHeavy := reg.Ratio < 0 || reg.Ratio > reg.NeighborRatio
			switch stat {
			case fairness.FPR:
				row.DirectionMatch = positiveHeavy
			case fairness.FNR:
				row.DirectionMatch = !positiveHeavy
			}
			if row.DirectionMatch {
				res.DirectionMatched++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 3: unfair subgroups (γ=%s) vs IBS — %d/%d covered (IBS size %d); imbalance direction matches %d/%d",
			r.Stat, r.Covered, len(r.Rows), r.IBSSize, r.DirectionMatched, r.DirectionChecked),
		Columns: []string{"Subgroup", "Unfair under", "Max Δγ", "In IBS", "Dominates IBS", "High side", "Direction"},
	}
	for _, row := range r.Rows {
		models := make([]string, len(row.Models))
		for i, m := range row.Models {
			models[i] = string(m)
		}
		dir := "-"
		if row.InIBS && row.HighSide {
			if row.DirectionMatch {
				dir = "match"
			} else {
				dir = "mismatch"
			}
		}
		t.Rows = append(t.Rows, []string{
			row.Subgroup,
			strings.Join(models, ","),
			f3(row.MaxDivergence),
			fmt.Sprint(row.InIBS),
			fmt.Sprint(row.DominatesIBS),
			fmt.Sprint(row.HighSide),
			dir,
		})
	}
	return t
}
