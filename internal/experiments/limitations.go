package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/remedy"
)

// This file probes the paper's §VI Limitations claim: the
// representation-bias ⇄ subgroup-unfairness correlation is derived for
// classifiers optimized for accuracy, and "may not remain valid" for
// cost-sensitive classifiers. The experiment trains the same decision
// tree on original and remedied data, then evaluates it both as an
// accuracy-optimized classifier (threshold 0.5) and as cost-sensitive
// variants with asymmetric thresholds, reporting how much of the
// fairness-index improvement survives each threshold.

// LimitationsRow is one (threshold, data) evaluation.
type LimitationsRow struct {
	Setting   string  // e.g. "accuracy (t=0.50)"
	Threshold float64 // decision threshold
	Original  EvalResult
	Remedied  EvalResult
}

// ImprovementFPR is the relative fairness-index reduction the remedy
// achieves at this threshold (1 = removed entirely, 0 = none, negative
// = made worse).
func (r LimitationsRow) ImprovementFPR() float64 {
	if r.Original.IndexFPR == 0 {
		return 0
	}
	return 1 - r.Remedied.IndexFPR/r.Original.IndexFPR
}

// LimitationsResult is the cost-sensitivity probe for one dataset.
type LimitationsResult struct {
	Dataset string
	Rows    []LimitationsRow
}

// Limitations runs the probe on the named dataset with a decision tree
// base model.
func Limitations(dsName string, seed int64, quick bool) (*LimitationsResult, error) {
	spec, err := LoadDataset(dsName, seed, quick)
	if err != nil {
		return nil, err
	}
	train, test := spec.Data.StratifiedSplit(0.7, seed)
	remedied, _, err := remedy.Apply(train, remedy.Options{
		Identify:  core.Config{TauC: spec.TauC, T: spec.T},
		Technique: remedy.PreferentialSampling,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	res := &LimitationsResult{Dataset: spec.Name}
	settings := []struct {
		name           string
		fpCost, fnCost float64
	}{
		{"accuracy-optimized", 1, 1},
		{"FP costs 3x", 3, 1},
		{"FN costs 3x", 1, 3},
	}
	for _, s := range settings {
		cs := ml.CostSensitive{FPCost: s.fpCost, FNCost: s.fnCost}
		evalWith := func(tr *dataset.Dataset) (EvalResult, error) {
			base, err := ml.NewClassifier(ml.DT, seed)
			if err != nil {
				return EvalResult{}, err
			}
			m, err := ml.Train(tr, ml.CostSensitive{Base: base, FPCost: s.fpCost, FNCost: s.fnCost})
			if err != nil {
				return EvalResult{}, err
			}
			return Score(test, m.Predict(test))
		}
		orig, err := evalWith(train)
		if err != nil {
			return nil, err
		}
		rem, err := evalWith(remedied)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LimitationsRow{
			Setting:   s.name,
			Threshold: cs.Threshold(),
			Original:  orig,
			Remedied:  rem,
		})
	}
	return res, nil
}

// Table renders the probe.
func (r *LimitationsResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Limitations probe (extension, §VI) — %s, DT: remedy effect under cost-sensitive thresholds", r.Dataset),
		Columns: []string{"Setting", "Threshold",
			"Index(FPR) orig", "Index(FPR) remedied", "Improvement",
			"Acc orig", "Acc remedied"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Setting, fmt.Sprintf("%.2f", row.Threshold),
			f3(row.Original.IndexFPR), f3(row.Remedied.IndexFPR),
			fmt.Sprintf("%.0f%%", 100*row.ImprovementFPR()),
			f3(row.Original.Accuracy), f3(row.Remedied.Accuracy),
		})
	}
	return t
}
