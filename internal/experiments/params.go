package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/remedy"
)

// Fig7Row is one τ_c setting of the parameter study (Fig. 7): the
// fairness index (γ = FPR) and accuracy of a decision tree trained on
// the remedied data.
type Fig7Row struct {
	TauC     float64
	IndexFPR float64
	Accuracy float64
	// Updated counts the instances the remedy touched, explaining the
	// fairness/accuracy movement.
	Updated int
}

// Fig7Result is the τ_c sweep for one dataset.
type Fig7Result struct {
	Dataset  string
	Original Fig7Row // τ_c = NaN semantics: the unremedied reference
	Rows     []Fig7Row
}

// Fig7 varies the imbalance threshold τ_c from 0.1 to 0.9 with T = 1 on
// the named dataset ("propublica" or "adult" in the paper), using a
// decision tree as the downstream model.
func Fig7(dsName string, seed int64, quick bool) (*Fig7Result, error) {
	spec, err := LoadDataset(dsName, seed, quick)
	if err != nil {
		return nil, err
	}
	train, test := spec.Data.StratifiedSplit(0.7, seed)
	res := &Fig7Result{Dataset: spec.Name}
	base, err := Evaluate(train, test, ml.DT, seed)
	if err != nil {
		return nil, err
	}
	res.Original = Fig7Row{IndexFPR: base.IndexFPR, Accuracy: base.Accuracy}
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		remedied, rep, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: tau, T: 1},
			Technique: remedy.PreferentialSampling,
			Seed:      seed,
		})
		if err != nil {
			return nil, fmt.Errorf("τ_c=%v: %w", tau, err)
		}
		ev, err := Evaluate(remedied, test, ml.DT, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig7Row{
			TauC:     tau,
			IndexFPR: ev.IndexFPR,
			Accuracy: ev.Accuracy,
			Updated:  rep.Added + rep.Removed + rep.Flipped,
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 7 — %s: fairness index and accuracy, varying τ_c (DT, T=1)", r.Dataset),
		Columns: []string{"τ_c", "Index(FPR)", "Accuracy", "Instances updated"},
	}
	t.Rows = append(t.Rows, []string{"original", f3(r.Original.IndexFPR), f3(r.Original.Accuracy), "0"})
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", row.TauC), f3(row.IndexFPR), f3(row.Accuracy), fmt.Sprint(row.Updated),
		})
	}
	return t
}

// Fig8Row is one distance-threshold setting of Fig. 8.
type Fig8Row struct {
	Label    string // "original", "T=1", "T=|X|"
	IndexFPR float64
	IndexFNR float64
	Accuracy float64
}

// Fig8Result compares T = 1 against T = |X| for one dataset.
type Fig8Result struct {
	Dataset string
	Rows    []Fig8Row
}

// Fig8 compares the neighboring-region distance thresholds T = 1 and
// T = |X| (§V-B3) on the named dataset with a decision tree.
func Fig8(dsName string, seed int64, quick bool) (*Fig8Result, error) {
	spec, err := LoadDataset(dsName, seed, quick)
	if err != nil {
		return nil, err
	}
	train, test := spec.Data.StratifiedSplit(0.7, seed)
	res := &Fig8Result{Dataset: spec.Name}
	base, err := Evaluate(train, test, ml.DT, seed)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Fig8Row{
		Label: "original", IndexFPR: base.IndexFPR, IndexFNR: base.IndexFNR, Accuracy: base.Accuracy,
	})
	dim := len(spec.Data.Schema.ProtectedIdx())
	for _, tc := range []struct {
		label string
		T     int
	}{{"T=1", 1}, {fmt.Sprintf("T=|X|=%d", dim), dim}} {
		remedied, _, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: spec.TauC, T: tc.T},
			Technique: remedy.PreferentialSampling,
			Seed:      seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.label, err)
		}
		ev, err := Evaluate(remedied, test, ml.DT, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig8Row{
			Label: tc.label, IndexFPR: ev.IndexFPR, IndexFNR: ev.IndexFNR, Accuracy: ev.Accuracy,
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8 — %s: fairness index and accuracy under different T (DT)", r.Dataset),
		Columns: []string{"Setting", "Index(FPR)", "Index(FNR)", "Accuracy"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Label, f3(row.IndexFPR), f3(row.IndexFNR), f3(row.Accuracy)})
	}
	return t
}
