package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Format selects a Table serialization.
type Format string

const (
	// FormatText is the aligned-column default.
	FormatText Format = "text"
	// FormatMarkdown emits a GitHub-flavored pipe table.
	FormatMarkdown Format = "markdown"
	// FormatCSV emits RFC-4180 CSV (title as a comment-less first
	// record is omitted; only header + rows).
	FormatCSV Format = "csv"
)

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	switch Format(strings.ToLower(s)) {
	case FormatText, "":
		return FormatText, nil
	case FormatMarkdown, "md":
		return FormatMarkdown, nil
	case FormatCSV:
		return FormatCSV, nil
	}
	return "", fmt.Errorf("experiments: unknown format %q (text, markdown, csv)", s)
}

// RenderAs writes the table in the requested format.
func (t *Table) RenderAs(w io.Writer, f Format) error {
	switch f {
	case FormatText, "":
		return t.Render(w)
	case FormatMarkdown:
		return t.renderMarkdown(w)
	case FormatCSV:
		return t.renderCSV(w)
	}
	return fmt.Errorf("experiments: unknown format %q", f)
}

func (t *Table) renderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	row := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) renderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
