package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fairness"
	"repro/internal/ml"
)

// All experiment tests run in quick mode: the shape claims they assert
// are the ones DESIGN.md commits to, with thresholds loose enough for
// the reduced data sizes.

func TestLoadDataset(t *testing.T) {
	for _, name := range []string{"propublica", "adult", "lawschool"} {
		spec, err := LoadDataset(name, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Data.Len() == 0 || spec.TauC <= 0 || spec.T != 1 {
			t.Fatalf("%s: bad spec %+v", name, spec)
		}
	}
	if _, err := LoadDataset("nope", 1, true); err == nil {
		t.Fatal("unknown dataset must error")
	}
	// Paper parameters: τ_c = 0.5 for Adult, 0.1 elsewhere.
	adult, _ := LoadDataset("adult", 1, true)
	if adult.TauC != 0.5 {
		t.Fatalf("adult τ_c = %v", adult.TauC)
	}
	pp, _ := LoadDataset("propublica", 1, true)
	if pp.TauC != 0.1 {
		t.Fatalf("propublica τ_c = %v", pp.TauC)
	}
}

func TestTableII(t *testing.T) {
	tab, err := TableII(1, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Table II row counts.
	for _, want := range []string{"45222", "6172", "4590", "ProPublica", "Law School"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestEvaluateProducesSaneMetrics(t *testing.T) {
	spec, err := LoadDataset("propublica", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	train, test := spec.Data.StratifiedSplit(0.7, 1)
	ev, err := Evaluate(train, test, ml.DT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.5 || ev.Accuracy > 1 {
		t.Fatalf("accuracy %v", ev.Accuracy)
	}
	if ev.IndexFPR < 0 || ev.IndexFNR < 0 || ev.Violation < 0 {
		t.Fatalf("negative metrics: %+v", ev)
	}
	// The injected biases must register as unfairness before remedy.
	if ev.IndexFPR == 0 && ev.IndexFNR == 0 {
		t.Fatal("expected nonzero unfairness on synthetic COMPAS")
	}
}

func TestFig3MostUnfairSubgroupsAreCovered(t *testing.T) {
	res, err := Fig3(fairness.FPR, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no unfair subgroups found")
	}
	// Paper: "nearly all unfair subgroups exhibit representation bias".
	if frac := float64(res.Covered) / float64(len(res.Rows)); frac < 0.7 {
		t.Fatalf("only %.0f%% of unfair subgroups covered by IBS", 100*frac)
	}
	if res.IBSSize == 0 {
		t.Fatal("empty IBS")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Subgroup") {
		t.Fatal("table render missing header")
	}
}

func TestFig3FNR(t *testing.T) {
	res, err := Fig3(fairness.FNR, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Covered == 0 {
		t.Fatal("FNR validation produced nothing")
	}
}

func TestTradeoffShapes(t *testing.T) {
	res, err := Tradeoff("propublica", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScopeRows) != 16 || len(res.TechniqueRows) != 16 {
		t.Fatalf("row counts: %d scope, %d technique", len(res.ScopeRows), len(res.TechniqueRows))
	}
	idxFPR := func(e EvalResult) float64 { return e.IndexFPR }
	idxFNR := func(e EvalResult) float64 { return e.IndexFNR }
	acc := func(e EvalResult) float64 { return e.Accuracy }
	origFPR := MeanBy(res.ScopeRows, "Original", idxFPR)
	origFNR := MeanBy(res.ScopeRows, "Original", idxFNR)
	origAcc := MeanBy(res.ScopeRows, "Original", acc)
	latFPR := MeanBy(res.ScopeRows, "Lattice", idxFPR)
	latFNR := MeanBy(res.ScopeRows, "Lattice", idxFNR)
	latAcc := MeanBy(res.ScopeRows, "Lattice", acc)
	// Core claims: Lattice mitigates BOTH statistics simultaneously…
	if latFPR >= origFPR {
		t.Fatalf("Lattice FPR index %v >= original %v", latFPR, origFPR)
	}
	if latFNR >= origFNR {
		t.Fatalf("Lattice FNR index %v >= original %v", latFNR, origFNR)
	}
	// …with a bounded accuracy cost (paper: < 0.1; allow slack for the
	// reduced quick-mode data).
	if origAcc-latAcc > 0.15 {
		t.Fatalf("accuracy drop %v too large", origAcc-latAcc)
	}
	// Leaf updates less, so it retains at least Lattice-level accuracy.
	if leafAcc := MeanBy(res.ScopeRows, "Leaf", acc); leafAcc < latAcc-0.03 {
		t.Fatalf("Leaf accuracy %v below Lattice %v", leafAcc, latAcc)
	}
	// Every technique row must exist for every model.
	for _, tech := range []string{"PS", "US", "DP", "MS"} {
		if MeanBy(res.TechniqueRows, tech, acc) == 0 {
			t.Fatalf("missing technique rows for %s", tech)
		}
	}
	for _, tab := range res.Tables() {
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := Fig7("adult", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Lower τ_c ⇒ more instance updates.
	if res.Rows[0].Updated <= res.Rows[len(res.Rows)-1].Updated {
		t.Fatalf("τ_c=0.1 updated %d, τ_c=0.9 updated %d — expected more at lower τ_c",
			res.Rows[0].Updated, res.Rows[len(res.Rows)-1].Updated)
	}
	// The lowest τ_c must beat the original index.
	if res.Rows[0].IndexFPR >= res.Original.IndexFPR {
		t.Fatalf("τ_c=0.1 index %v >= original %v", res.Rows[0].IndexFPR, res.Original.IndexFPR)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Shapes(t *testing.T) {
	res, err := Fig8("propublica", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	orig := res.Rows[0]
	// Both T settings mitigate subgroup unfairness (the paper's claim
	// that "both T values mitigate subgroup unfairness in all cases").
	for _, row := range res.Rows[1:] {
		if row.IndexFNR >= orig.IndexFNR {
			t.Fatalf("%s FNR index %v >= original %v", row.Label, row.IndexFNR, orig.IndexFNR)
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := Table3(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	orig, _ := res.Row("Original")
	rem, ok := res.Row("Remedy")
	if !ok {
		t.Fatal("missing Remedy row")
	}
	if rem.Violation > orig.Violation {
		t.Fatalf("Remedy violation %v > original %v", rem.Violation, orig.Violation)
	}
	rw, _ := res.Row("Reweighting")
	if rw.Violation > orig.Violation {
		t.Fatalf("Reweighting violation %v > original %v", rw.Violation, orig.Violation)
	}
	// FairBalance trades accuracy for balance.
	fb, _ := res.Row("FairBalance")
	if fb.Accuracy >= orig.Accuracy {
		t.Fatalf("FairBalance accuracy %v >= original %v", fb.Accuracy, orig.Accuracy)
	}
	// Coverage keeps (or improves) accuracy and does not fix fairness.
	cov, _ := res.Row("Coverage")
	if cov.Accuracy < orig.Accuracy-0.02 {
		t.Fatalf("Coverage accuracy %v well below original %v", cov.Accuracy, orig.Accuracy)
	}
	gf, _ := res.Row("GerryFair")
	if gf.Violation > orig.Violation {
		t.Fatalf("GerryFair violation %v > original %v", gf.Violation, orig.Violation)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9aOptimizedDoesLessWork(t *testing.T) {
	res, err := Fig9a(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // |X| = 3..6 in quick mode
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OptimizedOps >= row.NaiveOps {
			t.Fatalf("|X|=%d: optimized ops %d >= naive %d",
				row.NumAttrs, row.OptimizedOps, row.NaiveOps)
		}
	}
	// Work grows with |X|.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.NaiveOps <= first.NaiveOps {
		t.Fatal("naive work should grow with |X|")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9bRemedyTimes(t *testing.T) {
	res, err := Fig9b(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if len(row.Seconds) != 4 {
			t.Fatalf("|X|=%d: %d techniques timed", row.NumAttrs, len(row.Seconds))
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9cIdentificationScalesWithData(t *testing.T) {
	res, err := Fig9c(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Rows >= res.Rows[4].Rows {
		t.Fatal("data sizes not increasing")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9dRemedyScalesWithData(t *testing.T) {
	res, err := Fig9d(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAdultWithProtectedValidation(t *testing.T) {
	spec, err := LoadDataset("adult", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := adultWithProtected(spec.Data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Schema.ProtectedIdx()); got != 8 {
		t.Fatalf("|X| = %d", got)
	}
	if _, err := adultWithProtected(spec.Data, 9); err == nil {
		t.Fatal("out-of-range protected count must error")
	}
	// The original schema must be untouched.
	if got := len(spec.Data.Schema.ProtectedIdx()); got != 6 {
		t.Fatalf("original schema modified: |X| = %d", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "4") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestFig3DirectionConsistency(t *testing.T) {
	// The paper's second Fig. 3 observation: high-FPR subgroups sit in
	// positive-heavy regions, high-FNR subgroups in negative-heavy
	// ones. A clear majority of checked subgroups must match.
	for _, stat := range []fairness.Statistic{fairness.FPR, fairness.FNR} {
		res, err := Fig3(stat, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.DirectionChecked == 0 {
			t.Fatalf("%s: nothing checked", stat)
		}
		frac := float64(res.DirectionMatched) / float64(res.DirectionChecked)
		if frac < 0.7 {
			t.Fatalf("%s: direction matches only %.0f%%", stat, 100*frac)
		}
	}
}
