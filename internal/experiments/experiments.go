// Package experiments regenerates every table and figure of the
// paper's evaluation (§V) on the synthetic datasets: one exported
// function per artifact, each returning a structured result that can be
// rendered as the same rows/series the paper reports. The per-
// experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/synth"
)

// IndexMinSupport is the subgroup support threshold of the Fairness
// Index (§V-A.d).
const IndexMinSupport = 0.1

// DatasetSpec bundles a dataset with the paper's per-dataset
// evaluation parameters (§V-B2).
type DatasetSpec struct {
	Name string
	Data *dataset.Dataset
	// TauC is the imbalance threshold the paper selects for this
	// dataset (0.1 for ProPublica and Law School, 0.5 for Adult).
	TauC float64
	// T is the neighboring-region distance threshold (1 everywhere).
	T int
}

// LoadDataset builds a synthetic dataset by its paper name:
// "propublica", "adult", or "lawschool". quick shrinks the dataset for
// tests and benchmarks.
func LoadDataset(name string, seed int64, quick bool) (DatasetSpec, error) {
	switch name {
	case "propublica":
		n := synth.CompasSize
		if quick {
			n = 2000
		}
		return DatasetSpec{Name: "ProPublica", Data: synth.CompasN(n, seed), TauC: 0.1, T: 1}, nil
	case "adult":
		n := synth.AdultSize
		if quick {
			n = 4000
		}
		return DatasetSpec{Name: "Adult", Data: synth.AdultN(n, seed), TauC: 0.5, T: 1}, nil
	case "lawschool":
		n := synth.LawSchoolSize
		if quick {
			n = 2000
		}
		return DatasetSpec{Name: "Law School", Data: synth.LawSchoolN(n, seed), TauC: 0.1, T: 1}, nil
	}
	return DatasetSpec{}, fmt.Errorf("experiments: unknown dataset %q", name)
}

// EvalResult aggregates the evaluation metrics of one trained model on
// one test set.
type EvalResult struct {
	IndexFPR  float64 // Fairness Index under γ = FPR
	IndexFNR  float64 // Fairness Index under γ = FNR
	Accuracy  float64
	Violation float64 // GerryFair-style FPR fairness violation
}

// Evaluate trains the given classifier kind on train and scores it on
// test: fairness indices under both statistics, accuracy, and the
// violation metric of Table III.
func Evaluate(train, test *dataset.Dataset, kind ml.ModelKind, seed int64) (EvalResult, error) {
	m, err := ml.TrainKind(train, kind, seed)
	if err != nil {
		return EvalResult{}, err
	}
	return Score(test, m.Predict(test))
}

// Score computes the evaluation metrics for a fixed prediction vector.
func Score(test *dataset.Dataset, preds []int) (EvalResult, error) {
	repFPR, err := divexplorer.Explore(test, preds, fairness.FPR, divexplorer.Options{})
	if err != nil {
		return EvalResult{}, err
	}
	repFNR, err := divexplorer.Explore(test, preds, fairness.FNR, divexplorer.Options{})
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{
		IndexFPR:  repFPR.FairnessIndex(IndexMinSupport),
		IndexFNR:  repFNR.FairnessIndex(IndexMinSupport),
		Accuracy:  ml.NewConfusion(test.Labels, preds).Accuracy(),
		Violation: repFPR.Violation(),
	}, nil
}

// Table is a minimal text table used by every experiment's renderer.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, c := range t.Columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// TableII renders the dataset-characteristics table (Table II of the
// paper) from the synthetic generators.
func TableII(seed int64, quick bool) (*Table, error) {
	t := &Table{
		Title:   "Table II: Dataset characteristics",
		Columns: []string{"Dataset", "|A|", "|X|", "Protected attributes", "Data size"},
	}
	for _, name := range []string{"adult", "propublica", "lawschool"} {
		spec, err := LoadDataset(name, seed, quick)
		if err != nil {
			return nil, err
		}
		var prot string
		for i, ai := range spec.Data.Schema.ProtectedIdx() {
			if i > 0 {
				prot += ", "
			}
			prot += spec.Data.Schema.Attrs[ai].Name
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprint(len(spec.Data.Schema.Attrs)),
			fmt.Sprint(len(spec.Data.Schema.ProtectedIdx())),
			prot,
			fmt.Sprint(spec.Data.Len()),
		})
	}
	return t, nil
}
