package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/remedy"
)

// Table3Row is one method of the baseline comparison (Table III).
type Table3Row struct {
	Approach  string
	Violation float64
	Accuracy  float64
	// Seconds is the wall-clock cost: pre-processing plus downstream
	// logistic-regression training for the pre-processing methods, and
	// the full in-processing training for GerryFair. Absolute values
	// are machine-specific; the paper's claim is about the ratios.
	Seconds float64
}

// Table3Result is the §V-B4 comparison.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 compares Remedy against the five baselines on Adult restricted
// to X = {race, gender} with logistic regression as the downstream
// model, reporting fairness violation, accuracy, and execution time.
func Table3(seed int64, quick bool) (*Table3Result, error) {
	spec, err := LoadDataset("adult", seed, quick)
	if err != nil {
		return nil, err
	}
	// Restrict the protected set to {race, gender} as in [35].
	schema := spec.Data.Schema.Clone()
	if err := schema.SetProtected("race", "gender"); err != nil {
		return nil, err
	}
	data := &dataset.Dataset{Schema: schema, Rows: spec.Data.Rows, Labels: spec.Data.Labels}
	train, test := data.StratifiedSplit(0.7, seed)
	res := &Table3Result{}

	trainLG := func(tr *dataset.Dataset) ([]int, error) {
		m, err := ml.TrainKind(tr, ml.LG, seed)
		if err != nil {
			return nil, err
		}
		return m.Predict(test), nil
	}
	addRow := func(name string, prep func() (*dataset.Dataset, error)) error {
		start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		tr, err := prep()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		preds, err := trainLG(tr)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start).Seconds()
		ev, err := Score(test, preds)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Rows = append(res.Rows, Table3Row{
			Approach: name, Violation: ev.Violation, Accuracy: ev.Accuracy, Seconds: elapsed,
		})
		return nil
	}

	if err := addRow("Original", func() (*dataset.Dataset, error) { return train, nil }); err != nil {
		return nil, err
	}
	if err := addRow("Remedy", func() (*dataset.Dataset, error) {
		out, _, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: 0.1, T: 1},
			Technique: remedy.PreferentialSampling,
			Seed:      seed,
		})
		return out, err
	}); err != nil {
		return nil, err
	}
	for _, p := range []baselines.Preprocessor{
		baselines.Coverage{Seed: seed},
		baselines.FairBalance{},
		baselines.FairSMOTE{Seed: seed},
		baselines.Reweighting{},
	} {
		p := p
		if err := addRow(p.Name(), func() (*dataset.Dataset, error) { return p.Apply(train) }); err != nil {
			return nil, err
		}
	}
	// GerryFair trains in-processing; its "prep" is the whole loop.
	start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
	iters := 25
	if quick {
		iters = 5
	}
	gf, err := baselines.TrainGerryFair(train, baselines.GerryFairParams{Iterations: iters, Seed: seed})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	ev, err := Score(test, gf.Predict(test))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table3Row{
		Approach: "GerryFair", Violation: ev.Violation, Accuracy: ev.Accuracy, Seconds: elapsed,
	})
	return res, nil
}

// Table renders the comparison.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title:   "Table III: fairness violation, accuracy, time — Adult, X={race,gender}, LG",
		Columns: []string{"Approach", "Fairness violation", "Accuracy", "Time (s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Approach, f4(row.Violation), f3(row.Accuracy), fmt.Sprintf("%.2f", row.Seconds),
		})
	}
	return t
}

// Row returns the named approach's row, or false.
func (r *Table3Result) Row(name string) (Table3Row, bool) {
	for _, row := range r.Rows {
		if row.Approach == name {
			return row, true
		}
	}
	return Table3Row{}, false
}
