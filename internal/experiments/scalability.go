package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/remedy"
	"repro/internal/synth"
)

// scalabilityTechniques are the remedy techniques timed in Fig. 9b/9d.
// Oversampling is attempted too, with the added-instance budget that
// models the paper's memory resource limit.
var scalabilityTechniques = []remedy.Technique{
	remedy.Undersampling, remedy.PreferentialSampling, remedy.Massaging, remedy.Oversampling,
}

// oversampleBudget is the added-instance cap standing in for the
// paper's memory limit.
const oversampleBudget = 500_000

// adultWithProtected returns the Adult dataset with the first k
// attributes of the scalability protected set marked protected
// (k ∈ [3, 8]): age, race, gender, marital_status, relationship,
// country, education, occupation.
func adultWithProtected(d *dataset.Dataset, k int) (*dataset.Dataset, error) {
	order := []string{"age", "race", "gender", "marital_status", "relationship", "country", "education", "occupation"}
	if k < 1 || k > len(order) {
		return nil, fmt.Errorf("experiments: protected count %d out of range", k)
	}
	s := d.Schema.Clone()
	if err := s.SetProtected(order[:k]...); err != nil {
		return nil, err
	}
	return &dataset.Dataset{Schema: s, Rows: d.Rows, Labels: d.Labels, Weights: d.Weights}, nil
}

// Fig9aRow is one |X| point of the identification-runtime comparison.
type Fig9aRow struct {
	NumAttrs     int
	NaiveSec     float64
	OptimizedSec float64
	// NeighborOps counts the per-region neighbor aggregations, the
	// quantity the optimized algorithm provably reduces from (c−1)·d·T
	// to d·T.
	NaiveOps, OptimizedOps int
}

// Fig9aResult is the naïve-vs-optimized identification scalability
// study over the number of protected attributes.
type Fig9aResult struct{ Rows []Fig9aRow }

// Fig9a times IBS identification on Adult for |X| from 3 to 8 (3 to 6
// in quick mode). The naïve algorithm recomputes every neighbor's
// counts by a dataset scan, so its cost is (neighbor ops) × (rows); a
// 12k-row subsample keeps the full sweep under a minute while
// preserving the exponential growth and the naïve/optimized gap.
func Fig9a(seed int64, quick bool) (*Fig9aResult, error) {
	n := 12000
	maxAttrs := 8
	if quick {
		n = 5000
		maxAttrs = 6
	}
	base := synth.AdultN(n, seed)
	res := &Fig9aResult{}
	for k := 3; k <= maxAttrs; k++ {
		d, err := adultWithProtected(base, k)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{TauC: 0.5, T: 1}
		start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		nv, err := core.IdentifyNaive(d, cfg)
		if err != nil {
			return nil, err
		}
		naiveSec := time.Since(start).Seconds()
		start = time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		opt, err := core.IdentifyOptimized(d, cfg)
		if err != nil {
			return nil, err
		}
		optSec := time.Since(start).Seconds()
		res.Rows = append(res.Rows, Fig9aRow{
			NumAttrs: k,
			NaiveSec: naiveSec, OptimizedSec: optSec,
			NaiveOps: nv.NeighborOps, OptimizedOps: opt.NeighborOps,
		})
	}
	return res, nil
}

// Table renders the study.
func (r *Fig9aResult) Table() *Table {
	t := &Table{
		Title:   "Fig. 9a: IBS identification runtime, varying # of protected attributes (Adult)",
		Columns: []string{"|X|", "Naive (s)", "Optimized (s)", "Naive neighbor ops", "Optimized neighbor ops"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.NumAttrs),
			fmt.Sprintf("%.3f", row.NaiveSec), fmt.Sprintf("%.3f", row.OptimizedSec),
			fmt.Sprint(row.NaiveOps), fmt.Sprint(row.OptimizedOps),
		})
	}
	return t
}

// Fig9bRow is one |X| point of the remedy-runtime study. A negative
// seconds value marks a technique that exceeded the resource budget
// (oversampling at large |X|, as in the paper).
type Fig9bRow struct {
	NumAttrs int
	Seconds  map[remedy.Technique]float64
}

// Fig9bResult is the remedy-runtime study over |X|.
type Fig9bResult struct{ Rows []Fig9bRow }

// Fig9b times the remedy algorithm per technique for |X| from 3 to 8
// (3 to 5 in quick mode) on Adult.
func Fig9b(seed int64, quick bool) (*Fig9bResult, error) {
	n := synth.AdultSize
	maxAttrs := 8
	if quick {
		n = 4000
		maxAttrs = 5
	}
	base := synth.AdultN(n, seed)
	res := &Fig9bResult{}
	for k := 3; k <= maxAttrs; k++ {
		d, err := adultWithProtected(base, k)
		if err != nil {
			return nil, err
		}
		row := Fig9bRow{NumAttrs: k, Seconds: map[remedy.Technique]float64{}}
		for _, tech := range scalabilityTechniques {
			sec, err := timeRemedy(d, tech, seed)
			if err != nil {
				return nil, err
			}
			row.Seconds[tech] = sec
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// timeRemedy runs one remedy and returns its wall-clock seconds, or -1
// when the technique exceeds the resource budget.
func timeRemedy(d *dataset.Dataset, tech remedy.Technique, seed int64) (float64, error) {
	start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
	_, _, err := remedy.Apply(d, remedy.Options{
		Identify:  core.Config{TauC: 0.5, T: 1},
		Technique: tech,
		Seed:      seed,
		MaxAdded:  oversampleBudget,
	})
	if errors.Is(err, remedy.ErrResourceLimit) {
		return -1, nil
	}
	if err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// Table renders the study.
func (r *Fig9bResult) Table() *Table {
	t := &Table{
		Title:   "Fig. 9b: remedy runtime by technique, varying # of protected attributes (Adult)",
		Columns: []string{"|X|", "US (s)", "PS (s)", "Massaging (s)", "DP (s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.NumAttrs),
			fmtSec(row.Seconds[remedy.Undersampling]),
			fmtSec(row.Seconds[remedy.PreferentialSampling]),
			fmtSec(row.Seconds[remedy.Massaging]),
			fmtSec(row.Seconds[remedy.Oversampling]),
		})
	}
	return t
}

func fmtSec(s float64) string {
	if s < 0 {
		return "resource limit"
	}
	return fmt.Sprintf("%.3f", s)
}

// Fig9cRow is one data-size point of the identification scalability
// study at maximal |X|.
type Fig9cRow struct {
	Rows         int
	NaiveSec     float64
	OptimizedSec float64
}

// Fig9cResult is the identification runtime over data size.
type Fig9cResult struct {
	NumAttrs int
	Rows     []Fig9cRow
}

// Fig9c times IBS identification at |X| = 7 (6 in quick mode) while
// scaling the Adult dataset from 20% to 100%. |X| = 7 keeps the naïve
// algorithm's quadratic-ish cost (neighbor scans × rows) within a
// minute at full size.
func Fig9c(seed int64, quick bool) (*Fig9cResult, error) {
	n := synth.AdultSize
	attrs := 7
	if quick {
		n = 6000
		attrs = 6
	}
	full := synth.AdultN(n, seed)
	res := &Fig9cResult{NumAttrs: attrs}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		sample := full.SampleFraction(frac, seed)
		d, err := adultWithProtected(sample, attrs)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{TauC: 0.5, T: 1}
		start := time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		if _, err := core.IdentifyNaive(d, cfg); err != nil {
			return nil, err
		}
		naiveSec := time.Since(start).Seconds()
		start = time.Now() //lint:allow determinism the experiment measures wall-clock runtime; the timing IS the result, not analysis input
		if _, err := core.IdentifyOptimized(d, cfg); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig9cRow{
			Rows: d.Len(), NaiveSec: naiveSec, OptimizedSec: time.Since(start).Seconds(),
		})
	}
	return res, nil
}

// Table renders the study.
func (r *Fig9cResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 9c: IBS identification runtime, varying data size (|X|=%d)", r.NumAttrs),
		Columns: []string{"Rows", "Naive (s)", "Optimized (s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Rows), fmt.Sprintf("%.3f", row.NaiveSec), fmt.Sprintf("%.3f", row.OptimizedSec),
		})
	}
	return t
}

// Fig9dRow is one data-size point of the remedy-runtime study.
type Fig9dRow struct {
	Rows    int
	Seconds map[remedy.Technique]float64
}

// Fig9dResult is the remedy runtime over data size.
type Fig9dResult struct {
	NumAttrs int
	Rows     []Fig9dRow
}

// Fig9d times the remedy per technique at |X| = 8 (6 in quick mode)
// while scaling the Adult dataset.
func Fig9d(seed int64, quick bool) (*Fig9dResult, error) {
	n := synth.AdultSize
	attrs := 8
	if quick {
		n = 6000
		attrs = 6
	}
	full := synth.AdultN(n, seed)
	res := &Fig9dResult{NumAttrs: attrs}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		sample := full.SampleFraction(frac, seed)
		d, err := adultWithProtected(sample, attrs)
		if err != nil {
			return nil, err
		}
		row := Fig9dRow{Rows: d.Len(), Seconds: map[remedy.Technique]float64{}}
		for _, tech := range scalabilityTechniques {
			sec, err := timeRemedy(d, tech, seed)
			if err != nil {
				return nil, err
			}
			row.Seconds[tech] = sec
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the study.
func (r *Fig9dResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 9d: remedy runtime by technique, varying data size (|X|=%d)", r.NumAttrs),
		Columns: []string{"Rows", "US (s)", "PS (s)", "Massaging (s)", "DP (s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Rows),
			fmtSec(row.Seconds[remedy.Undersampling]),
			fmtSec(row.Seconds[remedy.PreferentialSampling]),
			fmtSec(row.Seconds[remedy.Massaging]),
			fmtSec(row.Seconds[remedy.Oversampling]),
		})
	}
	return t
}
