package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/remedy"
)

// TradeoffRow is one (mitigation method, classifier) cell of the
// fairness-accuracy trade-off figures (Figs. 4, 5, 6).
type TradeoffRow struct {
	Method string
	Model  ml.ModelKind
	EvalResult
}

// TradeoffResult holds both panels of a trade-off figure: the IBS
// identification scope comparison (panels a–c, preferential sampling
// fixed) and the pre-processing technique comparison (panel d, Lattice
// fixed).
type TradeoffResult struct {
	Dataset       string
	ScopeRows     []TradeoffRow
	TechniqueRows []TradeoffRow
}

// scopeMethods is the panel a–c method axis.
var scopeMethods = []struct {
	name  string
	scope core.Scope
}{
	{"Lattice", core.Lattice},
	{"Leaf", core.Leaf},
	{"Top", core.Top},
}

// Tradeoff runs the full fairness-accuracy trade-off experiment for one
// dataset ("adult" → Fig. 4, "lawschool" → Fig. 5, "propublica" →
// Fig. 6) with the paper's per-dataset parameters.
func Tradeoff(dsName string, seed int64, quick bool) (*TradeoffResult, error) {
	spec, err := LoadDataset(dsName, seed, quick)
	if err != nil {
		return nil, err
	}
	train, test := spec.Data.StratifiedSplit(0.7, seed)
	res := &TradeoffResult{Dataset: spec.Name}

	evalAll := func(method string, tr *dataset.Dataset, dst *[]TradeoffRow) error {
		for _, kind := range ml.AllModels {
			ev, err := Evaluate(tr, test, kind, seed)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", method, kind, err)
			}
			*dst = append(*dst, TradeoffRow{Method: method, Model: kind, EvalResult: ev})
		}
		return nil
	}

	// Panel a–c: Original vs the three identification scopes, remedied
	// with preferential sampling.
	if err := evalAll("Original", train, &res.ScopeRows); err != nil {
		return nil, err
	}
	var latticePS *dataset.Dataset
	for _, m := range scopeMethods {
		remedied, _, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: spec.TauC, T: spec.T, Scope: m.scope},
			Technique: remedy.PreferentialSampling,
			Seed:      seed,
		})
		if err != nil {
			return nil, fmt.Errorf("remedy %s: %w", m.name, err)
		}
		if m.scope == core.Lattice {
			latticePS = remedied
		}
		if err := evalAll(m.name, remedied, &res.ScopeRows); err != nil {
			return nil, err
		}
	}

	// Panel d: the four techniques under the Lattice scope (PS reuses
	// the dataset remedied above).
	for _, tech := range []remedy.Technique{
		remedy.PreferentialSampling, remedy.Undersampling,
		remedy.Oversampling, remedy.Massaging,
	} {
		var remedied *dataset.Dataset
		if tech == remedy.PreferentialSampling && latticePS != nil {
			remedied = latticePS
		} else {
			var err error
			remedied, _, err = remedy.Apply(train, remedy.Options{
				Identify:  core.Config{TauC: spec.TauC, T: spec.T},
				Technique: tech,
				Seed:      seed,
			})
			if err != nil {
				return nil, fmt.Errorf("remedy %s: %w", tech, err)
			}
		}
		if err := evalAll(string(tech), remedied, &res.TechniqueRows); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Tables renders the two panels.
func (r *TradeoffResult) Tables() []*Table {
	scope := &Table{
		Title:   fmt.Sprintf("Fig. 4/5/6 (a-c) — %s: IBS scopes, preferential sampling", r.Dataset),
		Columns: []string{"Method", "Model", "Index(FPR)", "Index(FNR)", "Accuracy"},
	}
	for _, row := range r.ScopeRows {
		scope.Rows = append(scope.Rows, []string{
			row.Method, string(row.Model), f3(row.IndexFPR), f3(row.IndexFNR), f3(row.Accuracy),
		})
	}
	tech := &Table{
		Title:   fmt.Sprintf("Fig. 4/5/6 (d) — %s: pre-processing techniques, Lattice scope", r.Dataset),
		Columns: []string{"Technique", "Model", "Index(FPR)", "Accuracy"},
	}
	for _, row := range r.TechniqueRows {
		tech.Rows = append(tech.Rows, []string{
			row.Method, string(row.Model), f3(row.IndexFPR), f3(row.Accuracy),
		})
	}
	return []*Table{scope, tech}
}

// MeanBy averages a metric over the rows of one method, used by the
// integration tests to check the paper's shape claims.
func MeanBy(rows []TradeoffRow, method string, metric func(EvalResult) float64) float64 {
	var sum float64
	var n int
	for _, r := range rows {
		if r.Method == method {
			sum += metric(r.EvalResult)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
