package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/remedy"
)

// This file runs the §VI statistical-parity discussion as a measurable
// artifact: the paper argues the remedy also mitigates parity
// violations (equal predicted-positive rates across subgroups) even
// though its evaluation focuses on FPR/FNR. For each dataset the
// parity index — the Fairness Index computed under γ = PositiveRate —
// is reported before and after the remedy.

// ParityRow is one dataset's parity result.
type ParityRow struct {
	Dataset        string
	Model          ml.ModelKind
	IndexBefore    float64
	IndexAfter     float64
	AccuracyBefore float64
	AccuracyAfter  float64
}

// ParityResult covers all three datasets.
type ParityResult struct {
	Rows []ParityRow
}

// parityOf trains a decision tree on train and returns the
// statistical-parity fairness index and accuracy on test.
func parityOf(train, test *dataset.Dataset, seed int64) (index, accuracy float64, err error) {
	m, err := ml.TrainKind(train, ml.DT, seed)
	if err != nil {
		return 0, 0, err
	}
	preds := m.Predict(test)
	rep, err := divexplorer.Explore(test, preds, fairness.PositiveRate, divexplorer.Options{})
	if err != nil {
		return 0, 0, err
	}
	return rep.FairnessIndex(IndexMinSupport), ml.NewConfusion(test.Labels, preds).Accuracy(), nil
}

// Parity measures the statistical-parity index before and after the
// remedy (preferential sampling, the paper's per-dataset parameters)
// with a decision tree.
func Parity(seed int64, quick bool) (*ParityResult, error) {
	res := &ParityResult{}
	for _, name := range []string{"propublica", "adult", "lawschool"} {
		spec, err := LoadDataset(name, seed, quick)
		if err != nil {
			return nil, err
		}
		train, test := spec.Data.StratifiedSplit(0.7, seed)
		before, beforeAcc, err := parityOf(train, test, seed)
		if err != nil {
			return nil, err
		}
		remedied, _, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: spec.TauC, T: spec.T},
			Technique: remedy.PreferentialSampling,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		after, afterAcc, err := parityOf(remedied, test, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ParityRow{
			Dataset: spec.Name, Model: ml.DT,
			IndexBefore: before, IndexAfter: after,
			AccuracyBefore: beforeAcc, AccuracyAfter: afterAcc,
		})
	}
	return res, nil
}

// Table renders the parity comparison.
func (r *ParityResult) Table() *Table {
	t := &Table{
		Title:   "Statistical parity (extension, §VI) — parity index before/after remedy (DT, PS)",
		Columns: []string{"Dataset", "Parity index before", "after", "Accuracy before", "after"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Dataset, f3(row.IndexBefore), f3(row.IndexAfter),
			f3(row.AccuracyBefore), f3(row.AccuracyAfter),
		})
	}
	return t
}
