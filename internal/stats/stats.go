// Package stats provides the statistical substrate shared by the rest of
// the repository: descriptive summaries, Welch's t-test (used to decide
// whether a subgroup's divergence is significant), and small helpers for
// deterministic pseudo-random sampling.
//
// Everything here is implemented on the standard library. The t-test
// p-values use the regularized incomplete beta function, so they match
// textbook Student-t tail probabilities rather than a normal
// approximation.
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice, which is the convention the callers in this repository rely on
// (an empty subgroup contributes nothing).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. Slices with
// fewer than two elements have zero variance by convention.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Summary holds the sufficient statistics of a sample of a Bernoulli or
// real-valued indicator, as used by the divergence significance tests.
type Summary struct {
	N        int     // sample size
	Mean     float64 // sample mean
	Variance float64 // unbiased sample variance
}

// Summarize computes a Summary in one pass using Welford's algorithm,
// which is numerically stable for the long indicator vectors produced by
// the auditor.
func Summarize(xs []float64) Summary {
	var (
		n    int
		mean float64
		m2   float64
	)
	for _, x := range xs {
		n++
		d := x - mean
		mean += d / float64(n)
		m2 += d * (x - mean)
	}
	s := Summary{N: n, Mean: mean}
	if n > 1 {
		s.Variance = m2 / float64(n-1)
	}
	return s
}

// BernoulliSummary builds the Summary of a Bernoulli sample directly
// from its size and number of successes, avoiding materializing the
// indicator vector. The variance is the unbiased sample variance
// k(n-k) / (n(n-1)).
func BernoulliSummary(n, successes int) Summary {
	if n == 0 {
		return Summary{}
	}
	p := float64(successes) / float64(n)
	s := Summary{N: n, Mean: p}
	if n > 1 {
		s.Variance = float64(successes) * float64(n-successes) /
			(float64(n) * float64(n-1))
	}
	return s
}

// ErrDegenerate is returned by WelchT when both samples have zero
// variance or either sample is too small for the test to be defined.
var ErrDegenerate = errors.New("stats: degenerate samples for t-test")

// TTestResult reports a two-sample Welch's t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT performs a two-sample Welch's t-test on two summarized samples.
// The divergence auditor uses it to compare, e.g., the false-positive
// indicator within a subgroup against the rest of the dataset.
func WelchT(a, b Summary) (TTestResult, error) {
	if a.N < 2 || b.N < 2 {
		return TTestResult{}, ErrDegenerate
	}
	va := a.Variance / float64(a.N)
	vb := b.Variance / float64(b.N)
	if va+vb == 0 {
		if a.Mean == b.Mean {
			// Identical constant samples: no evidence of difference.
			return TTestResult{T: 0, DF: float64(a.N + b.N - 2), P: 1}, nil
		}
		// Constant but different samples: unbounded evidence.
		return TTestResult{T: math.Inf(sign(a.Mean - b.Mean)), DF: float64(a.N + b.N - 2), P: 0}, nil
	}
	t := (a.Mean - b.Mean) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	p := 2 * studentTTail(math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTTail returns P(T >= t) for T ~ Student-t with df degrees of
// freedom, t >= 0, via the regularized incomplete beta function.
func studentTTail(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion from Numerical
// Recipes (betacf), accurate to ~1e-12 for the parameter ranges used by
// the t-test.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TwoProportionSignificant reports whether the difference between a
// subgroup proportion (k1 of n1) and a reference proportion (k2 of n2)
// is significant at level alpha under Welch's t-test on the indicator
// variables. Degenerate cases (tiny samples) are reported as not
// significant, matching the auditor's conservative behaviour.
func TwoProportionSignificant(n1, k1, n2, k2 int, alpha float64) bool {
	res, err := WelchT(BernoulliSummary(n1, k1), BernoulliSummary(n2, k2))
	if err != nil {
		return false
	}
	return res.P < alpha
}
