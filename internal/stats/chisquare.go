package stats

import (
	"errors"
	"math"
)

// This file implements Pearson's chi-square test of independence on a
// contingency table, used by the synthetic-data validation tests to
// confirm that the generators actually produce the attribute
// correlations they claim (age ↔ marital status, race ↔ income, …).

// ErrBadTable is returned for contingency tables that are too small or
// contain an empty row/column marginal.
var ErrBadTable = errors.New("stats: invalid contingency table")

// ChiSquareResult reports a chi-square independence test.
type ChiSquareResult struct {
	Chi2 float64 // test statistic
	DF   int     // (rows-1)(cols-1)
	P    float64 // upper-tail p-value
	// CramersV is the effect size in [0, 1]: sqrt(chi2 / (n*min(r,c)-1)).
	CramersV float64
}

// ChiSquareIndependence tests the null hypothesis that the two
// categorical variables of the r×c count table are independent.
func ChiSquareIndependence(table [][]int) (ChiSquareResult, error) {
	r := len(table)
	if r < 2 {
		return ChiSquareResult{}, ErrBadTable
	}
	c := len(table[0])
	if c < 2 {
		return ChiSquareResult{}, ErrBadTable
	}
	rowSums := make([]float64, r)
	colSums := make([]float64, c)
	var n float64
	for i, row := range table {
		if len(row) != c {
			return ChiSquareResult{}, ErrBadTable
		}
		for j, v := range row {
			if v < 0 {
				return ChiSquareResult{}, ErrBadTable
			}
			rowSums[i] += float64(v)
			colSums[j] += float64(v)
			n += float64(v)
		}
	}
	if n == 0 {
		return ChiSquareResult{}, ErrBadTable
	}
	for _, s := range rowSums {
		if s == 0 {
			return ChiSquareResult{}, ErrBadTable
		}
	}
	for _, s := range colSums {
		if s == 0 {
			return ChiSquareResult{}, ErrBadTable
		}
	}
	var chi2 float64
	for i := range table {
		for j := range table[i] {
			expected := rowSums[i] * colSums[j] / n
			d := float64(table[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	df := (r - 1) * (c - 1)
	minDim := r
	if c < r {
		minDim = c
	}
	res := ChiSquareResult{
		Chi2:     chi2,
		DF:       df,
		P:        ChiSquareTail(chi2, float64(df)),
		CramersV: math.Sqrt(chi2 / (n * float64(minDim-1))),
	}
	return res, nil
}

// ChiSquareTail returns P(X >= x) for X ~ chi-square with df degrees of
// freedom, via the regularized upper incomplete gamma function
// Q(df/2, x/2).
func ChiSquareTail(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return regGammaQ(df/2, x/2)
}

// regGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction otherwise (Numerical Recipes gammp/gammq).
func regGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesP(a, x)
	default:
		return gammaCFQ(a, x)
	}
}

// gammaSeriesP evaluates P(a, x) by its power series.
func gammaSeriesP(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
	)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

// gammaCFQ evaluates Q(a, x) by its continued fraction (modified Lentz).
func gammaCFQ(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		fpmin   = 1e-300
	)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lgamma(a))
}
