package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// almostEqual treats equal infinities as equal: Inf-Inf is NaN, which
// would otherwise fail the symmetry property on degenerate
// zero-variance samples where WelchT legitimately returns T = ±Inf.
func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Unbiased variance of the classic example is 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance(single) = %v, want 0", got)
	}
}

func TestSummarizeMatchesMeanVariance(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		s := Summarize(xs)
		return s.N == len(xs) &&
			almostEqual(s.Mean, Mean(xs), 1e-6) &&
			almostEqual(s.Variance, Variance(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliSummary(t *testing.T) {
	// 6 successes out of 10: mean 0.6, unbiased variance 6*4/(10*9).
	s := BernoulliSummary(10, 6)
	if s.N != 10 || !almostEqual(s.Mean, 0.6, 1e-12) {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Variance, 24.0/90.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance, 24.0/90.0)
	}
	if s := BernoulliSummary(0, 0); s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestBernoulliSummaryMatchesIndicator(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n%50) + 2
		kk := int(k) % (nn + 1)
		xs := make([]float64, nn)
		for i := 0; i < kk; i++ {
			xs[i] = 1
		}
		a := BernoulliSummary(nn, kk)
		b := Summarize(xs)
		return almostEqual(a.Mean, b.Mean, 1e-9) && almostEqual(a.Variance, b.Variance, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Worked example: two small samples with a clear difference.
	a := Summarize([]float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4})
	b := Summarize([]float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 31.3})
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values computed independently from the Welch formulas:
	// t = -2.94924, df = 27.31.
	if !almostEqual(res.T, -2.94924, 1e-4) {
		t.Fatalf("T = %v, want ~ -2.94924", res.T)
	}
	if !almostEqual(res.DF, 27.31, 0.01) {
		t.Fatalf("DF = %v, want ~ 27.31", res.DF)
	}
	if res.P > 0.01 || res.P < 0.003 {
		t.Fatalf("P = %v, want in (0.003, 0.01)", res.P)
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a := BernoulliSummary(100, 50)
	res, err := WelchT(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.P < 0.99 {
		t.Fatalf("identical samples: T=%v P=%v", res.T, res.P)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if _, err := WelchT(Summary{N: 1}, Summary{N: 100, Mean: 0.5, Variance: 0.25}); err == nil {
		t.Fatal("expected ErrDegenerate for tiny sample")
	}
	// Two constant samples with different means: infinite evidence.
	res, err := WelchT(Summary{N: 10, Mean: 1}, Summary{N: 10, Mean: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("constant different samples: P=%v, want 0", res.P)
	}
}

// TestWelchTDegenerateSymmetry pins the quick.Check counterexample
// (seed-dependent, so it only rarely surfaced): two constant samples
// with different means, where WelchT legitimately returns T = ±Inf
// and the statistic must still negate cleanly under argument swap.
func TestWelchTDegenerateSymmetry(t *testing.T) {
	a := BernoulliSummary(6, 0)
	b := BernoulliSummary(5, 5)
	ra, errA := WelchT(a, b)
	rb, errB := WelchT(b, a)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v %v", errA, errB)
	}
	if !math.IsInf(ra.T, -1) || !math.IsInf(rb.T, 1) {
		t.Fatalf("want T = -Inf/+Inf, got %v/%v", ra.T, rb.T)
	}
	if !almostEqual(ra.T, -rb.T, 1e-9) || !almostEqual(ra.P, rb.P, 1e-9) {
		t.Fatalf("asymmetric: %+v vs %+v", ra, rb)
	}
}

func TestWelchTSymmetry(t *testing.T) {
	f := func(n1, k1, n2, k2 uint8) bool {
		a := BernoulliSummary(int(n1%60)+5, int(k1)%(int(n1%60)+6))
		b := BernoulliSummary(int(n2%60)+5, int(k2)%(int(n2%60)+6))
		ra, errA := WelchT(a, b)
		rb, errB := WelchT(b, a)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return almostEqual(ra.T, -rb.T, 1e-9) && almostEqual(ra.P, rb.P, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	// I_x(a,b) must be a CDF in x: boundaries, monotonicity, symmetry
	// identity I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v", got)
	}
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := regIncBeta(2.5, 1.5, x)
		if v < prev-1e-12 {
			t.Fatalf("not monotone at x=%v", x)
		}
		prev = v
		sym := 1 - regIncBeta(1.5, 2.5, 1-x)
		if !almostEqual(v, sym, 1e-9) {
			t.Fatalf("symmetry broken at x=%v: %v vs %v", x, v, sym)
		}
	}
	// I_x(1,1) is the uniform CDF.
	if got := regIncBeta(1, 1, 0.37); !almostEqual(got, 0.37, 1e-9) {
		t.Fatalf("I_0.37(1,1) = %v", got)
	}
}

func TestStudentTTailKnownValues(t *testing.T) {
	// With df=10, P(T >= 2.228) ≈ 0.025 (classic table value).
	if got := studentTTail(2.228, 10); !almostEqual(got, 0.025, 0.001) {
		t.Fatalf("tail(2.228, 10) = %v, want ~0.025", got)
	}
	// Large df approaches the normal tail: P(Z >= 1.96) ≈ 0.025.
	if got := studentTTail(1.96, 1e6); !almostEqual(got, 0.025, 0.001) {
		t.Fatalf("tail(1.96, 1e6) = %v, want ~0.025", got)
	}
}

func TestTwoProportionSignificant(t *testing.T) {
	// 80/100 vs 50/100 is clearly significant.
	if !TwoProportionSignificant(100, 80, 100, 50, 0.05) {
		t.Fatal("expected significance for 0.8 vs 0.5")
	}
	// 51/100 vs 50/100 is not.
	if TwoProportionSignificant(100, 51, 100, 50, 0.05) {
		t.Fatal("expected no significance for 0.51 vs 0.50")
	}
	// Degenerate inputs are conservatively not significant.
	if TwoProportionSignificant(1, 1, 100, 50, 0.05) {
		t.Fatal("expected degenerate case to be not significant")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(1)
	got := SampleWithoutReplacement(r, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// k >= n returns all indices.
	all := SampleWithoutReplacement(r, 5, 9)
	if len(all) != 5 {
		t.Fatalf("len = %d, want 5", len(all))
	}
}

func TestSampleWithReplacement(t *testing.T) {
	r := NewRNG(2)
	got := SampleWithReplacement(r, 3, 100)
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	counts := map[int]int{}
	for _, i := range got {
		if i < 0 || i >= 3 {
			t.Fatalf("index %d out of range", i)
		}
		counts[i]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected all values drawn, got %v", counts)
	}
}

func TestChoice(t *testing.T) {
	r := NewRNG(3)
	w := []float64{0, 0, 1, 0}
	for i := 0; i < 50; i++ {
		if got := Choice(r, w); got != 2 {
			t.Fatalf("Choice = %d, want 2", got)
		}
	}
	// Zero weights fall back to uniform: all indices should appear.
	zero := []float64{0, 0, 0}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[Choice(r, zero)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback missing values: %v", seen)
	}
	// Heavier weights win more often.
	heavy := []float64{1, 9}
	n1 := 0
	for i := 0; i < 2000; i++ {
		if Choice(r, heavy) == 1 {
			n1++
		}
	}
	if n1 < 1600 || n1 > 1990 {
		t.Fatalf("weighted draw off: %d/2000", n1)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
}
