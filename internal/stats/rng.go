package stats

import "math/rand"

// NewRNG returns a deterministic pseudo-random source for the given
// seed. Every stochastic component in this repository (data generation,
// sampling remedies, SGD shuffling, bootstrap draws) threads one of
// these through explicitly so that experiments regenerate bit-identically.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Shuffle permutes idx in place using r.
func Shuffle(r *rand.Rand, idx []int) {
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). If k >= n it returns the identity permutation of all n
// indices. The result order is random.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if k >= n {
		Shuffle(r, idx)
		return idx
	}
	// Partial Fisher–Yates: only the first k positions need settling.
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// SampleWithReplacement returns k indices drawn uniformly with
// replacement from [0, n). It panics if n <= 0 and k > 0.
func SampleWithReplacement(r *rand.Rand, n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

// WeightedSampler draws indices proportionally to fixed non-negative
// weights in O(log n) per draw via binary search on cumulative sums.
// Use it instead of Choice when drawing many times from the same
// distribution (e.g. weighted bootstrap).
type WeightedSampler struct {
	cum []float64
}

// NewWeightedSampler precomputes the cumulative distribution. A zero
// total weight degenerates to uniform.
func NewWeightedSampler(weights []float64) *WeightedSampler {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total == 0 {
		for i := range cum {
			cum[i] = float64(i + 1)
		}
	}
	return &WeightedSampler{cum: cum}
}

// Draw returns one index.
func (s *WeightedSampler) Draw(r *rand.Rand) int {
	total := s.cum[len(s.cum)-1]
	u := r.Float64() * total
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Choice returns an index in [0, len(weights)) drawn proportionally to
// the non-negative weights. A zero total weight falls back to uniform.
func Choice(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
