package stats

import (
	"math"
	"testing"
)

func TestChiSquareTailKnownValues(t *testing.T) {
	// Classic table values: P(X >= 3.841 | df=1) = 0.05,
	// P(X >= 5.991 | df=2) = 0.05, P(X >= 18.307 | df=10) = 0.05.
	cases := []struct {
		x, df, want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{18.307, 10, 0.05},
		{6.635, 1, 0.01},
		{0, 5, 1},
	}
	for _, c := range cases {
		if got := ChiSquareTail(c.x, c.df); math.Abs(got-c.want) > 0.0005 {
			t.Fatalf("ChiSquareTail(%v, %v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareTailMonotone(t *testing.T) {
	prev := 1.1
	for x := 0.0; x < 30; x += 0.5 {
		v := ChiSquareTail(x, 4)
		if v > prev+1e-12 {
			t.Fatalf("tail not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestChiSquareIndependenceDetectsAssociation(t *testing.T) {
	// Strongly associated table.
	dep := [][]int{
		{90, 10},
		{10, 90},
	}
	res, err := ChiSquareIndependence(dep)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("dependent table p = %v", res.P)
	}
	if res.DF != 1 {
		t.Fatalf("df = %d", res.DF)
	}
	if res.CramersV < 0.5 {
		t.Fatalf("CramersV = %v, want large", res.CramersV)
	}
	// Perfectly proportional (independent) table.
	ind := [][]int{
		{40, 60},
		{20, 30},
	}
	res2, err := ChiSquareIndependence(ind)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Chi2 > 1e-9 || res2.P < 0.99 {
		t.Fatalf("independent table chi2=%v p=%v", res2.Chi2, res2.P)
	}
}

func TestChiSquareKnownExample(t *testing.T) {
	// Textbook example: chi2 ≈ 0.2, not significant.
	table := [][]int{
		{207, 282},
		{231, 242},
	}
	res, err := ChiSquareIndependence(table)
	if err != nil {
		t.Fatal(err)
	}
	// Reference chi2 = 4.10 (computed by hand for this table).
	if math.Abs(res.Chi2-4.10) > 0.05 {
		t.Fatalf("chi2 = %v, want ~4.10", res.Chi2)
	}
	if res.P > 0.05 || res.P < 0.03 {
		t.Fatalf("p = %v, want ~0.043", res.P)
	}
}

func TestChiSquareErrors(t *testing.T) {
	bad := [][][]int{
		{{1, 2}},          // one row
		{{1}, {2}},        // one column
		{{1, 2}, {3}},     // ragged
		{{1, -2}, {3, 4}}, // negative
		{{0, 0}, {1, 2}},  // empty row marginal
		{{0, 1}, {0, 2}},  // empty column marginal
		{{0, 0}, {0, 0}},  // empty table
	}
	for i, table := range bad {
		if _, err := ChiSquareIndependence(table); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}

func TestRegGammaQEdges(t *testing.T) {
	if got := regGammaQ(2, 0); got != 1 {
		t.Fatalf("Q(2,0) = %v", got)
	}
	if got := regGammaQ(-1, 2); !math.IsNaN(got) {
		t.Fatalf("Q(-1,2) = %v, want NaN", got)
	}
	// Q(1, x) = exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		if got := regGammaQ(1, x); math.Abs(got-math.Exp(-x)) > 1e-10 {
			t.Fatalf("Q(1,%v) = %v, want %v", x, got, math.Exp(-x))
		}
	}
}
