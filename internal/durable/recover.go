package durable

import (
	"context"
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Job states as the journal spells them. The serving layer owns the
// richer typed state machine; the reduction only needs to know which
// states are terminal and that "running" work orphaned by a crash
// must be re-queued.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// terminal reports whether a journaled state never transitions again.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobRecord is one job as reduced from the journal: its identity, the
// last state the journal proves, and its accumulated checkpoints.
type JobRecord struct {
	ID      string
	IdemKey string
	Request json.RawMessage
	State   string
	Error   string
	// Attempt counts how many times the job has been (re)queued after
	// an interruption; 0 for a job on its first life.
	Attempt int
	// Checkpoints holds the latest identify checkpoint payload per
	// completed lattice level (later records for the same level win,
	// so a resumed attempt that re-runs a level supersedes the old
	// snapshot).
	Checkpoints map[int]json.RawMessage
}

// CheckpointLevels returns the checkpointed levels in ascending order.
func (j *JobRecord) CheckpointLevels() []int {
	levels := make([]int, 0, len(j.Checkpoints))
	for lv := range j.Checkpoints {
		levels = append(levels, lv)
	}
	sort.Ints(levels)
	return levels
}

// Table is the reduced job table: the consistent state the journal
// proves, however the process died.
type Table struct {
	// Jobs in submission order.
	Jobs []*JobRecord
	// MaxJobSeq is the largest numeric suffix among "job-NNNNNN" IDs,
	// so a recovered engine can continue the sequence without reuse.
	MaxJobSeq int
	// Dropped counts records the reduction ignored: transitions or
	// checkpoints for unknown jobs, duplicate submissions, and
	// transitions after a terminal state. A handful of dropped records
	// is the expected signature of a journal whose tail died between
	// related appends; the reduction stays consistent regardless.
	Dropped int
	// Replay carries how the journal read ended (torn tail etc.).
	Replay ReplayInfo
	// Term and Leader are the last leadership term the journal
	// witnessed (RecTerm records, last-wins) — zero/"" for a journal
	// that never ran in a cluster.
	Term   uint64
	Leader string
}

// Reduce folds journal records into a consistent job table. It is
// deterministic, never panics, and enforces the state machine:
// unknown-job records are dropped, duplicate submissions are dropped,
// and once a job reaches a terminal state every later record for it
// is dropped (a duplicate "done" from a crash between append and ack
// cannot double-finish a job).
func Reduce(recs []Record) *Table {
	t := &Table{}
	byID := make(map[string]*JobRecord)
	for _, rec := range recs {
		t.reduceOne(byID, rec)
	}
	return t
}

func (t *Table) reduceOne(byID map[string]*JobRecord, rec Record) {
	if rec.Type == RecTerm {
		// Terms are monotone: a replicated log can only ever append a
		// higher term, so last-wins and monotone-wins agree; keeping the
		// max guards against a hand-edited journal regressing the fence.
		if rec.Term > t.Term {
			t.Term = rec.Term
			t.Leader = rec.Leader
		}
		return
	}
	if rec.JobID == "" {
		t.Dropped++
		return
	}
	j := byID[rec.JobID]
	switch rec.Type {
	case RecSubmit:
		if j != nil {
			t.Dropped++ // duplicate submission: first one wins
			return
		}
		state := rec.State
		if state == "" {
			state = StateQueued
		}
		j = &JobRecord{
			ID:      rec.JobID,
			IdemKey: rec.IdemKey,
			Request: rec.Request,
			State:   state,
			Attempt: rec.Attempt,
		}
		byID[rec.JobID] = j
		t.Jobs = append(t.Jobs, j)
		if seq, ok := jobSeq(rec.JobID); ok && seq > t.MaxJobSeq {
			t.MaxJobSeq = seq
		}
	case RecState:
		if j == nil || terminal(j.State) || rec.State == "" {
			t.Dropped++
			return
		}
		j.State = rec.State
		j.Error = rec.Error
		if rec.Attempt > j.Attempt {
			j.Attempt = rec.Attempt
		}
	case RecCheckpoint:
		if j == nil || terminal(j.State) || len(rec.Checkpoint) == 0 {
			t.Dropped++
			return
		}
		if j.Checkpoints == nil {
			j.Checkpoints = make(map[int]json.RawMessage)
		}
		j.Checkpoints[rec.Level] = rec.Checkpoint
	default:
		t.Dropped++
	}
}

// jobSeq extracts the numeric suffix of a "job-NNNNNN" ID.
func jobSeq(id string) (int, bool) {
	suffix, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(suffix)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Recover replays the store's journal and reduces it to a job table,
// under a "durable.recover" span carrying the outcome.
func (s *Store) Recover(ctx context.Context) (*Table, error) {
	ctx, sp := obs.StartSpan(ctx, "durable.recover")
	defer sp.End()
	var recs []Record
	info, err := ReplayJournal(ctx, s.journal.Path(), func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		sp.SetStr("err", err.Error())
		return nil, err
	}
	t := Reduce(recs)
	t.Replay = info
	sp.SetInt("records", int64(info.Records))
	sp.SetInt("jobs", int64(len(t.Jobs)))
	sp.SetInt("dropped", int64(t.Dropped))
	if info.Torn {
		sp.SetStr("torn_tail", info.Reason)
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("durable.jobs_recovered").Add(int64(len(t.Jobs)))
	if lg := obs.LoggerFrom(ctx); lg.On(obs.LevelInfo) {
		lg.Scope("durable").Info("journal recovered",
			"records", info.Records, "jobs", len(t.Jobs),
			"dropped", t.Dropped, "torn", info.Torn)
	}
	return t, nil
}
