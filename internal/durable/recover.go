package durable

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Job states as the journal spells them. The serving layer owns the
// richer typed state machine; the reduction only needs to know which
// states are terminal and that "running" work orphaned by a crash
// must be re-queued.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// terminal reports whether a journaled state never transitions again.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobRecord is one job as reduced from the journal: its identity, the
// last state the journal proves, and its accumulated checkpoints. The
// JSON tags are the snapshot serialization (snapshot.go).
type JobRecord struct {
	ID      string          `json:"id"`
	IdemKey string          `json:"idem_key,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	State   string          `json:"state"`
	Error   string          `json:"error,omitempty"`
	// Attempt counts how many times the job has been (re)queued after
	// an interruption; 0 for a job on its first life.
	Attempt int `json:"attempt,omitempty"`
	// Checkpoints holds the latest identify checkpoint payload per
	// completed lattice level (later records for the same level win,
	// so a resumed attempt that re-runs a level supersedes the old
	// snapshot).
	Checkpoints map[int]json.RawMessage `json:"checkpoints,omitempty"`
}

// CheckpointLevels returns the checkpointed levels in ascending order.
func (j *JobRecord) CheckpointLevels() []int {
	levels := make([]int, 0, len(j.Checkpoints))
	for lv := range j.Checkpoints {
		levels = append(levels, lv)
	}
	sort.Ints(levels)
	return levels
}

// Table is the reduced job table: the consistent state the journal
// proves, however the process died.
type Table struct {
	// Jobs in submission order.
	Jobs []*JobRecord
	// MaxJobSeq is the largest numeric suffix among "job-NNNNNN" IDs,
	// so a recovered engine can continue the sequence without reuse.
	MaxJobSeq int
	// Dropped counts records the reduction ignored: transitions or
	// checkpoints for unknown jobs, duplicate submissions, and
	// transitions after a terminal state. A handful of dropped records
	// is the expected signature of a journal whose tail died between
	// related appends; the reduction stays consistent regardless.
	Dropped int
	// Replay carries how the journal read ended (torn tail etc.).
	Replay ReplayInfo
	// Term and Leader are the last leadership term the journal
	// witnessed (RecTerm records, last-wins) — zero/"" for a journal
	// that never ran in a cluster. TermStarts is the full term-start
	// history (snapshot's plus the tail's RecTerm records) with
	// absolute sequences, which the cluster layer exchanges for fork
	// detection.
	Term       uint64
	Leader     string
	TermStarts []TermStart
	// Base is the journal's compaction horizon after recovery, and
	// NextSeq the absolute sequence the next append receives (base +
	// intact tail records). Recovery seeds the journal's sequence
	// counter — and cuts a torn tail — at NextSeq, never at the raw
	// replayed record count, which is tail-only once compaction runs.
	Base    uint64
	NextSeq uint64
	// SnapshotSeq/SnapshotID describe the snapshot recovery loaded
	// (zero/"" when the journal was complete and no snapshot existed).
	SnapshotSeq uint64
	SnapshotID  string
}

// Reduce folds journal records into a consistent job table. It is
// deterministic, never panics, and enforces the state machine:
// unknown-job records are dropped, duplicate submissions are dropped,
// and once a job reaches a terminal state every later record for it
// is dropped (a duplicate "done" from a crash between append and ack
// cannot double-finish a job).
func Reduce(recs []Record) *Table {
	return ReduceFrom(nil, 0, recs)
}

// ReduceFrom folds a journal tail onto a snapshot's reduced state.
// tailStart is the absolute sequence of recs[0] — the journal's
// compaction base. Tail records below the snapshot's own horizon (the
// crash-window overlap between a committed snapshot and a
// not-yet-truncated journal) are already folded into snap and are
// skipped. A nil snap reduces the records alone, which is exactly
// Reduce.
func ReduceFrom(snap *Snapshot, tailStart uint64, recs []Record) *Table {
	t := &Table{}
	byID := make(map[string]*JobRecord)
	skip := uint64(0)
	if snap != nil {
		t.Term, t.Leader = snap.Term, snap.Leader
		t.MaxJobSeq = snap.MaxJobSeq
		t.Dropped = snap.Dropped
		t.TermStarts = append(t.TermStarts, snap.TermStarts...)
		for _, j := range snap.Jobs {
			if byID[j.ID] != nil {
				continue
			}
			byID[j.ID] = j
			t.Jobs = append(t.Jobs, j)
		}
		if snap.BaseSeq > tailStart {
			skip = snap.BaseSeq - tailStart
		}
	}
	for i, rec := range recs {
		if uint64(i) < skip {
			continue
		}
		t.reduceOne(byID, tailStart+uint64(i), rec)
	}
	return t
}

func (t *Table) reduceOne(byID map[string]*JobRecord, seq uint64, rec Record) {
	if rec.Type == RecTerm {
		// Terms are monotone: a replicated log can only ever append a
		// higher term, so last-wins and monotone-wins agree; keeping the
		// max guards against a hand-edited journal regressing the fence.
		if rec.Term > t.Term {
			t.Term = rec.Term
			t.Leader = rec.Leader
			t.TermStarts = append(t.TermStarts,
				TermStart{Term: rec.Term, Leader: rec.Leader, Seq: seq})
		}
		return
	}
	if rec.JobID == "" {
		t.Dropped++
		return
	}
	j := byID[rec.JobID]
	switch rec.Type {
	case RecSubmit:
		if j != nil {
			t.Dropped++ // duplicate submission: first one wins
			return
		}
		state := rec.State
		if state == "" {
			state = StateQueued
		}
		j = &JobRecord{
			ID:      rec.JobID,
			IdemKey: rec.IdemKey,
			Request: rec.Request,
			State:   state,
			Attempt: rec.Attempt,
		}
		byID[rec.JobID] = j
		t.Jobs = append(t.Jobs, j)
		if seq, ok := jobSeq(rec.JobID); ok && seq > t.MaxJobSeq {
			t.MaxJobSeq = seq
		}
	case RecState:
		if j == nil || terminal(j.State) || rec.State == "" {
			t.Dropped++
			return
		}
		j.State = rec.State
		j.Error = rec.Error
		if rec.Attempt > j.Attempt {
			j.Attempt = rec.Attempt
		}
	case RecCheckpoint:
		if j == nil || terminal(j.State) || len(rec.Checkpoint) == 0 {
			t.Dropped++
			return
		}
		if j.Checkpoints == nil {
			j.Checkpoints = make(map[int]json.RawMessage)
		}
		j.Checkpoints[rec.Level] = rec.Checkpoint
	default:
		t.Dropped++
	}
}

// jobSeq extracts the numeric suffix of a "job-NNNNNN" ID.
func jobSeq(id string) (int, bool) {
	suffix, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(suffix)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Recover loads the store's snapshot (if any), replays the journal
// tail on top of it, and reduces both to a job table, under a
// "durable.recover" span carrying the outcome. A torn snapshot is
// fatal only when the journal has been compacted — the folded prefix
// exists nowhere else; while the journal is complete from record zero
// the snapshot is just an accelerator and damage is logged and
// ignored. Recover also finishes a compaction a crash interrupted
// between the snapshot commit and the prefix truncation, so positional
// framing always matches sequence numbering when it returns.
func (s *Store) Recover(ctx context.Context) (*Table, error) {
	ctx, sp := obs.StartSpan(ctx, "durable.recover")
	defer sp.End()
	base := s.journal.Base()
	snap, snapID, err := s.LoadSnapshot(ctx)
	if err != nil {
		if base > 0 {
			sp.SetStr("err", err.Error())
			return nil, fmt.Errorf("durable: recover: journal compacted to %d but snapshot unreadable: %w", base, err)
		}
		obs.LoggerFrom(ctx).Scope("durable").Warn("ignoring unreadable snapshot; journal is complete", "err", err)
		snap = nil
	}
	if snap == nil && base > 0 {
		return nil, fmt.Errorf("durable: recover: journal compacted to %d but no snapshot present", base)
	}
	if snap != nil && snap.BaseSeq < base {
		return nil, fmt.Errorf("durable: recover: snapshot horizon %d is behind journal base %d; records lost", snap.BaseSeq, base)
	}
	var recs []Record
	info, err := ReplayJournal(ctx, s.journal.Path(), func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		sp.SetStr("err", err.Error())
		return nil, err
	}
	t := ReduceFrom(snap, base, recs)
	t.Base = base
	t.NextSeq = base + uint64(info.Records)
	if snap != nil {
		t.SnapshotSeq, t.SnapshotID = snap.BaseSeq, snapID
		s.noteSnapshot(snap.BaseSeq, snapID)
		if snap.BaseSeq > base {
			// A crash interrupted Compact between the snapshot commit and
			// the prefix truncation: the journal still holds records the
			// snapshot already folded. Finish the truncation now so every
			// in-file frame is again at (sequence - base).
			if t.NextSeq < snap.BaseSeq {
				t.NextSeq = snap.BaseSeq // tail ended inside the folded range
			}
			s.journal.InitSequence(t.NextSeq)
			if base+uint64(info.Records) <= snap.BaseSeq {
				err = s.journal.ResetToBase(ctx, snap.BaseSeq)
			} else {
				err = s.journal.CompactTo(ctx, snap.BaseSeq)
			}
			if err != nil {
				sp.SetStr("err", err.Error())
				return nil, fmt.Errorf("durable: recover: finish interrupted compaction: %w", err)
			}
			t.Base = snap.BaseSeq
			obs.LoggerFrom(ctx).Scope("durable").Info("finished interrupted compaction",
				"base", snap.BaseSeq)
		}
	}
	t.Replay = info
	sp.SetInt("records", int64(info.Records))
	sp.SetInt("jobs", int64(len(t.Jobs)))
	sp.SetInt("dropped", int64(t.Dropped))
	sp.SetInt("base", int64(base))
	if info.Torn {
		sp.SetStr("torn_tail", info.Reason)
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("durable.jobs_recovered").Add(int64(len(t.Jobs)))
	if lg := obs.LoggerFrom(ctx); lg.On(obs.LevelInfo) {
		lg.Scope("durable").Info("journal recovered",
			"records", info.Records, "base", base, "jobs", len(t.Jobs),
			"dropped", t.Dropped, "torn", info.Torn)
	}
	return t, nil
}
