package durable

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildJournalBytes assembles a well-formed journal image in memory,
// used to derive interesting fuzz seeds.
func buildJournalBytes(recs []Record) []byte {
	out := append([]byte(nil), journalMagic...)
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		frame := make([]byte, frameHeaderLen+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		copy(frame[frameHeaderLen:], payload)
		out = append(out, frame...)
	}
	return out
}

// FuzzJournalReplay throws arbitrary bytes at ReplayJournal + Reduce
// and asserts the recovery invariants: no panics, every replayed
// record also reduces cleanly, and the reduced table is consistent
// (submission order unique, terminal jobs carry their final state,
// checkpoint payloads are valid JSON).
func FuzzJournalReplay(f *testing.F) {
	clean := buildJournalBytes(sampleRecords())
	f.Add(clean)
	// Truncated tail record: the crash signature.
	f.Add(clean[:len(clean)-3])
	// Truncated frame header.
	f.Add(clean[:len(journalMagic)+4])
	// Corrupted checksum: flip a payload byte of the first record.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(journalMagic)+frameHeaderLen+2] ^= 0x40
	f.Add(corrupt)
	// Duplicate transition after a terminal state.
	f.Add(buildJournalBytes([]Record{
		{Type: RecSubmit, JobID: "job-000001"},
		{Type: RecState, JobID: "job-000001", State: StateDone},
		{Type: RecState, JobID: "job-000001", State: StateFailed, Error: "dup"},
		{Type: RecSubmit, JobID: "job-000001", IdemKey: "dup-submit"},
	}))
	// Orphan records and junk types.
	f.Add(buildJournalBytes([]Record{
		{Type: RecCheckpoint, JobID: "job-000002", Level: 1, Checkpoint: json.RawMessage(`{"x":1}`)},
		{Type: RecordType("junk"), JobID: "job-000002"},
		{Type: RecState},
	}))
	// Header only, empty file, and raw garbage.
	f.Add(append([]byte(nil), journalMagic...))
	f.Add([]byte{})
	f.Add([]byte("remedyWAL1\n\xff\xff\xff\xff garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		var recs []Record
		info, err := ReplayJournal(context.Background(), path, func(rec Record) error {
			recs = append(recs, rec)
			return nil
		})
		if err != nil {
			// A bad header is the only error a pure byte-corruption can
			// produce; anything torn mid-stream must end cleanly.
			if len(recs) != 0 {
				t.Fatalf("replay errored (%v) after delivering %d records", err, len(recs))
			}
			return
		}
		if info.Records != len(recs) {
			t.Fatalf("info.Records=%d but fn saw %d", info.Records, len(recs))
		}

		tbl := Reduce(recs)
		seen := make(map[string]bool, len(tbl.Jobs))
		for _, j := range tbl.Jobs {
			if j.ID == "" {
				t.Fatal("reduced job with empty ID")
			}
			if seen[j.ID] {
				t.Fatalf("job %s appears twice in the table", j.ID)
			}
			seen[j.ID] = true
			switch j.State {
			case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateInterrupted:
			default:
				// Journals written by us only contain known states, but a
				// fuzzed journal may carry any string; the table records it
				// verbatim and the serving layer maps unknowns to failed.
			}
			if j.Attempt < 0 {
				t.Fatalf("job %s has negative attempt %d", j.ID, j.Attempt)
			}
			for lv, cp := range j.Checkpoints {
				if len(cp) == 0 {
					t.Fatalf("job %s level %d has empty checkpoint", j.ID, lv)
				}
				if !json.Valid(cp) {
					t.Fatalf("job %s level %d checkpoint is not valid JSON", j.ID, lv)
				}
			}
			if seq, ok := jobSeq(j.ID); ok && seq > tbl.MaxJobSeq {
				t.Fatalf("MaxJobSeq=%d below job %s", tbl.MaxJobSeq, j.ID)
			}
		}

		// Reduction is deterministic: a second pass yields an identical table.
		again := Reduce(recs)
		w, _ := json.Marshal(tbl.Jobs)
		g, _ := json.Marshal(again.Jobs)
		if string(w) != string(g) || again.Dropped != tbl.Dropped || again.MaxJobSeq != tbl.MaxJobSeq {
			t.Fatal("Reduce is not deterministic")
		}
	})
}

// buildSnapshotBytes assembles a well-formed snapshot file image in
// memory, used to derive torn-snapshot fuzz seeds.
func buildSnapshotBytes(snap *Snapshot) []byte {
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil
	}
	out := append([]byte(nil), snapshotMagic...)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	out = append(out, hdr[:]...)
	return append(out, payload...)
}

// FuzzSnapshotDecode throws arbitrary bytes at DecodeSnapshot and
// asserts the torn-snapshot contract: no panics, and anything that is
// not a byte-exact CRC-framed snapshot comes back as ErrSnapshotTorn —
// never as a half-decoded snapshot a recovery could trust.
func FuzzSnapshotDecode(f *testing.F) {
	clean := buildSnapshotBytes(&Snapshot{
		BaseSeq: 9, Term: 2, Leader: "node-b",
		TermStarts: []TermStart{{Term: 1, Leader: "node-a", Seq: 0}, {Term: 2, Leader: "node-b", Seq: 5}},
		Jobs: []*JobRecord{{ID: "job-000001", State: StateDone}},
	})
	f.Add(clean)
	// The torn signatures: short file, cut payload, cut header.
	f.Add(clean[:len(clean)-4])
	f.Add(clean[:len(snapshotMagic)+3])
	f.Add(clean[:len(snapshotMagic)])
	// Corrupted payload byte: the checksum must catch it.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(snapshotMagic)+frameHeaderLen+1] ^= 0x20
	f.Add(corrupt)
	// Wrong magic (a journal header where a snapshot should be).
	f.Add(append(append([]byte(nil), journalMagic...), clean[len(snapshotMagic):]...))
	// Oversized declared length and raw garbage.
	huge := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint32(huge[len(snapshotMagic):], ^uint32(0))
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("remedySNAP1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, id, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrSnapshotTorn) {
				t.Fatalf("decode error %v is not ErrSnapshotTorn", err)
			}
			if snap != nil || id != "" {
				t.Fatal("torn decode leaked a partial snapshot")
			}
			return
		}
		if snap == nil || id == "" {
			t.Fatal("clean decode returned no snapshot or no content address")
		}
		// The content address round-trips: re-decoding the same bytes
		// yields the same ID.
		_, id2, err := DecodeSnapshot(data)
		if err != nil || id2 != id {
			t.Fatalf("re-decode: %v, id %s vs %s", err, id2, id)
		}
	})
}
