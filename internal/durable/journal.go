package durable

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/faults"
	"repro/internal/obs"
)

// RecordType discriminates journal records.
type RecordType string

const (
	// RecSubmit records one job's admission: its ID, request body, and
	// idempotency key, plus the initial "queued" state.
	RecSubmit RecordType = "submit"
	// RecState records one job state transition.
	RecState RecordType = "state"
	// RecCheckpoint records one completed identify lattice level for a
	// job, carrying an opaque payload the serving layer encodes.
	RecCheckpoint RecordType = "checkpoint"
	// RecTerm records a leadership term change in a replicated
	// deployment: the term number and the node that leads it. The term
	// is the cluster's fencing token — every replication request
	// carries it, and a journal that contains RecTerm(n) proves its
	// node witnessed term n. Single-node journals never contain one.
	RecTerm RecordType = "term"
)

// Record is one journal entry. The serving layer owns the semantics;
// the journal only frames, checksums, and replays records.
type Record struct {
	Type  RecordType `json:"type"`
	JobID string     `json:"job,omitempty"`

	// Submit fields.
	IdemKey string          `json:"idem_key,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`

	// State fields. State strings are the serving layer's job states
	// plus "interrupted", written during recovery for jobs found
	// running at the crash.
	State   string `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// Checkpoint fields: the completed lattice level and an opaque
	// snapshot payload.
	Level      int             `json:"level,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`

	// Term fields (RecTerm): the leadership term and the node leading
	// it. On RecState records, Node optionally names the node that ran
	// the transition (work stealing attribution).
	Term   uint64 `json:"term,omitempty"`
	Leader string `json:"leader,omitempty"`
	Node   string `json:"node,omitempty"`
}

// Journal framing: the file opens with a magic+version header; each
// record is [uint32 LE payload length][uint32 LE CRC-32 (IEEE) of the
// payload][payload JSON]. Append-only, one Write syscall per record,
// so a crash can only ever leave a torn tail — which Replay detects
// (short frame, short payload, or checksum mismatch) and stops at.
//
// Two header versions exist. A v1 journal is complete: its first frame
// is record 0. A v2 journal is compacted: the magic is followed by a
// uint64 LE base — the absolute sequence of the first frame in the
// file — and records [0, base) live only in the store's snapshot.
// Fresh journals are written v1 (so a never-compacted fleet keeps
// byte-identical files across nodes); compaction rewrites to v2.
var (
	journalMagic  = []byte("remedyWAL1\n")
	journalMagic2 = []byte("remedyWAL2\n")
)

const (
	frameHeaderLen = 8
	// baseHeaderLen is the v2 compaction-base field after the magic.
	baseHeaderLen = 8
	// maxRecordLen rejects absurd frame lengths during replay: a
	// corrupt length field must not drive a huge allocation.
	maxRecordLen = 64 << 20
)

// ErrJournalClosed is returned by Append after Close.
var ErrJournalClosed = errors.New("durable: journal closed")

// ErrJournalFenced is returned by Append — never AppendReplicated —
// while the journal is fenced. The cluster fences a journal the moment
// its node is deposed: a stale leader's in-flight workers can then
// never journal (and therefore never ack) new work while the node
// rejoins the fleet. Promotion lifts the fence.
var ErrJournalFenced = errors.New("durable: journal fenced (node deposed)")

// ErrCompacted reports that a requested sequence lies below the
// journal's compaction horizon: those records were folded into the
// snapshot and truncated from the file. Replication treats it as the
// signal to catch a lagging follower up with an install-snapshot
// instead of a record backfill.
var ErrCompacted = errors.New("durable: sequence below compaction horizon")

// Journal is the append-only job log. Appends are serialized by an
// internal mutex; replay reads a separate handle, so recovery can
// replay the same path the journal is appending to.
//
// For replication the journal doubles as a positional log: every
// intact record has a sequence number equal to its zero-based index in
// the file. InitSequence seeds the counter from a recovery replay,
// Sequence reports the current length, and a sink installed with
// SetSink observes every successful append — the hook the cluster
// layer uses to learn that new records are ready to stream to
// followers.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	sync   bool
	closed bool
	fenced bool
	// base is the compaction horizon: the absolute sequence of the
	// first record physically present in the file (0 for a complete v1
	// journal). seq stays absolute; the file holds records [base, seq).
	base uint64
	seq  uint64
	sink func(seq uint64, rec Record)
}

// OpenJournal opens (creating if absent) the journal at path for
// appending, validating the header of a non-empty existing file.
// syncEach selects fsync after every append: full
// power-loss durability at a per-append fsync cost. Without it the
// journal survives process crashes (the kernel has the bytes) but a
// simultaneous OS crash may lose the tail — which replay then treats
// as torn, exactly like any other interrupted append.
func OpenJournal(ctx context.Context, path string, syncEach bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() //lint:allow errdiscard error-path cleanup; the Stat failure is already being returned
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	j := &Journal{f: f, path: path, sync: syncEach}
	if st.Size() == 0 {
		if _, err := f.Write(journalMagic); err != nil {
			_ = f.Close() //lint:allow errdiscard error-path cleanup; the Write failure is already being returned
			return nil, fmt.Errorf("durable: write journal header: %w", err)
		}
	} else {
		base, _, err := readJournalBase(path)
		if err != nil {
			_ = f.Close() //lint:allow errdiscard error-path cleanup; the header error is already being returned
			return nil, fmt.Errorf("durable: %v", err)
		}
		j.base, j.seq = base, base
	}
	obs.LoggerFrom(ctx).Scope("durable").Debug("journal open",
		"path", path, "bytes", st.Size(), "base", j.base)
	return j, nil
}

// readJournalBase reads a journal file's header and returns its
// compaction base (0 for v1) plus the header's byte length.
func readJournalBase(path string) (base uint64, hdrLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close() //lint:allow errdiscard read-only close carries no information
	hdr := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, fmt.Errorf("%s is not a remedy journal (bad header)", path)
	}
	switch string(hdr) {
	case string(journalMagic):
		return 0, int64(len(journalMagic)), nil
	case string(journalMagic2):
		var b [baseHeaderLen]byte
		if _, err := io.ReadFull(f, b[:]); err != nil {
			return 0, 0, fmt.Errorf("%s: truncated compaction header", path)
		}
		return binary.LittleEndian.Uint64(b[:]), int64(len(journalMagic2)) + baseHeaderLen, nil
	default:
		return 0, 0, fmt.Errorf("%s is not a remedy journal (bad header)", path)
	}
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Sequence returns the absolute number of records the journal
// represents — snapshot-folded prefix plus the frames in the file —
// which is the sequence number the next append will receive. It is
// only meaningful after InitSequence seeded the count from a replay (a
// freshly opened journal starts at its compaction base regardless of
// the file's contents).
func (j *Journal) Sequence() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Base returns the compaction horizon: the absolute sequence of the
// first record physically present in the file. Records below it exist
// only in the store's snapshot. Zero means the file is complete.
func (j *Journal) Base() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// InitSequence seeds the sequence counter with the absolute record
// count a recovery replay found (compaction base + intact tail
// records), so appends continue the positional numbering. Call it
// once, before any post-recovery append.
func (j *Journal) InitSequence(n uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq = n
}

// Fence blocks originated appends: after Fence, Append fails with
// ErrJournalFenced while AppendReplicated — the replication apply path
// — still works. See ErrJournalFenced for why deposed nodes fence.
func (j *Journal) Fence() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fenced = true
}

// Unfence lifts a Fence. The cluster calls it on promotion, before the
// RecTerm append that opens the new term.
func (j *Journal) Unfence() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fenced = false
}

// SetSink installs fn to observe every successful append with the
// record's sequence number. fn runs under the journal's append lock —
// it must be fast and must never call back into the journal. A nil fn
// removes the sink.
func (j *Journal) SetSink(fn func(seq uint64, rec Record)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = fn
}

// Append frames, checksums, and writes one record. The context is
// used for fault injection and observability only — an append is
// never skipped because ctx is cancelled, since the callers journal
// transitions (including cancellations) that have already happened.
//
// The faults point durable.journal.append fires before the write with
// the record as its argument; its error is returned as a write
// failure would be.
func (j *Journal) Append(ctx context.Context, rec Record) error {
	if err := faults.FireCtx(ctx, faults.JournalAppend, rec); err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	return j.append(ctx, rec, true)
}

// AppendReplicated is Append without the durable.journal.append faults
// point: the apply path for records arriving from a replication
// stream. A follower replaying its leader's log is not making a new
// durability decision — the record was already journaled once, on the
// leader — so chaos tests that inject append failures target original
// appends only and replication failures are injected at the cluster
// layer's own points instead.
// AppendReplicated also ignores a Fence: only originated appends are
// fenced on a deposed node; applying the new leader's stream is how
// the node catches back up.
func (j *Journal) AppendReplicated(ctx context.Context, rec Record) error {
	return j.append(ctx, rec, false)
}

func (j *Journal) append(ctx context.Context, rec Record, originated bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if originated && j.fenced {
		return ErrJournalFenced
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	if j.sync {
		// The mutex exists to serialize exactly this: frame write +
		// fsync as one atomic persistence step. Appends deliberately
		// queue behind the disk; that is the durability guarantee.
		//lint:allow heldcall the journal's mutex serializes write+fsync by design; appenders queue behind the persistence barrier
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: journal sync: %w", err)
		}
	}
	seq := j.seq
	j.seq++
	if j.sink != nil {
		j.sink(seq, rec)
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("durable.journal_appends").Inc()
	m.Counter("durable.journal_bytes").Add(int64(len(frame)))
	return nil
}

// TruncateTo discards every record from absolute sequence n onward,
// shrinking the file to the byte length of the records below n (plus
// header) and resetting the sequence counter. Two callers need it:
// recovery, to cut a torn tail before new appends land behind
// unreadable bytes, and a follower reconciling its log with a new
// leader whose log is shorter (the discarded suffix was never
// replicated and is superseded by the new term). Truncating to the
// current length is a no-op; truncating below the compaction base
// fails with ErrCompacted — the caller needs a snapshot install, not a
// truncation, because the records below the cut cannot be re-filled
// one by one.
func (j *Journal) TruncateTo(ctx context.Context, n uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if n < j.base {
		return fmt.Errorf("durable: truncate journal to %d (base %d): %w", n, j.base, ErrCompacted)
	}
	offset, count, _, err := scanFrames(j.path, n-j.base)
	if err != nil {
		return fmt.Errorf("durable: truncate journal: %w", err)
	}
	if j.base+count < n {
		return fmt.Errorf("durable: truncate journal to %d: only %d records present", n, j.base+count)
	}
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("durable: truncate journal: %w", err)
	}
	if st.Size() == offset {
		j.seq = n
		return nil // already exactly n records
	}
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("durable: truncate journal: %w", err)
	}
	j.seq = n
	obs.MetricsFrom(ctx).Counter("durable.journal_truncations").Inc()
	obs.LoggerFrom(ctx).Scope("durable").Info("journal truncated",
		"records", n, "bytes", offset)
	return nil
}

// CompactTo drops every record below absolute sequence n from the
// file, rewriting it with a v2 header that records n as the new base.
// The caller must already have folded those records into a committed
// snapshot (Store.Compact does); CompactTo itself only rewrites
// framing. The rewrite goes through a temp file + rename, so a crash
// leaves either the old journal or the new one, never a mix. The
// sequence counter is unchanged — it is absolute.
func (j *Journal) CompactTo(ctx context.Context, n uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if n <= j.base {
		return nil // horizon already at or past n
	}
	if n > j.seq {
		return fmt.Errorf("durable: compact journal to %d: sequence is only %d", n, j.seq)
	}
	offset, count, _, err := scanFrames(j.path, n-j.base)
	if err != nil {
		return fmt.Errorf("durable: compact journal: %w", err)
	}
	if j.base+count < n {
		return fmt.Errorf("durable: compact journal to %d: only %d intact records present", n, j.base+count)
	}
	dropped := n - j.base
	//lint:allow heldcall the journal's mutex serializes the rewrite+fsync by design; appends queue behind the compaction exactly as they queue behind fsync
	if err := j.rewriteLocked(n, offset); err != nil {
		return err
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("durable.journal_compactions").Inc()
	m.Counter("durable.records_compacted").Add(int64(dropped))
	obs.LoggerFrom(ctx).Scope("durable").Info("journal compacted",
		"base", n, "dropped", dropped)
	return nil
}

// ResetToBase discards the journal's entire contents and
// reinitializes it as an empty compacted journal whose base (and
// sequence) is n: the follower half of an install-snapshot, run after
// the received snapshot file is committed. Everything the file held is
// superseded by that snapshot.
func (j *Journal) ResetToBase(ctx context.Context, n uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	//lint:allow heldcall the journal's mutex serializes the reset+fsync by design; the snapshot install must be atomic with respect to appends
	if err := j.rewriteLocked(n, -1); err != nil {
		return err
	}
	j.seq = n
	obs.LoggerFrom(ctx).Scope("durable").Info("journal reset to snapshot base", "base", n)
	return nil
}

// rewriteLocked replaces the journal file with a v2-header file whose
// base is newBase, copying the byte range [tailFrom, EOF) of the
// current file after the header (tailFrom < 0 copies nothing), then
// swaps j.f to a handle on the new file. Called with j.mu held; the
// held lock is the point — appends queue behind the rewrite exactly as
// they queue behind fsync.
func (j *Journal) rewriteLocked(newBase uint64, tailFrom int64) error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("durable: rewrite journal: %w", err)
	}
	err = writeFileAtomic(j.path, func(w io.Writer) error {
		if _, werr := w.Write(journalMagic2); werr != nil {
			return werr
		}
		var b [baseHeaderLen]byte
		binary.LittleEndian.PutUint64(b[:], newBase)
		if _, werr := w.Write(b[:]); werr != nil {
			return werr
		}
		if tailFrom >= 0 && tailFrom < st.Size() {
			_, werr := io.Copy(w, io.NewSectionReader(j.f, tailFrom, st.Size()-tailFrom))
			return werr
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("durable: rewrite journal: %w", err)
	}
	f2, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		// The rename landed but we lost our handle on the new inode;
		// appending through the old one would write invisible bytes, so
		// fail closed.
		j.closed = true
		_ = j.f.Close() //lint:allow errdiscard error-path cleanup; the reopen failure is already being returned
		return fmt.Errorf("durable: reopen rewritten journal: %w", err)
	}
	if j.sync {
		if err := f2.Sync(); err != nil {
			j.closed = true
			_ = f2.Close()  //lint:allow errdiscard error-path cleanup; the Sync failure is already being returned
			_ = j.f.Close() //lint:allow errdiscard error-path cleanup; the Sync failure is already being returned
			return fmt.Errorf("durable: sync rewritten journal: %w", err)
		}
	}
	old := j.f
	j.f = f2
	j.base = newBase
	_ = old.Close() //lint:allow errdiscard the pre-rewrite inode is orphaned by the rename; its close reports nothing actionable
	return nil
}

// scanFrames walks the journal's framing (without decoding payloads)
// and returns the byte offset just past the max-th in-file record — or
// past the last intact record, whichever comes first — plus the number
// of intact in-file records it covers and the file's compaction base.
// max and count are file-relative (add base for absolute sequences).
// Damage past the intact prefix is ignored, exactly as replay would.
func scanFrames(path string, max uint64) (offset int64, count uint64, base uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close() //lint:allow errdiscard read-only close carries no information
	base, hdrLen, err := readJournalBase(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := f.Seek(hdrLen, io.SeekStart); err != nil {
		return 0, 0, 0, err
	}
	r := bufio.NewReader(f)
	offset = hdrLen
	frame := make([]byte, frameHeaderLen)
	var payload []byte
	for count < max {
		if _, err := io.ReadFull(r, frame); err != nil {
			return offset, count, base, nil // clean or torn end: stop at the intact prefix
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxRecordLen {
			return offset, count, base, nil
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return offset, count, base, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return offset, count, base, nil
		}
		offset += int64(frameHeaderLen) + int64(n)
		count++
	}
	return offset, count, base, nil
}

// ReadJournalRange returns up to max intact records starting at
// absolute sequence from. It is the replication backfill read: a
// leader serving a follower that is behind reads the records the
// follower is missing straight from its own file. Reads past the end
// return an empty slice, not an error; a torn tail bounds the readable
// range exactly as replay would. A from below the file's compaction
// base fails with ErrCompacted: those records exist only in the
// snapshot, so the caller must install that instead.
func ReadJournalRange(ctx context.Context, path string, from, max uint64) ([]Record, error) {
	if max == 0 {
		return nil, nil
	}
	base, _, err := readJournalBase(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil // absent journal reads as empty, like replay
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read journal range: %w", err)
	}
	if from < base {
		return nil, fmt.Errorf("durable: read journal range from %d (base %d): %w", from, base, ErrCompacted)
	}
	fileFrom := from - base
	var (
		recs []Record
		idx  uint64
	)
	_, err = ReplayJournal(ctx, path, func(rec Record) error {
		if idx >= fileFrom && uint64(len(recs)) < max {
			recs = append(recs, rec)
		}
		idx++
		if idx >= fileFrom+max {
			return errStopReplay
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, err
	}
	return recs, nil
}

// errStopReplay is a sentinel fn error used to end a replay early once
// a bounded read has what it needs.
var errStopReplay = errors.New("durable: stop replay")

// Close syncs and closes the journal; further Appends fail with
// ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	//lint:allow heldcall final fsync under the closed flag: Close must fence out concurrent appends while it flushes
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("durable: journal close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: journal close: %w", cerr)
	}
	return nil
}

// ReplayInfo reports how a replay ended.
type ReplayInfo struct {
	// Records is the number of records decoded from the file. For a
	// compacted journal this is the tail only; the absolute sequence
	// after the last intact record is Base + Records.
	Records int
	// Base is the file's compaction horizon (0 for a complete journal):
	// the absolute sequence of the first record the replay delivered.
	Base uint64
	// Torn is set when the journal ended in a damaged tail (short
	// frame, short payload, checksum mismatch, or undecodable JSON);
	// Reason describes it. A torn tail is the expected crash signature,
	// not an error: everything before it is trusted.
	Torn   bool
	Reason string
}

// ReplayJournal reads the journal at path front to back, calling fn
// for each intact record in order. It stops cleanly at the first
// damaged frame (see ReplayInfo) — bytes past damage are never
// trusted. A missing file replays as empty. fn's error aborts the
// replay and is returned; so does an error injected at the
// durable.recover.record faults point, which fires before fn for each
// record.
func ReplayJournal(ctx context.Context, path string, fn func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return info, nil
	}
	if err != nil {
		return info, fmt.Errorf("durable: replay: %w", err)
	}
	defer f.Close() //lint:allow errdiscard read-only close carries no information
	r := bufio.NewReader(f)

	hdr := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			info.Torn, info.Reason = true, "truncated header"
			return info, nil
		}
		return info, fmt.Errorf("durable: replay: %w", err)
	}
	switch string(hdr) {
	case string(journalMagic):
	case string(journalMagic2):
		var b [baseHeaderLen]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn, info.Reason = true, "truncated compaction header"
				return info, nil
			}
			return info, fmt.Errorf("durable: replay: %w", err)
		}
		info.Base = binary.LittleEndian.Uint64(b[:])
	default:
		return info, fmt.Errorf("durable: %s is not a remedy journal (bad header)", path)
	}

	frame := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			if errors.Is(err, io.EOF) {
				return info, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn, info.Reason = true, "torn frame header"
				return info, nil
			}
			return info, fmt.Errorf("durable: replay: %w", err)
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxRecordLen {
			info.Torn, info.Reason = true, fmt.Sprintf("frame length %d exceeds limit", n)
			return info, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn, info.Reason = true, "torn payload"
				return info, nil
			}
			return info, fmt.Errorf("durable: replay: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			info.Torn, info.Reason = true, "checksum mismatch"
			return info, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			info.Torn, info.Reason = true, "undecodable record"
			return info, nil
		}
		if err := faults.FireCtx(ctx, faults.RecoverRecord, rec); err != nil {
			return info, fmt.Errorf("durable: replay record %d: %w", info.Records, err)
		}
		if err := fn(rec); err != nil {
			return info, err
		}
		info.Records++
		obs.MetricsFrom(ctx).Counter("durable.records_replayed").Inc()
	}
}
