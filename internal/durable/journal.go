package durable

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/faults"
	"repro/internal/obs"
)

// RecordType discriminates journal records.
type RecordType string

const (
	// RecSubmit records one job's admission: its ID, request body, and
	// idempotency key, plus the initial "queued" state.
	RecSubmit RecordType = "submit"
	// RecState records one job state transition.
	RecState RecordType = "state"
	// RecCheckpoint records one completed identify lattice level for a
	// job, carrying an opaque payload the serving layer encodes.
	RecCheckpoint RecordType = "checkpoint"
)

// Record is one journal entry. The serving layer owns the semantics;
// the journal only frames, checksums, and replays records.
type Record struct {
	Type  RecordType `json:"type"`
	JobID string     `json:"job,omitempty"`

	// Submit fields.
	IdemKey string          `json:"idem_key,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`

	// State fields. State strings are the serving layer's job states
	// plus "interrupted", written during recovery for jobs found
	// running at the crash.
	State   string `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// Checkpoint fields: the completed lattice level and an opaque
	// snapshot payload.
	Level      int             `json:"level,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// Journal framing: the file opens with a magic+version header; each
// record is [uint32 LE payload length][uint32 LE CRC-32 (IEEE) of the
// payload][payload JSON]. Append-only, one Write syscall per record,
// so a crash can only ever leave a torn tail — which Replay detects
// (short frame, short payload, or checksum mismatch) and stops at.
var journalMagic = []byte("remedyWAL1\n")

const (
	frameHeaderLen = 8
	// maxRecordLen rejects absurd frame lengths during replay: a
	// corrupt length field must not drive a huge allocation.
	maxRecordLen = 64 << 20
)

// ErrJournalClosed is returned by Append after Close.
var ErrJournalClosed = errors.New("durable: journal closed")

// Journal is the append-only job log. Appends are serialized by an
// internal mutex; replay reads a separate handle, so recovery can
// replay the same path the journal is appending to.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	sync   bool
	closed bool
}

// OpenJournal opens (creating if absent) the journal at path for
// appending, validating the header of a non-empty existing file.
// syncEach selects fsync after every append: full
// power-loss durability at a per-append fsync cost. Without it the
// journal survives process crashes (the kernel has the bytes) but a
// simultaneous OS crash may lose the tail — which replay then treats
// as torn, exactly like any other interrupted append.
func OpenJournal(ctx context.Context, path string, syncEach bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() //lint:allow errdiscard error-path cleanup; the Stat failure is already being returned
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(journalMagic); err != nil {
			_ = f.Close() //lint:allow errdiscard error-path cleanup; the Write failure is already being returned
			return nil, fmt.Errorf("durable: write journal header: %w", err)
		}
	} else {
		hdr := make([]byte, len(journalMagic))
		if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != string(journalMagic) {
			_ = f.Close() //lint:allow errdiscard error-path cleanup; the header mismatch is already being returned
			return nil, fmt.Errorf("durable: %s is not a remedy journal (bad header)", path)
		}
	}
	obs.LoggerFrom(ctx).Scope("durable").Debug("journal open", "path", path, "bytes", st.Size())
	return &Journal{f: f, path: path, sync: syncEach}, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Append frames, checksums, and writes one record. The context is
// used for fault injection and observability only — an append is
// never skipped because ctx is cancelled, since the callers journal
// transitions (including cancellations) that have already happened.
//
// The faults point durable.journal.append fires before the write with
// the record as its argument; its error is returned as a write
// failure would be.
func (j *Journal) Append(ctx context.Context, rec Record) error {
	if err := faults.FireCtx(ctx, faults.JournalAppend, rec); err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: journal sync: %w", err)
		}
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("durable.journal_appends").Inc()
	m.Counter("durable.journal_bytes").Add(int64(len(frame)))
	return nil
}

// Close syncs and closes the journal; further Appends fail with
// ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("durable: journal close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: journal close: %w", cerr)
	}
	return nil
}

// ReplayInfo reports how a replay ended.
type ReplayInfo struct {
	// Records is the number of records decoded.
	Records int
	// Torn is set when the journal ended in a damaged tail (short
	// frame, short payload, checksum mismatch, or undecodable JSON);
	// Reason describes it. A torn tail is the expected crash signature,
	// not an error: everything before it is trusted.
	Torn   bool
	Reason string
}

// ReplayJournal reads the journal at path front to back, calling fn
// for each intact record in order. It stops cleanly at the first
// damaged frame (see ReplayInfo) — bytes past damage are never
// trusted. A missing file replays as empty. fn's error aborts the
// replay and is returned; so does an error injected at the
// durable.recover.record faults point, which fires before fn for each
// record.
func ReplayJournal(ctx context.Context, path string, fn func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return info, nil
	}
	if err != nil {
		return info, fmt.Errorf("durable: replay: %w", err)
	}
	defer f.Close() //lint:allow errdiscard read-only close carries no information
	r := bufio.NewReader(f)

	hdr := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			info.Torn, info.Reason = true, "truncated header"
			return info, nil
		}
		return info, fmt.Errorf("durable: replay: %w", err)
	}
	if string(hdr) != string(journalMagic) {
		return info, fmt.Errorf("durable: %s is not a remedy journal (bad header)", path)
	}

	frame := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			if errors.Is(err, io.EOF) {
				return info, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn, info.Reason = true, "torn frame header"
				return info, nil
			}
			return info, fmt.Errorf("durable: replay: %w", err)
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxRecordLen {
			info.Torn, info.Reason = true, fmt.Sprintf("frame length %d exceeds limit", n)
			return info, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn, info.Reason = true, "torn payload"
				return info, nil
			}
			return info, fmt.Errorf("durable: replay: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			info.Torn, info.Reason = true, "checksum mismatch"
			return info, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			info.Torn, info.Reason = true, "undecodable record"
			return info, nil
		}
		if err := faults.FireCtx(ctx, faults.RecoverRecord, rec); err != nil {
			return info, fmt.Errorf("durable: replay record %d: %w", info.Records, err)
		}
		if err := fn(rec); err != nil {
			return info, err
		}
		info.Records++
		obs.MetricsFrom(ctx).Counter("durable.records_replayed").Inc()
	}
}
