package durable

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
)

// jobStream appends a small replicated-log-shaped record stream: a
// term open, then n jobs each with submit → running → checkpoint →
// done. It returns the journal's absolute sequence afterwards.
func jobStream(t *testing.T, ctx context.Context, s *Store, n int) uint64 {
	t.Helper()
	if err := s.Journal().Append(ctx, Record{Type: RecTerm, Term: 1, Leader: "node-a"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := jobID(i + 1)
		for _, rec := range []Record{
			{Type: RecSubmit, JobID: id, Request: json.RawMessage(`{"kind":"identify","dataset_id":"ds-compas"}`)},
			{Type: RecState, JobID: id, State: StateRunning},
			{Type: RecCheckpoint, JobID: id, Level: 1, Checkpoint: json.RawMessage(`{"l":1}`)},
			{Type: RecState, JobID: id, State: "done"},
		} {
			if err := s.Journal().Append(ctx, rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s.Journal().Sequence()
}

func jobID(n int) string {
	return "job-" + strings.Repeat("0", 6-len(itoa(n))) + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// tableJSON canonicalizes a recovered table for equivalence checks:
// the fields that define durable state, without replay bookkeeping.
func tableJSON(t *testing.T, tbl *Table) string {
	t.Helper()
	raw, err := json.Marshal(struct {
		Jobs       []*JobRecord
		Term       uint64
		Leader     string
		TermStarts []TermStart
		MaxJobSeq  int
		NextSeq    uint64
	}{tbl.Jobs, tbl.Term, tbl.Leader, tbl.TermStarts, tbl.MaxJobSeq, tbl.NextSeq})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	seq := jobStream(t, ctx, s, 2)

	// Snapshot-only compaction: the journal keeps its prefix.
	if err := s.Compact(ctx, seq, false); err != nil {
		t.Fatal(err)
	}
	if base := s.Journal().Base(); base != 0 {
		t.Fatalf("snapshot-only compaction moved the base to %d", base)
	}
	snap, id, err := s.LoadSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.BaseSeq != seq || snap.Term != 1 || snap.Leader != "node-a" {
		t.Fatalf("snapshot = base %d term %d leader %s, want %d/1/node-a", snap.BaseSeq, snap.Term, snap.Leader, seq)
	}
	if len(snap.Jobs) != 2 || snap.MaxJobSeq != 2 {
		t.Fatalf("snapshot jobs = %d maxSeq %d, want 2/2", len(snap.Jobs), snap.MaxJobSeq)
	}
	if len(snap.TermStarts) != 1 || snap.TermStarts[0].Seq != 0 {
		t.Fatalf("term starts = %+v, want term 1 at seq 0", snap.TermStarts)
	}
	if want := []string{"ds-compas"}; len(snap.Datasets) != 1 || snap.Datasets[0] != want[0] {
		t.Fatalf("datasets = %v, want %v", snap.Datasets, want)
	}
	if !strings.HasPrefix(id, "snap-") {
		t.Fatalf("content address = %q, want snap-<sha256>", id)
	}

	// The content address is a function of the bytes: re-reading gives
	// the same ID, and the raw file decodes to it end to end.
	raw, rawID, _, err := s.SnapshotRaw(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rawID != id {
		t.Fatalf("raw ID %s != written ID %s", rawID, id)
	}
	snap2, id2, err := DecodeSnapshot(raw)
	if err != nil || id2 != id || snap2.BaseSeq != seq {
		t.Fatalf("decode: %v, id %s, base %d", err, id2, snap2.BaseSeq)
	}
}

// TestCompactRecoverEquivalence is the compaction contract: recovery
// from snapshot + tail must produce exactly the state a full-log
// replay would.
func TestCompactRecoverEquivalence(t *testing.T) {
	ctx := context.Background()
	build := func(dir string, compact bool) string {
		s, err := Open(ctx, dir, false)
		if err != nil {
			t.Fatal(err)
		}
		jobStream(t, ctx, s, 2)
		if compact {
			// Compact mid-log: two jobs folded, then two more appended as
			// the live tail.
			if err := s.Compact(ctx, s.Journal().Sequence(), true); err != nil {
				t.Fatal(err)
			}
		}
		for i := 3; i <= 4; i++ {
			id := jobID(i)
			for _, rec := range []Record{
				{Type: RecSubmit, JobID: id, Request: json.RawMessage(`{"kind":"identify","dataset_id":"ds-compas"}`)},
				{Type: RecState, JobID: id, State: "done"},
			} {
				if err := s.Journal().Append(ctx, rec); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(ctx, dir, false)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close() //lint:allow errdiscard test cleanup
		tbl, err := s2.Recover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return tableJSON(t, tbl)
	}
	full := build(t.TempDir(), false)
	compacted := build(t.TempDir(), true)
	if full != compacted {
		t.Fatalf("compacted recovery diverges from full replay:\n full:      %s\n compacted: %s", full, compacted)
	}
}

// TestRecoverFinishesInterruptedCompaction stages the crash window the
// snapshot-first ordering leaves open: the snapshot committed but the
// prefix truncation never ran. Recovery must finish the truncation and
// produce the same state.
func TestRecoverFinishesInterruptedCompaction(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	seq := jobStream(t, ctx, s, 2)
	// Compact without truncating = the interrupted state on disk:
	// snapshot horizon seq, journal still complete from zero.
	if err := s.Compact(ctx, seq, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //lint:allow errdiscard test cleanup
	tbl, err := s2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Journal().Base() != seq {
		t.Fatalf("recovery left the journal base at %d, want the snapshot horizon %d", s2.Journal().Base(), seq)
	}
	if len(tbl.Jobs) != 2 || tbl.NextSeq != seq {
		t.Fatalf("repaired table: %d jobs next %d, want 2/%d", len(tbl.Jobs), tbl.NextSeq, seq)
	}
	// Appends continue the absolute numbering seamlessly.
	s2.Journal().InitSequence(tbl.NextSeq)
	if err := s2.Journal().Append(ctx, Record{Type: RecState, JobID: jobID(1), State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Journal().Sequence(); got != seq+1 {
		t.Fatalf("post-repair sequence = %d, want %d", got, seq+1)
	}
}

// TestRecoverInstallCrashBeforeReset stages the other crash window: a
// received snapshot file committed (horizon past everything the local
// journal holds) but the journal reset never ran. Recovery must adopt
// the snapshot wholesale and reset the file.
func TestRecoverInstallCrashBeforeReset(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	jobStream(t, ctx, s, 1) // 5 records, all below the incoming horizon

	// A leader's snapshot at a horizon far past the local tail.
	donor, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	donorSeq := jobStream(t, ctx, donor, 3)
	if err := donor.Compact(ctx, donorSeq, true); err != nil {
		t.Fatal(err)
	}
	raw, _, _, err := donor.SnapshotRaw(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Close(); err != nil {
		t.Fatal(err)
	}
	// Commit the snapshot file without the journal reset — the crash.
	if err := os.WriteFile(s.snapshotPath(), raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //lint:allow errdiscard test cleanup
	tbl, err := s2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Journal().Base() != donorSeq || tbl.NextSeq != donorSeq {
		t.Fatalf("base %d next %d after repair, want %d/%d", s2.Journal().Base(), tbl.NextSeq, donorSeq, donorSeq)
	}
	if len(tbl.Jobs) != 3 {
		t.Fatalf("jobs = %d, want the snapshot's 3", len(tbl.Jobs))
	}
}

func TestInstallSnapshotVerifiesContentAddress(t *testing.T) {
	ctx := context.Background()
	donor, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close() //lint:allow errdiscard test cleanup
	seq := jobStream(t, ctx, donor, 1)
	if err := donor.Compact(ctx, seq, true); err != nil {
		t.Fatal(err)
	}
	raw, id, _, err := donor.SnapshotRaw(ctx)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	if _, err := s.InstallSnapshot(ctx, raw, "snap-forged"); err == nil {
		t.Fatal("install accepted a wrong content address")
	}
	snap, err := s.InstallSnapshot(ctx, raw, id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.BaseSeq != seq || s.Journal().Base() != seq || s.Journal().Sequence() != seq {
		t.Fatalf("installed base/seq = %d/%d, want %d", s.Journal().Base(), s.Journal().Sequence(), seq)
	}
}

func TestTruncateToEdgeCases(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	j := s.Journal()
	seq := jobStream(t, ctx, s, 1) // 5 records

	// Truncating past the end fails loudly.
	if err := j.TruncateTo(ctx, seq+1); err == nil {
		t.Fatal("truncate past the end succeeded")
	}
	// Truncating to the current length is a no-op.
	if err := j.TruncateTo(ctx, seq); err != nil {
		t.Fatalf("no-op truncate: %v", err)
	}
	if j.Sequence() != seq {
		t.Fatalf("no-op truncate moved sequence to %d", j.Sequence())
	}
	// Truncate to zero empties the journal completely.
	if err := j.TruncateTo(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if j.Sequence() != 0 {
		t.Fatalf("sequence = %d after truncate to zero", j.Sequence())
	}
	info, err := ReplayJournal(ctx, j.Path(), func(Record) error { return nil })
	if err != nil || info.Records != 0 {
		t.Fatalf("replay after truncate to zero: %d records, %v", info.Records, err)
	}

	// Rebuild, compact, and probe the snapshot boundary.
	seq = jobStream(t, ctx, s, 1)
	if err := s.Compact(ctx, seq, true); err != nil {
		t.Fatal(err)
	}
	// Exactly at the boundary: legal no-op (the tail is empty).
	if err := j.TruncateTo(ctx, seq); err != nil {
		t.Fatalf("truncate to the exact snapshot boundary: %v", err)
	}
	// Below the boundary: the records are gone; only a snapshot install
	// can rewind further.
	if err := j.TruncateTo(ctx, seq-1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("truncate below the horizon = %v, want ErrCompacted", err)
	}
}

// TestTruncateRacingAppend races truncations against a stream of
// appends: the journal's mutex serializes them, so whatever interleaving
// wins, the file must replay cleanly with exactly Sequence() records.
func TestTruncateRacingAppend(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	j := s.Journal()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			if err := j.Append(ctx, Record{Type: RecState, JobID: jobID(1), State: StateRunning}); err != nil {
				t.Errorf("racing append: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			// Truncate to wherever the log currently ends — the no-op
			// flavor a reconciliation against an equal-length leader does.
			if err := j.TruncateTo(ctx, j.Sequence()); err != nil {
				t.Errorf("racing truncate: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	info, err := ReplayJournal(ctx, j.Path(), func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if uint64(info.Records) != j.Sequence() {
		t.Fatalf("file holds %d records, sequence says %d", info.Records, j.Sequence())
	}
	if info.Torn {
		t.Fatalf("racing truncate tore the journal: %s", info.Reason)
	}
}

func TestJournalFenceBlocksOriginatedAppendsOnly(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	j := s.Journal()

	j.Fence()
	if err := j.Append(ctx, Record{Type: RecState, JobID: jobID(1), State: StateRunning}); !errors.Is(err, ErrJournalFenced) {
		t.Fatalf("fenced Append = %v, want ErrJournalFenced", err)
	}
	if err := j.AppendReplicated(ctx, Record{Type: RecTerm, Term: 2, Leader: "node-b"}); err != nil {
		t.Fatalf("fenced AppendReplicated = %v, want success (the catch-up path)", err)
	}
	if j.Sequence() != 1 {
		t.Fatalf("sequence = %d, want 1 (only the replicated append landed)", j.Sequence())
	}
	j.Unfence()
	if err := j.Append(ctx, Record{Type: RecState, JobID: jobID(1), State: StateRunning}); err != nil {
		t.Fatalf("unfenced Append = %v", err)
	}
}

func TestStoreStatsTracksCompaction(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	seq := jobStream(t, ctx, s, 2)

	st := s.Stats(ctx)
	if st.SnapshotSeq != 0 || st.JournalRecords != seq || st.AgeRecords != seq {
		t.Fatalf("pre-compaction stats = %+v", st)
	}
	if st.JournalBytes == 0 {
		t.Fatal("journal bytes = 0 with records on disk")
	}

	if err := s.Compact(ctx, seq, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal().Append(ctx, Record{Type: RecState, JobID: jobID(1), State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats(ctx)
	if st.SnapshotSeq != seq || st.JournalBase != seq || st.AgeRecords != 1 {
		t.Fatalf("post-compaction stats = %+v, want snapshot/base %d age 1", st, seq)
	}
	if st.SnapshotID == "" {
		t.Fatal("stats carry no snapshot content address")
	}
}

func TestMaybeCompactHonorsPolicy(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup

	// No policy: never compacts.
	jobStream(t, ctx, s, 1)
	if did, err := s.MaybeCompact(ctx); err != nil || did {
		t.Fatalf("policy-free MaybeCompact = %v/%v, want false/nil", did, err)
	}

	s.SetCompaction(CompactionPolicy{Every: 3, Truncate: true})
	did, err := s.MaybeCompact(ctx)
	if err != nil || !did {
		t.Fatalf("MaybeCompact past threshold = %v/%v, want true/nil", did, err)
	}
	seq := s.Journal().Sequence()
	if base := s.Journal().Base(); base != seq {
		t.Fatalf("base = %d after compaction, want %d", base, seq)
	}
	// Below threshold again: quiet.
	if did, err := s.MaybeCompact(ctx); err != nil || did {
		t.Fatalf("MaybeCompact below threshold = %v/%v, want false/nil", did, err)
	}
}
