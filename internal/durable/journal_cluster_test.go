package durable

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// The tests in this file cover the journal's replicated-log surface:
// positional sequence numbers, the append sink, suffix truncation, and
// bounded range reads — the primitives internal/cluster builds on.

func TestJournalSequenceAndSink(t *testing.T) {
	path := testJournalPath(t)
	ctx := context.Background()
	j, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close() //lint:allow errdiscard test cleanup

	var seqs []uint64
	var types []RecordType
	j.SetSink(func(seq uint64, rec Record) {
		seqs = append(seqs, seq)
		types = append(types, rec.Type)
	})

	recs := sampleRecords()
	appendAll(t, j, recs)
	if got := j.Sequence(); got != uint64(len(recs)) {
		t.Fatalf("Sequence = %d, want %d", got, len(recs))
	}
	if len(seqs) != len(recs) {
		t.Fatalf("sink fired %d times, want %d", len(seqs), len(recs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Errorf("sink seq[%d] = %d, want %d", i, s, i)
		}
		if types[i] != recs[i].Type {
			t.Errorf("sink rec[%d].Type = %q, want %q", i, types[i], recs[i].Type)
		}
	}

	// Removing the sink stops deliveries but not sequencing.
	j.SetSink(nil)
	appendAll(t, j, recs[:1])
	if len(seqs) != len(recs) {
		t.Fatalf("sink fired after removal: %d calls", len(seqs))
	}
	if got := j.Sequence(); got != uint64(len(recs))+1 {
		t.Fatalf("Sequence after removal = %d, want %d", got, len(recs)+1)
	}
}

func TestJournalInitSequenceContinuesNumbering(t *testing.T) {
	path := testJournalPath(t)
	ctx := context.Background()
	j1, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j1, sampleRecords())
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //lint:allow errdiscard test cleanup
	_, info := replayAll(t, path)
	j2.InitSequence(uint64(info.Records))

	var got uint64
	j2.SetSink(func(seq uint64, _ Record) { got = seq })
	appendAll(t, j2, sampleRecords()[:1])
	if got != uint64(info.Records) {
		t.Fatalf("post-recovery append got seq %d, want %d", got, info.Records)
	}
}

func TestJournalTruncateTo(t *testing.T) {
	path := testJournalPath(t)
	ctx := context.Background()
	j, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close() //lint:allow errdiscard test cleanup
	recs := sampleRecords()
	appendAll(t, j, recs)
	j.InitSequence(uint64(len(recs)))

	// Truncating past the end errors; to the current length is a no-op.
	if err := j.TruncateTo(ctx, uint64(len(recs))+1); err == nil {
		t.Fatal("TruncateTo past the end succeeded")
	}
	if err := j.TruncateTo(ctx, uint64(len(recs))); err != nil {
		t.Fatalf("no-op TruncateTo: %v", err)
	}

	// Drop the last two records; replay must see exactly the prefix.
	if err := j.TruncateTo(ctx, 2); err != nil {
		t.Fatalf("TruncateTo(2): %v", err)
	}
	if got := j.Sequence(); got != 2 {
		t.Fatalf("Sequence after truncate = %d, want 2", got)
	}
	got, info := replayAll(t, path)
	if info.Torn || len(got) != 2 {
		t.Fatalf("after truncate: %d records torn=%v, want 2 clean", len(got), info.Torn)
	}

	// New appends after the truncation replay cleanly behind the prefix.
	appendAll(t, j, recs[3:])
	got, info = replayAll(t, path)
	if info.Torn || len(got) != 3 {
		t.Fatalf("after truncate+append: %d records torn=%v, want 3 clean", len(got), info.Torn)
	}
	if got[2].State != StateDone {
		t.Fatalf("appended record state = %q, want %q", got[2].State, StateDone)
	}
}

func TestJournalTruncateCutsTornTail(t *testing.T) {
	// A journal with a torn final record: truncating to the intact
	// count removes the damaged bytes so later appends stay readable —
	// the recovery path's fix for the append-behind-damage hazard.
	recs := sampleRecords()
	path := writeJournal(t, recs, func(b []byte) []byte { return b[:len(b)-3] })
	ctx := context.Background()
	j, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close() //lint:allow errdiscard test cleanup
	_, info := replayAll(t, path)
	if !info.Torn {
		t.Fatal("fixture journal not torn")
	}
	if err := j.TruncateTo(ctx, uint64(info.Records)); err != nil {
		t.Fatalf("TruncateTo over torn tail: %v", err)
	}
	appendAll(t, j, recs[len(recs)-1:])
	got, after := replayAll(t, path)
	if after.Torn || len(got) != len(recs) {
		t.Fatalf("after cut+append: %d records torn=%v (%s), want %d clean",
			len(got), after.Torn, after.Reason, len(recs))
	}
}

func TestReadJournalRange(t *testing.T) {
	path := testJournalPath(t)
	ctx := context.Background()
	j, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 10; i++ {
		want = append(want, Record{Type: RecState, JobID: fmt.Sprintf("job-%06d", i), State: StateRunning})
	}
	appendAll(t, j, want)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		from, max uint64
		wantIDs   []int
	}{
		{0, 3, []int{0, 1, 2}},
		{4, 4, []int{4, 5, 6, 7}},
		{8, 100, []int{8, 9}},
		{10, 5, nil}, // at the end
		{99, 5, nil}, // past the end
		{2, 0, nil},  // zero-length read
	}
	for _, tc := range cases {
		got, err := ReadJournalRange(ctx, path, tc.from, tc.max)
		if err != nil {
			t.Fatalf("ReadJournalRange(%d,%d): %v", tc.from, tc.max, err)
		}
		if len(got) != len(tc.wantIDs) {
			t.Fatalf("ReadJournalRange(%d,%d) = %d records, want %d",
				tc.from, tc.max, len(got), len(tc.wantIDs))
		}
		for i, idx := range tc.wantIDs {
			wantID := fmt.Sprintf("job-%06d", idx)
			if got[i].JobID != wantID {
				t.Errorf("ReadJournalRange(%d,%d)[%d].JobID = %q, want %q",
					tc.from, tc.max, i, got[i].JobID, wantID)
			}
		}
	}
}

func TestReduceTracksTerm(t *testing.T) {
	recs := []Record{
		{Type: RecTerm, Term: 1, Leader: "node-a"},
		{Type: RecSubmit, JobID: "job-000001", Request: json.RawMessage(`{}`)},
		{Type: RecTerm, Term: 2, Leader: "node-b"},
		{Type: RecState, JobID: "job-000001", State: StateDone},
	}
	tbl := Reduce(recs)
	if tbl.Term != 2 || tbl.Leader != "node-b" {
		t.Fatalf("Term/Leader = %d/%q, want 2/node-b", tbl.Term, tbl.Leader)
	}
	if tbl.Dropped != 0 {
		t.Fatalf("term records counted as dropped: %d", tbl.Dropped)
	}
	if len(tbl.Jobs) != 1 || tbl.Jobs[0].State != StateDone {
		t.Fatalf("job table disturbed by term records: %+v", tbl.Jobs)
	}

	// A regressed term (hand-edited journal) must not lower the fence.
	tbl = Reduce(append(recs, Record{Type: RecTerm, Term: 1, Leader: "node-a"}))
	if tbl.Term != 2 || tbl.Leader != "node-b" {
		t.Fatalf("regressed term lowered fence: %d/%q", tbl.Term, tbl.Leader)
	}
}
